"""Legacy shim so `pip install -e .` / `python setup.py develop` work
without the `wheel` package (this environment is offline; PEP 660
editable builds need wheel).  Mirrors pyproject.toml's entry point."""

from setuptools import setup

setup(entry_points={"console_scripts": ["repro = repro.cli:main"]})
