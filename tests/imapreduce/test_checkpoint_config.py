"""Checkpoint configuration behaviour."""

import pytest

from repro.cluster import local_cluster
from repro.common import IterKeys, JobConf
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime, IterativeJob
from repro.simulation import Engine


def noop_map(key, state, static, ctx):
    ctx.emit(key, state)


def noop_reduce(key, values, ctx):
    ctx.emit(key, values[0])


def run_with_interval(interval):
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/c/state", [(i, 1.0) for i in range(8)])
    conf = JobConf({IterKeys.STATE_PATH: "/c/state", IterKeys.MAX_ITER: 6})
    conf.set_int(IterKeys.CHECKPOINT_INTERVAL, interval)
    job = IterativeJob.single_phase(
        "ckpt", noop_map, noop_reduce, conf=conf, output_path="/c/out"
    )
    IMapReduceRuntime(cluster, dfs).submit(job)
    return [f for f in dfs.list_files() if "/state-" in f]


def test_interval_zero_disables_checkpoints():
    files = run_with_interval(0)
    # Only the initial load's state-00000 remains — no later checkpoints.
    assert files
    assert all("state-00000" in f for f in files)


def test_interval_two_writes_later_checkpoints():
    files = run_with_interval(2)
    assert any("state-00000" not in f for f in files)


def test_smaller_interval_checkpoints_more_often():
    """More frequent checkpoints cost (slightly) more time."""

    def total_time(interval):
        engine = Engine()
        cluster = local_cluster(engine)
        dfs = DFS(cluster, replication=2)
        dfs.ingest("/c/state", [(i, 1.0) for i in range(512)])
        conf = JobConf({IterKeys.STATE_PATH: "/c/state", IterKeys.MAX_ITER: 8})
        conf.set_int(IterKeys.CHECKPOINT_INTERVAL, interval)
        job = IterativeJob.single_phase(
            "ckpt", noop_map, noop_reduce, conf=conf, output_path="/c/out"
        )
        return IMapReduceRuntime(cluster, dfs).submit(job).metrics.total_time

    assert total_time(1) >= total_time(0)
