"""Tests for the §5 extensions: one2all broadcast, multiple map-reduce
phases per iteration, and the auxiliary phase."""

import pytest

from repro.cluster import local_cluster
from repro.common import IterKeys, JobConf, ModPartitioner
from repro.dfs import DFS
from repro.imapreduce import (
    AuxPhase,
    IMapReduceRuntime,
    IterativeJob,
    Phase,
    run_local,
)
from repro.simulation import Engine


def setup(nodes=4):
    engine = Engine()
    cluster = local_cluster(engine, nodes)
    dfs = DFS(cluster, block_size=4096, replication=2)
    return engine, cluster, dfs, IMapReduceRuntime(cluster, dfs)


def read_final(engine, dfs, paths):
    def body():
        acc = []
        for path in paths:
            acc.extend((yield from dfs.read_all(path, "node0")))
        return acc

    return engine.run(engine.process(body()))


# --------------------------------------------------------------- one2all --
# A 1-D K-means with 2 centroids: points are static, centroids are state.

POINTS = [(i, float(i)) for i in range(10)]  # coordinates 0..9
CENTROIDS = [(0, 1.0), (1, 6.5)]


def kmeans_map(point_id, centroids, coordinate, ctx):
    best = min(centroids, key=lambda c: (abs(coordinate - c[1]), c[0]))
    ctx.emit(best[0], coordinate)


def kmeans_reduce(cid, coordinates, ctx):
    ctx.emit(cid, sum(coordinates) / len(coordinates))


def kmeans_job(max_iter):
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/kmeans/centroids")
    conf.set(IterKeys.STATIC_PATH, "/kmeans/points")
    conf.set_int(IterKeys.MAX_ITER, max_iter)
    conf.set(IterKeys.MAPPING, "one2all")
    return IterativeJob.single_phase(
        "kmeans",
        kmeans_map,
        kmeans_reduce,
        conf=conf,
        output_path="/out/kmeans",
    )


def test_one2all_kmeans_converges_to_expected_clusters():
    engine, _c, dfs, runtime = setup()
    dfs.ingest("/kmeans/centroids", CENTROIDS)
    dfs.ingest("/kmeans/points", POINTS)
    result = runtime.submit(kmeans_job(6))
    got = dict(read_final(engine, dfs, result.final_paths))
    # Lloyd fixed point from (1.0, 6.5): after one step the centroids are
    # (1.5, 6.5); point 4 then ties and the tie-break assigns it to the
    # lower id, giving the stable clustering {0..4} / {5..9}.
    assert got == pytest.approx({0: 2.0, 1: 7.0})


def test_one2all_forces_synchronous_mode():
    assert kmeans_job(3).synchronous


def test_one2all_matches_local_reference():
    engine, _c, dfs, runtime = setup()
    dfs.ingest("/kmeans/centroids", CENTROIDS)
    dfs.ingest("/kmeans/points", POINTS)
    result = runtime.submit(kmeans_job(4))
    distributed = sorted(read_final(engine, dfs, result.final_paths))
    local = run_local(
        kmeans_job(4),
        CENTROIDS,
        {"/kmeans/points": POINTS},
        num_pairs=4,
    )
    assert distributed == pytest.approx(local.state)


# ------------------------------------------------------------- multiphase --
# Two phases: phase 1 doubles each value, phase 2 adds the static offset.
# One iteration = x -> 2x + offset.  Keys are ints; ModPartitioner keeps
# each key in a fixed pair so the one2one contract holds in both phases.

N = 8


def double_map(key, state, static, ctx):
    ctx.emit(key, state * 2.0)


def offset_map(key, state, static, ctx):
    ctx.emit(key, state + static)


def identity_reduce(key, values, ctx):
    ctx.emit(key, values[0])


def two_phase_job(max_iter):
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/mp/state")
    conf.set_int(IterKeys.MAX_ITER, max_iter)
    phases = [
        Phase(map_fn=double_map, reduce_fn=identity_reduce, name="double"),
        Phase(
            map_fn=offset_map,
            reduce_fn=identity_reduce,
            static_path="/mp/offsets",
            name="offset",
        ),
    ]
    return IterativeJob(
        name="twophase",
        phases=phases,
        output_path="/out/mp",
        conf=conf,
        partitioner=ModPartitioner(),
    )


def test_two_phase_iteration_semantics():
    engine, _c, dfs, runtime = setup()
    dfs.ingest("/mp/state", [(i, 1.0) for i in range(N)])
    dfs.ingest("/mp/offsets", [(i, float(i)) for i in range(N)])
    result = runtime.submit(two_phase_job(3))
    got = dict(read_final(engine, dfs, result.final_paths))
    # x0=1; x_{k+1} = 2 x_k + i  => after 3 iters: 8 + 7i
    assert got == pytest.approx({i: 8.0 + 7.0 * i for i in range(N)})


def test_two_phase_matches_local_reference():
    engine, _c, dfs, runtime = setup()
    dfs.ingest("/mp/state", [(i, 1.0) for i in range(N)])
    dfs.ingest("/mp/offsets", [(i, float(i)) for i in range(N)])
    result = runtime.submit(two_phase_job(2))
    distributed = sorted(read_final(engine, dfs, result.final_paths))
    local = run_local(
        two_phase_job(2),
        [(i, 1.0) for i in range(N)],
        {"/mp/offsets": [(i, float(i)) for i in range(N)]},
        num_pairs=4,
    )
    assert distributed == pytest.approx(local.state)


# ---------------------------------------------------------------- aux phase --
# Main: halve values.  Aux: terminate when every value drops below 1.0.


def halve_map(key, state, static, ctx):
    ctx.emit(key, state / 2.0)


def aux_map(key, value, ctx):
    ctx.emit(0, 1.0 if value >= 1.0 else 0.0)


def aux_reduce(key, values, ctx):
    if sum(values) == 0:
        ctx.signal_terminate()


def aux_job(max_iter=50):
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/aux/state")
    conf.set_int(IterKeys.MAX_ITER, max_iter)
    return IterativeJob.single_phase(
        "auxjob",
        halve_map,
        identity_reduce,
        conf=conf,
        output_path="/out/aux",
        aux=AuxPhase(map_fn=aux_map, reduce_fn=aux_reduce, num_tasks=2),
    )


def test_aux_phase_terminates_computation():
    engine, _c, dfs, runtime = setup()
    dfs.ingest("/aux/state", [(i, 8.0) for i in range(6)])
    result = runtime.submit(aux_job())
    # 8 -> 4 -> 2 -> 1 -> 0.5 : all below 1.0 after iteration 4.
    assert result.terminated_by == "aux"
    got = dict(read_final(engine, dfs, result.final_paths))
    assert all(v < 1.0 for v in got.values())
    # Termination is detected asynchronously; it stops within an iteration
    # or two of the detection point, well before maxiter.
    assert 4 <= result.iterations_run <= 6


def test_aux_phase_matches_local_reference_iterations():
    engine, _c, dfs, runtime = setup()
    dfs.ingest("/aux/state", [(i, 8.0) for i in range(6)])
    result = runtime.submit(aux_job())
    local = run_local(aux_job(), [(i, 8.0) for i in range(6)], num_pairs=4)
    assert local.terminated_by == "aux"
    # The serial reference stops exactly at detection; the distributed
    # run may overrun by the in-flight iteration (§5.3 runs aux in
    # parallel, without pausing the main phase).
    assert result.iterations_run >= local.iterations_run


def test_aux_task_state_persists_across_iterations():
    engine, _c, dfs, runtime = setup()
    dfs.ingest("/aux/state", [(i, 8.0) for i in range(6)])
    seen_iterations = []

    def counting_aux_map(key, value, ctx):
        ctx.task_state["count"] = ctx.task_state.get("count", 0) + 1
        seen_iterations.append(ctx.task_state["count"])
        ctx.emit(0, 0.0)

    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/aux/state")
    conf.set_int(IterKeys.MAX_ITER, 3)
    job = IterativeJob.single_phase(
        "auxcount",
        halve_map,
        identity_reduce,
        conf=conf,
        output_path="/out/auxcount",
        aux=AuxPhase(map_fn=counting_aux_map, reduce_fn=lambda k, v, c: None, num_tasks=1),
    )
    runtime.submit(job)
    assert max(seen_iterations) > 1  # state accumulated across iterations
