"""Heartbeat failure detector: suspicion timing, boundaries, reboots.

The detector replaces the master's omniscient failure knowledge with
observation: silence longer than ``timeout`` makes a worker suspected,
``suspicion_checks`` consecutive silent monitor passes confirm it, and a
boot-id change on a live worker reveals a crash that healed faster than
the suspicion window.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import local_cluster
from repro.imapreduce import ChaosKnobs, FailureDetector, FailureDetectorConfig
from repro.simulation import Engine


def make_detector(engine, cluster, config):
    events = []

    def emit(kind, **fields):
        events.append((engine.now, kind, fields))

    detector = FailureDetector(cluster, config, emit, ChaosKnobs())
    return detector, events


def kinds_for(events, worker):
    return [kind for _, kind, fields in events if fields.get("worker") == worker]


def test_silence_exactly_at_timeout_is_still_alive():
    """The suspicion comparison is strict: a monitor pass that observes
    silence of *exactly* ``timeout`` seconds does not suspect.

    node1 dies at t=0 with its initial heartbeat stamp at t=0, and the
    monitor passes land at t=1, 2, 3, ...; with ``timeout=2.0`` the pass
    at t=2 sees silence == 2.0 (no suspicion) and the pass at t=3 sees
    3.0 > 2.0 (suspected).
    """
    engine = Engine()
    cluster = local_cluster(engine, 2)
    config = FailureDetectorConfig(period=1.0, timeout=2.0, suspicion_checks=3)
    detector, events = make_detector(engine, cluster, config)
    detector.start()
    cluster["node1"].fail()

    engine.run(until=2.5)
    assert kinds_for(events, "node1") == [], "boundary pass must not suspect"
    engine.run(until=3.5)
    assert kinds_for(events, "node1") == ["suspect"]
    # Confirmation needs suspicion_checks consecutive silent passes:
    # suspicion hits 3 on the pass at t=5.
    engine.run(until=4.5)
    assert kinds_for(events, "node1") == ["suspect"]
    engine.run(until=5.5)
    assert kinds_for(events, "node1") == ["suspect", "confirm-failure"]
    assert "node1" in detector.confirmed
    detector.stop()


def test_gagged_detector_suspects_but_never_confirms():
    engine = Engine()
    cluster = local_cluster(engine, 2)
    events = []
    detector = FailureDetector(
        cluster,
        FailureDetectorConfig(period=1.0, timeout=2.0, suspicion_checks=3),
        lambda kind, **fields: events.append((kind, fields)),
        ChaosKnobs(ignore_heartbeat_timeout=True),
    )
    detector.start()
    cluster["node1"].fail()
    engine.run(until=30.0)
    assert ("suspect", {"worker": "node1", "silent_for": 3.0}) in [
        (k, f) for k, f in events
    ]
    assert not [k for k, _ in events if k == "confirm-failure"]
    assert detector.confirmed == set()
    detector.stop()


def test_fast_crash_and_restart_is_reported_as_reboot():
    """A machine that dies and comes back inside the suspicion window is
    never confirmed dead — but its heartbeat daemon's boot id changes,
    which the master reports as a (healed) failure all the same."""
    engine = Engine()
    cluster = local_cluster(engine, 3)
    config = FailureDetectorConfig(period=0.5, timeout=2.0, suspicion_checks=3)
    detector, events = make_detector(engine, cluster, config)
    detector.start()

    def chaos_driver():
        yield engine.timeout(2.0)
        cluster["node1"].fail()
        yield engine.timeout(0.6)
        cluster["node1"].recover()

    engine.process(chaos_driver())
    engine.run(until=10.0)
    kinds = kinds_for(events, "node1")
    assert "reboot" in kinds
    assert "confirm-failure" not in kinds
    # The healed failure is queued for the master (no sink attached here).
    assert "node1" in detector._pending
    detector.stop()


def test_transient_silence_clears_suspicion_without_side_effects():
    """Silence long enough to suspect but not to confirm: the worker is
    unsuspected when heartbeats resume, with no failure report."""
    engine = Engine()
    cluster = local_cluster(engine, 2)
    config = FailureDetectorConfig(period=1.0, timeout=2.0, suspicion_checks=5)
    detector, events = make_detector(engine, cluster, config)
    detector.start()

    def chaos_driver():
        yield engine.timeout(1.0)
        cluster["node1"].fail()
        yield engine.timeout(3.5)  # suspected, but < 5 silent passes
        cluster["node1"].recover()

    engine.process(chaos_driver())
    engine.run(until=20.0)
    kinds = kinds_for(events, "node1")
    assert "suspect" in kinds
    assert "confirm-failure" not in kinds
    assert detector.suspicion["node1"] == 0
    assert detector.confirmed == set()
    # The restart after a genuine crash still surfaces as a reboot.
    assert "reboot" in kinds
    detector.stop()


@settings(max_examples=25, deadline=None)
@given(
    fail_at=st.floats(min_value=0.3, max_value=12.0),
    period=st.floats(min_value=0.2, max_value=1.0),
    checks=st.integers(min_value=1, max_value=4),
)
def test_crash_detection_timing_properties(fail_at, period, checks):
    """For any crash time and any detector cadence: the dead worker is
    suspected only after genuine silence longer than ``timeout``,
    confirmed exactly once, and the survivor is never accused."""
    engine = Engine()
    cluster = local_cluster(engine, 3)
    timeout = 3.0 * period
    config = FailureDetectorConfig(
        period=period, timeout=timeout, suspicion_checks=checks
    )
    detector, events = make_detector(engine, cluster, config)
    detector.start()

    def chaos_driver():
        yield engine.timeout(fail_at)
        cluster["node2"].fail()

    engine.process(chaos_driver())
    engine.run(until=fail_at + timeout + (checks + 3) * period)
    detector.stop()

    assert kinds_for(events, "node2") == ["suspect", "confirm-failure"]
    for _, kind, fields in events:
        if fields.get("worker") == "node2":
            # Recorded silence is the real thing, past the threshold.
            assert fields["silent_for"] > timeout
    assert kinds_for(events, "node1") == []
    assert detector.confirmed == {"node2"}
