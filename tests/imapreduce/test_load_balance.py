"""Load-balancing tests: migration away from slow workers (§3.4.2)."""

import pytest

from repro.cluster import heterogeneous_cluster
from repro.common import IterKeys, JobConf
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime, IterativeJob, LoadBalanceConfig
from repro.simulation import Engine

N_KEYS = 32
ITERS = 12


def busy_map(key, state, static, ctx):
    ctx.emit(key, state * static)


def identity_reduce(key, values, ctx):
    ctx.emit(key, values[0])


def make_job():
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/lb/state")
    conf.set(IterKeys.STATIC_PATH, "/lb/static")
    conf.set_int(IterKeys.MAX_ITER, ITERS)
    conf.set_int(IterKeys.CHECKPOINT_INTERVAL, 1)
    return IterativeJob.single_phase(
        "lb",
        busy_map,
        identity_reduce,
        conf=conf,
        output_path="/out/lb",
        num_pairs=8,
    )


def run_once(lb_enabled):
    engine = Engine()
    # One straggler at 0.25x speed among healthy 1.0x workers.
    cluster = heterogeneous_cluster(engine, [1.0, 1.0, 1.0, 0.25], cores=2)
    dfs = DFS(cluster, block_size=4096, replication=2)
    dfs.ingest("/lb/state", [(i, 1.0) for i in range(N_KEYS)])
    dfs.ingest("/lb/static", [(i, 0.9) for i in range(N_KEYS)])
    runtime = IMapReduceRuntime(
        cluster,
        dfs,
        load_balance=LoadBalanceConfig(
            enabled=lb_enabled, deviation_threshold=0.4, cooldown_iterations=2
        ),
    )
    result = runtime.submit(make_job())

    def read():
        acc = []
        for path in result.final_paths:
            acc.extend((yield from dfs.read_all(path, "hnode0")))
        return acc

    state = dict(engine.run(engine.process(read())))
    return result, state


def test_migration_triggered_on_heterogeneous_cluster():
    result, _state = run_once(lb_enabled=True)
    assert len(result.migrations) >= 1
    move = result.migrations[0]
    assert move["from"] == "hnode3"  # the straggler
    assert move["to"] != "hnode3"
    assert move["deviation"] > 0.4


def test_migration_preserves_exact_results():
    balanced, state_balanced = run_once(lb_enabled=True)
    plain, state_plain = run_once(lb_enabled=False)
    expected = {i: 1.0 * (0.9**ITERS) for i in range(N_KEYS)}
    assert state_balanced == pytest.approx(expected)
    assert state_plain == pytest.approx(expected)


def test_no_migration_when_disabled():
    plain, _ = run_once(lb_enabled=False)
    assert plain.migrations == []


def test_migration_respects_cooldown():
    result, _ = run_once(lb_enabled=True)
    iters = [m.get("at_state", 0) for m in result.migrations]
    # at most one migration per cooldown window of redone iterations
    assert len(result.migrations) <= ITERS


def test_steady_state_iterations_faster_after_migration():
    """Post-migration iterations should beat the straggler-bound ones."""
    result, _ = run_once(lb_enabled=True)
    durations = [it.elapsed for it in result.metrics.iterations]
    first_phase = durations[1]  # straggler-bound steady state
    last_phase = durations[-1]  # after migration(s)
    assert last_phase < first_phase


def test_homogeneous_cluster_never_migrates():
    engine = Engine()
    cluster = heterogeneous_cluster(engine, [1.0, 1.0, 1.0, 1.0], cores=2)
    dfs = DFS(cluster, block_size=4096, replication=2)
    dfs.ingest("/lb/state", [(i, 1.0) for i in range(N_KEYS)])
    dfs.ingest("/lb/static", [(i, 0.9) for i in range(N_KEYS)])
    runtime = IMapReduceRuntime(
        cluster,
        dfs,
        load_balance=LoadBalanceConfig(enabled=True, deviation_threshold=0.4),
    )
    result = runtime.submit(make_job())
    assert result.migrations == []
