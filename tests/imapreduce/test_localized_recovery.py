"""Localized per-pair recovery under the heartbeat failure detector.

With the detector armed the master learns about crashes from heartbeat
silence (or a boot-id change), and recovery touches only the task pairs
the dead worker hosted: they are fenced, reassigned to the least-loaded
survivor, and resumed from the last durable checkpoint while every other
pair simply holds at its barrier — no whole-generation rollback.
"""

import pytest

from repro.cluster import FaultSchedule, local_cluster
from repro.common import IterKeys, JobConf
from repro.common.errors import SchedulingError
from repro.dfs import DFS
from repro.imapreduce import FailureDetectorConfig, IMapReduceRuntime, IterativeJob
from repro.metrics.trace import Tracer
from repro.simulation import Engine

N_KEYS = 12
MAX_ITER = 8
#: The decay generation runs roughly [4.0, 5.1) virtual; the initial
#: load dominates before that (see test_fault_tolerance.py timings).
MID_GENERATION = 5.03


def decay_map(key, state, static, ctx):
    ctx.emit(key, state * static)


def identity_reduce(key, values, ctx):
    ctx.emit(key, values[0])


def make_job():
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/in/state")
    conf.set(IterKeys.STATIC_PATH, "/in/static")
    conf.set_int(IterKeys.MAX_ITER, MAX_ITER)
    conf.set_int(IterKeys.CHECKPOINT_INTERVAL, 2)
    return IterativeJob.single_phase(
        "decay", decay_map, identity_reduce, conf=conf, output_path="/out/decay"
    )


def run_with_detector(schedule=None, net_seed=7):
    engine = Engine()
    cluster = local_cluster(engine, 4)
    dfs = DFS(cluster, block_size=4096, replication=2)
    dfs.ingest("/in/state", [(i, 1024.0) for i in range(N_KEYS)])
    dfs.ingest("/in/static", [(i, 0.5) for i in range(N_KEYS)])
    if schedule is not None:
        schedule.arm(engine, cluster, net_seed=net_seed)
    tracer = Tracer()
    runtime = IMapReduceRuntime(
        cluster, dfs, trace=tracer, failure_detector=FailureDetectorConfig()
    )
    result = runtime.submit(make_job())

    def read():
        acc = []
        for path in result.final_paths:
            acc.extend((yield from dfs.read_all(path, "node0")))
        return acc

    state = dict(engine.run(engine.process(read())))
    return result, state, tracer


EXPECTED = {i: 1024.0 * (0.5**MAX_ITER) for i in range(N_KEYS)}


def test_detector_is_timing_neutral_on_clean_runs():
    result, state, tracer = run_with_detector()
    assert state == EXPECTED
    assert result.recoveries == 0
    assert not tracer.select("suspect")
    assert tracer.check(2) == []


def test_mid_run_crash_recovers_only_the_affected_pairs():
    result, state, tracer = run_with_detector(
        FaultSchedule().fail_at(MID_GENERATION, "node1")
    )
    assert state == EXPECTED
    # Detection was observed, not fiat.
    assert tracer.select("suspect", worker="node1")
    assert tracer.select("confirm-failure", worker="node1")
    # Recovery is localized: only node1's pair rolled back, and there is
    # no whole-generation rollback event at all.
    recoveries = tracer.select("pair-recovery")
    assert recoveries, "expected localized pair recovery"
    assert {e.from_worker for e in recoveries} == {"node1"}
    assert all(e.worker != "node1" for e in recoveries)
    assert not tracer.select("recovery"), "no whole-generation rollback"
    assert result.recoveries == len({e.pair for e in recoveries})
    # Rollback never overshoots the durable checkpoint.
    assert tracer.check(2) == []


def test_fast_crash_restart_is_recovered_via_reboot_detection():
    """A crash healed faster than the suspicion window still loses the
    pair's in-memory state; the boot-id change must trigger the same
    localized recovery."""
    schedule = (
        FaultSchedule()
        .fail_at(MID_GENERATION, "node1")
        .recover_at(MID_GENERATION + 0.6, "node1")
    )
    result, state, tracer = run_with_detector(schedule)
    assert state == EXPECTED
    assert tracer.select("reboot", worker="node1")
    assert not tracer.select("confirm-failure")
    assert tracer.select("pair-recovery")
    assert not tracer.select("recovery")
    assert tracer.check(2) == []


def test_crash_with_loss_and_partition_still_converges_exactly():
    """The acceptance scenario: >= 10% message loss, one mid-run worker
    crash, and a transient partition — the run must still produce the
    exact failure-free answer through retransmission, detection and
    localized recovery alone."""
    schedule = (
        FaultSchedule()
        .fail_at(MID_GENERATION, "node1")
        .lose(1.0, 6.0, 0.15)
        .partition(6.0, 8.2, ("node3",))
    )
    result, state, tracer = run_with_detector(schedule)
    assert state == EXPECTED
    assert result.iterations_run == MAX_ITER
    assert tracer.select("pair-recovery")
    assert not tracer.select("recovery"), "no whole-generation rollback"
    # Every recovered pair belonged to a worker the master had confirmed
    # dead (crashed or cut off) — never an unaffected one.
    accused = {
        e.worker for e in tracer.select("confirm-failure")
    } | {e.worker for e in tracer.select("reboot")}
    assert {e.from_worker for e in tracer.select("pair-recovery")} <= accused
    assert tracer.check(2) == []


def test_false_confirmation_of_partitioned_worker_is_survivable():
    """A partition that outlasts the suspicion budget gets a *live*
    worker confirmed dead.  Its pairs move, the stale incarnation is
    fenced, and when the partition heals the worker rejoins — the answer
    must be exact either way."""
    schedule = FaultSchedule().partition(4.2, 9.0, ("node2",))
    result, state, tracer = run_with_detector(schedule)
    assert state == EXPECTED
    assert tracer.select("confirm-failure", worker="node2")
    recoveries = tracer.select("pair-recovery")
    assert recoveries
    assert {e.from_worker for e in recoveries} == {"node2"}
    assert tracer.select("rejoin", worker="node2")
    assert tracer.check(2) == []


# ------------------------------------------------- least-loaded reassign --
def make_runtime(nodes=4):
    engine = Engine()
    cluster = local_cluster(engine, nodes)
    dfs = DFS(cluster, block_size=4096, replication=2)
    return IMapReduceRuntime(cluster, dfs)


def test_reassign_picks_the_least_loaded_survivor():
    runtime = make_runtime()
    assignment = {0: "node0", 1: "node0", 2: "node1", 3: "node2"}
    runtime._reassign_failed(assignment, 4, dead={"node1"})
    # node3 hosts nothing; round-robin order would have favoured node0.
    assert assignment == {0: "node0", 1: "node0", 2: "node3", 3: "node2"}


def test_reassign_spreads_multiple_orphans():
    runtime = make_runtime()
    assignment = {0: "node1", 1: "node1", 2: "node2", 3: "node3"}
    runtime._reassign_failed(assignment, 4, dead={"node1"})
    # Both orphans land on distinct least-loaded survivors (node0 first,
    # then the tie among load-1 workers breaks toward cluster order).
    assert assignment[0] == "node0"
    assert assignment[1] in ("node0", "node2", "node3")
    loads = {}
    for worker in assignment.values():
        loads[worker] = loads.get(worker, 0) + 1
    assert max(loads.values()) <= 2


def test_reassign_refuses_without_capacity():
    runtime = make_runtime(nodes=2)
    assignment = {p: "node1" for p in range(5)}
    with pytest.raises(SchedulingError):
        runtime._reassign_failed(assignment, 5, dead={"node1"})


def test_reassign_refuses_with_no_survivors():
    runtime = make_runtime(nodes=2)
    assignment = {0: "node1"}
    with pytest.raises(SchedulingError):
        runtime._reassign_failed(assignment, 1, dead={"node0", "node1"})
