"""Kernel-vs-record differential tests for the four bundled kernels.

Two promises, tested separately:

1. **Kernel vs record path** (serial): the columnar executor computes
   the same answer as the per-record reference.  ``min`` merges (sssp,
   components) must be *bit-exact* — the kernel performs the identical
   float additions and ``min`` is order-independent.  ``sum`` merges
   (pagerank, kmeans, jacobi) reorder the float additions, so they are
   compared within the differential oracle's tolerance; the worst-case
   reordering error is ``(n-1)·eps·Σ|xᵢ|`` (Higham §4.2) ≈ 1e-11 at
   these sizes, six orders under the 1e-6 relative tolerance.

2. **Kernel-serial vs kernel-parallel**: the multiprocess backend on a
   kernel job must be *record-for-record identical* to the serial
   columnar executor — both assemble every merge input in ascending
   source-pair order and run the same numpy reductions — across
   num_pairs × workers × fork/spawn.
"""

import pickle

import pytest

from repro.algorithms import components, jacobi, kmeans, pagerank, sssp
from repro.data.lastfm import load_lastfm
from repro.graph.generators import pagerank_graph, sssp_graph
from repro.imapreduce import kernel_enabled, run_local, run_parallel
from repro.testing.oracles import records_identical, states_match

STATE = "/t/state"
STATIC = "/t/static"
OUT = "/t/out"


def _pagerank(use_kernel):
    graph = pagerank_graph(40, seed=7)
    job = pagerank.build_imr_job(
        40, state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=5, threshold=1e-4, combiner=True,
        use_kernel=use_kernel,
    )
    return job, pagerank.initial_state(graph), {
        STATIC: pagerank.static_records(graph)
    }


def _sssp(use_kernel):
    graph = sssp_graph(36, seed=5)
    job = sssp.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=6, combiner=True, use_kernel=use_kernel,
    )
    return job, sssp.initial_state(graph, source=0), {
        STATIC: sssp.static_records(graph)
    }


def _components(use_kernel):
    graph = sssp_graph(30, seed=9)
    job = components.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=25, use_kernel=use_kernel,
    )
    return job, components.initial_state(graph), {
        STATIC: components.static_records(graph)
    }


def _kmeans(use_kernel):
    data = load_lastfm(num_users=50, num_artists=8, num_tastes=3, seed=13)
    job = kmeans.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=4, use_kernel=use_kernel,
        num_artists=8 if use_kernel else None,
    )
    return job, kmeans.initial_centroids(data, 3, seed=13), {
        STATIC: data.user_records()
    }


def _jacobi(use_kernel):
    a, b = jacobi.make_system(24, density=0.3, seed=3)
    job = jacobi.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=8, threshold=1e-9, use_kernel=use_kernel,
    )
    return job, jacobi.initial_state(24), {
        STATIC: jacobi.system_to_static_records(a, b)
    }


#: name -> (builder, exact): ``min`` merges demand bit-exactness.
WORKLOADS = {
    "pagerank": (_pagerank, False),
    "sssp": (_sssp, True),
    "components": (_components, True),
    "kmeans": (_kmeans, False),
    "jacobi": (_jacobi, False),
}


# --------------------------------------------- kernel vs record (serial) --
@pytest.mark.parametrize("num_pairs", [1, 3, 5])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_kernel_matches_record_serial(name, num_pairs):
    build, exact = WORKLOADS[name]
    rec_job, state, static = build(False)
    ker_job, _, _ = build(True)
    assert not kernel_enabled(rec_job)
    assert kernel_enabled(ker_job)

    ref = run_local(rec_job, state, static, num_pairs=num_pairs)
    ker = run_local(ker_job, state, static, num_pairs=num_pairs)

    assert ker.iterations_run == ref.iterations_run
    assert ker.terminated_by == ref.terminated_by
    if exact:
        assert records_identical(ker.state, ref.state)
        assert ker.distances == ref.distances
    else:
        assert states_match(ker.state, ref.state) == []
        for mine, theirs in zip(ker.distances, ref.distances):
            if theirs is None:
                assert mine is None
            else:
                assert mine == pytest.approx(theirs, rel=1e-6, abs=1e-9)


def test_kernel_history_matches_record():
    build, _ = WORKLOADS["sssp"]
    rec_job, state, static = build(False)
    ker_job, _, _ = build(True)
    ref = run_local(rec_job, state, static, num_pairs=3, keep_history=True)
    ker = run_local(ker_job, state, static, num_pairs=3, keep_history=True)
    assert len(ker.history) == len(ref.history)
    for mine, theirs in zip(ker.history, ref.history):
        assert records_identical(mine, theirs)  # min merge: exact per iter


# ------------------------------------- kernel-serial vs kernel-parallel --
@pytest.mark.parametrize("num_pairs,num_workers", [(2, 2), (5, 3), (4, 1)])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_kernel_parallel_identical_to_serial(name, num_pairs, num_workers):
    build, _ = WORKLOADS[name]
    ker_job, state, static = build(True)
    ref = run_local(ker_job, state, static, num_pairs=num_pairs,
                    keep_history=True)
    par = run_parallel(ker_job, state, static, num_pairs=num_pairs,
                       num_workers=num_workers, keep_history=True)
    assert records_identical(par.state, ref.state)
    assert par.iterations_run == ref.iterations_run
    assert par.terminated_by == ref.terminated_by
    assert par.distances == ref.distances  # bit-identical float folds
    for mine, theirs in zip(par.history, ref.history):
        assert records_identical(mine, theirs)
    # §3.2: static partitions deserialized once per worker, kernel path too.
    assert par.static_loads == par.num_workers


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_kernel_parallel_start_methods(start_method):
    """Kernel jobs (and their prepared CSR columns) survive both start
    methods — the kernel travels inside the job pickle."""
    build, _ = WORKLOADS["pagerank"]
    ker_job, state, static = build(True)
    ref = run_local(ker_job, state, static, num_pairs=4)
    par = run_parallel(ker_job, state, static, num_pairs=4, num_workers=2,
                       start_method=start_method)
    assert records_identical(par.state, ref.state)
    assert par.distances == ref.distances


# ----------------------------------------------------------- job shape --
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_kernel_jobs_pickle(name):
    build, _ = WORKLOADS[name]
    ker_job, _, _ = build(True)
    clone = pickle.loads(pickle.dumps(ker_job))
    assert kernel_enabled(clone)
    assert clone.kernel.merge == ker_job.kernel.merge


def test_kmeans_kernel_requires_width():
    with pytest.raises(ValueError):
        kmeans.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            use_kernel=True,  # no num_artists: state width unknown
        )
    with pytest.raises(ValueError):
        kmeans.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            use_kernel=True, num_artists=8, track_membership=True,
        )
