"""Warm-started incremental runs on the multiprocess backend.

The accumulative warm start ships each worker its pairs' memoized state
slices (``accum_initial_state``), so the mesh preloads exactly the same
``AccumPair`` state the serial executor does — the record-for-record
serial/parallel determinism contract must therefore hold for warm runs
too, floats included.  The synchronous twin warm-starts
:func:`run_parallel` from the reset-and-reseeded memo records.
"""

import math

import pytest

from repro.algorithms import pagerank, sssp
from repro.graph import pagerank_graph, sssp_graph
from repro.imapreduce import (
    patch_static_table,
    run_incremental_accum,
    run_incremental_local,
    run_incremental_parallel,
)
from repro.imapreduce.incremental import ADJACENCY_KINDS
from repro.imapreduce.localrun import run_accum_local, run_local

STATE, STATIC, OUT = "/dfs/deltas", "/dfs/static", "/dfs/out"


def _sssp_case(n=60, seed=11):
    graph = sssp_graph(n, seed=seed)
    job = sssp.build_accum_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_rounds=10_000,
    )
    table = dict(sssp.static_records(graph))
    cold = run_accum_local(job, sssp.accum_initial_deltas(0),
                           {STATIC: table}, num_pairs=4, mode="async")
    delta = sssp.churn_delta(table, insert=3, delete=3, seed=5)
    return job, table, cold, delta


def _pagerank_case(n=60, seed=11):
    graph = pagerank_graph(n, seed=seed)
    job = pagerank.build_accum_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        threshold=1e-9, max_rounds=100_000,
    )
    table = dict(pagerank.static_records(graph))
    cold = run_accum_local(job, pagerank.accum_initial_deltas(n),
                           {STATIC: table}, num_pairs=4, mode="async")
    delta = pagerank.churn_delta(table, insert=2, delete=2, seed=5)
    return job, table, cold, delta


@pytest.mark.parametrize("workload", ["sssp", "pagerank"])
@pytest.mark.parametrize("mode", ["sync", "async"])
def test_parallel_warm_replays_serial_warm(workload, mode):
    job, table, cold, delta = (
        _sssp_case() if workload == "sssp" else _pagerank_case()
    )
    kwargs = {"source": 0} if workload == "sssp" else {
        "damping": pagerank.DAMPING
    }
    serial = run_incremental_accum(
        job, workload, delta, cold.state, {STATIC: table},
        num_pairs=4, mode=mode, **kwargs,
    )
    par = run_incremental_accum(
        job, workload, delta, cold.state, {STATIC: table},
        num_pairs=4, mode=mode, backend="parallel", num_workers=2, **kwargs,
    )
    assert par.state == serial.state  # floats included, no tolerance
    assert par.rounds == serial.rounds
    assert par.terminated_by == serial.terminated_by
    assert par.updates_processed == serial.updates_processed
    assert par.deltas_shipped == serial.deltas_shipped
    assert par.counters["incremental"] == serial.counters["incremental"]


def test_spawn_matches_fork_warm():
    job, table, cold, delta = _sssp_case(n=40)
    fork = run_incremental_accum(
        job, "sssp", delta, cold.state, {STATIC: table},
        num_pairs=4, mode="async", backend="parallel", num_workers=2,
        start_method="fork", source=0,
    )
    spawn = run_incremental_accum(
        job, "sssp", delta, cold.state, {STATIC: table},
        num_pairs=4, mode="async", backend="parallel", num_workers=2,
        start_method="spawn", source=0,
    )
    assert spawn.state == fork.state
    assert spawn.rounds == fork.rounds
    assert spawn.deltas_shipped == fork.deltas_shipped


def test_sync_engine_parallel_warm_matches_serial_warm():
    graph = sssp_graph(60, seed=7)
    table = dict(sssp.static_records(graph))
    job = sssp.build_imr_job(state_path=STATE, static_path=STATIC,
                             output_path=OUT, threshold=0.0)
    cold = run_local(job, sssp.initial_state(graph, 0), {STATIC: table},
                     num_pairs=4)
    delta = sssp.churn_delta(table, insert=2, delete=2, seed=9)
    serial = run_incremental_local(job, "sssp", delta, cold.state,
                                   {STATIC: table}, num_pairs=4, source=0)
    par = run_incremental_parallel(job, "sssp", delta, cold.state,
                                   {STATIC: table}, num_pairs=4,
                                   num_workers=2, source=0)
    assert dict(par.state) == dict(serial.state)
    # And both sit on the cold-rerun fixpoint.
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS["sssp"])
    ref = run_local(job, [(u, 0.0 if u == 0 else math.inf) for u in mutated],
                    {STATIC: mutated}, num_pairs=4)
    assert dict(par.state) == dict(ref.state)
