"""Unit tests for the §3.4.2 migration policy (pure decision logic)."""

import pytest

from repro.cluster import heterogeneous_cluster
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime, LoadBalanceConfig
from repro.imapreduce.runtime import _GenContext, _Checkpoint
from repro.simulation import Engine, Store


def make_runtime(threshold=0.5, speeds=(1.0, 1.0, 1.0, 1.0)):
    engine = Engine()
    cluster = heterogeneous_cluster(engine, list(speeds))
    dfs = DFS(cluster, replication=2)
    runtime = IMapReduceRuntime(
        cluster, dfs,
        load_balance=LoadBalanceConfig(enabled=True, deviation_threshold=threshold),
    )
    return runtime, cluster


def make_ctx(runtime, assignment):
    return _GenContext(
        runtime=runtime,
        job=None,
        num_pairs=len(assignment),
        assignment=dict(assignment),
        start_iter=0,
        checkpoint=_Checkpoint(1, "/x"),
        map_boxes=[],
        reduce_boxes=[],
        master_box=Store(runtime.engine),
        aux_map_boxes=[],
        aux_reduce_boxes=[],
        accounts={},
    )


ASSIGNMENT = {0: "hnode0", 1: "hnode1", 2: "hnode2", 3: "hnode3"}


def reports(times):
    return {p: (None, t) for p, t in times.items()}


def test_migrates_clear_straggler():
    runtime, _ = make_runtime()
    ctx = make_ctx(runtime, ASSIGNMENT)
    plan = runtime._plan_migration(ctx, reports({0: 1.0, 1: 1.0, 2: 1.1, 3: 4.0}))
    assert plan is not None
    assert plan["from"] == "hnode3"
    assert plan["pair"] == 3
    assert plan["to"] in ("hnode0", "hnode1")
    assert plan["deviation"] > 0.5


def test_no_migration_when_balanced():
    runtime, _ = make_runtime()
    ctx = make_ctx(runtime, ASSIGNMENT)
    assert runtime._plan_migration(
        ctx, reports({0: 1.0, 1: 1.05, 2: 0.98, 3: 1.02})
    ) is None


def test_threshold_controls_sensitivity():
    times = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.4}
    strict, _ = make_runtime(threshold=0.2)
    loose, _ = make_runtime(threshold=1.0)
    assert strict._plan_migration(make_ctx(strict, ASSIGNMENT), reports(times)) is not None
    assert loose._plan_migration(make_ctx(loose, ASSIGNMENT), reports(times)) is None


def test_average_excludes_longest_and_shortest():
    """The paper's trimmed mean: one extreme fast worker must not drag
    the average down and trigger spurious migrations."""
    runtime, _ = make_runtime(threshold=0.5)
    ctx = make_ctx(runtime, ASSIGNMENT)
    # Times 0.1 / 1.0 / 1.0 / 1.3: trimmed avg = 1.0; deviation 0.3 < 0.5.
    assert runtime._plan_migration(
        ctx, reports({0: 0.1, 1: 1.0, 2: 1.0, 3: 1.3})
    ) is None


def test_picks_slowest_pair_on_slowest_worker():
    runtime, _ = make_runtime()
    assignment = {0: "hnode0", 1: "hnode0", 2: "hnode1", 3: "hnode2", 4: "hnode3", 5: "hnode3"}
    ctx = make_ctx(runtime, assignment)
    plan = runtime._plan_migration(
        ctx, reports({0: 1.0, 1: 1.1, 2: 1.0, 3: 1.0, 4: 3.0, 5: 4.0})
    )
    assert plan is not None
    assert plan["from"] == "hnode3"
    assert plan["pair"] == 5  # the slower of the straggler's two pairs


def test_needs_at_least_three_workers():
    runtime, _ = make_runtime(speeds=(1.0, 0.2))
    ctx = make_ctx(runtime, {0: "hnode0", 1: "hnode1"})
    assert runtime._plan_migration(ctx, reports({0: 1.0, 1: 5.0})) is None
