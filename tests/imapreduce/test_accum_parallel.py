"""Multiprocess accumulative runs: the serial/parallel determinism
contract per mode, across start methods and worker counts.

The engine promises more than tolerance-level agreement: for a given
mode the parallel mesh replays the serial executor *record for record,
floats included*, at any worker count and start method, because both
drive the same :class:`AccumPair` sequence and the coordinator folds
the pending mass pair-ascending exactly like the serial loop.  These
tests pin that contract — it is what lets the chaos oracle use the
serial run as the reference for parallel runs.
"""

import pytest

from repro.algorithms import pagerank, sssp
from repro.common import ConfigError
from repro.graph import pagerank_graph, sssp_graph
from repro.imapreduce import run_accum_local, run_accum_parallel

STATE, STATIC, OUT = "/dfs/deltas", "/dfs/static", "/dfs/out"


def _case(name, n=60, seed=11):
    if name == "sssp":
        graph = sssp_graph(n, seed=seed)
        job = sssp.build_accum_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_rounds=10_000,
        )
        return job, sssp.accum_initial_deltas(0), {
            STATIC: sssp.static_records(graph)
        }
    graph = pagerank_graph(n, seed=seed)
    job = pagerank.build_accum_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        threshold=1e-9, max_rounds=100_000,
    )
    return job, pagerank.accum_initial_deltas(n, pagerank.DAMPING), {
        STATIC: pagerank.static_records(graph)
    }


@pytest.mark.parametrize("workload", ["sssp", "pagerank"])
@pytest.mark.parametrize("mode", ["sync", "async"])
def test_parallel_replays_serial_bit_for_bit(workload, mode):
    job, deltas, static = _case(workload)
    serial = run_accum_local(job, deltas, static, num_pairs=4, mode=mode,
                             keep_trace=True)
    par = run_accum_parallel(job, deltas, static, num_pairs=4,
                             num_workers=2, mode=mode, keep_trace=True)
    assert par.state == serial.state  # floats included, no tolerance
    assert par.rounds == serial.rounds
    assert par.terminated_by == serial.terminated_by
    assert par.pending_mass == serial.pending_mass
    assert par.deltas_shipped == serial.deltas_shipped
    assert par.updates_processed == serial.updates_processed
    assert par.deltas_emitted == serial.deltas_emitted
    assert [row["pending_mass"] for row in par.trace] == \
        [row["pending_mass"] for row in serial.trace]


@pytest.mark.parametrize("num_workers", [1, 3])
def test_worker_count_is_invisible(num_workers):
    job, deltas, static = _case("pagerank")
    serial = run_accum_local(job, deltas, static, num_pairs=4, mode="async")
    par = run_accum_parallel(job, deltas, static, num_pairs=4,
                             num_workers=num_workers, mode="async")
    assert par.state == serial.state
    assert par.rounds == serial.rounds


@pytest.mark.parametrize("workload", ["sssp", "pagerank"])
def test_spawn_matches_fork(workload):
    """The pinned-seed parity CI leg's contract: both start methods
    produce the identical run (config blobs, jobs and delta frames all
    survive the spawn machinery)."""
    job, deltas, static = _case(workload)
    fork = run_accum_parallel(job, deltas, static, num_pairs=4,
                              num_workers=2, mode="async",
                              start_method="fork")
    spawn = run_accum_parallel(job, deltas, static, num_pairs=4,
                               num_workers=2, mode="async",
                               start_method="spawn")
    assert spawn.state == fork.state
    assert spawn.rounds == fork.rounds
    assert spawn.deltas_shipped == fork.deltas_shipped


def test_sparse_async_run_uses_manifests():
    """sssp deltas start at a single source: most peer pairs see no
    traffic most rounds, so the skip-empty exchange must ship
    ``_NO_PAYLOAD`` manifests instead of empty data frames."""
    job, deltas, static = _case("sssp")
    par = run_accum_parallel(job, deltas, static, num_pairs=4,
                             num_workers=2, mode="async")
    assert par.counter("manifest_frames") > 0
    assert par.counter("records_sent") > 0


def test_async_ships_fewer_mesh_records_than_sync():
    job, deltas, static = _case("pagerank", n=200)
    sync = run_accum_parallel(job, deltas, static, num_pairs=4,
                              num_workers=2, mode="sync")
    async_ = run_accum_parallel(job, deltas, static, num_pairs=4,
                                num_workers=2, mode="async")
    assert async_.deltas_shipped < sync.deltas_shipped
    assert async_.counter("records_sent") < sync.counter("records_sent")


def test_worker_stats_expose_delta_phases():
    job, deltas, static = _case("pagerank")
    par = run_accum_parallel(job, deltas, static, num_pairs=4,
                             num_workers=2, mode="async")
    assert par.num_workers == 2
    for stats in par.worker_stats:
        phases = stats["phase_seconds"]
        assert "schedule" in phases and "delta" in phases
        assert stats["updates_processed"] >= 0
    assert par.counter("updates_processed") == par.updates_processed


def test_bad_mode_rejected_before_spawning():
    job, deltas, static = _case("sssp")
    with pytest.raises(ConfigError, match="mode"):
        run_accum_parallel(job, deltas, static, mode="eventual")


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
