"""Property tests for the durable checkpoint spool (§3.4).

The spool format *is* the wire format — the exact protocol-5 frame the
data plane ships, length-prefixed onto disk — so the identity to prove
is encode→fsync→decode round-trips bit-exactly for both payload shapes
(record lists and columnar ``(keys, values)`` arrays), and that every
flavor of torn write is *detected* and falls back to the previous
committed manifest instead of restoring garbage.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imapreduce import CheckpointError, CheckpointStore
from repro.imapreduce.columnar import decode_columnar, encode_columnar
from repro.imapreduce.parallel import _load_restore

# Values exercise the float edge cases a distance fold can produce.
_floats = st.floats(allow_nan=False, allow_infinity=True, width=64)
_records = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**6), _floats),
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(pairs=st.dictionaries(st.integers(0, 7), _records, max_size=6),
       iteration=st.integers(0, 999), worker=st.integers(0, 31))
def test_record_payload_round_trip_identity(tmp_path_factory, pairs, iteration, worker):
    store = CheckpointStore(str(tmp_path_factory.mktemp("spool")))
    payload = {"path": "record", "pairs": pairs}
    entry = store.write(0, iteration, worker, payload)
    got = store.read_payload(entry)
    assert got == payload  # bit-exact: == on floats, not approx
    assert entry["bytes"] == os.path.getsize(os.path.join(store.root, entry["file"]))


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(0, 10**6), max_size=30, unique=True),
    width=st.sampled_from([0, 3]),
    seed=st.integers(0, 2**31),
)
def test_columnar_payload_round_trip_identity(tmp_path_factory, keys, width, seed):
    """The out-of-band numpy buffers survive the disk hop bit-exactly
    and come back *writable* (restored workers mutate state in place)."""
    rng = np.random.default_rng(seed)
    shape = (len(keys),) if width == 0 else (len(keys), width)
    records = [
        (k, v if width == 0 else list(v))
        for k, v in zip(sorted(keys), rng.standard_normal(shape))
    ]
    owned, values = encode_columnar(records, "float64", width)
    store = CheckpointStore(str(tmp_path_factory.mktemp("spool")))
    entry = store.write(1, 5, 0, {"path": "kernel", "pairs": {0: (owned, values)}})
    got = store.read_payload(entry)
    rk, rv = got["pairs"][0]
    assert rk.dtype == owned.dtype and rv.dtype == values.dtype
    np.testing.assert_array_equal(rk, owned)
    np.testing.assert_array_equal(rv, values)  # exact, not allclose
    assert rk.flags.writeable and rv.flags.writeable
    rv[:] = 0.0  # restored workers mutate state in place
    assert len(decode_columnar(rk, rv)) == len(records)


@pytest.mark.parametrize("corruption", ["truncate", "flip", "unlink", "lenprefix"])
def test_torn_spool_file_detected(tmp_path, corruption):
    store = CheckpointStore(str(tmp_path))
    entry = store.write(0, 3, 0, {"path": "record", "pairs": {0: [(1, 2.0)]}})
    path = os.path.join(store.root, entry["file"])
    if corruption == "truncate":
        with open(path, "r+b") as fh:
            fh.truncate(entry["bytes"] // 2)
    elif corruption == "flip":
        raw = bytearray(open(path, "rb").read())
        raw[-1] ^= 0xFF
        open(path, "wb").write(raw)
    elif corruption == "unlink":
        os.unlink(path)
    else:  # a length prefix pointing past the end of the file
        raw = bytearray(open(path, "rb").read())
        raw[:8] = (2**40).to_bytes(8, "big")
        open(path, "wb").write(raw)
    with pytest.raises(CheckpointError):
        store.read_payload(entry)


def test_restore_falls_back_to_previous_committed_checkpoint(tmp_path):
    """A torn newest checkpoint must not lose the run: ``_load_restore``
    walks back to the previous manifest whose files still validate."""
    store = CheckpointStore(str(tmp_path))
    old = store.write(0, 1, 0, {"path": "record", "pairs": {0: [(7, 1.5)], 1: []}})
    store.commit(1, 0, [old])
    new = store.write(0, 3, 0, {"path": "record", "pairs": {0: [(7, 9.5)], 1: []}})
    store.commit(3, 0, [new])
    # kill -9 after the rename but with a dirty page lost: truncate.
    with open(os.path.join(store.root, new["file"]), "r+b") as fh:
        fh.truncate(10)
    restore = _load_restore(store, num_pairs=2, columnar=False)
    assert restore is not None
    iteration, pairs = restore
    assert iteration == 1
    assert pairs == {0: [(7, 1.5)], 1: []}


def test_restore_rejects_incomplete_pair_coverage(tmp_path):
    """A manifest missing a pair (reassignment bug, lost file) is not a
    restore point."""
    store = CheckpointStore(str(tmp_path))
    entry = store.write(0, 2, 0, {"path": "record", "pairs": {0: [(1, 1.0)]}})
    store.commit(2, 0, [entry])
    assert _load_restore(store, num_pairs=2, columnar=False) is None
    assert _load_restore(store, num_pairs=1, columnar=False) is not None


def test_restore_rejects_wrong_executor_path(tmp_path):
    """A record checkpoint cannot restore a kernel run and vice versa."""
    store = CheckpointStore(str(tmp_path))
    entry = store.write(0, 0, 0, {"path": "record", "pairs": {0: []}})
    store.commit(0, 0, [entry])
    assert _load_restore(store, num_pairs=1, columnar=True) is None


def test_manifest_commit_is_atomic_and_torn_manifest_skipped(tmp_path):
    store = CheckpointStore(str(tmp_path))
    entry = store.write(0, 1, 0, {"path": "record", "pairs": {0: [(1, 1.0)]}})
    store.commit(1, 0, [entry])
    # A torn manifest for a newer iteration: invalid JSON on disk.
    with open(os.path.join(store.root, "manifest-i000003.json"), "w") as fh:
        fh.write('{"iteration": 3, "entries": [')
    manifests = store.manifests()
    assert [m["iteration"] for m in manifests] == [1]
    assert json.loads(json.dumps(manifests[0]))  # committed one is valid JSON


# ------------------------------------------------------------- retention --
def _committed_iteration(store, iteration, workers=2):
    entries = [
        store.write(0, iteration, w,
                    {"path": "record", "pairs": {w: [(w, float(iteration))]}})
        for w in range(workers)
    ]
    store.commit(iteration, 0, entries)
    return entries


def test_gc_prunes_stale_spools_keeps_live_manifest(tmp_path):
    """Retention: after ``gc(keep=2)`` only the two newest manifests and
    the spool files they reference survive — and the survivors still
    restore (every live payload readable, digests intact)."""
    store = CheckpointStore(str(tmp_path))
    for iteration in range(5):
        _committed_iteration(store, iteration)
    # An orphan tmp file from a torn write must also be swept.
    orphan = os.path.join(store.root, "ckpt-g000-i000099-w000.bin.tmp.1234")
    with open(orphan, "w") as fh:
        fh.write("torn")
    before = set(os.listdir(store.root))
    stats = store.gc(keep=2)
    after = set(os.listdir(store.root))

    assert [m["iteration"] for m in store.manifests()] == [4, 3]
    assert stats["kept_manifests"] == 2
    assert stats["pruned_manifests"] == 3
    assert stats["pruned_files"] + stats["pruned_manifests"] == \
        len(before) - len(after)
    assert stats["pruned_bytes"] > 0
    assert not os.path.exists(orphan)
    # No spool file from a pruned iteration remains…
    for name in after:
        if name.startswith("ckpt-"):
            assert any(f"i00000{i}" in name for i in (3, 4)), name
    # …and every surviving manifest still restores its payloads.
    for manifest in store.manifests():
        for entry in manifest["entries"]:
            assert store.read_payload(entry)["path"] == "record"


def test_gc_keep_all_is_noop(tmp_path):
    store = CheckpointStore(str(tmp_path))
    for iteration in range(3):
        _committed_iteration(store, iteration, workers=1)
    before = sorted(os.listdir(store.root))
    stats = store.gc(keep=10)
    assert sorted(os.listdir(store.root)) == before
    assert stats["pruned_files"] == 0 and stats["pruned_manifests"] == 0


def test_gc_rejects_nonpositive_keep(tmp_path):
    store = CheckpointStore(str(tmp_path))
    with pytest.raises(ValueError):
        store.gc(keep=0)


def test_gc_empty_store(tmp_path):
    stats = CheckpointStore(str(tmp_path)).gc(keep=1)
    assert stats["kept_manifests"] == 0 and stats["pruned_files"] == 0
