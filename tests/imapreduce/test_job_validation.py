"""Validation tests for IterativeJob / Phase configuration."""

import pytest

from repro.common import IterKeys, JobConf
from repro.common.errors import ConfigError
from repro.imapreduce import IterativeJob, Phase


def noop_map(key, state, static, ctx):
    ctx.emit(key, state)


def noop_reduce(key, values, ctx):
    ctx.emit(key, values[0])


def conf(**kw):
    c = JobConf({IterKeys.STATE_PATH: "/s"})
    for k, v in kw.items():
        c.set(k, v)
    return c


def test_phase_rejects_unknown_mapping():
    with pytest.raises(ConfigError, match="mapping"):
        Phase(map_fn=noop_map, reduce_fn=noop_reduce, mapping="one2many")


def test_job_needs_phases():
    with pytest.raises(ConfigError, match="phase"):
        IterativeJob(name="x", phases=[], output_path="/o", conf=conf())


def test_job_needs_termination_condition():
    with pytest.raises(ConfigError, match="terminate"):
        IterativeJob(
            name="x",
            phases=[Phase(map_fn=noop_map, reduce_fn=noop_reduce)],
            output_path="/o",
            conf=conf(),
        )


def test_threshold_requires_distance_fn():
    c = conf()
    c.set_float(IterKeys.DIST_THRESH, 0.1)
    with pytest.raises(ConfigError, match="distance"):
        IterativeJob(
            name="x",
            phases=[Phase(map_fn=noop_map, reduce_fn=noop_reduce)],
            output_path="/o",
            conf=c,
        )


def test_num_pairs_must_be_positive():
    c = conf()
    c.set_int(IterKeys.MAX_ITER, 1)
    with pytest.raises(ConfigError, match="num_pairs"):
        IterativeJob(
            name="x",
            phases=[Phase(map_fn=noop_map, reduce_fn=noop_reduce)],
            output_path="/o",
            conf=c,
            num_pairs=0,
        )


def test_single_phase_builder_reads_conf():
    c = conf()
    c.set(IterKeys.STATIC_PATH, "/static")
    c.set(IterKeys.MAPPING, "one2all")
    c.set_int(IterKeys.MAX_ITER, 7)
    job = IterativeJob.single_phase(
        "j", noop_map, noop_reduce, conf=c, output_path="/o"
    )
    assert job.phases[0].static_path == "/static"
    assert job.phases[0].mapping == "one2all"
    assert job.max_iterations == 7
    assert job.synchronous  # one2all forces sync
    assert job.state_path == "/s"


def test_sync_flag_respected():
    c = conf()
    c.set_int(IterKeys.MAX_ITER, 1)
    c.set_boolean(IterKeys.SYNC, True)
    job = IterativeJob.single_phase("j", noop_map, noop_reduce, conf=c, output_path="/o")
    assert job.synchronous


def test_defaults():
    c = conf()
    c.set_int(IterKeys.MAX_ITER, 1)
    job = IterativeJob.single_phase("j", noop_map, noop_reduce, conf=c, output_path="/o")
    assert not job.synchronous
    assert job.checkpoint_interval == 3
    assert job.buffer_records == 2048
    assert job.threshold is None
    assert job.part_path(2) == "/o/part-00002"


def test_missing_state_path_raises_on_access():
    job = IterativeJob.single_phase(
        "j", noop_map, noop_reduce,
        conf=JobConf({IterKeys.MAX_ITER: 1}),
        output_path="/o",
    )
    with pytest.raises(ConfigError):
        _ = job.state_path


def test_add_successor_appends_phase():
    c = conf()
    c.set_int(IterKeys.MAX_ITER, 1)
    job = IterativeJob.single_phase("j", noop_map, noop_reduce, conf=c, output_path="/o")
    job.add_successor(Phase(map_fn=noop_map, reduce_fn=noop_reduce, name="second"))
    assert len(job.phases) == 2
    assert job.phases[1].name == "second"


def test_add_auxiliary_once():
    from repro.imapreduce import AuxPhase

    c = conf()
    c.set_int(IterKeys.MAX_ITER, 1)
    job = IterativeJob.single_phase("j", noop_map, noop_reduce, conf=c, output_path="/o")
    aux = AuxPhase(map_fn=lambda k, v, ctx: None, reduce_fn=lambda k, v, ctx: None)
    job.add_auxiliary(aux)
    assert job.aux is aux
    with pytest.raises(ConfigError, match="auxiliary"):
        job.add_auxiliary(aux)
