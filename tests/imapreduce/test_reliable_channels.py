"""Reliable delivery properties: dedup under duplication and reorder,
retransmission through loss and partitions.

The cross-pair mailbox traffic rides a stop-and-wait channel: lost
messages are retransmitted with backoff, and a receiver that already saw
a message (its *ack* was the thing that got lost) drops the repeat by
dedup key.  These tests pin the two halves separately: the mailbox's
dedup filter under adversarial delivery orders, and the cluster's
``reliable_transfer`` under loss windows and transient partitions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import FaultSchedule, local_cluster
from repro.imapreduce import IterationMailbox
from repro.simulation import Engine


# ---------------------------------------------------------------- dedup --
@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_mailbox_dedup_ignores_duplication_and_reorder(data):
    """However the wire duplicates and interleaves delivery attempts,
    the consumer observes each message exactly once and gathers exactly
    the clean run's records.

    The adversary respects the one guarantee stop-and-wait provides:
    within one sender's flow, *first* arrivals are ordered (a sender does
    not emit ``mapdone`` before its ``mapout`` was acknowledged).  Across
    senders any interleaving is possible, and late duplicates — created
    when the ack, not the message, was lost — may land anywhere after
    their first arrival, including after the flow's later messages.
    """
    num_maps = data.draw(st.integers(min_value=1, max_value=4))
    flows = {}
    for sender in range(num_maps):
        records = data.draw(
            st.lists(st.integers(), min_size=0, max_size=3), label=f"recs{sender}"
        )
        flows[sender] = [
            (("mapout", 0, sender, [(sender, r) for r in records]), ("mapout", sender)),
            (("mapdone", 0, sender), ("mapdone", sender)),
        ]
    total = sum(len(flow) for flow in flows.values())

    # Random cross-flow interleaving of first arrivals.
    arrivals = []
    cursors = {sender: 0 for sender in flows}
    while len(arrivals) < total:
        open_flows = [s for s in flows if cursors[s] < len(flows[s])]
        sender = data.draw(st.sampled_from(open_flows))
        arrivals.append(flows[sender][cursors[sender]])
        cursors[sender] += 1

    # Late duplicates: each lands strictly after its first arrival.
    final = list(arrivals)
    for attempt in arrivals:
        for _ in range(data.draw(st.integers(min_value=0, max_value=2))):
            first = final.index(attempt)
            pos = data.draw(st.integers(min_value=first + 1, max_value=len(final)))
            final.insert(pos, attempt)

    engine = Engine()
    box = IterationMailbox(engine)
    accepted = 0
    for message, key in final:
        accepted += box.deliver(message, dedup_key=key)
    assert accepted == total, "exactly one accept per distinct message"

    def consumer():
        out = yield from box.gather_map_outputs(0, num_maps)
        return out

    gathered = engine.run(engine.process(consumer()))
    expected = sorted(
        rec
        for flow in flows.values()
        for (message, _) in flow
        if message[0] == "mapout"
        for rec in message[3]
    )
    assert sorted(gathered) == expected


def test_early_arrivals_preserve_first_delivery_order():
    """Duplicates never reorder content: the consumer sees first-arrival
    order for messages of one iteration."""
    engine = Engine()
    box = IterationMailbox(engine)
    box.deliver(("mapout", 0, 0, [(0, "a")]), dedup_key="a")
    box.deliver(("mapout", 0, 1, [(1, "b")]), dedup_key="b")
    box.deliver(("mapout", 0, 0, [(0, "a")]), dedup_key="a")  # retransmit
    box.deliver(("mapdone", 0, 0), dedup_key="d0")
    box.deliver(("mapdone", 0, 1), dedup_key="d1")

    def consumer():
        return (yield from box.gather_map_outputs(0, 2))

    assert engine.run(engine.process(consumer())) == [(0, "a"), (1, "b")]


# ------------------------------------------------------- retransmission --
@settings(max_examples=20, deadline=None)
@given(
    loss=st.floats(min_value=0.0, max_value=0.6),
    net_seed=st.integers(min_value=0, max_value=2**31),
    nbytes=st.integers(min_value=1, max_value=1 << 20),
)
def test_reliable_transfer_always_lands_through_loss(loss, net_seed, nbytes):
    engine = Engine()
    cluster = local_cluster(engine, 2)
    FaultSchedule().lose(0.0, float("inf"), loss).arm(
        engine, cluster, net_seed=net_seed
    )

    def sender():
        ok = yield from cluster.reliable_transfer(
            cluster["node0"], cluster["node1"], nbytes
        )
        return ok

    assert engine.run(engine.process(sender())) is True


@settings(max_examples=20, deadline=None)
@given(
    heal=st.floats(min_value=0.5, max_value=20.0),
    net_seed=st.integers(min_value=0, max_value=2**31),
)
def test_reliable_transfer_waits_out_a_partition(heal, net_seed):
    """A transfer started inside a transient partition completes only
    after the window heals — never before, never not at all."""
    engine = Engine()
    cluster = local_cluster(engine, 3)
    FaultSchedule().partition(0.0, heal, ("node1",)).arm(
        engine, cluster, net_seed=net_seed
    )

    def sender():
        ok = yield from cluster.reliable_transfer(
            cluster["node0"], cluster["node1"], 4096
        )
        return ok, engine.now

    ok, finished = engine.run(engine.process(sender()))
    assert ok is True
    assert finished >= heal
