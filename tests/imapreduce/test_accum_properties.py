"""Property tests for the accumulative algebras (hypothesis).

The engine's core assumption is that ``⊕`` is a commutative monoid:
pending deltas are coalesced with ``⊕`` while queued
(:meth:`AccumPair.absorb`), applied in priority order rather than
arrival order, and split arbitrarily across rounds.  Each shipped
algebra therefore has to satisfy identity / commutativity /
associativity not just on the build-time samples but over its whole
state domain — and the *delta-composition* law the pending queue leans
on, ``s ⊕ (d₁ ⊕ d₂) = (s ⊕ d₁) ⊕ d₂``, has to hold so coalescing a
batch is indistinguishable from applying it delta by delta.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigError
from repro.imapreduce import MIN, SUM, Accumulator, AccumJob
from repro.imapreduce.accum import AccumPair

ALGEBRAS = {"sum": SUM, "min": MIN}

# SUM state space: dyadic rationals of bounded magnitude, so float
# addition is exact and the laws can be asserted with == instead of a
# tolerance that might mask a genuinely broken merge.
_dyadic = st.integers(min_value=-(2**20), max_value=2**20).map(
    lambda n: n / 1024.0
)
# MIN state space: finite floats plus the identity (∞) — sssp and
# components genuinely hold ∞ for unreached keys.
_min_values = st.one_of(
    st.just(math.inf),
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
)

_VALUES = {"sum": _dyadic, "min": _min_values}


def _values(name):
    return _VALUES[name]


@pytest.mark.parametrize("name", sorted(ALGEBRAS))
class TestAlgebraLaws:
    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_identity(self, name, data):
        acc = ALGEBRAS[name]
        x = data.draw(_values(name))
        assert acc.merge(x, acc.identity) == x
        assert acc.merge(acc.identity, x) == x

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_commutativity(self, name, data):
        acc = ALGEBRAS[name]
        a, b = data.draw(_values(name)), data.draw(_values(name))
        assert acc.merge(a, b) == acc.merge(b, a)

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_associativity(self, name, data):
        acc = ALGEBRAS[name]
        a = data.draw(_values(name))
        b = data.draw(_values(name))
        c = data.draw(_values(name))
        assert acc.merge(acc.merge(a, b), c) == acc.merge(a, acc.merge(b, c))

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_delta_composition(self, name, data):
        """Coalescing two queued deltas then merging once must equal
        merging them one at a time — the law absorb() relies on."""
        acc = ALGEBRAS[name]
        s = data.draw(_values(name))
        d1 = data.draw(_values(name))
        d2 = data.draw(_values(name))
        coalesced = acc.merge(s, acc.merge(d1, d2))
        one_by_one = acc.merge(acc.merge(s, d1), d2)
        assert coalesced == one_by_one

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_priority_zero_iff_noop(self, name, data):
        """The scheduler skips priority-0 deltas; that must be exactly
        the deltas whose merge would not move the state."""
        acc = ALGEBRAS[name]
        s = data.draw(_values(name))
        d = data.draw(_values(name))
        p = acc.priority(s, d)
        assert p >= 0.0
        assert (p == 0.0) == (acc.merge(s, d) == s)


@given(
    deltas=st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), _dyadic),
        max_size=40,
    ),
    splits=st.lists(st.integers(min_value=0, max_value=40), max_size=4),
)
@settings(max_examples=100, deadline=None)
def test_absorb_is_batch_split_invariant(deltas, splits):
    """Absorbing one big batch or the same records cut into arbitrary
    sub-batches yields the identical pending queue (keys and values) —
    the property that lets the mesh frame deltas however it likes."""
    whole = AccumPair(0, SUM, {})
    whole.absorb(deltas)
    cut = AccumPair(0, SUM, {})
    bounds = sorted(min(s, len(deltas)) for s in splits)
    prev = 0
    for b in bounds:
        cut.absorb(deltas[prev:b])
        prev = b
    cut.absorb(deltas[prev:])
    assert cut.pending == whole.pending


@given(
    deltas=st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), _min_values),
        max_size=40,
    ),
    seed=st.randoms(use_true_random=False),
)
@settings(max_examples=100, deadline=None)
def test_min_absorb_is_order_invariant(deltas, seed):
    """For ``min`` the pending queue is also permutation-invariant —
    the slack the simulated deferral schedule exploits."""
    ordered = AccumPair(0, MIN, {})
    ordered.absorb(deltas)
    shuffled = list(deltas)
    seed.shuffle(shuffled)
    permuted = AccumPair(0, MIN, {})
    permuted.absorb(shuffled)
    assert permuted.pending == ordered.pending


# ----------------------------------------------- deliberate-bug tests --
@pytest.mark.parametrize("bad,pattern", [
    # Averaging: commutative but not associative, and 0.0 is no identity.
    (Accumulator("mean", 0.0, lambda a, b: (a + b) / 2.0,
                 samples=(0.0, 1.0, 2.0, 4.0)),
     "not associative|not an identity"),
    # Subtraction: not commutative.
    (Accumulator("sub", 0.0, lambda a, b: a - b,
                 samples=(0.0, 1.0, 2.0, 3.0)),
     "not commutative|not an identity"),
    # max with the wrong identity.
    (Accumulator("max0", 1.0, max, samples=(0.0, 1.0, 2.0)),
     "not an identity"),
])
def test_broken_algebras_rejected_at_build(bad, pattern):
    """Self-test: every class of law violation is caught when the job
    is constructed, before a single delta flows."""
    from repro.common import IterKeys, JobConf

    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/dfs/deltas")
    conf.set_int(IterKeys.MAX_ITER, 5)
    with pytest.raises(ConfigError, match=pattern):
        AccumJob(name="broken", accumulator=bad,
                 update_fn=lambda *a: None, output_path="/dfs/out",
                 conf=conf)


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_float_mean_never_sneaks_past_validation(data):
    """hypothesis can't find a sample set that makes averaging look
    associative to the validator (the check uses a tight tolerance
    precisely so float noise can't blur a real violation)."""
    samples = tuple(
        data.draw(st.lists(_dyadic.filter(lambda x: x != 0.0), min_size=3,
                           max_size=6, unique=True))
    )
    mean = Accumulator("mean", 0.0, lambda a, b: (a + b) / 2.0,
                       samples=samples)
    with pytest.raises(ConfigError):
        mean.validate()
