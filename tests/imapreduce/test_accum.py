"""Accumulative (Maiter-mode) iteration: algebra validation, the serial
sync/async fixpoint equivalence, external references, and the counters
the bench gates rest on."""

import math

import numpy as np
import pytest

from repro.algorithms import components, pagerank, sssp
from repro.common import ConfigError
from repro.graph import pagerank_graph, sssp_graph
from repro.imapreduce import (
    MIN,
    SUM,
    Accumulator,
    AccumJob,
    run_accum_local,
    run_accum_simulated,
)
from repro.imapreduce.accum import check_mode

STATE, STATIC, OUT = "/dfs/deltas", "/dfs/static", "/dfs/out"


def _sssp_case(n=80, seed=3, **kwargs):
    graph = sssp_graph(n, seed=seed)
    job = sssp.build_accum_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_rounds=10_000, **kwargs,
    )
    return graph, job, sssp.accum_initial_deltas(0), {
        STATIC: sssp.static_records(graph)
    }


def _pagerank_case(n=80, seed=3, threshold=1e-10, **kwargs):
    graph = pagerank_graph(n, seed=seed)
    job = pagerank.build_accum_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        threshold=threshold, max_rounds=100_000, **kwargs,
    )
    return graph, job, pagerank.accum_initial_deltas(n, pagerank.DAMPING), {
        STATIC: pagerank.static_records(graph)
    }


def _components_case(n=80, seed=3, **kwargs):
    graph = sssp_graph(n, seed=seed)
    job = components.build_accum_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_rounds=10_000, **kwargs,
    )
    return graph, job, components.accum_initial_deltas(n), {
        STATIC: components.static_records(graph)
    }


# ------------------------------------------------------- algebra laws --
def test_shipped_algebras_validate():
    SUM.validate()
    MIN.validate()


def test_non_associative_merge_rejected_at_job_build():
    """The deliberate-bug self-test: a plausible-looking but
    non-associative merge (averaging) must be refused when the job is
    built, not discovered as a wrong fixpoint."""
    mean = Accumulator("mean", 0.0, lambda a, b: (a + b) / 2.0,
                       samples=(0.0, 1.0, 2.0, 4.0))
    with pytest.raises(ConfigError, match="not associative|not an identity"):
        AccumJob(name="bad", accumulator=mean, update_fn=lambda *a: None,
                 output_path=OUT, conf=_min_conf())


def test_non_commutative_merge_rejected():
    sub = Accumulator("sub", 0.0, lambda a, b: a - b,
                      samples=(0.0, 1.0, 2.0, 3.0))
    with pytest.raises(ConfigError, match="not commutative|not an identity"):
        sub.validate()


def test_wrong_identity_rejected():
    acc = Accumulator("sum1", 1.0, lambda a, b: a + b,
                      samples=(0.0, 1.0, 2.0))
    with pytest.raises(ConfigError, match="identity"):
        acc.validate()


def test_too_few_samples_rejected():
    acc = Accumulator("thin", 0.0, lambda a, b: a + b, samples=(0.0, 1.0))
    with pytest.raises(ConfigError, match="sample"):
        acc.validate()


def _min_conf():
    from repro.common import IterKeys, JobConf

    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, STATE)
    conf.set_int(IterKeys.MAX_ITER, 5)
    return conf


def test_job_requires_termination_condition():
    from repro.common import IterKeys, JobConf

    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, STATE)
    with pytest.raises(ConfigError, match="terminate"):
        AccumJob(name="forever", accumulator=MIN,
                 update_fn=lambda *a: None, output_path=OUT, conf=conf)


def test_top_fraction_bounds():
    for frac in (0.0, -0.5, 1.5):
        with pytest.raises(ConfigError, match="topfrac"):
            _sssp_case(top_fraction=frac)


def test_check_mode_rejects_unknown():
    check_mode("sync")
    check_mode("async")
    with pytest.raises(ConfigError, match="mode"):
        check_mode("eventual")


# ------------------------------------- fixpoint equivalence (serial) --
def test_sssp_async_bitexact_and_matches_dijkstra():
    graph, job, deltas, static = _sssp_case()
    sync = run_accum_local(job, deltas, static, num_pairs=4, mode="sync")
    async_ = run_accum_local(job, deltas, static, num_pairs=4, mode="async")
    assert sync.terminated_by == "progress"
    assert async_.terminated_by == "progress"
    # min fixpoint is unique: every schedule lands bit-identically.
    assert async_.state == sync.state
    ref = sssp.reference_exact(graph, 0)
    got = np.array([v for _k, v in sync.state])
    assert np.array_equal(got, ref)


def test_components_async_bitexact_and_matches_scipy():
    graph, job, deltas, static = _components_case()
    sync = run_accum_local(job, deltas, static, num_pairs=4, mode="sync")
    async_ = run_accum_local(job, deltas, static, num_pairs=4, mode="async")
    assert async_.state == sync.state
    ref = components.reference_components(graph)
    got = np.array([v for _k, v in sync.state])
    assert np.array_equal(got, ref)


def test_pagerank_async_within_threshold_tolerance():
    graph, job, deltas, static = _pagerank_case()
    sync = run_accum_local(job, deltas, static, num_pairs=4, mode="sync")
    async_ = run_accum_local(job, deltas, static, num_pairs=4, mode="async")
    assert sync.terminated_by == "progress"
    assert async_.terminated_by == "progress"
    # Unapplied mass m bounds the distance to the fixpoint by
    # m·d/(1−d); both runs stopped at m ≤ threshold, so they agree to
    # ~2× that bound (keys line up because both cover the key universe).
    bound = 2 * job.threshold * pagerank.DAMPING / (1 - pagerank.DAMPING)
    for (ka, va), (kb, vb) in zip(async_.state, sync.state):
        assert ka == kb
        assert abs(va - vb) <= bound + 1e-15
    ref = pagerank.reference_networkx(graph)
    got = np.array([v for _k, v in sync.state])
    assert np.allclose(got, ref, atol=1e-6)


def test_pagerank_accum_matches_classic_iterative_fixpoint():
    graph, job, deltas, static = _pagerank_case(threshold=1e-12)
    accum = run_accum_local(job, deltas, static, num_pairs=4, mode="async")
    ref = pagerank.reference_iterations(graph, 200)
    got = np.array([v for _k, v in accum.state])
    assert np.allclose(got, ref, atol=1e-8)


# ------------------------------------------------------- kernel twins --
@pytest.mark.parametrize("case,exact", [
    (_sssp_case, True), (_components_case, True), (_pagerank_case, False),
])
@pytest.mark.parametrize("mode", ["sync", "async"])
def test_kernel_twin_parity(case, exact, mode):
    """The columnar delta kernels replay the record path per mode."""
    _g, job, deltas, static = case()
    _g, kjob, _d, _s = case(use_kernel=True)
    assert kjob.kernel is not None
    rec = run_accum_local(job, deltas, static, num_pairs=4, mode=mode)
    ker = run_accum_local(kjob, deltas, static, num_pairs=4, mode=mode)
    assert ker.rounds == rec.rounds
    assert ker.deltas_shipped == rec.deltas_shipped
    if exact:
        assert ker.state == rec.state
    else:
        assert [k for k, _v in ker.state] == [k for k, _v in rec.state]
        assert np.allclose([v for _k, v in ker.state],
                           [v for _k, v in rec.state],
                           rtol=1e-9, atol=1e-12)


# ------------------------------------------------- counters and trace --
def test_async_ships_fewer_deltas_than_sync_pagerank():
    """The tentpole's headline property at unit scale: to the same
    threshold, the priority scheduler moves less data."""
    _g, job, deltas, static = _pagerank_case(n=200, threshold=1e-9)
    sync = run_accum_local(job, deltas, static, num_pairs=4, mode="sync")
    async_ = run_accum_local(job, deltas, static, num_pairs=4, mode="async")
    assert async_.deltas_shipped < sync.deltas_shipped
    assert async_.pending_mass <= job.threshold


def test_trace_is_cumulative_and_mass_terminates():
    _g, job, deltas, static = _pagerank_case()
    result = run_accum_local(job, deltas, static, num_pairs=4, mode="async",
                             keep_trace=True)
    assert len(result.trace) == result.rounds + 1  # plus termination row
    for prev, curr in zip(result.trace, result.trace[1:]):
        assert curr["round"] == prev["round"] + 1
        for key in ("updates", "emitted", "shipped"):
            assert curr[key] >= prev[key]
    assert result.trace[0]["pending_mass"] > job.threshold
    assert result.trace[-1]["pending_mass"] <= job.threshold
    assert result.trace[-1]["shipped"] == result.deltas_shipped


def test_maxrounds_termination():
    _g, job, deltas, static = _pagerank_case()
    from repro.common import IterKeys

    job.conf.set_int(IterKeys.MAX_ITER, 3)
    result = run_accum_local(job, deltas, static, num_pairs=4, mode="async")
    assert result.terminated_by == "maxrounds"
    assert result.rounds == 3
    assert not result.converged


# --------------------------------------------------- simulated backend --
def test_simulated_deferral_reaches_the_min_fixpoint():
    """Seeded delivery deferral reorders delta batches but never drops
    or duplicates them, so the (unique) min fixpoint still lands
    bit-exactly — the chaos harness's async coverage."""
    _g, job, deltas, static = _sssp_case()
    serial = run_accum_local(job, deltas, static, num_pairs=4, mode="sync")
    for seed in (0, 1, 17):
        sim = run_accum_simulated(job, deltas, static, num_pairs=4, seed=seed)
        assert sim.terminated_by == "progress"
        assert sim.state == serial.state


def test_simulated_is_seed_deterministic():
    _g, job, deltas, static = _pagerank_case()
    a = run_accum_simulated(job, deltas, static, num_pairs=4, seed=7,
                            keep_trace=True)
    b = run_accum_simulated(job, deltas, static, num_pairs=4, seed=7,
                            keep_trace=True)
    assert a.state == b.state
    assert a.trace == b.trace
    assert a.rounds == b.rounds


def test_simulated_bad_knobs_rejected():
    _g, job, deltas, static = _sssp_case()
    with pytest.raises(ValueError):
        run_accum_simulated(job, deltas, static, defer_probability=1.5)
    with pytest.raises(ValueError):
        run_accum_simulated(job, deltas, static, max_defer=0)


def test_state_covers_key_universe_at_identity():
    """Unreached keys appear in the output at the algebra's identity —
    matching the synchronous executors' full state records."""
    graph = sssp_graph(40, seed=5)
    # Cut every edge out of the source's component tail by pointing the
    # initial delta at a fresh job over a graph where node 0 reaches
    # only part of the graph; unreached nodes must still be reported.
    job = sssp.build_accum_job(state_path=STATE, static_path=STATIC,
                               output_path=OUT, max_rounds=10_000)
    result = run_accum_local(job, sssp.accum_initial_deltas(0),
                             {STATIC: sssp.static_records(graph)},
                             num_pairs=4, mode="async")
    assert len(result.state) == graph.num_nodes
    ref = sssp.reference_exact(graph, 0)
    for (k, v) in result.state:
        if math.isinf(ref[k]):
            assert math.isinf(v)
