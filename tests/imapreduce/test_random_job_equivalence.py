"""Property test: for randomly composed iterative jobs, the distributed
engine and the serial reference executor produce identical results.

The job family: the map applies a random arithmetic transform to the
state and scatters a share to a neighbouring key (so the shuffle is
non-trivial); the reduce folds with a random associative operation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import local_cluster
from repro.common import IterKeys, JobConf, ModPartitioner
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime, IterativeJob, run_local
from repro.simulation import Engine

TRANSFORMS = {
    "scale": lambda x, c: x * c,
    "shift": lambda x, c: x + c,
    "cap": lambda x, c: min(x, c),
}
FOLDS = {
    "sum": lambda values: sum(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
}


def make_job(n_keys, transform, const, fold, scatter, iterations):
    f = TRANSFORMS[transform]
    fold_fn = FOLDS[fold]

    def map_fn(key, state, static, ctx):
        value = f(state, const)
        ctx.emit(key, value)
        if scatter:
            ctx.emit((key + 1) % n_keys, value / 2.0)

    def reduce_fn(key, values, ctx):
        ctx.emit(key, fold_fn(values))

    conf = JobConf({IterKeys.STATE_PATH: "/r/state"})
    conf.set_int(IterKeys.MAX_ITER, iterations)
    return IterativeJob.single_phase(
        "random",
        map_fn,
        reduce_fn,
        conf=conf,
        output_path="/r/out",
        partitioner=ModPartitioner(),
    )


@settings(max_examples=15, deadline=None)
@given(
    n_keys=st.integers(min_value=4, max_value=12),
    transform=st.sampled_from(sorted(TRANSFORMS)),
    const=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    fold=st.sampled_from(sorted(FOLDS)),
    scatter=st.booleans(),
    iterations=st.integers(min_value=1, max_value=3),
    seed_values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=12, max_size=12,
    ),
)
def test_engine_matches_serial_reference(
    n_keys, transform, const, fold, scatter, iterations, seed_values
):
    state = [(k, seed_values[k]) for k in range(n_keys)]
    job = make_job(n_keys, transform, const, fold, scatter, iterations)

    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/r/state", state)
    result = IMapReduceRuntime(cluster, dfs).submit(job)

    def read():
        acc = []
        for path in result.final_paths:
            acc.extend((yield from dfs.read_all(path, "node0")))
        return acc

    distributed = sorted(engine.run(engine.process(read())))
    serial = run_local(job, state, num_pairs=4).state
    assert distributed == serial


# ------------------------------------------------- mode-matrix regression --
# Fixed-seed PageRank across the full runtime-mode matrix: asynchronous
# and synchronous execution (with and without the combiner) must converge
# to the same state the serial reference computes — §3.3's claim that
# asynchronous map execution changes the schedule, never the answer.

from itertools import product

from repro.algorithms import pagerank
from repro.graph.generators import pagerank_graph
from repro.testing import states_match

PR_SEED = 1234
PR_NODES = 16
PR_ITERATIONS = 4


def _run_pagerank_mode(graph, state, static, sync, combiner):
    job = pagerank.build_imr_job(
        PR_NODES,
        state_path="/pr/state",
        static_path="/pr/static",
        output_path="/pr/out",
        max_iterations=PR_ITERATIONS,
        num_pairs=3,
        sync=sync,
        combiner=combiner,
    )
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/pr/state", state)
    dfs.ingest("/pr/static", static)
    result = IMapReduceRuntime(cluster, dfs).submit(job)
    final = []
    for path in result.final_paths:
        final.extend(dfs.file_info(path).records)
    return job, sorted(final)


@pytest.mark.parametrize("sync,combiner", list(product((False, True), repeat=2)))
def test_pagerank_mode_matrix_matches_serial_reference(sync, combiner):
    graph = pagerank_graph(PR_NODES, seed=PR_SEED)
    state = pagerank.initial_state(graph)
    static = pagerank.static_records(graph)
    job, distributed = _run_pagerank_mode(graph, state, static, sync, combiner)
    serial = sorted(run_local(job, state, {"/pr/static": static}).state)
    assert states_match(distributed, serial) == []


def test_pagerank_async_and_sync_converge_identically():
    graph = pagerank_graph(PR_NODES, seed=PR_SEED)
    state = pagerank.initial_state(graph)
    static = pagerank.static_records(graph)
    states = {
        (sync, combiner): _run_pagerank_mode(graph, state, static, sync, combiner)[1]
        for sync, combiner in product((False, True), repeat=2)
    }
    baseline = states[(False, False)]
    for mode, other in states.items():
        assert states_match(other, baseline) == [], f"mode {mode} diverged"
