"""Property test: for randomly composed iterative jobs, the distributed
engine and the serial reference executor produce identical results.

The job family: the map applies a random arithmetic transform to the
state and scatters a share to a neighbouring key (so the shuffle is
non-trivial); the reduce folds with a random associative operation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import local_cluster
from repro.common import IterKeys, JobConf, ModPartitioner
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime, IterativeJob, run_local
from repro.simulation import Engine

TRANSFORMS = {
    "scale": lambda x, c: x * c,
    "shift": lambda x, c: x + c,
    "cap": lambda x, c: min(x, c),
}
FOLDS = {
    "sum": lambda values: sum(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
}


def make_job(n_keys, transform, const, fold, scatter, iterations):
    f = TRANSFORMS[transform]
    fold_fn = FOLDS[fold]

    def map_fn(key, state, static, ctx):
        value = f(state, const)
        ctx.emit(key, value)
        if scatter:
            ctx.emit((key + 1) % n_keys, value / 2.0)

    def reduce_fn(key, values, ctx):
        ctx.emit(key, fold_fn(values))

    conf = JobConf({IterKeys.STATE_PATH: "/r/state"})
    conf.set_int(IterKeys.MAX_ITER, iterations)
    return IterativeJob.single_phase(
        "random",
        map_fn,
        reduce_fn,
        conf=conf,
        output_path="/r/out",
        partitioner=ModPartitioner(),
    )


@settings(max_examples=15, deadline=None)
@given(
    n_keys=st.integers(min_value=4, max_value=12),
    transform=st.sampled_from(sorted(TRANSFORMS)),
    const=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    fold=st.sampled_from(sorted(FOLDS)),
    scatter=st.booleans(),
    iterations=st.integers(min_value=1, max_value=3),
    seed_values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=12, max_size=12,
    ),
)
def test_engine_matches_serial_reference(
    n_keys, transform, const, fold, scatter, iterations, seed_values
):
    state = [(k, seed_values[k]) for k in range(n_keys)]
    job = make_job(n_keys, transform, const, fold, scatter, iterations)

    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/r/state", state)
    result = IMapReduceRuntime(cluster, dfs).submit(job)

    def read():
        acc = []
        for path in result.final_paths:
            acc.extend((yield from dfs.read_all(path, "node0")))
        return acc

    distributed = sorted(engine.run(engine.process(read())))
    serial = run_local(job, state, num_pairs=4).state
    assert distributed == serial
