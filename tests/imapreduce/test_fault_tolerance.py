"""Fault-tolerance tests: checkpoint + rollback recovery (§3.4.1)."""

import pytest

from repro.cluster import FaultSchedule, local_cluster
from repro.common import IterKeys, JobConf
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime, IterativeJob
from repro.simulation import Engine

N_KEYS = 12


def decay_map(key, state, static, ctx):
    ctx.emit(key, state * static)


def identity_reduce(key, values, ctx):
    ctx.emit(key, values[0])


def make_job(max_iter, checkpoint_interval=2):
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/in/state")
    conf.set(IterKeys.STATIC_PATH, "/in/static")
    conf.set_int(IterKeys.MAX_ITER, max_iter)
    conf.set_int(IterKeys.CHECKPOINT_INTERVAL, checkpoint_interval)
    return IterativeJob.single_phase(
        "decay",
        decay_map,
        identity_reduce,
        conf=conf,
        output_path="/out/decay",
    )


def setup(fail_at=None, fail_node="node1", nodes=4):
    engine = Engine()
    cluster = local_cluster(engine, nodes)
    dfs = DFS(cluster, block_size=4096, replication=2)
    dfs.ingest("/in/state", [(i, 1024.0) for i in range(N_KEYS)])
    dfs.ingest("/in/static", [(i, 0.5) for i in range(N_KEYS)])
    if fail_at is not None:
        FaultSchedule().fail_at(fail_at, fail_node).arm(engine, cluster)
    return engine, cluster, dfs, IMapReduceRuntime(cluster, dfs)


def clean_run_timing(max_iter=6):
    """Failure-free timings used to aim the fault injections."""
    _e, _c, _d, rt = setup()
    metrics = rt.submit(make_job(max_iter)).metrics
    mid = (metrics.iterations[0].end + metrics.end) / 2.0
    return mid, metrics.total_time


MID_RUN, CLEAN_TOTAL = (None, None)


def mid_run_time():
    global MID_RUN, CLEAN_TOTAL
    if MID_RUN is None:
        MID_RUN, CLEAN_TOTAL = clean_run_timing()
    return MID_RUN


def read_final(engine, dfs, paths, reader="node0"):
    def body():
        acc = []
        for path in paths:
            acc.extend((yield from dfs.read_all(path, reader)))
        return acc

    return engine.run(engine.process(body()))


def expected_state(iters):
    return {i: 1024.0 * (0.5**iters) for i in range(N_KEYS)}


def test_failure_free_baseline():
    engine, _c, dfs, runtime = setup()
    result = runtime.submit(make_job(6))
    assert result.recoveries == 0
    assert dict(read_final(engine, dfs, result.final_paths)) == expected_state(6)


def test_worker_failure_mid_run_recovers_exact_result():
    baseline_engine, _c, baseline_dfs, baseline_rt = setup()
    baseline = baseline_rt.submit(make_job(6))
    baseline_state = dict(
        read_final(baseline_engine, baseline_dfs, baseline.final_paths)
    )

    # Fail a worker mid-computation (after setup, during the iterations).
    engine, cluster, dfs, runtime = setup(fail_at=mid_run_time())
    result = runtime.submit(make_job(6))
    assert result.recoveries >= 1
    state = dict(read_final(engine, dfs, result.final_paths, reader="node0"))
    assert state == baseline_state == expected_state(6)


def test_recovery_takes_longer_than_failure_free():
    _e1, _c1, _d1, rt1 = setup()
    clean = rt1.submit(make_job(6))
    _e2, _c2, _d2, rt2 = setup(fail_at=mid_run_time())
    failed = rt2.submit(make_job(6))
    assert failed.metrics.total_time > clean.metrics.total_time


def test_failed_workers_pairs_are_reassigned():
    engine, cluster, dfs, runtime = setup(fail_at=mid_run_time())
    result = runtime.submit(make_job(6))
    # The final output exists and is complete despite the dead worker.
    assert dict(read_final(engine, dfs, result.final_paths)) == expected_state(6)
    assert cluster["node1"].failed


def test_checkpoint_files_pruned_to_latest():
    _e, _c, dfs, runtime = setup()
    runtime.submit(make_job(6, checkpoint_interval=2))
    state_dirs = {
        f.rsplit("/", 1)[0] for f in dfs.list_files() if "/state-" in f
    }
    # Only the newest complete checkpoint (and possibly the final one) remain.
    assert len(state_dirs) <= 2


def test_early_failure_during_first_iterations():
    engine, _c, dfs, runtime = setup(fail_at=mid_run_time() * 0.7)
    result = runtime.submit(make_job(4))
    assert dict(read_final(engine, dfs, result.final_paths)) == expected_state(4)


def test_two_failures_sequential():
    engine, cluster, dfs, runtime = setup(fail_at=mid_run_time())
    FaultSchedule().fail_at(mid_run_time() * 1.6, "node2").arm(engine, cluster)
    result = runtime.submit(make_job(6))
    assert result.recoveries >= 1
    assert dict(read_final(engine, dfs, result.final_paths)) == expected_state(6)
