"""Unit tests for the iteration-tagged mailboxes."""

import pytest

from repro.imapreduce import IterationMailbox, StopIteration_
from repro.simulation import Engine


def run(engine, gen):
    return engine.run(engine.process(gen))


def test_map_outputs_gather_waits_for_all_done_markers():
    engine = Engine()
    box = IterationMailbox(engine)
    box.put(("mapout", 0, 0, [(1, "a")]))
    box.put(("mapdone", 0, 0))
    box.put(("mapdone", 0, 1))

    def consumer():
        return (yield from box.gather_map_outputs(0, 2))

    got = run(engine, consumer())
    assert got == [(1, "a")]


def test_early_messages_for_later_iteration_are_buffered():
    engine = Engine()
    box = IterationMailbox(engine)
    # Iteration 1 traffic arrives before iteration 0 completes.
    box.put(("mapout", 1, 0, [(9, "late")]))
    box.put(("mapdone", 1, 0))
    box.put(("mapdone", 0, 0))

    def consumer():
        first = yield from box.gather_map_outputs(0, 1)
        second = yield from box.gather_map_outputs(1, 1)
        return first, second

    first, second = run(engine, consumer())
    assert first == []
    assert second == [(9, "late")]


def test_state_chunks_gather_until_last_from_each_sender():
    engine = Engine()
    box = IterationMailbox(engine)
    box.put(("state", 3, 0, [1], False))
    box.put(("state", 3, 0, [2], True))

    def consumer():
        return (yield from box.gather_state_chunks(3, 1))

    assert run(engine, consumer()) == [[1], [2]]


def test_state_chunks_multiple_senders():
    engine = Engine()
    box = IterationMailbox(engine)
    box.put(("state", 0, 1, ["b"], True))
    box.put(("state", 0, 0, ["a"], True))

    def consumer():
        return (yield from box.gather_state_chunks(0, 2))

    assert run(engine, consumer()) == [["b"], ["a"]]


def test_stop_sentinel_raises():
    engine = Engine()
    box = IterationMailbox(engine)
    box.stop()

    def consumer():
        try:
            yield from box.gather_map_outputs(0, 1)
        except StopIteration_:
            return "stopped"
        return "not stopped"

    assert run(engine, consumer()) == "stopped"


def test_stop_is_sticky():
    engine = Engine()
    box = IterationMailbox(engine)
    box.stop()

    def consumer():
        outcomes = []
        for _ in range(2):
            try:
                yield from box.gather_map_outputs(0, 1)
                outcomes.append("data")
            except StopIteration_:
                outcomes.append("stopped")
        return outcomes

    assert run(engine, consumer()) == ["stopped", "stopped"]


def test_control_tokens():
    engine = Engine()
    box = IterationMailbox(engine)
    box.put(("proceed", 4))

    def consumer():
        yield from box.wait_control("proceed", 4)
        return "ok"

    assert run(engine, consumer()) == "ok"


def test_blocking_until_message_arrives():
    engine = Engine()
    box = IterationMailbox(engine)
    times = []

    def consumer():
        yield from box.wait_control("sync", 0)
        times.append(engine.now)

    def producer():
        yield engine.timeout(7.0)
        box.put(("sync", 0))

    engine.process(consumer())
    engine.process(producer())
    engine.run()
    assert times == [7.0]
