"""Stop-sentinel semantics: the final-iteration handshake."""

import pytest

from repro.imapreduce import IterationMailbox, StopIteration_
from repro.simulation import Engine


def run(engine, gen):
    return engine.run(engine.process(gen))


def test_stop_carries_final_iteration():
    engine = Engine()
    box = IterationMailbox(engine)
    box.stop(7)

    def consumer():
        try:
            yield from box.gather_map_outputs(8, 1)
        except StopIteration_ as exc:
            return exc.final_iteration

    assert run(engine, consumer()) == 7


def test_stop_without_final_iteration_is_none():
    engine = Engine()
    box = IterationMailbox(engine)
    box.stop()

    def consumer():
        try:
            yield from box.gather_map_outputs(0, 1)
        except StopIteration_ as exc:
            return ("none", exc.final_iteration)

    assert run(engine, consumer()) == ("none", None)


def test_final_iteration_sticky_across_gathers():
    engine = Engine()
    box = IterationMailbox(engine)
    box.stop(3)

    def consumer():
        results = []
        for _ in range(2):
            try:
                yield from box.gather_state_chunks(0, 1)
            except StopIteration_ as exc:
                results.append(exc.final_iteration)
        return results

    assert run(engine, consumer()) == [3, 3]


def test_data_before_stop_still_consumed():
    """Messages queued ahead of the sentinel are delivered first."""
    engine = Engine()
    box = IterationMailbox(engine)
    box.put(("mapout", 0, 0, [(1, "x")]))
    box.put(("mapdone", 0, 0))
    box.stop(0)

    def consumer():
        data = yield from box.gather_map_outputs(0, 1)
        try:
            yield from box.gather_map_outputs(1, 1)
        except StopIteration_ as exc:
            return data, exc.final_iteration

    data, final = run(engine, consumer())
    assert data == [(1, "x")]
    assert final == 0
