"""Stop-sentinel semantics: the final-iteration handshake."""

import pytest

from repro.imapreduce import IterationMailbox, StopIteration_
from repro.simulation import Engine


def run(engine, gen):
    return engine.run(engine.process(gen))


def test_stop_carries_final_iteration():
    engine = Engine()
    box = IterationMailbox(engine)
    box.stop(7)

    def consumer():
        try:
            yield from box.gather_map_outputs(8, 1)
        except StopIteration_ as exc:
            return exc.final_iteration

    assert run(engine, consumer()) == 7


def test_stop_without_final_iteration_is_none():
    engine = Engine()
    box = IterationMailbox(engine)
    box.stop()

    def consumer():
        try:
            yield from box.gather_map_outputs(0, 1)
        except StopIteration_ as exc:
            return ("none", exc.final_iteration)

    assert run(engine, consumer()) == ("none", None)


def test_final_iteration_sticky_across_gathers():
    engine = Engine()
    box = IterationMailbox(engine)
    box.stop(3)

    def consumer():
        results = []
        for _ in range(2):
            try:
                yield from box.gather_state_chunks(0, 1)
            except StopIteration_ as exc:
                results.append(exc.final_iteration)
        return results

    assert run(engine, consumer()) == [3, 3]


def test_data_before_stop_still_consumed():
    """Messages queued ahead of the sentinel are delivered first."""
    engine = Engine()
    box = IterationMailbox(engine)
    box.put(("mapout", 0, 0, [(1, "x")]))
    box.put(("mapdone", 0, 0))
    box.stop(0)

    def consumer():
        data = yield from box.gather_map_outputs(0, 1)
        try:
            yield from box.gather_map_outputs(1, 1)
        except StopIteration_ as exc:
            return data, exc.final_iteration

    data, final = run(engine, consumer())
    assert data == [(1, "x")]
    assert final == 0


def test_buffered_early_arrivals_survive_the_stop_sentinel():
    """Regression: messages that raced ahead of their gather — buffered
    as early arrivals for the final iteration — must still be consumed
    after the stop sentinel has been *seen and raised*.  The sticky stop
    used to win over the early-arrival buffer, dropping final-iteration
    data a run-ahead sender had already delivered."""
    engine = Engine()
    box = IterationMailbox(engine)
    # An async run-ahead sender delivered iteration 1 (the final
    # iteration) before the master's stop landed.
    box.put(("mapout", 1, 0, [(9, "late")]))
    box.put(("mapdone", 1, 0))
    box.stop(1)

    def consumer():
        # Gathering the stale iteration 0 buffers the run-ahead messages
        # and then hits the sentinel.
        try:
            yield from box.gather_map_outputs(0, 1)
        except StopIteration_ as exc:
            final = exc.final_iteration
        # The final-iteration dump must still see the buffered data,
        # even though the mailbox is now stopped.
        data = yield from box.gather_map_outputs(final, 1)
        return data, final

    data, final = run(engine, consumer())
    assert data == [(9, "late")]
    assert final == 1


def test_stop_still_raises_when_no_early_arrivals_match():
    """After the buffered final-iteration data is drained, further
    gathers hit the sticky sentinel again."""
    engine = Engine()
    box = IterationMailbox(engine)
    box.put(("mapout", 1, 0, [(9, "late")]))
    box.put(("mapdone", 1, 0))
    box.stop(1)

    def consumer():
        try:
            yield from box.gather_map_outputs(0, 1)
        except StopIteration_:
            pass
        yield from box.gather_map_outputs(1, 1)
        try:
            yield from box.gather_map_outputs(2, 1)
        except StopIteration_ as exc:
            return ("stopped-again", exc.final_iteration)
        return "not-stopped"

    assert run(engine, consumer()) == ("stopped-again", 1)
