"""Unit and protocol tests for the multiprocess backend's data plane.

Covers the wire layer introduced with the fast data plane: protocol-5
frames with out-of-band buffers (numpy state never copied into the
pickle stream, received writable), header-only manifest frames, the
skip-empty contract under a single-hot-pair workload where most workers
feed no peers, route-cache observability, immediate detection of a
worker that dies with exit code 0 before its final report, and the
phase-level profiler's counters.
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.common import IterKeys, JobConf
from repro.common.partition import ModPartitioner
from repro.graph.generators import sssp_graph
from repro.imapreduce import (
    IterativeJob,
    ParallelExecutionError,
    run_local,
    run_parallel,
)
from repro.imapreduce.workerproc import (
    PHASE_COUNTERS,
    encode_frame,
    read_frame,
)
from repro.testing.oracles import records_identical

STATE = "/dp/state"
OUT = "/dp/out"


# -------------------------------------------------------------- framing --
def _pipe_roundtrip(parts):
    recv_end, send_end = multiprocessing.Pipe(duplex=False)
    try:
        for part in parts:
            send_end.send_bytes(part)
        return read_frame(recv_end)
    finally:
        recv_end.close()
        send_end.close()


def test_frame_roundtrip_plain_payload():
    payload = [(3, 1, [(7, 0.5), (9, 1.25)])]
    parts, nbytes = encode_frame("shuffle", 4, 0, 2, payload)
    assert nbytes == sum(len(p) for p in parts)
    kind, iteration, phase, src, got, read_bytes = _pipe_roundtrip(parts)
    assert (kind, iteration, phase, src) == ("shuffle", 4, 0, 2)
    assert got == payload
    assert read_bytes == nbytes


def test_frame_numpy_state_goes_out_of_band():
    centroid = np.arange(64, dtype=np.float64)
    payload = [(0, 2, [(1, centroid)])]
    parts, _ = encode_frame("shuffle", 0, 0, 1, payload)
    # header + payload pickle + one raw buffer part: the 512 array bytes
    # are written straight from the array memory, not into the pickle.
    assert len(parts) == 3
    assert parts[2].nbytes == centroid.nbytes
    assert len(parts[1]) < centroid.nbytes  # pickle stream stays small
    *_, got, _ = _pipe_roundtrip(parts)
    arr = got[0][2][0][1]
    np.testing.assert_array_equal(arr, centroid)
    # Buffers are received into fresh bytearray storage: still writable.
    assert arr.flags.writeable
    arr[0] = -1.0  # must not raise


def test_manifest_frame_is_header_only():
    from repro.imapreduce.workerproc import _NO_PAYLOAD

    parts, nbytes = encode_frame("shuffle", 2, 1, 0, _NO_PAYLOAD)
    assert len(parts) == 1
    assert nbytes < 100  # tiny: kind + coordinates, no payload pickle
    *_, payload, _ = _pipe_roundtrip(parts)
    assert payload is None


# ---------------------------------------------------- skip-empty routing --
def _hot_map(key, state, static, ctx):
    ctx.emit(0, state)  # every record routes to pair 0


def _sum_reduce(key, values, ctx):
    ctx.emit(key, sum(values))


def _hot_pair_job(max_iterations=3):
    return IterativeJob.single_phase(
        "hot-pair", _hot_map, _sum_reduce,
        conf=JobConf({IterKeys.STATE_PATH: STATE,
                      IterKeys.MAX_ITER: max_iterations}),
        output_path=OUT,
        partitioner=ModPartitioner(),
    )


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_single_hot_pair_skips_empty_batches(start_method):
    """After iteration 1 all state lives in pair 0: three of four
    workers feed no peers, so the mesh ships manifests, not batches."""
    job = _hot_pair_job()
    state = [(i, 1.0) for i in range(16)]
    ref = run_local(job, state, num_pairs=4)
    par = run_parallel(job, state, num_pairs=4, num_workers=4,
                       start_method=start_method)
    assert records_identical(par.state, ref.state)
    assert par.iterations_run == ref.iterations_run

    from repro.experiments.wallclock import dense_batches

    dense = dense_batches(job, par.iterations_run, par.num_workers)
    batches = par.counter("batches_sent")
    manifests = par.counter("manifest_frames")
    # Iteration 0: the initial state is spread over all pairs, so every
    # worker feeds pair 0's owner (3 batches).  Afterwards only
    # manifests cross the mesh.
    assert batches < dense
    assert batches == 3
    assert manifests == dense - batches
    assert par.counter("records_sent") == 12  # iteration 0 only


def test_counters_and_profiler_surface_in_stats():
    graph = sssp_graph(20, seed=3)
    from repro.algorithms import sssp

    job = sssp.build_imr_job(
        state_path=STATE, static_path="/dp/static", output_path=OUT,
        max_iterations=3, num_pairs=4, combiner=True,
    )
    par = run_parallel(
        job, sssp.initial_state(graph, source=0),
        {"/dp/static": sssp.static_records(graph)},
        num_pairs=4, num_workers=2,
    )
    for stats in par.worker_stats:
        assert set(stats["phase_seconds"]) == set(PHASE_COUNTERS)
        assert all(v >= 0.0 for v in stats["phase_seconds"].values())
        # The route cache covers the worker's emitted key universe and
        # is bounded by the number of distinct keys in the workload.
        assert 0 < stats["route_cache_size"] <= 20
    assert set(par.phase_breakdown()) == set(PHASE_COUNTERS)
    assert par.counter("bytes_pickled") > 0
    assert par.counter("batches_sent") > 0


def test_dense_batches_formula():
    from repro.algorithms import kmeans
    from repro.experiments.wallclock import dense_batches

    job = _hot_pair_job(max_iterations=5)  # 1 phase, one2one
    assert dense_batches(job, 5, 1) == 0
    assert dense_batches(job, 5, 4) == 4 * 3 * 5
    kjob = kmeans.build_imr_job(  # 1 phase, one2all: shuffle + bcast
        state_path=STATE, static_path="/dp/static", output_path=OUT,
        max_iterations=2,
    )
    assert dense_batches(kjob, 2, 3) == 2 * (3 * 2 + 3 * 2)


# ------------------------------------------------------------- liveness --
def _exit_zero_map(key, state, static, ctx):
    if key == 0:
        os._exit(0)  # silent clean death: no traceback, no final report
    ctx.emit(key, state)


def test_worker_clean_exit_without_final_detected_immediately():
    """A worker that dies with exit code 0 before its FINAL_REPORT used
    to be invisible to the dead-check and stalled the coordinator until
    the full run timeout; the sentinel wait reports it at once."""
    job = IterativeJob.single_phase(
        "exit-zero", _exit_zero_map, _sum_reduce,
        conf=JobConf({IterKeys.STATE_PATH: STATE, IterKeys.MAX_ITER: 3}),
        output_path=OUT,
        partitioner=ModPartitioner(),
    )
    started = time.perf_counter()
    with pytest.raises(ParallelExecutionError, match="without a final report"):
        run_parallel(job, [(i, 1.0) for i in range(8)],
                     num_pairs=4, num_workers=2, timeout=600.0)
    assert time.perf_counter() - started < 30.0
