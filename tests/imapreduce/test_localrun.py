"""Tests for the serial local runtime (the correctness oracle)."""

import pytest

from repro.common import IterKeys, JobConf
from repro.imapreduce import AuxPhase, IterativeJob, Phase, run_local


def double_map(key, state, static, ctx):
    ctx.emit(key, state * 2.0)


def identity_reduce(key, values, ctx):
    ctx.emit(key, values[0])


def manhattan(key, prev, curr):
    return abs((prev or 0.0) - curr)


def make_job(max_iter=None, thresh=None, aux=None, phases=None):
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/state")
    if max_iter is not None:
        conf.set_int(IterKeys.MAX_ITER, max_iter)
    if thresh is not None:
        conf.set_float(IterKeys.DIST_THRESH, thresh)
    if phases:
        return IterativeJob(
            name="local", phases=phases, output_path="/out", conf=conf,
            distance_fn=manhattan if thresh is not None else None, aux=aux,
        )
    return IterativeJob.single_phase(
        "local",
        double_map,
        identity_reduce,
        conf=conf,
        output_path="/out",
        distance_fn=manhattan if thresh is not None else None,
        aux=aux,
    )


STATE = [(i, 1.0) for i in range(8)]


def test_fixed_iterations():
    result = run_local(make_job(max_iter=3), STATE)
    assert result.iterations_run == 3
    assert result.terminated_by == "maxiter"
    assert result.state_dict() == {i: 8.0 for i in range(8)}


def test_history_kept_on_request():
    result = run_local(make_job(max_iter=3), STATE, keep_history=True)
    assert len(result.history) == 3
    assert dict(result.history[0]) == {i: 2.0 for i in range(8)}
    assert dict(result.history[2]) == result.state_dict()


def test_no_history_by_default():
    assert run_local(make_job(max_iter=2), STATE).history == []


def test_threshold_termination():
    def decay_map(key, state, static, ctx):
        ctx.emit(key, state * 0.5)

    job = IterativeJob.single_phase(
        "decay",
        decay_map,
        identity_reduce,
        conf=JobConf({IterKeys.STATE_PATH: "/state", IterKeys.MAX_ITER: 99,
                      IterKeys.DIST_THRESH: 1.1}),
        output_path="/out",
        distance_fn=manhattan,
    )
    result = run_local(job, STATE)
    # distance after k iters = 8 * 2^-k ; <= 1.1 at k=3 (1.0).
    assert result.converged
    assert result.iterations_run == 3
    assert result.distances[-1] == pytest.approx(1.0)


def test_distances_recorded_each_iteration():
    job = make_job(max_iter=3, thresh=0.0)
    result = run_local(job, STATE)
    assert len(result.distances) == result.iterations_run
    assert all(d is not None for d in result.distances)


def test_static_join():
    def mul_map(key, state, static, ctx):
        ctx.emit(key, state * static)

    job = IterativeJob.single_phase(
        "mul",
        mul_map,
        identity_reduce,
        conf=JobConf({IterKeys.STATE_PATH: "/s", IterKeys.STATIC_PATH: "/t",
                      IterKeys.MAX_ITER: 2}),
        output_path="/out",
    )
    result = run_local(job, STATE, {"/t": [(i, float(i)) for i in range(8)]})
    assert result.state_dict() == {i: float(i) ** 2 for i in range(8)}


def test_multiphase():
    phases = [
        Phase(map_fn=double_map, reduce_fn=identity_reduce),
        Phase(map_fn=lambda k, s, st, c: c.emit(k, s + 1.0), reduce_fn=identity_reduce),
    ]
    result = run_local(make_job(max_iter=2, phases=phases), STATE)
    # x -> 2x + 1 applied twice: 1 -> 3 -> 7
    assert result.state_dict() == {i: 7.0 for i in range(8)}


def test_aux_termination():
    def aux_map(key, value, ctx):
        ctx.emit(0, value)

    def aux_reduce(key, values, ctx):
        if max(values) >= 16.0:
            ctx.signal_terminate()

    result = run_local(
        make_job(max_iter=50, aux=AuxPhase(aux_map, aux_reduce)), STATE
    )
    assert result.terminated_by == "aux"
    assert result.iterations_run == 4  # 1 -> 2 -> 4 -> 8 -> 16


def test_aux_task_state_persists():
    seen = []

    def aux_map(key, value, ctx):
        ctx.task_state["n"] = ctx.task_state.get("n", 0) + 1
        seen.append(ctx.task_state["n"])
        ctx.emit(0, 0.0)

    run_local(make_job(max_iter=3, aux=AuxPhase(aux_map, lambda k, v, c: None)), STATE)
    assert max(seen) > 1


def test_one2all_broadcast_state():
    received = []

    def bc_map(key, state_list, static, ctx):
        received.append(len(state_list))
        ctx.emit(key % 2, 1.0)

    phase = Phase(map_fn=bc_map, reduce_fn=identity_reduce, mapping="one2all",
                  static_path="/pts")
    conf = JobConf({IterKeys.STATE_PATH: "/s", IterKeys.MAX_ITER: 1})
    job = IterativeJob(name="bc", phases=[phase], output_path="/o", conf=conf)
    run_local(job, [(0, 5.0), (1, 6.0)], {"/pts": [(i, float(i)) for i in range(6)]})
    # every map call saw the full 2-record state
    assert received and all(n == 2 for n in received)
