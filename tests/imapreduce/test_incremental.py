"""Incremental recomputation (i2MapReduce mode) — the warm-vs-cold
differential contract.

The module under test memoizes a converged run, derives the affected-key
frontier from a :class:`DataDelta`, patches the resident static tables in
place, and warm-starts iteration from the memo restricted to the dirty
frontier.  The identity to prove everywhere: a warm run on the *old*
input plus a delta converges to the same fixpoint a cold rerun computes
on the *mutated* input — bit-exactly for the min algebras (sssp,
components), threshold-bounded for the sum algebra (pagerank) — while
touching strictly fewer pairs at small deltas.
"""

import math

import pytest

from repro.algorithms import components, pagerank, sssp
from repro.graph.generators import pagerank_graph, sssp_graph
from repro.imapreduce import (
    DataDelta,
    DeltaError,
    MemoStore,
    patch_static_table,
    plan_changes,
    run_incremental_accum,
    run_incremental_local,
)
from repro.imapreduce.incremental import (
    ADJACENCY_KINDS,
    cold_initial_deltas,
    random_edge_churn,
)
from repro.imapreduce.localrun import run_accum_local, run_local

RTOL, ATOL = 1e-9, 1e-12


def states_close(a, b):
    da, db = dict(a), dict(b)
    assert set(da) == set(db)
    for k in da:
        assert da[k] == pytest.approx(db[k], rel=RTOL, abs=ATOL), k


# ------------------------------------------------------------ DataDelta --
class TestDataDelta:
    def test_arity_validation(self):
        with pytest.raises(DeltaError, match="3 fields"):
            DataDelta(insert_edges=((0, 1),)).validate(ADJACENCY_KINDS["sssp"])
        with pytest.raises(DeltaError, match="2 fields"):
            DataDelta(insert_edges=((0, 1, 2.0),)).validate(
                ADJACENCY_KINDS["pagerank"]
            )

    def test_update_needs_weighted(self):
        with pytest.raises(DeltaError, match="weighted"):
            DataDelta(update_edges=((0, 1, 2.0),)).validate(
                ADJACENCY_KINDS["pagerank"]
            )

    def test_double_mutation_rejected(self):
        with pytest.raises(DeltaError, match="twice"):
            DataDelta(
                insert_edges=((0, 1),), delete_edges=((0, 1),)
            ).validate(ADJACENCY_KINDS["pagerank"])

    def test_symmetric_double_mutation_rejected(self):
        # (1, 0) is the same undirected edge as (0, 1) for components.
        with pytest.raises(DeltaError, match="twice"):
            DataDelta(
                insert_edges=((0, 1),), delete_edges=((1, 0),)
            ).validate(ADJACENCY_KINDS["components"])

    def test_size_and_empty(self):
        assert DataDelta().is_empty()
        d = DataDelta(insert_edges=((0, 1),), insert_nodes=(5,))
        assert d.size == 2 and not d.is_empty()

    def test_tuple_round_trip(self):
        d = DataDelta(
            insert_edges=((0, 1, 2.5),),
            delete_edges=((2, 3),),
            update_edges=((4, 5, 0.25),),
            insert_nodes=(9,),
        )
        assert DataDelta.from_tuple(d.to_tuple()) == d


# ---------------------------------------------------- patch_static_table --
class TestPatchStaticTable:
    def test_delete_keeps_survivor_order(self):
        table = {0: (3, 1, 2), 1: (), 2: (), 3: ()}
        dirty = patch_static_table(
            table, DataDelta(delete_edges=((0, 1),)), ADJACENCY_KINDS["pagerank"]
        )
        assert table[0] == (3, 2) and dirty == {0}

    def test_insert_appends(self):
        table = {0: (2,), 1: (), 2: (), 3: ()}
        patch_static_table(
            table, DataDelta(insert_edges=((0, 1), (0, 3))),
            ADJACENCY_KINDS["pagerank"],
        )
        assert table[0] == (2, 1, 3)

    def test_weighted_update_in_place(self):
        table = {0: ((1, 5.0), (2, 7.0)), 1: (), 2: ()}
        patch_static_table(
            table, DataDelta(update_edges=((0, 2, 1.5),)),
            ADJACENCY_KINDS["sssp"],
        )
        assert table[0] == ((1, 5.0), (2, 1.5))

    def test_symmetric_patch_touches_both_rows_sorted(self):
        table = {0: (2,), 1: (), 2: (0,)}
        dirty = patch_static_table(
            table, DataDelta(insert_edges=((1, 0),)),
            ADJACENCY_KINDS["components"],
        )
        assert dirty == {0, 1}
        assert table[0] == (1, 2) and table[1] == (0,)

    def test_insert_node_then_edge(self):
        table = {0: (), 1: ()}
        patch_static_table(
            table, DataDelta(insert_nodes=(2,), insert_edges=((0, 2),)),
            ADJACENCY_KINDS["pagerank"],
        )
        assert table[2] == () and table[0] == (2,)

    def test_errors(self):
        kind = ADJACENCY_KINDS["pagerank"]
        with pytest.raises(DeltaError, match="not present"):
            patch_static_table({0: (), 1: ()}, DataDelta(delete_edges=((0, 1),)), kind)
        with pytest.raises(DeltaError, match="already present"):
            patch_static_table({0: (1,), 1: ()}, DataDelta(insert_edges=((0, 1),)), kind)
        with pytest.raises(DeltaError, match="unknown target"):
            patch_static_table({0: (), 1: ()}, DataDelta(insert_edges=((0, 9),)), kind)
        with pytest.raises(DeltaError, match="already exists"):
            patch_static_table({0: ()}, DataDelta(insert_nodes=(0,)), kind)


# --------------------------------------------------------- change plans --
class TestChangePlan:
    def test_pagerank_plan_is_pure_perturbation(self):
        g = pagerank_graph(60, seed=1)
        table = dict(pagerank.static_records(g))
        memo = {u: 1.0 for u in table}
        delta = random_edge_churn(table, "pagerank", insert=2, delete=2, seed=5)
        plan = plan_changes("pagerank", table, delta, memo,
                            damping=pagerank.DAMPING)
        assert not plan.reset_keys  # sum algebra never invalidates
        assert plan.perturbation and len(plan.frontier) >= 1
        assert plan.summary()["delta_size"] == delta.size

    def test_min_plan_resets_reachable_closure(self):
        # 0 -> 1 -> 2 -> 3, plus 0 -> 3 shortcut.  Deleting 1 -> 2 must
        # invalidate 2 and 3 (both forward-reachable from the head).
        table = {0: ((1, 1.0), (3, 9.0)), 1: ((2, 1.0),), 2: ((3, 1.0),), 3: ()}
        memo = {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
        plan = plan_changes("sssp", dict(table),
                            DataDelta(delete_edges=((1, 2),)), memo, source=0)
        assert plan.reset_keys == frozenset({2, 3})
        # 3 is re-seeded by the surviving boundary edge 0 -> 3.
        offers = dict(plan.perturbation)
        assert offers[3] == pytest.approx(9.0)

    def test_min_plan_insert_is_monotone_offer(self):
        table = {0: ((1, 1.0),), 1: (), 2: ()}
        memo = {0: 0.0, 1: 1.0, 2: math.inf}
        plan = plan_changes("sssp", dict(table),
                            DataDelta(insert_edges=((1, 2, 0.5),)), memo,
                            source=0)
        assert not plan.reset_keys
        assert dict(plan.perturbation)[2] == pytest.approx(1.5)

    def test_missing_params_rejected(self):
        with pytest.raises(DeltaError):
            plan_changes("pagerank", {0: ()}, DataDelta(), {})  # no damping
        with pytest.raises(DeltaError):
            plan_changes("sssp", {0: ()}, DataDelta(), {})  # no source
        with pytest.raises(DeltaError):
            plan_changes("tsp", {0: ()}, DataDelta(), {})


# ----------------------------------------------- warm-vs-cold: pagerank --
def _pagerank_setup(n=120, seed=3, use_kernel=False):
    g = pagerank_graph(n, seed=seed)
    table = dict(pagerank.static_records(g))
    job = pagerank.build_accum_job(
        state_path="/s", static_path="/st", output_path="/o",
        threshold=1e-12, use_kernel=use_kernel,
    )
    cold = run_accum_local(
        job, pagerank.accum_initial_deltas(g.num_nodes), {"/st": table},
        num_pairs=4, mode="async",
    )
    return table, job, cold


@pytest.mark.parametrize("use_kernel", [False, True])
@pytest.mark.parametrize("mode", ["async", "sync"])
def test_pagerank_warm_matches_cold_fixpoint(mode, use_kernel):
    table, job, cold = _pagerank_setup(use_kernel=use_kernel)
    delta = pagerank.churn_delta(table, insert=3, delete=3, seed=7)
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS["pagerank"])
    cold2 = run_accum_local(
        job, cold_initial_deltas("pagerank", mutated, damping=pagerank.DAMPING),
        {"/st": mutated}, num_pairs=4, mode=mode,
    )
    warm = run_incremental_accum(
        job, "pagerank", delta, cold.state, {"/st": table},
        num_pairs=4, mode=mode, damping=pagerank.DAMPING,
    )
    states_close(warm.state, cold2.state)
    assert warm.counters["incremental"]["delta_size"] == delta.size


def test_pagerank_warm_touches_strictly_less():
    table, job, cold = _pagerank_setup(n=300, seed=11)
    delta = pagerank.churn_delta(table, insert=2, delete=2, seed=13)
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS["pagerank"])
    cold2 = run_accum_local(
        job, cold_initial_deltas("pagerank", mutated, damping=pagerank.DAMPING),
        {"/st": mutated}, num_pairs=4, mode="async",
    )
    warm = run_incremental_accum(
        job, "pagerank", delta, cold.state, {"/st": table},
        num_pairs=4, mode="async", damping=pagerank.DAMPING,
    )
    states_close(warm.state, cold2.state)
    assert warm.updates_processed < cold2.updates_processed
    assert warm.deltas_shipped < cold2.deltas_shipped


def test_pagerank_node_insert_corrects_teleport():
    # Adding a node changes 1/N: the plan must carry the Δb correction
    # to *every* key, and still land on the cold fixpoint.
    table, job, cold = _pagerank_setup(n=80, seed=5)
    new = len(table)
    delta = DataDelta(insert_nodes=(new,),
                      insert_edges=((new, 0), (3, new)))
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS["pagerank"])
    cold2 = run_accum_local(
        job, cold_initial_deltas("pagerank", mutated, damping=pagerank.DAMPING),
        {"/st": mutated}, num_pairs=4, mode="async",
    )
    warm = run_incremental_accum(
        job, "pagerank", delta, cold.state, {"/st": table},
        num_pairs=4, mode="async", damping=pagerank.DAMPING,
    )
    states_close(warm.state, cold2.state)
    assert dict(warm.state)[new] > 0.0


# ------------------------------------------------- warm-vs-cold: sssp --
def _sssp_setup(n=100, seed=5, use_kernel=False):
    g = sssp_graph(n, seed=seed)
    table = dict(sssp.static_records(g))
    job = sssp.build_accum_job(
        state_path="/s", static_path="/st", output_path="/o",
        use_kernel=use_kernel,
    )
    cold = run_accum_local(
        job, sssp.accum_initial_deltas(0), {"/st": table},
        num_pairs=4, mode="async",
    )
    return table, job, cold


@pytest.mark.parametrize("use_kernel", [False, True])
@pytest.mark.parametrize("mode", ["async", "sync"])
def test_sssp_warm_bit_exact_with_deletions(mode, use_kernel):
    table, job, cold = _sssp_setup(use_kernel=use_kernel)
    delta = sssp.churn_delta(table, insert=4, delete=4, seed=11)
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS["sssp"])
    cold2 = run_accum_local(job, [(0, 0.0)], {"/st": mutated},
                            num_pairs=4, mode=mode)
    warm = run_incremental_accum(
        job, "sssp", delta, cold.state, {"/st": table},
        num_pairs=4, mode=mode, source=0,
    )
    assert warm.state == cold2.state  # bit-exact, not approx


def test_sssp_monotone_churn_is_cheap_and_exact():
    table, job, cold = _sssp_setup(n=200, seed=8)
    delta = sssp.churn_delta(table, insert=3, delete=3, seed=13,
                             monotone=True)
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS["sssp"])
    cold2 = run_accum_local(job, [(0, 0.0)], {"/st": mutated},
                            num_pairs=4, mode="async")
    warm = run_incremental_accum(
        job, "sssp", delta, cold.state, {"/st": table},
        num_pairs=4, mode="async", source=0,
    )
    assert warm.state == cold2.state
    assert warm.updates_processed < cold2.updates_processed
    assert warm.deltas_shipped < cold2.deltas_shipped


def test_sssp_weight_increase_invalidates():
    # Raising a shortest-path edge weight must not leave the stale
    # (smaller) memo distance in place.
    table = {0: ((1, 1.0),), 1: ((2, 1.0),), 2: ()}
    job = sssp.build_accum_job(state_path="/s", static_path="/st",
                               output_path="/o")
    cold = run_accum_local(job, [(0, 0.0)], {"/st": table},
                           num_pairs=2, mode="async")
    delta = DataDelta(update_edges=((0, 1, 5.0),))
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS["sssp"])
    cold2 = run_accum_local(job, [(0, 0.0)], {"/st": mutated},
                            num_pairs=2, mode="async")
    warm = run_incremental_accum(
        job, "sssp", delta, cold.state, {"/st": table},
        num_pairs=2, mode="async", source=0,
    )
    assert warm.state == cold2.state
    assert dict(warm.state)[1] == pytest.approx(5.0)


# ------------------------------------------ warm-vs-cold: components --
def _components_table(edges, n):
    table = {u: () for u in range(n)}
    for u, v in edges:
        table[u] = tuple(sorted(table[u] + (v,)))
        table[v] = tuple(sorted(table[v] + (u,)))
    return table


@pytest.mark.parametrize("mode", ["async", "sync"])
def test_components_split_and_merge(mode):
    edges = [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (2, 5)]
    table = _components_table(edges, 9)
    job = components.build_accum_job(state_path="/s", static_path="/st",
                                     output_path="/o")
    cold = run_accum_local(job, components.accum_initial_deltas(9),
                           {"/st": table}, num_pairs=3, mode=mode)
    # Deleting 2-5 splits {0..2, 5..7}; inserting 7-8 merges 8 in.
    delta = DataDelta(insert_edges=((7, 8),), delete_edges=((2, 5),))
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS["components"])
    cold2 = run_accum_local(job, components.accum_initial_deltas(9),
                            {"/st": mutated}, num_pairs=3, mode=mode)
    warm = run_incremental_accum(
        job, "components", delta, cold.state, {"/st": table},
        num_pairs=3, mode=mode,
    )
    assert warm.state == cold2.state
    labels = dict(warm.state)
    assert labels[5] == 5 and labels[8] == 5  # split component relabelled


# -------------------------------------------------- sync-engine warm --
def test_sync_engine_warm_sssp_matches_cold():
    g = sssp_graph(80, seed=6)
    table = dict(sssp.static_records(g))
    job = sssp.build_imr_job(state_path="/s", static_path="/st",
                             output_path="/o", threshold=0.0)
    cold = run_local(job, sssp.initial_state(g, 0), {"/st": table},
                     num_pairs=4)
    delta = sssp.churn_delta(table, insert=3, delete=3, seed=4)
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS["sssp"])
    ref = run_local(
        job, [(u, 0.0 if u == 0 else math.inf) for u in mutated],
        {"/st": mutated}, num_pairs=4,
    )
    warm = run_incremental_local(job, "sssp", delta, cold.state,
                                 {"/st": table}, num_pairs=4, source=0)
    assert dict(warm.state) == dict(ref.state)


def test_sync_engine_warm_converges_faster_on_monotone_churn():
    g = sssp_graph(120, seed=9)
    table = dict(sssp.static_records(g))
    job = sssp.build_imr_job(state_path="/s", static_path="/st",
                             output_path="/o", threshold=0.0)
    cold = run_local(job, sssp.initial_state(g, 0), {"/st": table},
                     num_pairs=4)
    delta = sssp.churn_delta(table, insert=2, delete=2, seed=3,
                             monotone=True)
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS["sssp"])
    ref = run_local(
        job, [(u, 0.0 if u == 0 else math.inf) for u in mutated],
        {"/st": mutated}, num_pairs=4,
    )
    warm = run_incremental_local(job, "sssp", delta, cold.state,
                                 {"/st": table}, num_pairs=4, source=0)
    assert dict(warm.state) == dict(ref.state)
    assert warm.iterations_run < ref.iterations_run


def test_sync_engine_warm_pagerank_threshold_bounded():
    g = pagerank_graph(90, seed=2)
    table = dict(pagerank.static_records(g))
    job = pagerank.build_imr_job(g.num_nodes, state_path="/s",
                                 static_path="/st", output_path="/o",
                                 threshold=1e-10)
    cold = run_local(job, pagerank.initial_state(g), {"/st": table},
                     num_pairs=4)
    delta = pagerank.churn_delta(table, insert=2, delete=2, seed=3)
    mutated = dict(table)
    patch_static_table(mutated, delta, ADJACENCY_KINDS["pagerank"])
    ref = run_local(job, [(u, 1.0 / g.num_nodes) for u in mutated],
                    {"/st": mutated}, num_pairs=4)
    warm = run_incremental_local(job, "pagerank", delta, cold.state,
                                 {"/st": table}, num_pairs=4,
                                 damping=pagerank.DAMPING)
    da, db = dict(warm.state), dict(ref.state)
    for k in db:
        assert da[k] == pytest.approx(db[k], rel=1e-6, abs=1e-8)


# ------------------------------------------------------------ MemoStore --
class TestMemoStore:
    def _converged(self):
        table, job, cold = _sssp_setup(n=40, seed=2)
        return table, job, cold

    def test_round_trip_preserves_engine_order(self, tmp_path):
        _table, job, cold = self._converged()
        store = MemoStore(str(tmp_path))
        version = store.save(cold.state, job_name=job.name, num_pairs=4,
                             partitioner=job.partitioner,
                             meta={"algorithm": "sssp", "source": 0})
        assert version == 0 and store.has()
        records, meta = store.load(job_name=job.name)
        assert records == list(cold.state)
        assert meta["algorithm"] == "sssp"
        assert meta["version"] == 0 and meta["num_pairs"] == 4

    def test_versions_bump_and_retention(self, tmp_path):
        _table, job, cold = self._converged()
        store = MemoStore(str(tmp_path), keep=2)
        for _ in range(4):
            store.save(cold.state, job_name=job.name, num_pairs=4,
                       partitioner=job.partitioner)
        assert store.versions() == [3, 2]  # keep=2 pruned 0 and 1

    def test_job_name_mismatch_rejected(self, tmp_path):
        _table, job, cold = self._converged()
        store = MemoStore(str(tmp_path))
        store.save(cold.state, job_name=job.name, num_pairs=4,
                   partitioner=job.partitioner)
        with pytest.raises(DeltaError, match="belongs to job"):
            store.load(job_name="some-other-job")

    def test_load_empty_store_raises(self, tmp_path):
        with pytest.raises(DeltaError, match="no memoized state"):
            MemoStore(str(tmp_path)).load()

    def test_memoized_warm_refresh_end_to_end(self, tmp_path):
        table, job, cold = self._converged()
        store = MemoStore(str(tmp_path))
        store.save(cold.state, job_name=job.name, num_pairs=4,
                   partitioner=job.partitioner,
                   meta={"algorithm": "sssp", "source": 0})
        memo, meta = store.load(job_name=job.name)
        delta = sssp.churn_delta(table, insert=2, delete=2, seed=6)
        mutated = dict(table)
        patch_static_table(mutated, delta, ADJACENCY_KINDS["sssp"])
        cold2 = run_accum_local(job, [(0, 0.0)], {"/st": mutated},
                                num_pairs=meta["num_pairs"], mode="async")
        warm = run_incremental_accum(
            job, meta["algorithm"], delta, memo, {"/st": table},
            num_pairs=meta["num_pairs"], mode="async", source=meta["source"],
        )
        assert warm.state == cold2.state
