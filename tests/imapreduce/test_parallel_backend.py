"""Differential tests: the real multiprocess backend vs the serial oracle.

``run_parallel`` promises *record-for-record* equality with
``run_local`` — same final state (bit-identical floats), same iteration
count, same termination reason, same per-iteration distances — across
every job shape the engine supports: free-running maxiter jobs,
threshold termination, one2all broadcast, aux-phase termination,
multi-phase iterations, and combiners.  These tests pin that promise on
all five algorithms plus the worker-count edge cases.
"""

import pickle

import pytest

from repro.algorithms import (
    components,
    jacobi,
    kmeans,
    matrixpower,
    pagerank,
    sssp,
)
from repro.common import IterKeys, JobConf
from repro.data.lastfm import load_lastfm
from repro.graph.generators import pagerank_graph, sssp_graph
from repro.imapreduce import (
    IterativeJob,
    ParallelExecutionError,
    run_local,
    run_parallel,
)
from repro.testing.oracles import records_identical

STATE = "/t/state"
STATIC = "/t/static"
OUT = "/t/out"


def assert_record_identical(job, state, static_map, *, num_pairs, num_workers,
                            keep_history=False, start_method=None):
    """Run both backends and demand bit-for-bit equal results."""
    ref = run_local(job, state, static_map, num_pairs=num_pairs,
                    keep_history=keep_history)
    par = run_parallel(job, state, static_map, num_pairs=num_pairs,
                       num_workers=num_workers, keep_history=keep_history,
                       start_method=start_method)
    assert records_identical(par.state, ref.state)  # exact, not approximate
    assert par.iterations_run == ref.iterations_run
    assert par.terminated_by == ref.terminated_by
    assert par.converged == ref.converged
    assert par.distances == ref.distances  # bit-identical float folds
    if keep_history:
        assert len(par.history) == len(ref.history)
        for mine, theirs in zip(par.history, ref.history):
            assert records_identical(mine, theirs)
    assert par.num_workers == min(num_workers, num_pairs)
    # §3.2: every worker deserializes its static partitions exactly once.
    assert par.static_loads == par.num_workers
    return par


# ----------------------------------------------------------- five algos --
@pytest.mark.parametrize("combiner", [False, True])
@pytest.mark.parametrize("num_workers", [1, 3])
def test_sssp_free_run(combiner, num_workers):
    graph = sssp_graph(24, seed=11)
    job = sssp.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=4, num_pairs=5, combiner=combiner,
    )
    assert_record_identical(
        job, sssp.initial_state(graph, source=0),
        {STATIC: sssp.static_records(graph)},
        num_pairs=5, num_workers=num_workers,
    )


def test_pagerank_threshold_termination():
    graph = pagerank_graph(30, seed=3)
    job = pagerank.build_imr_job(
        30, state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=60, threshold=1e-3, num_pairs=4, combiner=True,
    )
    par = assert_record_identical(
        job, pagerank.initial_state(graph),
        {STATIC: pagerank.static_records(graph)},
        num_pairs=4, num_workers=2,
    )
    assert par.terminated_by == "threshold"
    assert par.converged


def test_kmeans_one2all_aux_termination():
    data = load_lastfm(num_users=30, num_artists=6, num_tastes=2, seed=5)
    state = kmeans.initial_centroids(data, 3, seed=9)
    job = kmeans.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=25, num_pairs=3, track_membership=True,
        aux=kmeans.make_convergence_aux(move_threshold=1),
    )
    par = assert_record_identical(
        job, state, {STATIC: data.user_records()},
        num_pairs=3, num_workers=2,
    )
    assert par.terminated_by == "aux"


def test_matrixpower_multi_phase():
    import numpy as np

    rng = np.random.default_rng(7)
    m = rng.uniform(-1, 1, size=(6, 6))
    job = matrixpower.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=3, num_pairs=4,
    )
    par = assert_record_identical(
        job, matrixpower.matrix_to_state_records(m),
        {STATIC: matrixpower.matrix_to_column_records(m)},
        num_pairs=4, num_workers=3,
    )
    got = matrixpower.records_to_matrix(par.state, (6, 6))
    assert np.allclose(got, np.linalg.matrix_power(m, 4))


def test_jacobi_one2all_threshold():
    import numpy as np

    rng = np.random.default_rng(13)
    n = 10
    a = rng.uniform(-1, 1, size=(n, n)) + np.eye(n) * n  # diag dominant
    b = rng.uniform(-1, 1, size=n)
    job = jacobi.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=50, threshold=1e-8, num_pairs=3,
    )
    par = assert_record_identical(
        job, jacobi.initial_state(n),
        {STATIC: jacobi.system_to_static_records(a, b)},
        num_pairs=3, num_workers=3,
    )
    assert par.terminated_by == "threshold"


def test_components_zero_threshold():
    graph = sssp_graph(20, seed=21)
    job = components.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=30, num_pairs=4,
    )
    par = assert_record_identical(
        job, components.initial_state(graph),
        {STATIC: components.static_records(graph)},
        num_pairs=4, num_workers=2,
    )
    assert par.terminated_by == "threshold"  # stops when no label moves


# ---------------------------------------------------------- start methods --
@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_sssp_free_run_spawn_matrix(start_method):
    """The differential promise holds under ``spawn`` (pipes, config
    blobs and jobs all travel through the spawn machinery) exactly as
    under ``fork``."""
    graph = sssp_graph(20, seed=8)
    job = sssp.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=3, num_pairs=4, combiner=True,
    )
    assert_record_identical(
        job, sssp.initial_state(graph, source=0),
        {STATIC: sssp.static_records(graph)},
        num_pairs=4, num_workers=2, start_method=start_method,
    )


def test_pagerank_threshold_spawn():
    """Verdict round-trips (lock-step termination) under ``spawn``."""
    graph = pagerank_graph(24, seed=6)
    job = pagerank.build_imr_job(
        24, state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=40, threshold=1e-3, num_pairs=3, combiner=True,
    )
    par = assert_record_identical(
        job, pagerank.initial_state(graph),
        {STATIC: pagerank.static_records(graph)},
        num_pairs=3, num_workers=2, start_method="spawn",
    )
    assert par.terminated_by == "threshold"


# -------------------------------------------------------------- shapes --
def test_history_parity():
    graph = pagerank_graph(16, seed=1)
    job = pagerank.build_imr_job(
        16, state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=3, num_pairs=3,
    )
    assert_record_identical(
        job, pagerank.initial_state(graph),
        {STATIC: pagerank.static_records(graph)},
        num_pairs=3, num_workers=2, keep_history=True,
    )


def test_more_workers_than_pairs_clamps():
    graph = sssp_graph(12, seed=2)
    job = sssp.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=2, num_pairs=2,
    )
    par = assert_record_identical(
        job, sssp.initial_state(graph, source=0),
        {STATIC: sssp.static_records(graph)},
        num_pairs=2, num_workers=8,
    )
    assert par.num_workers == 2


def _boom_map(key, state, static, ctx):
    raise RuntimeError("boom in worker")


def _identity_reduce(key, values, ctx):
    ctx.emit(key, values[0])


def test_worker_error_propagates():
    job = IterativeJob.single_phase(
        "boom", _boom_map, _identity_reduce,
        conf=JobConf({IterKeys.STATE_PATH: STATE, IterKeys.MAX_ITER: 2}),
        output_path=OUT,
    )
    with pytest.raises(ParallelExecutionError, match="boom in worker"):
        run_parallel(job, [(i, 1.0) for i in range(4)],
                     num_pairs=2, num_workers=2)


# ------------------------------------------------------------- pickling --
def _every_job():
    graph = sssp_graph(8, seed=1)
    yield "sssp", sssp.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=2, combiner=True, threshold=0.5,
    )
    yield "pagerank", pagerank.build_imr_job(
        8, state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=2, combiner=True, threshold=0.5,
    )
    yield "kmeans", kmeans.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=2, combiner=True, track_membership=True,
        aux=kmeans.make_convergence_aux(move_threshold=1),
    )
    yield "matrixpower", matrixpower.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=2,
    )
    yield "jacobi", jacobi.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=2, threshold=0.5,
    )
    yield "components", components.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=2,
    )


@pytest.mark.parametrize("name,job", list(_every_job()),
                         ids=lambda v: v if isinstance(v, str) else "")
def test_every_job_is_picklable(name, job):
    """The parallel backend ships jobs as pickle blobs: every algorithm's
    ``build_imr_job`` result must survive the round trip."""
    clone = pickle.loads(pickle.dumps(job))
    assert clone.name == job.name
    assert len(clone.phases) == len(job.phases)
    assert (clone.aux is None) == (job.aux is None)


# ----------------------------------------------------------- campaigns --
@pytest.mark.parametrize("campaign_seed", [97, 4242])
def test_seeded_campaign_parallel_mode(campaign_seed):
    """The chaos harness's ``parallel`` dimension: the same seeded
    workload runs on the multiprocess backend and the
    ``parallel-differential`` oracle demands record equality."""
    from repro.testing import generate_campaign
    from repro.testing.runner import run_campaign

    spec = generate_campaign(campaign_seed).but(net_faults=())
    outcome = run_campaign(spec, parallel=True)
    assert outcome.parallel_error is None
    assert outcome.parallel_result is not None
    parallel_violations = [
        v for v in outcome.violations if v.oracle == "parallel-differential"
    ]
    assert parallel_violations == []


def test_seeded_campaign_parallel_mode_spawn():
    """The parallel-differential oracle stays exact when the campaign's
    multiprocess run uses the ``spawn`` start method."""
    from repro.testing import generate_campaign
    from repro.testing.runner import run_campaign

    spec = generate_campaign(97).but(net_faults=())
    outcome = run_campaign(spec, parallel=True, parallel_start_method="spawn")
    assert outcome.parallel_error is None
    assert [
        v for v in outcome.violations if v.oracle == "parallel-differential"
    ] == []
