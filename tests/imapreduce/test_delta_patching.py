"""Property: patching a static table is indistinguishable from a rebuild.

:func:`patch_static_table` promises row-order fidelity — deletions keep
survivors in position, insertions append, ``sorted_rows`` kinds
re-sort — exactly what a direct rebuild from the mutated edge list
produces via :meth:`Digraph.from_edges`'s stable sort.  Hypothesis
drives random graphs through random deltas and checks two identities:

1. the patched table equals a from-scratch build of the mutated input
   (dict equality, tuple order included), and
2. every kernel's ``prepare`` CSR columns rebuilt from the patched
   table are **bit-identical** (``np.array_equal``) to ones built from
   the mutated input directly — across all kernel algorithms, both the
   synchronous and the accumulative twins.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import components, pagerank, sssp
from repro.graph import Digraph
from repro.imapreduce import DataDelta, patch_static_table
from repro.imapreduce.incremental import ADJACENCY_KINDS

NUM_PAIRS = 3


@st.composite
def graph_and_delta(draw, weighted=False):
    """A random directed graph plus a consistent random delta."""
    n = draw(st.integers(min_value=4, max_value=16))
    universe = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(universe), unique=True, min_size=1,
                 max_size=min(40, len(universe)))
    )
    absent = [e for e in universe if e not in set(edges)]
    deletions = draw(
        st.lists(st.sampled_from(edges), unique=True, max_size=4)
        if edges else st.just([])
    )
    insertions = draw(
        st.lists(st.sampled_from(absent), unique=True, max_size=4)
        if absent else st.just([])
    )
    weight = st.floats(min_value=0.125, max_value=8.0, allow_nan=False)
    if weighted:
        weights = draw(
            st.lists(weight, min_size=len(edges), max_size=len(edges))
        )
        updatable = [e for e in edges if e not in set(deletions)]
        updates = draw(
            st.lists(st.sampled_from(updatable), unique=True, max_size=3)
            if updatable else st.just([])
        )
        update_ws = draw(
            st.lists(weight, min_size=len(updates), max_size=len(updates))
        )
        delta = DataDelta(
            insert_edges=tuple((u, v, draw(weight)) for u, v in insertions),
            delete_edges=tuple(deletions),
            update_edges=tuple(
                (u, v, w) for (u, v), w in zip(updates, update_ws)
            ),
        )
        return n, edges, weights, delta
    delta = DataDelta(
        insert_edges=tuple(insertions), delete_edges=tuple(deletions)
    )
    return n, edges, None, delta


def _mutate_edges(edges, weights, delta):
    """The mutated edge list a fresh ingest would see: survivors keep
    their position (weight updates in place), insertions append."""
    dead = {(u, v) for u, v in delta.delete_edges}
    upd = {(u, v): w for u, v, w in delta.update_edges}
    out, out_w = [], []
    for i, (u, v) in enumerate(edges):
        if (u, v) in dead:
            continue
        out.append((u, v))
        if weights is not None:
            out_w.append(upd.get((u, v), weights[i]))
    for entry in delta.insert_edges:
        u, v, *w = entry
        out.append((u, v))
        if weights is not None:
            out_w.append(w[0])
    return out, (out_w if weights is not None else None)


def _prepare_columns(kernel, table, n):
    cols = []
    for pair in range(NUM_PAIRS):
        owned = np.array(
            [k for k in range(n) if k % NUM_PAIRS == pair], dtype=np.int64
        )
        cols.append(kernel.prepare(pair, owned, table))
    return cols


def _assert_prepared_equal(got, want):
    for pg, pw in zip(got, want):
        for cg, cw in zip(pg, pw):
            assert np.array_equal(np.asarray(cg), np.asarray(cw))


@settings(max_examples=60, deadline=None)
@given(case=graph_and_delta(weighted=False))
def test_pagerank_patch_equals_rebuild(case):
    n, edges, _w, delta = case
    table = dict(
        pagerank.static_records(Digraph.from_edges(n, edges))
    )
    patched = dict(table)
    patch_static_table(patched, delta, ADJACENCY_KINDS["pagerank"])
    mut_edges, _ = _mutate_edges(edges, None, delta)
    rebuilt = dict(
        pagerank.static_records(Digraph.from_edges(n, mut_edges))
    )
    assert patched == rebuilt
    _assert_prepared_equal(
        _prepare_columns(pagerank.PageRankKernel(n), patched, n),
        _prepare_columns(pagerank.PageRankKernel(n), rebuilt, n),
    )
    _assert_prepared_equal(
        _prepare_columns(pagerank.PageRankAccumKernel(), patched, n),
        _prepare_columns(pagerank.PageRankAccumKernel(), rebuilt, n),
    )


@settings(max_examples=60, deadline=None)
@given(case=graph_and_delta(weighted=True))
def test_sssp_patch_equals_rebuild(case):
    n, edges, weights, delta = case
    table = dict(
        sssp.static_records(Digraph.from_edges(n, edges, weights))
    )
    patched = dict(table)
    patch_static_table(patched, delta, ADJACENCY_KINDS["sssp"])
    mut_edges, mut_ws = _mutate_edges(edges, weights, delta)
    rebuilt = dict(
        sssp.static_records(Digraph.from_edges(n, mut_edges, mut_ws))
    )
    assert patched == rebuilt
    _assert_prepared_equal(
        _prepare_columns(sssp.SsspKernel(), patched, n),
        _prepare_columns(sssp.SsspKernel(), rebuilt, n),
    )
    _assert_prepared_equal(
        _prepare_columns(sssp.SsspAccumKernel(), patched, n),
        _prepare_columns(sssp.SsspAccumKernel(), rebuilt, n),
    )


@st.composite
def undirected_graph_and_delta(draw):
    """Components: an undirected edge set plus a symmetric delta."""
    n = draw(st.integers(min_value=4, max_value=14))
    universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(universe), unique=True, min_size=1,
                 max_size=min(30, len(universe)))
    )
    present = set(edges)
    absent = [e for e in universe if e not in present]
    deletions = draw(
        st.lists(st.sampled_from(edges), unique=True, max_size=3)
        if edges else st.just([])
    )
    insertions = draw(
        st.lists(st.sampled_from(absent), unique=True, max_size=3)
        if absent else st.just([])
    )
    return n, edges, DataDelta(
        insert_edges=tuple(insertions), delete_edges=tuple(deletions)
    )


@settings(max_examples=60, deadline=None)
@given(case=undirected_graph_and_delta())
def test_components_patch_equals_rebuild(case):
    n, edges, delta = case
    table = dict(
        components.static_records(Digraph.from_edges(n, edges))
    )
    patched = dict(table)
    patch_static_table(patched, delta, ADJACENCY_KINDS["components"])
    dead = set(delta.delete_edges) | {(v, u) for u, v in delta.delete_edges}
    mut_edges = [e for e in edges if e not in dead] + [
        (u, v) for u, v in delta.insert_edges
    ]
    rebuilt = dict(
        components.static_records(Digraph.from_edges(n, mut_edges))
    )
    assert patched == rebuilt
    _assert_prepared_equal(
        _prepare_columns(components.ComponentsKernel(), patched, n),
        _prepare_columns(components.ComponentsKernel(), rebuilt, n),
    )
    _assert_prepared_equal(
        _prepare_columns(components.ComponentsAccumKernel(), patched, n),
        _prepare_columns(components.ComponentsAccumKernel(), rebuilt, n),
    )
