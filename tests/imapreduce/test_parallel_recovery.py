"""Fault tolerance of the real multiprocess backend (§3.4/§5).

These tests kill worker *processes* for real — ``SIGKILL`` delivered
mid-run at seeded ``(iteration, phase)`` points, ``SIGSTOP`` freezes
that only the heartbeat suspicion timeout can see — and demand that the
recovered run is **record-for-record identical** to the unfaulted
serial reference: same state bits, same iteration count, same
termination reason, same per-iteration distance folds.  Recovery that
merely "works" is not enough; it must be invisible in the results.
"""

import multiprocessing
import os

import pytest

from repro.algorithms import kmeans, pagerank, sssp
from repro.common import IterKeys, JobConf
from repro.data.lastfm import load_lastfm
from repro.graph.generators import pagerank_graph, sssp_graph
from repro.imapreduce import (
    IterativeJob,
    ParallelExecutionError,
    ProcFault,
    run_local,
    run_parallel,
)
from repro.testing.oracles import records_identical

STATE = "/t/state"
STATIC = "/t/static"
OUT = "/t/out"

# Tight liveness settings so a SIGSTOP is suspected in test time, not
# operational time.
FAST = dict(heartbeat_interval=0.05, suspicion_timeout=8.0)


def _pagerank_setup(n=30, seed=3, use_kernel=False):
    graph = pagerank_graph(n, seed=seed)
    job = pagerank.build_imr_job(
        n, state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=60, threshold=1e-3, num_pairs=4, combiner=True,
        use_kernel=use_kernel,
    )
    return job, pagerank.initial_state(graph), {STATIC: pagerank.static_records(graph)}


def _sssp_setup():
    graph = sssp_graph(24, seed=11)
    job = sssp.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=6, num_pairs=5, combiner=True,
    )
    return job, sssp.initial_state(graph, source=0), {STATIC: sssp.static_records(graph)}


def assert_recovered_identical(job, state, static, *, faults, num_pairs,
                               num_workers, checkpoint_every=2, **kwargs):
    ref = run_local(job, state, static, num_pairs=num_pairs)
    par = run_parallel(
        job, state, static, num_pairs=num_pairs, num_workers=num_workers,
        checkpoint_every=checkpoint_every, faults=faults, **{**FAST, **kwargs},
    )
    assert par.recoveries >= 1, "the seeded fault never fired"
    assert records_identical(par.state, ref.state)  # bit-exact
    assert par.iterations_run == ref.iterations_run
    assert par.terminated_by == ref.terminated_by
    assert par.distances == ref.distances
    for event in par.recovery_events:
        assert event["resume_from"] <= faults[0].iteration + 1
    return par


# ------------------------------------------------------------ kill -9 --
def test_pagerank_kill_recovery_bit_exact():
    job, state, static = _pagerank_setup()
    par = assert_recovered_identical(
        job, state, static,
        faults=[ProcFault(worker=1, iteration=5, action="kill")],
        num_pairs=4, num_workers=2,
    )
    assert par.terminated_by == "threshold"
    event = par.recovery_events[0]
    assert event["dead_worker"] == 1
    assert "SIGKILL" in event["reason"]
    assert event["restored_checkpoint"] == 3  # newest boundary before 5
    assert event["resume_from"] == 4


def test_sssp_free_run_kill_recovery():
    """Free-running maxiter jobs (no verdict round-trips) recover too."""
    job, state, static = _sssp_setup()
    assert_recovered_identical(
        job, state, static,
        faults=[ProcFault(worker=0, iteration=3, action="kill")],
        num_pairs=5, num_workers=3,
    )


def test_kmeans_aux_kill_recovery():
    """Aux-phase termination state (the convergence detector's per-task
    dicts) rolls back with the checkpoint barrier."""
    data = load_lastfm(num_users=30, num_artists=6, num_tastes=2, seed=5)
    job = kmeans.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=25, num_pairs=3, track_membership=True,
        aux=kmeans.make_convergence_aux(move_threshold=1),
    )
    par = assert_recovered_identical(
        job, kmeans.initial_centroids(data, 3, seed=9),
        {STATIC: data.user_records()},
        faults=[ProcFault(worker=2, iteration=3, action="kill")],
        num_pairs=3, num_workers=3,
    )
    assert par.terminated_by == "aux"


def test_kernel_path_kill_recovery_bit_exact():
    """The columnar executor restores encoded (keys, values) arrays
    directly from the spool — no record re-encode — and stays equal to
    the serial reference."""
    job, state, static = _pagerank_setup(n=40, seed=7, use_kernel=True)
    par = assert_recovered_identical(
        job, state, static,
        faults=[ProcFault(worker=0, iteration=4, action="kill")],
        num_pairs=4, num_workers=2, checkpoint_every=3,
    )
    recover = sum(
        s["phase_seconds"]["recover"] for s in par.worker_stats
    )
    assert recover > 0.0  # the respawned generation loaded a checkpoint


def test_spawn_kill_recovery():
    job, state, static = _sssp_setup()
    assert_recovered_identical(
        job, state, static,
        faults=[ProcFault(worker=1, iteration=3, action="kill")],
        num_pairs=5, num_workers=2, start_method="spawn",
        suspicion_timeout=30.0,  # spawn interpreter startup is slow
    )


# ------------------------------------------------------------- SIGSTOP --
def test_sigstop_detected_by_suspicion_and_recovered():
    """A frozen worker trips no sentinel; only the heartbeat silence
    gives it away."""
    job, state, static = _pagerank_setup()
    par = assert_recovered_identical(
        job, state, static,
        faults=[ProcFault(worker=0, iteration=4, action="stop")],
        num_pairs=4, num_workers=2, suspicion_timeout=1.5,
    )
    assert "no heartbeat" in par.recovery_events[0]["reason"]


# ----------------------------------------------------------- reassign --
def test_reassignment_spreads_pairs_and_stays_exact():
    job, state, static = _sssp_setup()
    par = assert_recovered_identical(
        job, state, static,
        faults=[ProcFault(worker=1, iteration=3, action="kill")],
        num_pairs=5, num_workers=3, reassign_on_failure=True,
    )
    assert par.recovery_events[0]["mode"] == "reassign"
    assert par.num_workers == 2  # survivors absorbed the dead pairs
    hosted = sorted(p for s in par.worker_stats for p in s["pairs"])
    assert hosted == [0, 1, 2, 3, 4]


# ------------------------------------------------------ recovery policy --
def test_fault_without_checkpointing_restarts_from_scratch():
    job, state, static = _sssp_setup()
    ref = run_local(job, state, static, num_pairs=5)
    par = run_parallel(
        job, state, static, num_pairs=5, num_workers=3,
        faults=[ProcFault(worker=0, iteration=2, action="kill")], **FAST,
    )
    assert par.recoveries == 1
    assert par.recovery_events[0]["restored_checkpoint"] is None
    assert par.recovery_events[0]["resume_from"] == 0
    assert par.checkpoints == []
    assert records_identical(par.state, ref.state)


def test_recovery_budget_exhaustion_raises():
    job, state, static = _sssp_setup()
    with pytest.raises(ParallelExecutionError, match="without a final report"):
        run_parallel(
            job, state, static, num_pairs=5, num_workers=2,
            checkpoint_every=2, max_recoveries=0,
            faults=[ProcFault(worker=0, iteration=1, action="kill")], **FAST,
        )


def _boom_map(key, state, static, ctx):
    if key == 0:
        raise RuntimeError("boom in worker")
    ctx.emit(key, state)


def _identity_reduce(key, values, ctx):
    ctx.emit(key, values[0])


def _boom_job():
    return IterativeJob.single_phase(
        "boom", _boom_map, _identity_reduce,
        conf=JobConf({IterKeys.STATE_PATH: STATE, IterKeys.MAX_ITER: 3}),
        output_path=OUT,
    )


def test_deterministic_exception_is_never_recovered():
    """An error frame means replay would die identically: even a fully
    armed run fails fast instead of burning the recovery budget."""
    with pytest.raises(ParallelExecutionError, match="boom in worker"):
        run_parallel(
            _boom_job(), [(i, 1.0) for i in range(4)],
            num_pairs=2, num_workers=2, checkpoint_every=1,
            max_recoveries=5, **FAST,
        )


def test_worker_traceback_propagates_into_error():
    """The coordinator's exception carries the worker's *full* traceback
    — frames, file, line — not just the message."""
    with pytest.raises(ParallelExecutionError) as info:
        run_parallel(
            _boom_job(), [(i, 1.0) for i in range(4)],
            num_pairs=2, num_workers=2,
        )
    text = str(info.value)
    assert "Traceback (most recent call last)" in text
    assert "_boom_map" in text
    assert 'RuntimeError: boom in worker' in text


def test_no_worker_processes_leak_on_error_paths():
    """Every ``ParallelExecutionError`` exit must reap the whole mesh:
    no orphaned children, no zombies."""
    before = {p.pid for p in multiprocessing.active_children()}
    for _ in range(2):
        with pytest.raises(ParallelExecutionError):
            run_parallel(
                _boom_job(), [(i, 1.0) for i in range(4)],
                num_pairs=2, num_workers=2,
            )
    leaked = [
        p for p in multiprocessing.active_children()
        if p.pid not in before and p.is_alive()
    ]
    assert leaked == []


def test_no_worker_processes_leak_after_recovery_run():
    job, state, static = _sssp_setup()
    before = {p.pid for p in multiprocessing.active_children()}
    run_parallel(
        job, state, static, num_pairs=5, num_workers=3,
        checkpoint_every=2,
        faults=[ProcFault(worker=1, iteration=3, action="kill")], **FAST,
    )
    leaked = [
        p for p in multiprocessing.active_children()
        if p.pid not in before and p.is_alive()
    ]
    assert leaked == []


# -------------------------------------------------------- observability --
def test_checkpoint_counters_and_phases_surface():
    job, state, static = _pagerank_setup()
    par = run_parallel(
        job, state, static, num_pairs=4, num_workers=2,
        checkpoint_every=2, **FAST,
    )
    assert par.recoveries == 0
    assert par.counter("ckpt_writes") > 0
    assert par.counter("ckpt_bytes") > 0
    assert par.phase_breakdown()["checkpoint"] > 0.0
    assert par.phase_breakdown()["recover"] == 0.0  # nothing restored
    # Manifests only commit at checkpoint_every boundaries.
    assert par.checkpoints
    assert all((i + 1) % 2 == 0 for i in par.checkpoints)


def test_job_conf_arms_checkpointing():
    """``mapred.iterjob.parallelcheckpoint`` arms the spool without any
    run_parallel argument — the paper's JobConf surface."""
    job, state, static = _pagerank_setup()
    job.conf.set_int(IterKeys.PARALLEL_CHECKPOINT, 3)
    par = run_parallel(job, state, static, num_pairs=4, num_workers=2, **FAST)
    assert par.counter("ckpt_writes") > 0
    assert all((i + 1) % 3 == 0 for i in par.checkpoints)


def test_spool_dir_honored_and_temp_spool_cleaned(tmp_path):
    job, state, static = _sssp_setup()
    spool = tmp_path / "spool"
    par = run_parallel(
        job, state, static, num_pairs=5, num_workers=2,
        checkpoint_every=2, spool_dir=str(spool), **FAST,
    )
    assert par.checkpoints
    names = os.listdir(spool)
    assert any(n.startswith("manifest-") for n in names)
    assert any(n.startswith("ckpt-") for n in names)
