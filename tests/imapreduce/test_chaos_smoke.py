"""Chaos smoke battery (tier-1): fixed-seed campaigns through the full
harness, plus the harness self-test — a deliberately broken runtime must
be caught, shrunk and rendered replayable.

The battery seed is frozen so CI failures are replayable verbatim:

    repro chaos --seed 20240806 --campaigns 20
"""

import pytest

from repro.imapreduce import ChaosKnobs
from repro.testing import (
    CampaignSpec,
    generate_campaign,
    run_campaign,
    run_chaos,
)

BATTERY_SEED = 20240806
BATTERY_SIZE = 20

#: Campaign seeds (from the ``--seed 42`` battery) known to catch each
#: deliberately injected bug; pinned so the self-test is a single run.
SKIP_CKPT_SEED = 157973306085300  # recovery resumes from a missing checkpoint
STALE_CKPT_SEED = 101794425918146  # recovery resumes one iteration stale
IGNORE_HB_SEED = 153510258008401  # unrecovered crash, detector gagged
SKIP_RETRANSMIT_SEED = 68931111375448  # lossy window, no retransmission


def test_smoke_battery_all_oracles_pass():
    report = run_chaos(BATTERY_SEED, BATTERY_SIZE, shrink_failures=False)
    assert report.campaigns == BATTERY_SIZE
    details = "\n".join(
        f"seed {f.campaign_seed}: " + "; ".join(map(str, f.violations))
        for f in report.failures
    )
    assert report.ok, f"chaos campaigns failed:\n{details}"


def test_smoke_battery_covers_the_matrix():
    specs = [
        generate_campaign(seed)
        for seed in _battery_seeds(BATTERY_SEED, BATTERY_SIZE)
    ]
    assert {s.workload for s in specs} == {"sssp", "pagerank", "kmeans"}
    assert {s.sync for s in specs} == {True, False}
    assert {s.combiner for s in specs} == {True, False}
    assert any(s.faults for s in specs)
    assert any(s.speeds is not None for s in specs)
    assert any(f.loss_rate > 0 for s in specs for f in s.net_faults)
    assert any(f.partition for s in specs for f in s.net_faults)


def _battery_seeds(master_seed, count):
    import random

    rng = random.Random(master_seed)
    return [rng.randrange(1, 2**48) for _ in range(count)]


def test_campaign_generation_is_pure():
    assert generate_campaign(7) == generate_campaign(7)
    assert generate_campaign(7) != generate_campaign(8)


def test_spec_json_roundtrip():
    spec = generate_campaign(SKIP_CKPT_SEED)
    assert CampaignSpec.from_json(spec.to_json()) == spec


# ------------------------------------------------------------ self-test --
# A chaos harness that cannot catch a broken runtime is decoration.  Each
# knob breaks one §3.4.1 guarantee; the pinned campaign must fail with
# the bug injected and pass without it.


def test_skipped_checkpoint_write_is_caught():
    spec = generate_campaign(SKIP_CKPT_SEED)
    assert spec.faults, "self-test needs a campaign with a failure"
    clean = run_campaign(spec)
    assert clean.ok, f"clean run must pass: {clean.violations}"
    broken = run_campaign(spec, ChaosKnobs(skip_checkpoint_write=True))
    assert not broken.ok
    assert "termination" in {v.oracle for v in broken.violations}


def test_stale_checkpoint_content_is_caught_by_differential_oracle():
    spec = generate_campaign(STALE_CKPT_SEED)
    clean = run_campaign(spec)
    assert clean.ok, f"clean run must pass: {clean.violations}"
    broken = run_campaign(spec, ChaosKnobs(stale_checkpoint_content=True))
    assert {v.oracle for v in broken.violations} == {"differential"}


def test_gagged_failure_detector_is_caught():
    """A detector that never confirms turns an unrecovered crash into a
    stall; the master's watchdog must surface it as a termination
    failure rather than hanging the campaign."""
    spec = generate_campaign(IGNORE_HB_SEED)
    assert any(
        e.action == "fail"
        and e.machine not in {r.machine for r in spec.faults if r.action == "recover"}
        for e in spec.faults
    ), "self-test needs an unrecovered crash"
    clean = run_campaign(spec)
    assert clean.ok, f"clean run must pass: {clean.violations}"
    broken = run_campaign(spec, ChaosKnobs(ignore_heartbeat_timeout=True))
    assert "termination" in {v.oracle for v in broken.violations}


def test_skipped_retransmission_is_caught():
    """Dropping a lost data message instead of retransmitting starves the
    receiving pair forever; the watchdog must catch the stall."""
    spec = generate_campaign(SKIP_RETRANSMIT_SEED)
    assert any(
        f.loss_rate > 0 or f.partition for f in spec.net_faults
    ), "self-test needs a lossy network window"
    clean = run_campaign(spec)
    assert clean.ok, f"clean run must pass: {clean.violations}"
    broken = run_campaign(spec, ChaosKnobs(skip_retransmit=True))
    assert "termination" in {v.oracle for v in broken.violations}


def test_injected_bug_shrinks_to_replayable_campaign():
    knobs = ChaosKnobs(stale_checkpoint_content=True)
    report = run_chaos(
        42, 50, knobs=knobs, shrink_failures=True
    )
    assert not report.ok, "deliberately broken runtime must fail campaigns"
    failure = report.failures[0]
    assert failure.shrunk is not None
    # The shrunk spec is itself a valid, still-failing reproduction...
    failure.shrunk.validate()
    assert not run_campaign(failure.shrunk, knobs).ok
    # ...and the replay lines name both the seed and the exact spec.
    lines = failure.replay_lines("stale-ckpt")
    assert any(f"--campaign-seed {failure.campaign_seed}" in l for l in lines)
    assert all("--inject-bug stale-ckpt" in l for l in lines)


# ------------------------------------------------- async (Maiter) twin --
#: Pinned battery seeds whose campaigns carry ``async_mode`` (drawn from
#: ``--seed 20240806``); replayable via ``repro chaos --campaign-seed N``.
ASYNC_SSSP_SEED = 195064592273757
ASYNC_PAGERANK_SEED = 81277046555875


def test_async_dimension_restricted_to_accumulative_workloads():
    spec = generate_campaign(BATTERY_SEED)
    with pytest.raises(ValueError, match="accumulative"):
        spec.but(workload="kmeans", async_mode=True).validate()
    for workload in ("sssp", "pagerank"):
        spec.but(workload=workload, async_mode=True).validate()


def test_async_dimension_is_append_only_for_pinned_seeds():
    """The new rng draw happens *after* every pre-existing dimension, so
    a pinned seed's non-async fields replay byte-identically — the
    discipline that keeps old shrunk reproductions valid."""
    spec = generate_campaign(ASYNC_SSSP_SEED)
    assert spec.async_mode and spec.workload == "sssp"
    assert "accum-async" in spec.describe()
    again = generate_campaign(ASYNC_SSSP_SEED)
    assert again == spec


def test_async_campaign_passes_fixpoint_oracle():
    spec = generate_campaign(ASYNC_PAGERANK_SEED)
    assert spec.async_mode and spec.workload == "pagerank"
    outcome = run_campaign(spec)
    details = "; ".join(map(str, outcome.violations))
    assert outcome.ok, details
    assert outcome.async_reference is not None
    assert "serial-async" in outcome.async_results
    assert "simulated" in outcome.async_results
    assert outcome.async_errors == {}


# -------------------------------------------- incremental (i2MR) twin --
#: Pinned campaign seeds whose specs draw ``input_delta`` (churn
#: parameters against the static graph); replayable via
#: ``repro chaos --campaign-seed N``.
DELTA_SSSP_SEED = 8       # sssp, async, delta +0/-2
DELTA_PAGERANK_SEED = 9   # pagerank, sync engine, delta +2/-1


def test_input_delta_restricted_to_graph_workloads():
    spec = generate_campaign(BATTERY_SEED)
    with pytest.raises(ValueError, match="graph workload"):
        spec.but(workload="kmeans", input_delta=(1, 1, 7)).validate()
    for workload in ("sssp", "pagerank"):
        spec.but(workload=workload, input_delta=(1, 1, 7)).validate()


def test_input_delta_dimension_is_append_only_for_pinned_seeds():
    """The churn draw happens *after* every pre-existing dimension
    (async_mode included), so pinned seeds replay byte-identically."""
    spec = generate_campaign(DELTA_SSSP_SEED)
    assert spec.input_delta is not None and spec.workload == "sssp"
    assert "delta:" in spec.describe()
    again = generate_campaign(DELTA_SSSP_SEED)
    assert again == spec


def test_input_delta_campaign_passes_incremental_oracle():
    spec = generate_campaign(DELTA_PAGERANK_SEED)
    assert spec.input_delta is not None and spec.workload == "pagerank"
    outcome = run_campaign(spec)
    details = "; ".join(map(str, outcome.violations))
    assert outcome.ok, details
    assert outcome.incremental_reference is not None
    assert "warm-serial-sync" in outcome.incremental_results
    assert "warm-serial-async" in outcome.incremental_results
    assert outcome.incremental_errors == {}
