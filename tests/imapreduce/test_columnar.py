"""Unit and property tests for the columnar layout primitives.

The encode/decode round trip is the load-bearing contract: every state
record that enters the kernel path must come back out with the record
path's value types (Python ints/floats, per-row arrays for vector
state), or the differential oracles would compare unlike things.
Routing and merging carry the rest of the contract — stray keys and
uncovered owned keys must *raise*, never silently corrupt state.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms import pagerank, sssp
from repro.common import HashPartitioner, ModPartitioner, RangePartitioner
from repro.common.records import group_by_key
from repro.imapreduce import Kernel, KernelContractError, kernel_enabled
from repro.imapreduce.columnar import (
    concat_broadcast,
    decode_columnar,
    encode_columnar,
    merge_columnar,
    route_columnar,
)

STATE = "/t/state"
STATIC = "/t/static"
OUT = "/t/out"


# ------------------------------------------------------- encode/decode --
unique_keys = st.lists(
    st.integers(min_value=-(2**40), max_value=2**40),
    min_size=0, max_size=50, unique=True,
)


@given(unique_keys, st.data())
def test_roundtrip_scalar_float(keys, data):
    vals = data.draw(
        st.lists(
            st.floats(allow_nan=False, width=64),
            min_size=len(keys), max_size=len(keys),
        )
    )
    records = list(zip(keys, vals))
    ks, vs = encode_columnar(records, "float64", 0)
    assert ks.dtype == np.int64 and vs.dtype == np.float64
    assert list(ks) == sorted(keys)  # ascending owned-key contract
    assert decode_columnar(ks, vs) == sorted(records)
    assert all(type(v) is float for _, v in decode_columnar(ks, vs))


@given(unique_keys, st.data())
def test_roundtrip_scalar_int(keys, data):
    vals = data.draw(
        st.lists(
            st.integers(min_value=-(2**31), max_value=2**31),
            min_size=len(keys), max_size=len(keys),
        )
    )
    records = list(zip(keys, vals))
    ks, vs = encode_columnar(records, "int64", 0)
    assert decode_columnar(ks, vs) == sorted(records)
    assert all(type(v) is int for _, v in decode_columnar(ks, vs))


@given(unique_keys, st.integers(min_value=1, max_value=4), st.data())
def test_roundtrip_vector(keys, width, data):
    rows = data.draw(
        st.lists(
            st.lists(
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                min_size=width, max_size=width,
            ),
            min_size=len(keys), max_size=len(keys),
        )
    )
    records = [(k, np.array(row)) for k, row in zip(keys, rows)]
    ks, vs = encode_columnar(records, "float64", width)
    assert vs.shape == (len(keys), width)
    decoded = decode_columnar(ks, vs)
    expect = sorted(records, key=lambda kv: kv[0])
    assert [k for k, _ in decoded] == [k for k, _ in expect]
    for (_, got), (_, want) in zip(decoded, expect):
        assert isinstance(got, np.ndarray)
        assert np.array_equal(got, want)


def test_encode_rejects_non_int_keys():
    with pytest.raises(KernelContractError):
        encode_columnar([("a", 1.0)], "float64", 0)
    with pytest.raises(KernelContractError):
        encode_columnar([(True, 1.0)], "float64", 0)  # bools are not keys


def test_encode_rejects_duplicate_keys():
    with pytest.raises(KernelContractError):
        encode_columnar([(3, 1.0), (3, 2.0)], "float64", 0)


# ------------------------------------------------------------- routing --
@given(
    st.lists(st.integers(min_value=0, max_value=199), max_size=80),
    st.integers(min_value=1, max_value=7),
)
def test_route_matches_scalar_partitioner(keys, num_pairs):
    """bind_array must agree with the scalar bind on every key, and the
    routed batches must preserve per-destination emission order."""
    part = ModPartitioner()
    out_keys = np.array(keys, dtype=np.int64)
    out_vals = out_keys.astype(np.float64) * 0.5
    routed = route_columnar(
        out_keys, out_vals, part.bind_array(num_pairs), num_pairs
    )
    scalar = part.bind(num_pairs)
    seen = {}
    for q, ks, vs in routed:
        assert ks.size > 0  # skip-empty contract
        for k in ks.tolist():
            assert scalar(k) == q
        seen[q] = ks.tolist()
    # Emission order within a destination is preserved (stable sort).
    for q, ks in seen.items():
        assert ks == [k for k in keys if scalar(k) == q]


def test_range_bind_array_matches_scalar():
    part = RangePartitioner(100)
    keys = np.arange(0, 130, dtype=np.int64)  # includes out-of-range tail
    arr = part.bind_array(4)(keys)
    scalar = part.bind(4)
    assert arr.tolist() == [scalar(int(k)) for k in keys]


# --------------------------------------------------------------- merge --
class _SumKernel(Kernel):
    merge = "sum"


class _MinKernel(Kernel):
    merge = "min"


def test_merge_sum_accumulates():
    owned = np.array([2, 5, 9], dtype=np.int64)
    batches = [
        (np.array([2, 5, 2]), np.array([1.0, 2.0, 3.0])),
        (np.array([9, 2]), np.array([10.0, 0.5])),
    ]
    acc = merge_columnar(_SumKernel(), owned, batches)
    assert acc.tolist() == [4.5, 2.0, 10.0]


def test_merge_min_takes_minimum():
    owned = np.array([1, 2], dtype=np.int64)
    batches = [
        (np.array([1, 2, 1]), np.array([5.0, np.inf, 3.0])),
        (np.array([2]), np.array([7.0])),
    ]
    acc = merge_columnar(_MinKernel(), owned, batches)
    assert acc.tolist() == [3.0, 7.0]


def test_merge_rejects_stray_keys():
    owned = np.array([1, 2], dtype=np.int64)
    with pytest.raises(KernelContractError):
        merge_columnar(
            _SumKernel(), owned, [(np.array([3]), np.array([1.0]))]
        )


def test_merge_rejects_uncovered_owned_key():
    owned = np.array([1, 2], dtype=np.int64)
    with pytest.raises(KernelContractError):
        merge_columnar(
            _SumKernel(), owned, [(np.array([1]), np.array([1.0]))]
        )


def test_merge_rejects_empty_inbox():
    with pytest.raises(KernelContractError):
        merge_columnar(_SumKernel(), np.array([1], dtype=np.int64), [])


@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.floats(-100, 100, width=32)),
        min_size=1, max_size=60,
    )
)
def test_merge_min_equals_record_reduce(emissions):
    """The vectorized min merge agrees with a per-record min fold —
    exactly, because min never rounds."""
    owned = np.array(sorted({k for k, _ in emissions}), dtype=np.int64)
    keys = np.array([k for k, _ in emissions], dtype=np.int64)
    vals = np.array([v for _, v in emissions], dtype=np.float64)
    acc = merge_columnar(_MinKernel(), owned, [(keys, vals)])
    record = {k: min(v for kk, v in emissions if kk == k) for k in owned.tolist()}
    assert acc.tolist() == [record[k] for k in owned.tolist()]


def test_concat_broadcast_is_key_sorted():
    parts = [
        (np.array([4, 8]), np.array([1.0, 2.0])),
        (np.array([1, 5]), np.array([3.0, 4.0])),
    ]
    ks, vs = concat_broadcast(parts)
    assert ks.tolist() == [1, 4, 5, 8]
    assert vs.tolist() == [3.0, 1.0, 4.0, 2.0]


# ------------------------------------------------------ dispatch rules --
def test_kernel_enabled_dispatch_rules():
    n = 12
    job = pagerank.build_imr_job(
        n, state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=2, threshold=1e-4, use_kernel=True,
    )
    assert job.distance_fn is not None  # the NoDistance check needs one
    assert kernel_enabled(job)
    # No kernel → record path.
    plain = pagerank.build_imr_job(
        n, state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=2,
    )
    assert not kernel_enabled(plain)
    # A partitioner without bind_array → record path.
    assert not kernel_enabled(replace(job, partitioner=HashPartitioner()))
    # Mapping / needs_broadcast mismatch → record path.
    o2a = replace(
        job, phases=[replace(job.phases[0], mapping="one2all")]
    )
    assert not kernel_enabled(o2a)

    # distance_fn without distance_partial → record path.
    class NoDistance(Kernel):
        def map_kernel(self, pair, keys, values, prepared, broadcast):
            return keys, values

    assert not kernel_enabled(replace(job, kernel=NoDistance()))


def test_sssp_kernel_enabled():
    job = sssp.build_imr_job(
        state_path=STATE, static_path=STATIC, output_path=OUT,
        max_iterations=2, use_kernel=True,
    )
    assert kernel_enabled(job)


# -------------------------------------------- group_by_key fast path --
def test_group_by_key_homogeneous_matches_old_order():
    pairs = [(3, "a"), (1, "b"), (3, "c"), (2, "d"), (1, "e")]
    assert group_by_key(pairs) == [(1, ["b", "e"]), (2, ["d"]), (3, ["a", "c"])]


def test_group_by_key_unorderable_mix_falls_back():
    """int and tuple keys can't compare natively; the TypeError fallback
    must still produce the type-name-prefixed total order."""
    pairs = [((1, 2), "t"), (5, "i"), ((0, 0), "u"), (3, "j")]
    grouped = group_by_key(pairs)
    assert grouped == [
        (3, ["j"]), (5, ["i"]), ((0, 0), ["u"]), ((1, 2), ["t"])
    ]


def test_group_by_key_single_group_short_circuits():
    assert group_by_key([(7, 1), (7, 2)]) == [(7, [1, 2])]
    assert group_by_key([]) == []
