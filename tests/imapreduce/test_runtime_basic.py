"""Core engine tests with a simple synthetic iterative computation.

The workload: every key's state halves each iteration (static data holds
a per-key multiplier), so results and distances are exactly predictable.
"""

import pytest

from repro.cluster import local_cluster
from repro.common import IterKeys, JobConf
from repro.common.errors import SchedulingError
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime, IterativeJob, run_local
from repro.simulation import Engine


N_KEYS = 16


def halving_map(key, state, static, ctx):
    ctx.emit(key, state * static)


def identity_reduce(key, values, ctx):
    ctx.emit(key, values[0])


def manhattan(key, prev, curr):
    if prev is None:
        return abs(curr)
    return abs(prev - curr)


def make_conf(max_iter=None, thresh=None, **extra):
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/in/state")
    conf.set(IterKeys.STATIC_PATH, "/in/static")
    if max_iter is not None:
        conf.set_int(IterKeys.MAX_ITER, max_iter)
    if thresh is not None:
        conf.set_float(IterKeys.DIST_THRESH, thresh)
    for key, value in extra.items():
        conf.set(key, value)
    return conf


def make_job(max_iter=None, thresh=None, num_pairs=None, **extra):
    return IterativeJob.single_phase(
        "halve",
        halving_map,
        identity_reduce,
        conf=make_conf(max_iter, thresh, **extra),
        output_path="/out/halve",
        distance_fn=manhattan if thresh is not None else None,
        num_pairs=num_pairs,
    )


def setup(nodes=4):
    engine = Engine()
    cluster = local_cluster(engine, nodes)
    dfs = DFS(cluster, block_size=4096, replication=2)
    dfs.ingest("/in/state", [(i, 64.0) for i in range(N_KEYS)])
    dfs.ingest("/in/static", [(i, 0.5) for i in range(N_KEYS)])
    return engine, cluster, dfs, IMapReduceRuntime(cluster, dfs)


def read_final(engine, dfs, paths):
    def body():
        acc = []
        for path in paths:
            acc.extend((yield from dfs.read_all(path, "node0")))
        return acc

    return engine.run(engine.process(body()))


def test_fixed_iterations_produce_exact_state():
    engine, _c, dfs, runtime = setup()
    result = runtime.submit(make_job(max_iter=3))
    assert result.iterations_run == 3
    assert result.terminated_by == "maxiter"
    state = dict(read_final(engine, dfs, result.final_paths))
    assert state == {i: 8.0 for i in range(N_KEYS)}


def test_threshold_termination():
    engine, _c, dfs, runtime = setup()
    # distance after iteration k (1-based) = N_KEYS * 64 * 2^-k
    result = runtime.submit(make_job(max_iter=50, thresh=100.0))
    assert result.terminated_by == "threshold"
    assert result.converged
    # 16*64/2^k <= 100 first at k = 4 (64).
    assert result.iterations_run == 4
    assert result.final_distance == pytest.approx(64.0)
    state = dict(read_final(engine, dfs, result.final_paths))
    assert state == {i: 4.0 for i in range(N_KEYS)}


def test_distance_series_recorded():
    _e, _c, _d, runtime = setup()
    result = runtime.submit(make_job(max_iter=3, thresh=0.0001))
    distances = [it.distance for it in result.metrics.iterations]
    assert distances == pytest.approx([512.0, 256.0, 128.0])


def test_matches_local_reference():
    engine, _c, dfs, runtime = setup()
    result = runtime.submit(make_job(max_iter=5))
    distributed = sorted(read_final(engine, dfs, result.final_paths))
    local = run_local(
        make_job(max_iter=5),
        [(i, 64.0) for i in range(N_KEYS)],
        {"/in/static": [(i, 0.5) for i in range(N_KEYS)]},
        num_pairs=4,
    )
    assert distributed == local.state


def test_sync_mode_same_result_slower_or_equal():
    def run(sync):
        engine, _c, dfs, runtime = setup()
        extra = {IterKeys.SYNC: True} if sync else {}
        result = runtime.submit(make_job(max_iter=4, **extra))
        return dict(read_final(engine, dfs, result.final_paths)), result.metrics.total_time

    state_async, t_async = run(False)
    state_sync, t_sync = run(True)
    assert state_async == state_sync
    assert t_async <= t_sync


def test_setup_time_counted_once():
    _e, _c, _d, runtime = setup()
    result = runtime.submit(make_job(max_iter=4))
    metrics = result.metrics
    assert metrics.setup_time > 0
    assert all(it.init_time == 0.0 for it in metrics.iterations)
    assert metrics.total_init_time == metrics.setup_time


def test_iteration_metrics_monotone():
    _e, _c, _d, runtime = setup()
    result = runtime.submit(make_job(max_iter=4))
    series = result.metrics.cumulative_times()
    assert [k for k, _ in series] == [1, 2, 3, 4]
    assert all(b > a for (_, a), (_, b) in zip(series, series[1:]))


def test_too_many_pairs_rejected():
    _e, _c, _d, runtime = setup(nodes=2)
    with pytest.raises(SchedulingError, match="slots"):
        runtime.submit(make_job(max_iter=2, num_pairs=5))


def test_num_pairs_defaults_to_worker_count():
    _e, _c, _d, runtime = setup(nodes=3)
    result = runtime.submit(make_job(max_iter=2))
    assert result.metrics.extras["num_pairs"] == 3
    assert len(result.final_paths) == 3


def test_deterministic_virtual_time():
    def run():
        _e, _c, _d, runtime = setup()
        result = runtime.submit(make_job(max_iter=4))
        return result.metrics.total_time, result.metrics.network_bytes

    assert run() == run()


def test_shuffle_and_state_bytes_accounted():
    _e, _c, _d, runtime = setup()
    result = runtime.submit(make_job(max_iter=3))
    for it in result.metrics.iterations:
        assert it.shuffle_bytes > 0
        assert it.state_bytes > 0
        assert it.map_records == N_KEYS
        assert it.reduce_records == N_KEYS
