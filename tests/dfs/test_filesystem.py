"""Unit tests for the simulated DFS."""

import pytest

from repro.cluster import local_cluster
from repro.common.errors import DFSError, FileAlreadyExists, FileNotFoundInDFS
from repro.dfs import DFS
from repro.simulation import Engine


def make_dfs(block_size=1000, replication=2, nodes=4):
    engine = Engine()
    cluster = local_cluster(engine, nodes)
    return engine, cluster, DFS(cluster, block_size=block_size, replication=replication)


def run(engine, gen):
    return engine.run(engine.process(gen))


RECORDS = [(i, float(i)) for i in range(100)]


def test_ingest_and_read_back_roundtrip():
    engine, _cluster, dfs = make_dfs()
    dfs.ingest("/data/in", RECORDS)
    got = run(engine, dfs.read_all("/data/in", "node0"))
    assert got == RECORDS


def test_ingest_costs_no_time():
    engine, _cluster, dfs = make_dfs()
    dfs.ingest("/data/in", RECORDS)
    assert engine.now == 0.0


def test_blocks_respect_block_size():
    _engine, _cluster, dfs = make_dfs(block_size=300)
    file = dfs.ingest("/data/in", RECORDS)
    assert len(file.blocks) > 1
    # every block except possibly the last stays under ~block size + 1 record
    for block in file.blocks:
        assert block.nbytes <= 300 + 26


def test_blocks_partition_records_exactly():
    _engine, _cluster, dfs = make_dfs(block_size=250)
    file = dfs.ingest("/data/in", RECORDS)
    reassembled = []
    for block in file.blocks:
        assert block.start == len(reassembled)
        reassembled.extend(file.block_records(block.index))
    assert reassembled == RECORDS


def test_empty_file_has_one_empty_block():
    _engine, _cluster, dfs = make_dfs()
    file = dfs.ingest("/data/empty", [])
    assert len(file.blocks) == 1
    assert file.nbytes == 0


def test_replication_count():
    _engine, _cluster, dfs = make_dfs(replication=3)
    file = dfs.ingest("/data/in", RECORDS)
    for block in file.blocks:
        assert len(block.replicas) == 3
        assert len(set(block.replicas)) == 3


def test_replication_capped_at_cluster_size():
    _engine, _cluster, dfs = make_dfs(replication=10, nodes=3)
    assert dfs.replication == 3


def test_double_ingest_rejected_without_overwrite():
    _engine, _cluster, dfs = make_dfs()
    dfs.ingest("/data/in", RECORDS)
    with pytest.raises(FileAlreadyExists):
        dfs.ingest("/data/in", RECORDS)
    dfs.ingest("/data/in", RECORDS[:10], overwrite=True)
    assert dfs.file_info("/data/in").num_records == 10


def test_read_missing_file():
    engine, _cluster, dfs = make_dfs()
    with pytest.raises(FileNotFoundInDFS):
        run(engine, dfs.read_all("/nope", "node0"))


def test_delete_frees_space_and_namespace():
    _engine, cluster, dfs = make_dfs()
    dfs.ingest("/data/in", RECORDS)
    held = sum(m.local_bytes for m in cluster.workers())
    assert held > 0
    dfs.delete("/data/in")
    assert not dfs.exists("/data/in")
    assert sum(m.local_bytes for m in cluster.workers()) == 0
    with pytest.raises(FileNotFoundInDFS):
        dfs.delete("/data/in")


def test_local_read_uses_no_network():
    engine, cluster, dfs = make_dfs(replication=4)  # replica everywhere
    dfs.ingest("/data/in", RECORDS)
    run(engine, dfs.read_all("/data/in", "node1"))
    assert cluster.network_bytes == 0
    assert engine.now > 0.0  # disk time was charged


def test_remote_read_charges_network():
    engine, cluster, dfs = make_dfs(replication=1)
    file = dfs.ingest("/data/in", RECORDS)
    holder = file.blocks[0].replicas[0]
    reader = next(n for n in cluster.names() if n != holder)
    run(engine, dfs.read_all("/data/in", reader))
    remote_bytes = sum(b.nbytes for b in file.blocks if reader not in b.replicas)
    assert remote_bytes > 0
    assert cluster.network_bytes == remote_bytes


def test_write_charges_time_and_read_back():
    engine, cluster, dfs = make_dfs(replication=2)

    def body():
        yield from dfs.write("/out", RECORDS, "node0")
        return (yield from dfs.read_all("/out", "node3"))

    got = run(engine, body())
    assert got == RECORDS
    assert engine.now > 0.0


def test_write_places_first_replica_on_writer():
    engine, _cluster, dfs = make_dfs(replication=2)

    def body():
        return (yield from dfs.write("/out", RECORDS, "node2"))

    file = run(engine, body())
    for block in file.blocks:
        assert block.replicas[0] == "node2"


def test_write_existing_path_rejected():
    engine, _cluster, dfs = make_dfs()
    dfs.ingest("/out", RECORDS)

    def body():
        yield from dfs.write("/out", RECORDS, "node0")

    with pytest.raises(FileAlreadyExists):
        run(engine, body())


def test_read_survives_single_replica_failure():
    engine, cluster, dfs = make_dfs(replication=2)
    file = dfs.ingest("/data/in", RECORDS)
    cluster[file.blocks[0].replicas[0]].fail()
    reader = file.blocks[0].replicas[1]
    got = run(engine, dfs.read_all("/data/in", reader))
    assert got == RECORDS


def test_read_fails_when_all_replicas_lost():
    engine, cluster, dfs = make_dfs(replication=1)
    file = dfs.ingest("/data/in", RECORDS)
    cluster[file.blocks[0].replicas[0]].fail()
    survivor = next(n for n in cluster.names() if not cluster[n].failed)
    with pytest.raises(DFSError, match="replicas"):
        run(engine, dfs.read_all("/data/in", survivor))


def test_splits_cover_file_with_locations():
    _engine, _cluster, dfs = make_dfs(block_size=300)
    file = dfs.ingest("/data/in", RECORDS)
    splits = dfs.splits("/data/in")
    assert len(splits) == len(file.blocks)
    assert sum(s.record_count() for s in splits) == len(RECORDS)
    for split in splits:
        assert split.locations


def test_placement_is_deterministic():
    def placement():
        _e, _c, dfs = make_dfs(block_size=300)
        file = dfs.ingest("/data/in", RECORDS)
        return [tuple(b.replicas) for b in file.blocks]

    assert placement() == placement()


def test_total_bytes_counts_one_copy():
    _engine, _cluster, dfs = make_dfs(replication=3)
    file = dfs.ingest("/a", RECORDS)
    assert dfs.total_bytes() == file.nbytes


def test_text_format_changes_file_size():
    _e, _c, dfs = make_dfs()
    binary = dfs.ingest("/bin", RECORDS)
    text = dfs.ingest("/txt", RECORDS, text_format=True)
    assert binary.nbytes != text.nbytes


def test_parameter_validation():
    engine = Engine()
    cluster = local_cluster(engine)
    with pytest.raises(DFSError):
        DFS(cluster, block_size=0)
    with pytest.raises(DFSError):
        DFS(cluster, replication=0)
