"""Property-based tests for the DFS: any data, any layout → exact
read-back with correct replication and locality accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import local_cluster
from repro.dfs import DFS
from repro.simulation import Engine


records_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.one_of(
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=30),
            st.tuples(st.integers(), st.integers()),
        ),
    ),
    max_size=60,
)


@settings(max_examples=25, deadline=None)
@given(
    records=records_strategy,
    block_size=st.sampled_from([64, 300, 5000]),
    replication=st.integers(min_value=1, max_value=4),
    reader=st.integers(min_value=0, max_value=3),
)
def test_roundtrip_any_layout(records, block_size, replication, reader):
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, block_size=block_size, replication=replication)
    dfs.ingest("/p", records)

    def body():
        return (yield from dfs.read_all("/p", f"node{reader}"))

    assert engine.run(engine.process(body())) == records


@settings(max_examples=25, deadline=None)
@given(records=records_strategy, block_size=st.sampled_from([64, 300, 5000]))
def test_blocks_partition_records(records, block_size):
    engine = Engine()
    dfs = DFS(local_cluster(engine), block_size=block_size, replication=2)
    file = dfs.ingest("/p", records)
    covered = []
    for block in file.blocks:
        assert block.start == len(covered)
        covered.extend(range(block.start, block.end))
    assert covered == list(range(len(records)))
    assert sum(b.nbytes for b in file.blocks) == file.nbytes


@settings(max_examples=15, deadline=None)
@given(
    records=records_strategy,
    replication=st.integers(min_value=1, max_value=4),
)
def test_replica_placement_invariants(records, replication):
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, block_size=400, replication=replication)
    file = dfs.ingest("/p", records)
    for block in file.blocks:
        assert len(block.replicas) == min(replication, 4)
        assert len(set(block.replicas)) == len(block.replicas)
        for name in block.replicas:
            assert name in cluster.machines


@settings(max_examples=15, deadline=None)
@given(records=records_strategy)
def test_write_then_read_through_simulation(records):
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, block_size=400, replication=2)

    def body():
        yield from dfs.write("/w", records, "node1")
        return (yield from dfs.read_all("/w", "node2"))

    assert engine.run(engine.process(body())) == records
