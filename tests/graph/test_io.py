"""Unit tests for graph text I/O and record conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Digraph,
    format_adjacency_lines,
    graph_to_records,
    lognormal_graph,
    parse_adjacency_lines,
    records_to_graph,
    sssp_graph,
)


def test_format_unweighted():
    g = Digraph.from_edges(3, [(0, 1), (0, 2)])
    lines = format_adjacency_lines(g)
    assert lines == ["0\t1 2", "1\t", "2\t"]


def test_format_weighted():
    g = Digraph.from_edges(2, [(0, 1)], [2.5])
    assert format_adjacency_lines(g) == ["0\t1:2.5000", "1\t"]


def test_text_roundtrip_unweighted():
    g = lognormal_graph(50, degree_mu=1.0, degree_sigma=1.0, seed=5)
    back = parse_adjacency_lines(format_adjacency_lines(g))
    assert np.array_equal(back.indptr, g.indptr)
    assert sorted(back.edge_list()) == sorted(g.edge_list())


def test_text_roundtrip_weighted():
    g = sssp_graph(50, seed=5)
    back = parse_adjacency_lines(format_adjacency_lines(g))
    assert back.weighted
    assert back.num_edges == g.num_edges
    assert np.allclose(np.sort(back.weights), np.sort(np.round(g.weights, 4)))


def test_parse_rejects_mixed_formats():
    with pytest.raises(ValueError, match="mixed"):
        parse_adjacency_lines(["0\t1:1.0", "1\t0"])


def test_parse_rejects_duplicate_nodes():
    with pytest.raises(ValueError, match="duplicate"):
        parse_adjacency_lines(["0\t1", "0\t1", "1\t"])


def test_parse_rejects_gaps_in_ids():
    with pytest.raises(ValueError, match="cover"):
        parse_adjacency_lines(["0\t1", "2\t"])


def test_parse_rejects_empty_input():
    with pytest.raises(ValueError):
        parse_adjacency_lines([])


def test_parse_skips_blank_lines():
    g = parse_adjacency_lines(["0\t1", "", "1\t"])
    assert g.num_nodes == 2


def test_records_roundtrip_weighted():
    g = sssp_graph(40, seed=9)
    back = records_to_graph(graph_to_records(g))
    assert back.num_edges == g.num_edges
    assert np.array_equal(back.indptr, g.indptr)
    assert np.allclose(back.weights, g.weights)


def test_records_roundtrip_unweighted():
    g = lognormal_graph(40, degree_mu=1.0, degree_sigma=1.0, seed=9)
    back = records_to_graph(graph_to_records(g))
    assert sorted(back.edge_list()) == sorted(g.edge_list())


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=100),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_text_roundtrip_preserves_structure(n, seed):
    g = lognormal_graph(n, degree_mu=1.0, degree_sigma=0.8, seed=seed)
    back = parse_adjacency_lines(format_adjacency_lines(g))
    assert back.num_nodes == g.num_nodes
    assert sorted(back.edge_list()) == sorted(g.edge_list())
