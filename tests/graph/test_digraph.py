"""Unit tests for the CSR digraph."""

import numpy as np
import pytest

from repro.graph import Digraph


def triangle(weighted=False):
    edges = [(0, 1), (1, 2), (2, 0)]
    weights = [1.0, 2.0, 3.0] if weighted else None
    return Digraph.from_edges(3, edges, weights)


def test_from_edges_shape():
    g = triangle()
    assert g.num_nodes == 3
    assert g.num_edges == 3
    assert not g.weighted


def test_out_neighbors():
    g = Digraph.from_edges(4, [(0, 1), (0, 2), (2, 3)])
    assert sorted(g.out_neighbors(0).tolist()) == [1, 2]
    assert g.out_neighbors(1).tolist() == []
    assert g.out_neighbors(2).tolist() == [3]


def test_out_degree_vector_and_scalar():
    g = Digraph.from_edges(4, [(0, 1), (0, 2), (2, 3)])
    assert g.out_degree().tolist() == [2, 0, 1, 0]
    assert g.out_degree(0) == 2


def test_unsorted_edge_list_accepted():
    g = Digraph.from_edges(3, [(2, 0), (0, 1), (1, 2)])
    assert g.out_neighbors(0).tolist() == [1]
    assert g.out_neighbors(2).tolist() == [0]


def test_weights_follow_reordering():
    g = Digraph.from_edges(3, [(2, 0), (0, 1)], [9.0, 5.0])
    assert g.out_weights(0).tolist() == [5.0]
    assert g.out_weights(2).tolist() == [9.0]


def test_out_weights_on_unweighted_raises():
    with pytest.raises(ValueError):
        triangle().out_weights(0)


def test_static_records_unweighted():
    g = Digraph.from_edges(3, [(0, 1), (0, 2)])
    records = dict(g.static_records())
    assert records == {0: (1, 2), 1: (), 2: ()}


def test_static_records_weighted():
    g = triangle(weighted=True)
    records = dict(g.static_records())
    assert records[0] == ((1, 1.0),)
    assert records[2] == ((0, 3.0),)


def test_static_records_cover_sink_nodes():
    g = Digraph.from_edges(5, [(0, 1)])
    assert len(list(g.static_records())) == 5


def test_edge_list_roundtrip():
    g = triangle()
    assert sorted(g.edge_list()) == [(0, 1), (1, 2), (2, 0)]


def test_to_networkx():
    nxg = triangle(weighted=True).to_networkx()
    assert nxg.number_of_nodes() == 3
    assert nxg[0][1]["weight"] == 1.0


def test_to_scipy_csr():
    mat = triangle().to_scipy_csr()
    assert mat.shape == (3, 3)
    assert mat.sum() == 3


def test_validation_errors():
    with pytest.raises(ValueError):
        Digraph(np.array([1, 2]), np.array([0]))  # indptr[0] != 0
    with pytest.raises(ValueError):
        Digraph(np.array([0, 2]), np.array([0]))  # indptr[-1] mismatch
    with pytest.raises(ValueError):
        Digraph(np.array([0, 1]), np.array([5]))  # target out of range
    with pytest.raises(ValueError):
        Digraph(np.array([0, 1]), np.array([0]), np.array([1.0, 2.0]))  # weight shape
    with pytest.raises(ValueError):
        Digraph.from_edges(2, [(3, 0)])  # source out of range
