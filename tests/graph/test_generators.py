"""Unit and property tests for the log-normal graph generators."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    lognormal_graph,
    lognormal_out_degrees,
    mu_for_mean_degree,
    pagerank_graph,
    sssp_graph,
)


def test_mu_for_mean_degree_inverts_lognormal_mean():
    sigma = 1.0
    mu = mu_for_mean_degree(7.39, sigma)
    assert math.exp(mu + sigma**2 / 2) == pytest.approx(7.39)


def test_mu_for_mean_degree_rejects_nonpositive():
    with pytest.raises(ValueError):
        mu_for_mean_degree(0.0, 1.0)


def test_degree_sampling_respects_bounds():
    rng = np.random.default_rng(0)
    degrees = lognormal_out_degrees(500, mu=1.5, sigma=1.0, rng=rng, min_degree=1)
    assert degrees.min() >= 1
    assert degrees.max() <= 499


def test_sssp_graph_is_weighted_with_positive_weights():
    g = sssp_graph(200, seed=1)
    assert g.weighted
    assert (g.weights > 0).all()


def test_pagerank_graph_is_unweighted():
    assert not pagerank_graph(200, seed=1).weighted


def test_generation_is_deterministic():
    a = sssp_graph(300, seed=42)
    b = sssp_graph(300, seed=42)
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.targets, b.targets)
    assert np.array_equal(a.weights, b.weights)


def test_different_seeds_differ():
    a = sssp_graph(300, seed=1)
    b = sssp_graph(300, seed=2)
    assert not (
        np.array_equal(a.indptr, b.indptr) and np.array_equal(a.targets, b.targets)
    )


def test_mean_degree_override_hits_target():
    g = sssp_graph(5000, mean_degree=4.9, seed=7)
    observed = g.num_edges / g.num_nodes
    assert observed == pytest.approx(4.9, rel=0.15)


def test_paper_default_mean_degree():
    """σ=1.0, μ=1.5 gives E[deg] = e^2 ≈ 7.39 (paper's SSSP family)."""
    g = sssp_graph(5000, seed=3)
    assert g.num_edges / g.num_nodes == pytest.approx(math.exp(2.0), rel=0.15)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=300),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_no_self_loops(n, seed):
    g = lognormal_graph(n, degree_mu=1.0, degree_sigma=1.0, seed=seed)
    for u in range(n):
        assert u not in g.out_neighbors(u)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=300),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_no_duplicate_edges(n, seed):
    g = lognormal_graph(n, degree_mu=1.5, degree_sigma=1.0, seed=seed)
    for u in range(n):
        neighbors = g.out_neighbors(u)
        assert len(np.unique(neighbors)) == len(neighbors)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=200),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_min_degree_respected(n, seed):
    g = lognormal_graph(n, degree_mu=0.0, degree_sigma=0.5, seed=seed, min_degree=1)
    assert (g.out_degree() >= 1).all()


def test_small_graph_rejected():
    with pytest.raises(ValueError):
        lognormal_graph(1, degree_mu=1.0, degree_sigma=1.0)


def test_weight_params_must_come_together():
    with pytest.raises(ValueError):
        lognormal_graph(10, degree_mu=1.0, degree_sigma=1.0, weight_mu=0.4)


def test_saturated_degrees_connect_to_everyone():
    g = lognormal_graph(5, degree_mu=5.0, degree_sigma=0.1, seed=0)
    for u in range(5):
        if g.out_degree(u) == 4:
            assert sorted(g.out_neighbors(u).tolist()) == sorted(
                v for v in range(5) if v != u
            )
