"""Unit tests for record types and grouping."""

from repro.common import JoinedRecord, KeyValue, group_by_key, kv_pairs


def test_keyvalue_unpacks():
    k, v = KeyValue(1, "a")
    assert (k, v) == (1, "a")


def test_keyvalue_astuple():
    assert KeyValue("x", 2.5).astuple() == ("x", 2.5)


def test_joined_record_unpacks():
    key, state, static = JoinedRecord(3, 0.5, [1, 2])
    assert (key, state, static) == (3, 0.5, [1, 2])


def test_kv_pairs_normalises_mixture():
    pairs = kv_pairs([KeyValue(1, "a"), (2, "b")])
    assert pairs == [(1, "a"), (2, "b")]


def test_group_by_key_groups_and_sorts():
    groups = group_by_key([(2, "x"), (1, "a"), (2, "y"), (1, "b")])
    assert groups == [(1, ["a", "b"]), (2, ["x", "y"])]


def test_group_by_key_preserves_value_order_within_key():
    groups = group_by_key([(1, 3), (1, 1), (1, 2)])
    assert groups == [(1, [3, 1, 2])]


def test_group_by_key_mixed_key_types_do_not_raise():
    groups = group_by_key([((0, 1), "t"), (5, "i"), ("a", "s")])
    keys = [k for k, _ in groups]
    assert set(map(str, keys)) == {"(0, 1)", "5", "a"}


def test_group_by_key_empty():
    assert group_by_key([]) == []
