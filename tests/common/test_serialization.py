"""Unit and property tests for the byte-size model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import (
    RECORD_OVERHEAD,
    sizeof_record,
    sizeof_records,
    sizeof_text_line,
    sizeof_value,
)


def test_scalar_sizes():
    assert sizeof_value(None) == 1
    assert sizeof_value(True) == 1
    assert sizeof_value(7) == 9
    assert sizeof_value(3.14) == 9


def test_string_size_counts_utf8():
    assert sizeof_value("ab") == 4
    assert sizeof_value("é") == 2 + 2  # two UTF-8 bytes


def test_container_sizes_are_recursive():
    assert sizeof_value((1, 2)) == 2 + 9 + 9
    assert sizeof_value([1.0]) == 2 + 9
    assert sizeof_value({1: 2.0}) == 2 + 9 + 9


def test_numpy_array_size_uses_nbytes():
    arr = np.zeros(10, dtype=np.float64)
    assert sizeof_value(arr) == 8 + 80


def test_numpy_scalar_size():
    assert sizeof_value(np.float32(1.0)) == 5


def test_record_adds_overhead():
    assert sizeof_record(1, 2) == RECORD_OVERHEAD + 18


def test_records_sum():
    pairs = [(1, 2), (3, "abc")]
    assert sizeof_records(pairs) == sizeof_record(1, 2) + sizeof_record(3, "abc")


def test_unknown_type_rejected():
    with pytest.raises(TypeError):
        sizeof_value(object())


def test_text_line_size():
    # "5\t1.5000 2\n" -> 1 + 1 + 8 + 1
    assert sizeof_text_line(5, (1.5, 2)) == 1 + 1 + len("1.5000 2") + 1


# -- properties -------------------------------------------------------------

value_strategy = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
    ),
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=10,
)


@given(value_strategy)
def test_sizes_are_positive(value):
    assert sizeof_value(value) >= 1


@given(value_strategy, value_strategy)
def test_record_size_is_additive(key, value):
    assert sizeof_record(key, value) == RECORD_OVERHEAD + sizeof_value(key) + sizeof_value(value)


@given(st.lists(st.tuples(st.integers(), st.integers()), max_size=30))
def test_total_size_additive_over_concatenation(pairs):
    half = len(pairs) // 2
    assert sizeof_records(pairs) == sizeof_records(pairs[:half]) + sizeof_records(pairs[half:])


@given(value_strategy)
def test_size_is_deterministic(value):
    assert sizeof_value(value) == sizeof_value(value)


# ------------------------------------------------------------ memoization --
def test_memo_distinguishes_equal_but_differently_typed_values():
    """``1 == 1.0 == True`` yet their sizes differ by type: the memo key
    must never collide them."""
    assert sizeof_value(1) == 9
    assert sizeof_value(1.0) == 9
    assert sizeof_value(True) == 1
    # Repeat in reverse order: cached answers must stay type-correct.
    assert sizeof_value(True) == 1
    assert sizeof_value(1.0) == 9
    assert sizeof_value(1) == 9


def test_memo_hits_return_identical_sizes():
    from repro.common import serialization

    probes = [7, 3.14, "node", ("a", 1, 2.0), None, (), ("x", (1, 2))]
    first = [sizeof_value(p) for p in probes]
    second = [sizeof_value(p) for p in probes]
    assert first == second
    assert first == [serialization._sizeof_uncached(p) for p in probes]


def test_memo_skips_uncacheable_values():
    from repro.common import serialization

    long_string = "x" * 1000
    big_tuple = tuple(range(100))
    array = np.arange(8)
    for value in (long_string, big_tuple, array):
        assert serialization._memo_key(value) is None
        assert sizeof_value(value) == serialization._sizeof_uncached(value)


def test_memo_nested_tuple_keys_recurse():
    from repro.common import serialization

    key = serialization._memo_key((1, (2.0, "s")))
    assert key is not None
    # A tuple containing an uncacheable leaf is itself uncacheable.
    assert serialization._memo_key((1, "y" * 1000)) is None
