"""Unit and property tests for partitioners."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import (
    HashPartitioner,
    ModPartitioner,
    RangePartitioner,
    stable_hash,
)

key_strategy = st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.text(max_size=30),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.none(),
    st.tuples(st.integers(), st.integers()),
)


@given(key_strategy, st.integers(min_value=1, max_value=64))
def test_hash_partitioner_in_range(key, n):
    p = HashPartitioner()(key, n)
    assert 0 <= p < n


@given(key_strategy, st.integers(min_value=1, max_value=64))
def test_hash_partitioner_deterministic(key, n):
    assert HashPartitioner()(key, n) == HashPartitioner()(key, n)


@given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=64))
def test_mod_partitioner_is_mod_for_ints(key, n):
    assert ModPartitioner()(key, n) == key % n


@given(st.integers(min_value=1, max_value=1000), st.integers(min_value=1, max_value=16))
def test_range_partitioner_covers_all_partitions_contiguously(total, n):
    part = RangePartitioner(total)
    assignments = [part(k, n) for k in range(total)]
    # Non-decreasing and within range.
    assert all(0 <= p < n for p in assignments)
    assert assignments == sorted(assignments)


def test_range_partitioner_balance():
    part = RangePartitioner(100)
    counts = [0] * 4
    for k in range(100):
        counts[part(k, 4)] += 1
    assert counts == [25, 25, 25, 25]


def test_stable_hash_known_types_distinct():
    values = [0, "0", 0.0, False, None, (0,)]
    hashes = {stable_hash(v) for v in values}
    assert len(hashes) == len(values)


def test_stable_hash_rejects_unsupported():
    with pytest.raises(TypeError):
        stable_hash(object())


def test_zero_partitions_rejected():
    for part in (HashPartitioner(), ModPartitioner(), RangePartitioner(10)):
        with pytest.raises(ValueError):
            part(1, 0)


def test_hash_partitioner_spreads_sequential_keys():
    """Sequential integer keys must not all land in one partition."""
    p = HashPartitioner()
    buckets = {p(k, 8) for k in range(1000)}
    assert len(buckets) == 8


def test_stable_hash_is_process_independent():
    """Pin a few values: these must never change across releases, or
    persisted static-data partitions would stop matching state shuffles."""
    assert stable_hash(0) == stable_hash(0)
    pinned = {stable_hash("node-1") % 8, stable_hash("node-1") % 8}
    assert len(pinned) == 1


# ------------------------------------------------------- bound fast paths --
def test_bind_matches_call_for_all_partitioners():
    from repro.common import bind_partitioner

    keys = [0, 1, -3, 17, 2**40, True, False, "node-1", 3.5, None, (1, 2)]
    for part in (HashPartitioner(), ModPartitioner(), RangePartitioner(100)):
        for n in (1, 3, 8):
            bound = bind_partitioner(part, n)
            for key in keys:
                if isinstance(part, RangePartitioner) and not isinstance(
                    key, (int, float)
                ):
                    continue
                assert bound(key) == part(key, n), (type(part).__name__, key, n)


def test_bind_partitioner_rejects_zero_partitions():
    from repro.common import bind_partitioner

    with pytest.raises(ValueError):
        bind_partitioner(ModPartitioner(), 0)


def test_bind_partitioner_wraps_plain_callables():
    from repro.common import bind_partitioner

    bound = bind_partitioner(lambda key, n: (key + 1) % n, 4)
    assert bound(2) == 3
    assert bound(3) == 0


def test_mod_bind_int_fast_path_excludes_bool():
    """``True % n`` would be valid Python but bools must keep going
    through ``stable_hash`` so they land where they always landed."""
    from repro.common import bind_partitioner

    part = ModPartitioner()
    bound = bind_partitioner(part, 8)
    assert bound(True) == part(True, 8)
    assert bound(False) == part(False, 8)
