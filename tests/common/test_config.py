"""Unit tests for JobConf."""

import pytest

from repro.common import ConfigError, IterKeys, JobConf


def test_set_get_roundtrip():
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/data/state")
    assert conf.get(IterKeys.STATE_PATH) == "/data/state"


def test_paper_api_shape():
    """The exact calls from §3.5 of the paper must typecheck."""
    job = JobConf()
    job.set("mapred.iterjob.statepath", "/pr/state")
    job.set("mapred.iterjob.staticpath", "/pr/static")
    job.set_int("mapred.iterjob.maxiter", 20)
    job.set_float("mapred.iterjob.disthresh", 0.01)
    job.set("mapred.iterjob.mapping", "one2all")
    job.set_boolean("mapred.iterjob.sync", True)
    assert job.get_int(IterKeys.MAX_ITER) == 20
    assert job.get_float(IterKeys.DIST_THRESH) == 0.01
    assert job.get_boolean(IterKeys.SYNC) is True


def test_get_with_default():
    assert JobConf().get("missing", "fallback") == "fallback"
    assert JobConf().get_int("missing", 3) == 3
    assert JobConf().get_float("missing") is None
    assert JobConf().get_boolean("missing", True) is True


def test_get_required_raises_when_absent():
    with pytest.raises(ConfigError, match="statepath"):
        JobConf().get_required(IterKeys.STATE_PATH)


def test_typed_setter_validation():
    conf = JobConf()
    with pytest.raises(ConfigError):
        conf.set_int("k", "not an int")
    with pytest.raises(ConfigError):
        conf.set_int("k", True)  # bools are not ints here
    with pytest.raises(ConfigError):
        conf.set_float("k", "nope")
    with pytest.raises(ConfigError):
        conf.set_boolean("k", 1)


def test_typed_getter_validation():
    conf = JobConf({"k": "string"})
    with pytest.raises(ConfigError):
        conf.get_int("k")
    with pytest.raises(ConfigError):
        conf.get_float("k")
    with pytest.raises(ConfigError):
        conf.get_boolean("k")


def test_int_accepted_as_float():
    conf = JobConf()
    conf.set_float("k", 2)
    assert conf.get_float("k") == 2.0
    assert isinstance(conf.get_float("k"), float)


def test_empty_key_rejected():
    with pytest.raises(ConfigError):
        JobConf().set("", 1)


def test_copy_is_independent():
    conf = JobConf({"a": 1})
    clone = conf.copy()
    clone.set("a", 2)
    assert conf.get("a") == 1


def test_mapping_protocol():
    conf = JobConf({"a": 1, "b": 2})
    assert "a" in conf
    assert len(conf) == 2
    assert sorted(conf) == ["a", "b"]
    assert dict(conf.items()) == {"a": 1, "b": 2}
