"""CLI tests (direct function calls; one subprocess smoke test)."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def test_datasets_command(capsys):
    assert main(["datasets", "sssp"]) == 0
    out = capsys.readouterr().out
    assert "dblp" in out and "sssp-l" in out
    assert "Table 1" in out


def test_datasets_both_tables(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 2" in out


def test_list_figures(capsys):
    assert main(["list-figures"]) == 0
    out = capsys.readouterr().out
    assert "fig6" in out and "table1" in out


def test_figure_unknown_name(capsys):
    assert main(["figure", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown figure" in err


def test_figure_table1(capsys):
    assert main(["figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out


def test_run_small_workload(capsys):
    assert main([
        "run", "sssp", "--dataset", "dblp", "--iterations", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "2 iterations" in out


def test_run_rejects_bad_engine():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "sssp", "--engine", "spark"])


def test_module_entrypoint_smoke():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "list-figures"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "fig4" in proc.stdout


def test_run_serial_backend(capsys):
    assert main([
        "run", "sssp", "--dataset", "dblp", "--iterations", "2",
        "--backend", "serial", "--pairs", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "serial (3 pairs)" in out and "2 iterations" in out


def test_run_parallel_backend(capsys):
    assert main([
        "run", "sssp", "--dataset", "dblp", "--iterations", "2",
        "--backend", "parallel", "--pairs", "4", "--workers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "parallel (2 workers, 4 pairs)" in out and "2 iterations" in out


def test_bench_quick(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--workers", "1,2",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert out_path.exists()
    assert "sizeof_value memoization" in out


def test_bench_rejects_bad_workers(tmp_path, capsys):
    assert main(["bench", "--quick", "--workers", "two",
                 "--out", str(tmp_path / "b.json")]) == 2
    assert "bad --workers" in capsys.readouterr().err


def test_chaos_parallel_replay(capsys):
    assert main([
        "chaos", "--campaign-seed", "97", "--no-net-faults", "--parallel",
    ]) == 0
    assert "all oracles passed" in capsys.readouterr().out


def test_bench_workloads_filter(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--workers", "1",
                 "--workloads", "sssp,sssp-kernel",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "sssp-kernel" in out and "pagerank" not in out
    assert "vs record path" in out  # the kernel row cross-links its twin


def test_bench_rejects_unknown_workload(tmp_path, capsys):
    assert main(["bench", "--quick", "--workloads", "nope",
                 "--out", str(tmp_path / "b.json")]) == 2
    err = capsys.readouterr().err
    assert "unknown workload" in err and "pagerank-kernel" in err


def test_bench_backend_only_serial(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    assert main(["bench", "--quick", "--workloads", "jacobi",
                 "--backend-only", "serial", "--out", str(out_path)]) == 0
    import json as _json

    results = _json.loads(out_path.read_text())
    (row,) = results["workloads"]
    assert row["parallel"] == []  # the multiprocess backend never ran
