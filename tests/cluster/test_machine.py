"""Unit tests for Machine and BandwidthPipe."""

import pytest

from repro.common.errors import ClusterError, WorkerFailure
from repro.cluster import Machine
from repro.cluster.machine import BandwidthPipe
from repro.simulation import Engine


def make_machine(engine, **kw):
    defaults = dict(cores=2, cpu_speed=1.0, disk_bw=100e6, nic_bw=125e6, nic_latency=0.0)
    defaults.update(kw)
    return Machine(engine, "m0", **defaults)


def test_pipe_transfer_time():
    engine = Engine()
    pipe = BandwidthPipe(engine, rate_bytes_per_s=100.0, latency_s=0.5)
    assert pipe.transfer_time(200) == 0.5 + 2.0


def test_pipe_rejects_bad_rate():
    with pytest.raises(ClusterError):
        BandwidthPipe(Engine(), 0.0)


def test_pipe_serialises_concurrent_transfers():
    engine = Engine()
    pipe = BandwidthPipe(engine, rate_bytes_per_s=100.0)
    done = []

    def sender(i):
        yield from pipe.use(100)
        done.append((i, engine.now))

    for i in range(3):
        engine.process(sender(i))
    engine.run()
    assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]
    assert pipe.total_bytes == 300
    assert pipe.total_transfers == 3


def test_pipe_rejects_negative_bytes():
    engine = Engine()
    pipe = BandwidthPipe(engine, 100.0)

    def body():
        yield from pipe.use(-1)

    with pytest.raises(ClusterError):
        engine.run(engine.process(body()))


def test_compute_scales_with_cpu_speed():
    engine = Engine()
    fast = Machine(engine, "fast", cores=1, cpu_speed=2.0)
    slow = Machine(engine, "slow", cores=1, cpu_speed=0.5)
    times = {}

    def work(machine, tag):
        yield from machine.compute(4.0)
        times[tag] = engine.now

    engine.process(work(fast, "fast"))
    engine.process(work(slow, "slow"))
    engine.run()
    assert times["fast"] == 2.0
    assert times["slow"] == 8.0


def test_cores_limit_parallel_compute():
    engine = Engine()
    machine = make_machine(engine, cores=2)
    done = []

    def work(i):
        yield from machine.compute(1.0)
        done.append((i, engine.now))

    for i in range(4):
        engine.process(work(i))
    engine.run()
    assert done == [(0, 1.0), (1, 1.0), (2, 2.0), (3, 2.0)]


def test_disk_write_tracks_local_bytes():
    engine = Engine()
    machine = make_machine(engine)

    def body():
        yield from machine.disk_write(1000)

    engine.run(engine.process(body()))
    assert machine.local_bytes == 1000
    machine.disk_delete(400)
    assert machine.local_bytes == 600
    machine.disk_delete(10_000)
    assert machine.local_bytes == 0


def test_invalid_machine_params_rejected():
    engine = Engine()
    with pytest.raises(ClusterError):
        Machine(engine, "bad", cpu_speed=0.0)
    machine = make_machine(engine)

    def body():
        yield from machine.compute(-1.0)

    with pytest.raises(ClusterError):
        engine.run(engine.process(body()))


def test_fail_kills_spawned_processes():
    engine = Engine()
    machine = make_machine(engine)
    log = []

    def long_task():
        yield engine.timeout(100.0)
        log.append("finished")  # must never run

    proc = machine.spawn(long_task())

    def injector():
        yield engine.timeout(5.0)
        machine.fail()

    engine.process(injector())
    engine.run()
    assert log == []
    assert proc.triggered
    assert isinstance(proc.value, WorkerFailure)


def test_failed_machine_rejects_new_work():
    engine = Engine()
    machine = make_machine(engine)
    machine.fail()
    with pytest.raises(WorkerFailure):
        machine.spawn(iter(()))

    def body():
        yield from machine.compute(1.0)

    with pytest.raises(WorkerFailure):
        engine.run(engine.process(body()))


def test_recover_clears_failed_state():
    engine = Engine()
    machine = make_machine(engine)

    def seed():
        yield from machine.disk_write(500)

    engine.run(engine.process(seed()))
    machine.fail()
    machine.recover()
    assert not machine.failed
    assert machine.local_bytes == 0  # reimaged
