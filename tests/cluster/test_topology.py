"""Unit tests for Cluster, topologies and fault schedules."""

import pytest

from repro.common.errors import ClusterError, WorkerFailure
from repro.cluster import (
    Cluster,
    FaultSchedule,
    Machine,
    ec2_cluster,
    heterogeneous_cluster,
    local_cluster,
    single_node,
)
from repro.simulation import Engine


def test_local_cluster_shape():
    engine = Engine()
    cluster = local_cluster(engine)
    from repro.cluster.topology import DATA_SCALE

    assert len(cluster) == 4
    for machine in cluster.workers():
        assert machine.cores == 2
        assert machine.uplink.rate == 125e6 / DATA_SCALE


def test_ec2_cluster_shape():
    engine = Engine()
    cluster = ec2_cluster(engine, 20)
    assert len(cluster) == 20
    for machine in cluster.workers():
        assert machine.cores == 1
        assert machine.cpu_speed < 1.0


def test_ec2_cluster_needs_instances():
    with pytest.raises(ClusterError):
        ec2_cluster(Engine(), 0)


def test_single_node():
    assert len(single_node(Engine())) == 1


def test_heterogeneous_cluster_speeds():
    cluster = heterogeneous_cluster(Engine(), [1.0, 0.5, 2.0])
    speeds = [m.cpu_speed for m in cluster.workers()]
    assert speeds == [1.0, 0.5, 2.0]


def test_duplicate_names_rejected():
    engine = Engine()
    machines = [Machine(engine, "a"), Machine(engine, "a")]
    with pytest.raises(ClusterError):
        Cluster(engine, machines)


def test_empty_cluster_rejected():
    with pytest.raises(ClusterError):
        Cluster(Engine(), [])


def test_getitem_unknown_machine():
    cluster = local_cluster(Engine())
    with pytest.raises(ClusterError):
        cluster["nope"]


def test_local_transfer_is_free():
    engine = Engine()
    cluster = local_cluster(engine)

    def body():
        yield from cluster.transfer("node0", "node0", 10**9)

    engine.run(engine.process(body()))
    assert engine.now == 0.0
    assert cluster.network_bytes == 0


def test_remote_transfer_charges_both_pipes():
    engine = Engine()
    cluster = local_cluster(engine)
    rate = cluster["node0"].uplink.rate
    nbytes = int(rate)  # 1 second per pipe direction

    def body():
        yield from cluster.transfer("node0", "node1", nbytes)

    engine.run(engine.process(body()))
    # uplink 1s + downlink 1s + latencies
    assert engine.now == pytest.approx(2.0, rel=0.01)
    assert cluster["node0"].uplink.total_bytes == nbytes
    assert cluster["node1"].downlink.total_bytes == nbytes
    assert cluster.network_bytes == nbytes


def test_network_bytes_accumulates_and_resets():
    engine = Engine()
    cluster = local_cluster(engine)

    def body():
        yield from cluster.transfer("node0", "node1", 1000)
        yield from cluster.transfer("node2", "node3", 2000)

    engine.run(engine.process(body()))
    assert cluster.network_bytes == 3000
    cluster.reset_counters()
    assert cluster.network_bytes == 0


def test_alive_workers_excludes_failed():
    engine = Engine()
    cluster = local_cluster(engine)
    cluster["node2"].fail()
    assert len(cluster.alive_workers()) == 3


def test_fault_schedule_fails_and_recovers():
    engine = Engine()
    cluster = local_cluster(engine)
    schedule = FaultSchedule().fail_at(5.0, "node1").recover_at(10.0, "node1")
    schedule.arm(engine, cluster)

    states = []

    def probe():
        for when in (4.0, 6.0, 11.0):
            yield engine.timeout(when - engine.now)
            states.append((when, cluster["node1"].failed))

    engine.process(probe())
    engine.run()
    assert states == [(4.0, False), (6.0, True), (11.0, False)]


def test_fault_schedule_kills_processes_at_scheduled_time():
    engine = Engine()
    cluster = local_cluster(engine)
    victim_machine = cluster["node0"]
    outcome = []

    def victim():
        from repro.simulation import Interrupt

        try:
            yield engine.timeout(100.0)
            outcome.append("survived")
        except Interrupt as exc:
            outcome.append(exc.cause)

    victim_machine.spawn(victim())
    FaultSchedule().fail_at(3.0, "node0").arm(engine, cluster)
    engine.run()
    assert len(outcome) == 1
    assert isinstance(outcome[0], WorkerFailure)
    assert outcome[0].when == 3.0


def test_fault_event_validation():
    from repro.cluster import FaultEvent

    with pytest.raises(ValueError):
        FaultEvent(-1.0, "m")
    with pytest.raises(ValueError):
        FaultEvent(1.0, "m", "explode")
