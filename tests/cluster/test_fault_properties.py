"""Property tests: FaultSchedule edge cases never corrupt results.

The workload is the exact-arithmetic decay job from the fault-tolerance
suite (state halves each iteration; powers of two are exact in floats),
so every property can demand bit-exact final state:

* a recover event with no preceding fail is a harmless no-op;
* double-failing the same machine is idempotent;
* a failure at *any* virtual time — including mid-flight of a
  checkpoint write (interval 1 keeps one in flight almost constantly) —
  still recovers to the exact result.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import FaultEvent, FaultSchedule, local_cluster
from repro.common import IterKeys, JobConf
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime, IterativeJob
from repro.simulation import Engine

N_KEYS = 8
ITERATIONS = 4


def decay_map(key, state, static, ctx):
    ctx.emit(key, state * 0.5)


def identity_reduce(key, values, ctx):
    ctx.emit(key, values[0])


def make_job(checkpoint_interval=1):
    conf = JobConf({IterKeys.STATE_PATH: "/in/state"})
    conf.set_int(IterKeys.MAX_ITER, ITERATIONS)
    conf.set_int(IterKeys.CHECKPOINT_INTERVAL, checkpoint_interval)
    return IterativeJob.single_phase(
        "decay", decay_map, identity_reduce, conf=conf, output_path="/out/decay"
    )


def run_with_schedule(schedule: FaultSchedule):
    engine = Engine()
    cluster = local_cluster(engine, 4)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/in/state", [(i, 1024.0) for i in range(N_KEYS)])
    schedule.arm(engine, cluster)
    result = IMapReduceRuntime(cluster, dfs).submit(make_job())
    # Read through DFS metadata: exact, and immune to fault events that
    # may still be pending after the job finished.
    state = {}
    for path in result.final_paths:
        if dfs.exists(path):
            state.update(dfs.file_info(path).records)
    return result, state


EXPECTED = {i: 1024.0 * 0.5**ITERATIONS for i in range(N_KEYS)}

#: The failure-free run takes ~7 virtual seconds; sample fault times
#: across (and beyond) the whole window so some land mid-checkpoint.
TIMES = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


@settings(max_examples=12, deadline=None)
@given(when=TIMES)
def test_recover_without_preceding_fail_is_noop(when):
    schedule = FaultSchedule([FaultEvent(round(when, 3), "node1", "recover")])
    result, state = run_with_schedule(schedule)
    assert state == EXPECTED
    assert result.recoveries == 0


@settings(max_examples=12, deadline=None)
@given(when=TIMES, gap=st.floats(min_value=0.0, max_value=2.0))
def test_double_fail_of_same_machine_is_idempotent(when, gap):
    t = round(when, 3)
    schedule = FaultSchedule(
        [FaultEvent(t, "node1", "fail"), FaultEvent(round(t + gap, 3), "node1", "fail")]
    )
    assert schedule.max_concurrent_failures() == 1
    _result, state = run_with_schedule(schedule)
    assert state == EXPECTED


@settings(max_examples=20, deadline=None)
@given(when=TIMES)
def test_fail_at_any_time_recovers_exact_result(when):
    # Checkpoint interval 1 keeps a checkpoint write in flight nearly
    # every iteration, so sampled times hit fail-during-checkpoint too.
    schedule = FaultSchedule([FaultEvent(round(when, 3), "node1", "fail")])
    _result, state = run_with_schedule(schedule)
    assert state == EXPECTED


@settings(max_examples=12, deadline=None)
@given(when=TIMES, downtime=st.floats(min_value=0.1, max_value=3.0))
def test_fail_then_recover_then_fail_again(when, downtime):
    t1 = round(when, 3)
    t2 = round(t1 + downtime, 3)
    t3 = round(t2 + downtime, 3)
    schedule = FaultSchedule(
        [
            FaultEvent(t1, "node2", "fail"),
            FaultEvent(t2, "node2", "recover"),
            FaultEvent(t3, "node2", "fail"),
        ]
    )
    assert schedule.max_concurrent_failures() == 1
    _result, state = run_with_schedule(schedule)
    assert state == EXPECTED


def test_schedule_helpers():
    schedule = FaultSchedule(
        [FaultEvent(2.0, "node1", "fail"), FaultEvent(1.0, "node2", "fail")]
    )
    assert [e.when for e in schedule.sorted_events()] == [1.0, 2.0]
    assert schedule.machines() == {"node1", "node2"}
    assert schedule.max_concurrent_failures() == 2
    assert schedule.without(0).machines() == {"node2"}
    assert "node2@1.00s" in schedule.describe()
    assert FaultSchedule().describe() == "(no faults)"


def test_arm_rejects_unknown_machine():
    from repro.common.errors import ClusterError

    engine = Engine()
    cluster = local_cluster(engine, 2)
    with pytest.raises(ClusterError):
        FaultSchedule([FaultEvent(1.0, "node9", "fail")]).arm(engine, cluster)
