"""Unit tests for the discrete-event engine core."""

import pytest

from repro.common.errors import SimulationError
from repro.simulation import Engine


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_clock():
    engine = Engine()
    t = engine.timeout(5.0)
    engine.run(t)
    assert engine.now == 5.0


def test_timeout_value_passthrough():
    engine = Engine()
    t = engine.timeout(1.0, value="hello")
    assert engine.run(t) == "hello"


def test_negative_timeout_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.timeout(-1.0)


def test_run_until_time_sets_clock():
    engine = Engine()
    engine.timeout(3.0)
    engine.run(until=10.0)
    assert engine.now == 10.0


def test_run_until_past_time_rejected():
    engine = Engine()
    engine.timeout(5.0)
    engine.run(until=5.0)
    with pytest.raises(SimulationError):
        engine.run(until=1.0)


def test_events_processed_in_time_order():
    engine = Engine()
    order = []
    for delay in (3.0, 1.0, 2.0):
        def body(d=delay):
            yield engine.timeout(d)
            order.append(d)
        engine.process(body())
    engine.run()
    assert order == [1.0, 2.0, 3.0]


def test_ties_broken_by_insertion_order():
    engine = Engine()
    order = []
    for tag in ("a", "b", "c"):
        def body(t=tag):
            yield engine.timeout(1.0)
            order.append(t)
        engine.process(body())
    engine.run()
    assert order == ["a", "b", "c"]


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Engine().step()


def test_run_until_untriggered_event_deadlock_detected():
    engine = Engine()
    ev = engine.event()
    with pytest.raises(SimulationError, match="deadlock"):
        engine.run(ev)


def test_manual_event_succeed():
    engine = Engine()
    ev = engine.event()

    def trigger():
        yield engine.timeout(2.0)
        ev.succeed(42)

    engine.process(trigger())
    assert engine.run(ev) == 42
    assert engine.now == 2.0


def test_event_double_trigger_rejected():
    engine = Engine()
    ev = engine.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_reraised_by_run():
    engine = Engine()
    ev = engine.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        engine.run(ev)


def test_unwaited_failure_surfaces():
    engine = Engine()
    ev = engine.event()
    ev.fail(RuntimeError("lost failure"))
    with pytest.raises(RuntimeError, match="lost failure"):
        engine.run()


def test_determinism_two_identical_runs():
    def build():
        engine = Engine()
        trace = []

        def worker(i):
            yield engine.timeout(i * 0.5)
            trace.append((engine.now, i))
            yield engine.timeout(1.0)
            trace.append((engine.now, -i))

        for i in range(5):
            engine.process(worker(i))
        engine.run()
        return trace

    assert build() == build()
