"""Unit tests for Resource and Store."""

import pytest

from repro.common.errors import SimulationError
from repro.simulation import Engine, Interrupt, Resource, Store


def test_resource_capacity_validation():
    with pytest.raises(SimulationError):
        Resource(Engine(), capacity=0)


def test_resource_serialises_users_beyond_capacity():
    engine = Engine()
    cpu = Resource(engine, capacity=1)
    finish_times = []

    def worker(i):
        yield from cpu.use(2.0)
        finish_times.append((i, engine.now))

    for i in range(3):
        engine.process(worker(i))
    engine.run()
    assert finish_times == [(0, 2.0), (1, 4.0), (2, 6.0)]


def test_resource_parallel_within_capacity():
    engine = Engine()
    cpu = Resource(engine, capacity=2)
    finish_times = []

    def worker(i):
        yield from cpu.use(2.0)
        finish_times.append((i, engine.now))

    for i in range(4):
        engine.process(worker(i))
    engine.run()
    assert finish_times == [(0, 2.0), (1, 2.0), (2, 4.0), (3, 4.0)]


def test_release_without_request_raises():
    with pytest.raises(SimulationError):
        Resource(Engine()).release()


def test_fifo_grant_order():
    engine = Engine()
    res = Resource(engine, capacity=1)
    order = []

    def worker(i):
        yield engine.timeout(i * 0.1)  # stagger arrival
        grant = res.request()
        yield grant
        order.append(i)
        yield engine.timeout(1.0)
        res.release()

    for i in range(4):
        engine.process(worker(i))
    engine.run()
    assert order == [0, 1, 2, 3]


def test_interrupted_waiter_does_not_leak_capacity():
    engine = Engine()
    res = Resource(engine, capacity=1)
    completed = []

    def holder():
        yield from res.use(5.0)
        completed.append("holder")

    def waiter():
        yield from res.use(5.0)
        completed.append("waiter")

    def late():
        yield engine.timeout(20.0)
        yield from res.use(1.0)
        completed.append("late")

    engine.process(holder())
    victim = engine.process(waiter())

    def killer():
        yield engine.timeout(1.0)
        victim.interrupt("die")

    engine.process(killer())
    engine.process(late())
    engine.run()
    assert completed == ["holder", "late"]
    assert res.in_use == 0


def test_store_put_then_get():
    engine = Engine()
    store = Store(engine)
    store.put("a")
    store.put("b")
    got = []

    def consumer():
        got.append((yield store.get()))
        got.append((yield store.get()))

    engine.process(consumer())
    engine.run()
    assert got == ["a", "b"]


def test_store_get_blocks_until_put():
    engine = Engine()
    store = Store(engine)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, engine.now))

    def producer():
        yield engine.timeout(3.0)
        store.put("x")

    engine.process(consumer())
    engine.process(producer())
    engine.run()
    assert got == [("x", 3.0)]


def test_store_multiple_getters_fifo():
    engine = Engine()
    store = Store(engine)
    got = []

    def consumer(i):
        item = yield store.get()
        got.append((i, item))

    for i in range(3):
        engine.process(consumer(i))

    def producer():
        yield engine.timeout(1.0)
        for item in "abc":
            store.put(item)

    engine.process(producer())
    engine.run()
    assert got == [(0, "a"), (1, "b"), (2, "c")]


def test_store_drain():
    engine = Engine()
    store = Store(engine)
    for i in range(5):
        store.put(i)
    assert store.drain() == [0, 1, 2, 3, 4]
    assert len(store) == 0
