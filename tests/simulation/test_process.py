"""Unit tests for simulated processes: return values, failures, interrupts."""

import pytest

from repro.common.errors import SimulationError
from repro.simulation import Engine, Interrupt


def test_process_return_value():
    engine = Engine()

    def body():
        yield engine.timeout(1.0)
        return "done"

    proc = engine.process(body())
    assert engine.run(proc) == "done"


def test_process_is_waitable_event():
    engine = Engine()

    def child():
        yield engine.timeout(2.0)
        return 7

    def parent():
        value = yield engine.process(child())
        return value + 1

    assert engine.run(engine.process(parent())) == 8
    assert engine.now == 2.0


def test_fork_join_with_all_of():
    engine = Engine()
    done = []

    def child(i):
        yield engine.timeout(float(i))
        done.append(i)
        return i * 10

    def parent():
        children = [engine.process(child(i)) for i in (3, 1, 2)]
        values = yield engine.all_of(children)
        return values

    assert engine.run(engine.process(parent())) == (30, 10, 20)
    assert done == [1, 2, 3]
    assert engine.now == 3.0


def test_any_of_returns_first():
    engine = Engine()

    def child(i):
        yield engine.timeout(float(i))
        return i

    def parent():
        procs = [engine.process(child(i)) for i in (5, 2, 8)]
        _event, value = yield engine.any_of(procs)
        return value

    proc = engine.process(parent())
    # Run everything so the slower children finish too.
    engine.run()
    assert proc.value == 2


def test_exception_in_process_propagates_to_waiter():
    engine = Engine()

    def child():
        yield engine.timeout(1.0)
        raise ValueError("child broke")

    def parent():
        try:
            yield engine.process(child())
        except ValueError as exc:
            return f"caught: {exc}"

    assert engine.run(engine.process(parent())) == "caught: child broke"


def test_uncaught_process_exception_raises_in_run():
    engine = Engine()

    def body():
        yield engine.timeout(1.0)
        raise RuntimeError("unhandled")

    proc = engine.process(body())
    with pytest.raises(RuntimeError, match="unhandled"):
        engine.run(proc)


def test_yield_non_event_fails_process():
    engine = Engine()

    def body():
        yield 42

    proc = engine.process(body())
    with pytest.raises(SimulationError, match="non-event"):
        engine.run(proc)


def test_interrupt_delivers_cause():
    engine = Engine()
    seen = []

    def victim():
        try:
            yield engine.timeout(100.0)
        except Interrupt as exc:
            seen.append((engine.now, exc.cause))

    def killer(proc):
        yield engine.timeout(5.0)
        proc.interrupt("migrate")

    proc = engine.process(victim())
    engine.process(killer(proc))
    engine.run()
    assert seen == [(5.0, "migrate")]


def test_interrupted_wait_does_not_resume_twice():
    engine = Engine()
    resumes = []

    def victim():
        try:
            yield engine.timeout(10.0)
            resumes.append("timeout")
            yield engine.timeout(20.0)
            resumes.append("after")
        except Interrupt:
            resumes.append("interrupt")

    def killer(proc):
        yield engine.timeout(10.0)  # same instant as the victim's timeout
        proc.interrupt(None)

    proc = engine.process(victim())
    engine.process(killer(proc))
    engine.run()
    # The victim's own timeout was inserted first, so it resumes once with
    # "timeout"; the interrupt then lands in the *next* wait.  Each wait
    # point resumes exactly once.
    assert resumes == ["timeout", "interrupt"]
    assert proc.triggered


def test_uncaught_interrupt_terminates_process_cleanly():
    engine = Engine()

    def victim():
        yield engine.timeout(100.0)
        return "never"

    def killer(proc):
        yield engine.timeout(1.0)
        proc.interrupt("killed")

    proc = engine.process(victim())
    engine.process(killer(proc))
    engine.run()
    assert proc.triggered and proc.ok
    assert proc.value == "killed"


def test_interrupt_finished_process_is_noop():
    engine = Engine()

    def body():
        yield engine.timeout(1.0)

    proc = engine.process(body())
    engine.run()
    proc.interrupt("late")  # must not raise
    engine.run()


def test_process_alive_flag():
    engine = Engine()

    def body():
        yield engine.timeout(2.0)

    proc = engine.process(body())
    assert proc.is_alive
    engine.run()
    assert not proc.is_alive
