"""Edge-case tests for events, conditions and the engine's introspection."""

import pytest

from repro.common.errors import SimulationError
from repro.simulation import AllOf, AnyOf, Engine


def test_peek_returns_next_event_time():
    engine = Engine()
    engine.timeout(5.0)
    engine.timeout(2.0)
    assert engine.peek() == 2.0


def test_peek_empty_queue_is_infinite():
    assert Engine().peek() == float("inf")


def test_all_of_empty_succeeds_immediately():
    engine = Engine()
    cond = engine.all_of([])
    assert cond.triggered
    assert cond.value == ()


def test_all_of_fails_fast_on_child_failure():
    engine = Engine()

    def good():
        yield engine.timeout(10.0)
        return "late"

    def bad():
        yield engine.timeout(1.0)
        raise ValueError("child failed")

    def parent():
        try:
            yield engine.all_of([engine.process(good()), engine.process(bad())])
        except ValueError as exc:
            return ("caught", str(exc), engine.now)

    proc = engine.process(parent())
    engine.run()
    assert proc.value == ("caught", "child failed", 1.0)


def test_all_of_value_order_matches_input_order():
    engine = Engine()

    def child(delay, tag):
        yield engine.timeout(delay)
        return tag

    def parent():
        return (
            yield engine.all_of(
                [engine.process(child(3, "a")), engine.process(child(1, "b"))]
            )
        )

    proc = engine.process(parent())
    engine.run()
    assert proc.value == ("a", "b")


def test_any_of_failure_propagates():
    engine = Engine()

    def bad():
        yield engine.timeout(1.0)
        raise RuntimeError("first failure")

    def parent():
        try:
            yield engine.any_of([engine.process(bad()), engine.timeout(5.0)])
        except RuntimeError:
            return "caught"

    proc = engine.process(parent())
    engine.run()
    assert proc.value == "caught"


def test_condition_rejects_foreign_engine_events():
    a, b = Engine(), Engine()
    with pytest.raises(SimulationError, match="two engines"):
        AllOf(a, [a.timeout(1.0), b.timeout(1.0)])


def test_condition_rejects_non_events():
    engine = Engine()
    with pytest.raises(SimulationError, match="non-event"):
        AnyOf(engine, [42])


def test_event_value_before_trigger_raises():
    engine = Engine()
    ev = engine.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_trigger_copies_outcome():
    engine = Engine()
    src = engine.event()
    dst = engine.event()
    src.succeed("payload")
    dst.trigger(src)
    engine.run()
    assert dst.ok and dst.value == "payload"


def test_callbacks_on_processed_event_fire_immediately():
    engine = Engine()
    ev = engine.event()
    ev.succeed(7)
    engine.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == [7]


def test_active_process_visible_during_resume():
    engine = Engine()
    observed = []

    def body():
        observed.append(engine.active_process)
        yield engine.timeout(1.0)

    proc = engine.process(body())
    engine.run()
    assert observed == [proc]
    assert engine.active_process is None
