"""Fixtures for algorithm tests."""

import pytest

from tests.algorithms.support import Rig


@pytest.fixture
def rig():
    return Rig()
