"""PageRank correctness: both engines vs numpy/networkx references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import pagerank
from repro.graph import pagerank_graph

from tests.algorithms.support import Rig

GRAPH = pagerank_graph(150, seed=21)
ITERS = 8


def run_imr(rig, graph, iterations, **kw):
    rig.ingest("/pr/state", pagerank.initial_state(graph))
    rig.ingest("/pr/static", pagerank.static_records(graph))
    job = pagerank.build_imr_job(
        graph.num_nodes,
        state_path="/pr/state",
        static_path="/pr/static",
        output_path="/out/pr",
        max_iterations=iterations,
        **kw,
    )
    result = rig.imr.submit(job)
    return dict(rig.read(result.final_paths)), result


def run_mr(rig, graph, iterations, threshold=None):
    rig.ingest("/pr/in", pagerank.mr_initial_records(graph))
    spec = pagerank.build_mr_spec(
        graph.num_nodes,
        output_prefix="/mr/pr",
        max_iterations=iterations,
        threshold=threshold,
    )
    result = rig.driver.run(spec, ["/pr/in"])
    state = {k: v[0] for k, v in rig.read(result.final_paths)}
    return state, result


def as_array(state, n):
    return np.array([state[u] for u in range(n)])


def test_imr_matches_reference_iterations(rig):
    state, _ = run_imr(rig, GRAPH, ITERS)
    expected = pagerank.reference_iterations(GRAPH, ITERS)
    np.testing.assert_allclose(as_array(state, GRAPH.num_nodes), expected, rtol=1e-12)


def test_mr_matches_reference_iterations(rig):
    state, _ = run_mr(rig, GRAPH, ITERS)
    expected = pagerank.reference_iterations(GRAPH, ITERS)
    np.testing.assert_allclose(as_array(state, GRAPH.num_nodes), expected, rtol=1e-12)


def test_engines_agree(rig):
    mr_state, _ = run_mr(rig, GRAPH, ITERS)
    imr_state, _ = run_imr(Rig(), GRAPH, ITERS)
    np.testing.assert_allclose(
        as_array(mr_state, GRAPH.num_nodes),
        as_array(imr_state, GRAPH.num_nodes),
        rtol=1e-12,
    )


def test_converged_matches_networkx(rig):
    state, result = run_imr(rig, GRAPH, 200, threshold=1e-10)
    assert result.converged
    ours = as_array(state, GRAPH.num_nodes)
    theirs = pagerank.reference_networkx(GRAPH)
    # networkx normalises to sum 1; our Eq. 1 fixed point also sums to ~1
    # on dangling-free graphs.
    np.testing.assert_allclose(ours / ours.sum(), theirs, atol=1e-6)


def test_total_rank_conserved_without_dangling(rig):
    state, _ = run_imr(rig, GRAPH, ITERS)
    total = sum(state.values())
    assert total == pytest.approx(1.0, abs=1e-9)


def test_combiner_variant_is_exact(rig):
    state, _ = run_imr(rig, GRAPH, ITERS, combiner=True)
    expected = pagerank.reference_iterations(GRAPH, ITERS)
    np.testing.assert_allclose(
        as_array(state, GRAPH.num_nodes), expected, rtol=1e-9
    )


def test_ranks_positive_and_bounded(rig):
    state, _ = run_imr(rig, GRAPH, ITERS)
    n = GRAPH.num_nodes
    for rank in state.values():
        assert (1.0 - pagerank.DAMPING) / n <= rank < 1.0


def test_distance_decreases_monotonically(rig):
    _, result = run_imr(rig, GRAPH, 12, threshold=1e-12)
    distances = [it.distance for it in result.metrics.iterations]
    assert all(b < a for a, b in zip(distances[1:], distances[2:]))


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    iters=st.integers(min_value=1, max_value=5),
)
def test_property_imr_equals_reference_on_random_graphs(seed, iters):
    graph = pagerank_graph(50, seed=seed)
    state, _ = run_imr(Rig(), graph, iters)
    expected = pagerank.reference_iterations(graph, iters)
    np.testing.assert_allclose(
        as_array(state, graph.num_nodes), expected, rtol=1e-9
    )
