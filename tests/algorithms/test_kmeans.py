"""K-means correctness: engines vs the Lloyd reference, combiner
equivalence, and the §5.3 convergence-detection variants."""

import numpy as np
import pytest

from repro.algorithms import kmeans
from repro.data import load_lastfm

from tests.algorithms.support import Rig

DATA = load_lastfm(num_users=240, num_artists=400, num_tastes=4, seed=13)
K = 4
ITERS = 5
CENTROIDS = kmeans.initial_centroids(DATA, K, seed=3)


def centroid_array(state, k, dim):
    out = np.zeros((k, dim))
    for cid, value in state:
        out[cid] = kmeans._centroid_of(value)
    return out


def run_imr(rig, iterations, **kw):
    rig.ingest("/km/centroids", CENTROIDS)
    rig.ingest("/km/points", DATA.user_records())
    job = kmeans.build_imr_job(
        state_path="/km/centroids",
        static_path="/km/points",
        output_path="/out/km",
        max_iterations=iterations,
        **kw,
    )
    result = rig.imr.submit(job)
    return rig.read(result.final_paths), result


def run_mr(rig, iterations, **kw):
    rig.ingest("/km/centroids", CENTROIDS)
    rig.ingest("/km/points", DATA.user_records())
    spec = kmeans.build_mr_spec(
        points_path="/km/points",
        output_prefix="/mr/km",
        max_iterations=iterations,
        **kw,
    )
    result = rig.driver.run(spec, ["/km/centroids"])
    return rig.read(result.final_paths), result


def test_imr_matches_lloyd_reference(rig):
    state, _ = run_imr(rig, ITERS)
    expected, _assign = kmeans.reference_lloyd(DATA, CENTROIDS, ITERS)
    got = centroid_array(state, K, DATA.num_artists)
    want = centroid_array(expected, K, DATA.num_artists)
    np.testing.assert_allclose(got, want, rtol=1e-9)


def test_mr_matches_lloyd_reference(rig):
    state, _ = run_mr(rig, ITERS)
    expected, _assign = kmeans.reference_lloyd(DATA, CENTROIDS, ITERS)
    got = centroid_array(state, K, DATA.num_artists)
    want = centroid_array(expected, K, DATA.num_artists)
    np.testing.assert_allclose(got, want, rtol=1e-9)


def test_engines_agree(rig):
    mr_state, _ = run_mr(rig, ITERS)
    imr_state, _ = run_imr(Rig(), ITERS)
    np.testing.assert_allclose(
        centroid_array(mr_state, K, DATA.num_artists),
        centroid_array(imr_state, K, DATA.num_artists),
        rtol=1e-9,
    )


def test_combiner_is_exact_and_reduces_shuffle(rig):
    plain_state, plain = run_imr(rig, ITERS)
    combined_state, combined = run_imr(Rig(), ITERS, combiner=True)
    np.testing.assert_allclose(
        centroid_array(plain_state, K, DATA.num_artists),
        centroid_array(combined_state, K, DATA.num_artists),
        rtol=1e-9,
    )
    assert (
        combined.metrics.total_shuffle_bytes < plain.metrics.total_shuffle_bytes
    )


def test_clusters_recover_ground_truth_tastes(rig):
    """After convergence most users of one taste share a cluster."""
    _, _ = run_imr(rig, 1)  # warm: ensures pipeline works with 1 iteration
    _centroids, assignment = kmeans.reference_lloyd(DATA, CENTROIDS, 10)
    agreement = 0
    for taste in range(DATA.num_tastes):
        members = assignment[DATA.taste == taste]
        if len(members) == 0:
            continue
        _, counts = np.unique(members, return_counts=True)
        agreement += counts.max()
    assert agreement / DATA.num_users > 0.7


def test_membership_tracking_state(rig):
    state, _ = run_imr(rig, 2, track_membership=True)
    total_members = 0
    for _cid, (centroid, members) in state:
        assert isinstance(centroid, np.ndarray)
        total_members += len(members)
    assert total_members == DATA.num_users


def test_aux_convergence_detection(rig):
    aux = kmeans.make_convergence_aux(move_threshold=3, num_tasks=1)
    state, result = run_imr(rig, 30, track_membership=True, aux=aux)
    assert result.terminated_by == "aux"
    assert result.iterations_run < 30


def test_mr_convergence_detection_job(rig):
    _, result = run_mr(rig, 30, move_threshold=3)
    assert result.converged
    assert result.iterations_run < 30


def test_empty_cluster_keeps_old_centroid(rig):
    # Centroid far outside the data keeps its position.
    far = [(cid, vec) for cid, vec in CENTROIDS[:-1]]
    outlier = np.full(DATA.num_artists, 1e6)
    far.append((K - 1, outlier))
    rig.ingest("/km/centroids2", far)
    rig.ingest("/km/points", DATA.user_records())
    job = kmeans.build_imr_job(
        state_path="/km/centroids2",
        static_path="/km/points",
        output_path="/out/km2",
        max_iterations=2,
    )
    result = rig.imr.submit(job)
    state = dict(rig.read(result.final_paths))
    np.testing.assert_allclose(state[K - 1], outlier)
