"""The baselines' map-side combiners must be exact and cut shuffle volume."""

import numpy as np
import pytest

from repro.algorithms import pagerank, sssp
from repro.graph import pagerank_graph, sssp_graph

from tests.algorithms.support import Rig

SSSP_GRAPH = sssp_graph(100, seed=31)
PR_GRAPH = pagerank_graph(100, seed=31)
ITERS = 5


def run_sssp(combiner):
    rig = Rig()
    rig.ingest("/in", sssp.mr_initial_records(SSSP_GRAPH, 0))
    spec = sssp.build_mr_spec(
        output_prefix="/mr", max_iterations=ITERS, combiner=combiner
    )
    result = rig.driver.run(spec, ["/in"])
    state = {k: v[0] for k, v in rig.read(result.final_paths)}
    return state, result


def run_pagerank(combiner):
    rig = Rig()
    rig.ingest("/in", pagerank.mr_initial_records(PR_GRAPH))
    spec = pagerank.build_mr_spec(
        PR_GRAPH.num_nodes,
        output_prefix="/mr",
        max_iterations=ITERS,
        combiner=combiner,
    )
    result = rig.driver.run(spec, ["/in"])
    state = {k: v[0] for k, v in rig.read(result.final_paths)}
    return state, result


def test_sssp_mr_combiner_exact():
    plain, _ = run_sssp(False)
    combined, _ = run_sssp(True)
    assert plain == combined
    expected = sssp.reference_iterations(SSSP_GRAPH, 0, ITERS)
    got = np.array([combined[u] for u in range(SSSP_GRAPH.num_nodes)])
    np.testing.assert_allclose(got, expected)


def test_sssp_mr_combiner_reduces_shuffle():
    _, plain = run_sssp(False)
    _, combined = run_sssp(True)
    assert combined.metrics.total_shuffle_bytes < plain.metrics.total_shuffle_bytes


def test_pagerank_mr_combiner_exact():
    plain, _ = run_pagerank(False)
    combined, _ = run_pagerank(True)
    got_p = np.array([plain[u] for u in range(PR_GRAPH.num_nodes)])
    got_c = np.array([combined[u] for u in range(PR_GRAPH.num_nodes)])
    np.testing.assert_allclose(got_c, got_p, rtol=1e-12)
    expected = pagerank.reference_iterations(PR_GRAPH, ITERS)
    np.testing.assert_allclose(got_c, expected, rtol=1e-9)


def test_pagerank_mr_combiner_reduces_shuffle():
    _, plain = run_pagerank(False)
    _, combined = run_pagerank(True)
    assert combined.metrics.total_shuffle_bytes < plain.metrics.total_shuffle_bytes
