"""Connected components correctness vs scipy/networkx."""

import numpy as np
import pytest

from repro.algorithms import components
from repro.graph import Digraph, lognormal_graph

from tests.algorithms.support import Rig

# A sparse directed graph with several weak components.
GRAPH = Digraph.from_edges(
    12,
    [(0, 1), (1, 2), (2, 0), (3, 4), (5, 4), (6, 7), (8, 9), (9, 10)],
)


def run_imr(rig, graph, max_iterations=None, converge=True):
    rig.ingest("/cc/state", components.initial_state(graph))
    rig.ingest("/cc/static", components.static_records(graph))
    job = components.build_imr_job(
        state_path="/cc/state",
        static_path="/cc/static",
        output_path="/cc/out",
        max_iterations=max_iterations or 50,
        converge=converge,
    )
    result = rig.imr.submit(job)
    state = dict(rig.read(result.final_paths))
    return np.array([state[u] for u in range(graph.num_nodes)]), result


def test_matches_scipy_components(rig):
    labels, result = run_imr(rig, GRAPH)
    expected = components.reference_components(GRAPH)
    np.testing.assert_array_equal(labels, expected)
    assert result.converged


def test_isolated_nodes_keep_own_label(rig):
    labels, _ = run_imr(rig, GRAPH)
    assert labels[11] == 11


def test_matches_networkx_weak_components(rig):
    import networkx as nx

    labels, _ = run_imr(rig, GRAPH)
    for component in nx.weakly_connected_components(GRAPH.to_networkx()):
        members = sorted(component)
        assert {labels[u] for u in members} == {min(members)}


def test_fixed_iterations_match_reference(rig):
    labels, _ = run_imr(rig, GRAPH, max_iterations=2, converge=False)
    expected = components.reference_iterations(GRAPH, 2)
    np.testing.assert_array_equal(labels, expected)


def test_random_graph_converges_to_exact_components(rig):
    graph = lognormal_graph(80, degree_mu=0.0, degree_sigma=0.8, seed=23)
    labels, result = run_imr(rig, graph)
    expected = components.reference_components(graph)
    np.testing.assert_array_equal(labels, expected)


def test_symmetrised_static_records():
    records = dict(components.static_records(GRAPH))
    assert 1 in records[0] and 0 in records[1]  # both directions present
    assert records[11] == ()


def test_change_distance_semantics():
    assert components.change_distance(0, None, 5) == 1.0
    assert components.change_distance(0, 5, 5) == 0.0
    assert components.change_distance(0, 5, 3) == 1.0
