"""Shared fixtures for algorithm tests: a small cluster + DFS, plus
helpers to run both engines and read results back."""


from repro.cluster import local_cluster
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime
from repro.mapreduce import IterativeDriver, MapReduceRuntime
from repro.simulation import Engine


class Rig:
    """One simulated cluster with both engines attached."""

    def __init__(self, nodes=4, block_size=256 * 1024, replication=2):
        self.engine = Engine()
        self.cluster = local_cluster(self.engine, nodes)
        self.dfs = DFS(self.cluster, block_size=block_size, replication=replication)
        self.mr = MapReduceRuntime(self.cluster, self.dfs)
        self.driver = IterativeDriver(self.mr)
        self.imr = IMapReduceRuntime(self.cluster, self.dfs)

    def ingest(self, path, records):
        self.dfs.ingest(path, records)

    def read(self, paths, reader="node0"):
        def body():
            acc = []
            for path in paths:
                acc.extend((yield from self.dfs.read_all(path, reader)))
            return acc

        return self.engine.run(self.engine.process(body()))


