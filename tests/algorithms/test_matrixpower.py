"""Matrix power correctness: the two-phase job vs numpy."""

import numpy as np
import pytest

from repro.algorithms import matrixpower as mp

from tests.algorithms.support import Rig


def make_matrix(n=8, seed=5):
    rng = np.random.default_rng(seed)
    # Keep entries small so powers stay well-conditioned.
    return rng.uniform(-0.5, 0.5, size=(n, n))


M = make_matrix()


def run_imr(rig, iterations, matrix=M):
    rig.ingest("/mp/state", mp.matrix_to_state_records(matrix))
    rig.ingest("/mp/static", mp.matrix_to_column_records(matrix))
    job = mp.build_imr_job(
        state_path="/mp/state",
        static_path="/mp/static",
        output_path="/out/mp",
        max_iterations=iterations,
    )
    result = rig.imr.submit(job)
    records = rig.read(result.final_paths)
    return mp.records_to_matrix(records, matrix.shape), result


def run_mr(rig, iterations, matrix=M):
    rig.ingest("/mp/m", mp.matrix_to_mr_records(matrix, "M"))
    rig.ingest("/mp/n", mp.matrix_to_mr_records(matrix, "N"))
    spec = mp.build_mr_spec(
        m_path="/mp/m", output_prefix="/mr/mp", max_iterations=iterations
    )
    result = rig.driver.run(spec, ["/mp/n"])
    records = rig.read(result.final_paths)
    return mp.mr_records_to_matrix(records, matrix.shape), result


@pytest.mark.parametrize("iterations", [1, 2, 3])
def test_imr_matches_numpy_power(rig, iterations):
    got, _ = run_imr(rig, iterations)
    want = mp.reference_power(M, iterations + 1)  # N starts at M^1
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("iterations", [1, 2])
def test_mr_matches_numpy_power(rig, iterations):
    got, _ = run_mr(rig, iterations)
    want = mp.reference_power(M, iterations + 1)
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)


def test_engines_agree(rig):
    imr, _ = run_imr(rig, 2)
    mr, _ = run_mr(Rig(), 2)
    np.testing.assert_allclose(imr, mr, rtol=1e-9, atol=1e-12)


def test_identity_matrix_fixed_point(rig):
    eye = np.eye(6)
    got, _ = run_imr(rig, 3, matrix=eye)
    np.testing.assert_allclose(got, eye)


def test_records_roundtrip():
    records = mp.matrix_to_state_records(M)
    np.testing.assert_allclose(mp.records_to_matrix(records, M.shape), M)
    mr_records = mp.matrix_to_mr_records(M, "N")
    np.testing.assert_allclose(mp.mr_records_to_matrix(mr_records, M.shape), M)


def test_column_records_shape():
    cols = mp.matrix_to_column_records(M)
    assert len(cols) == M.shape[1]
    j, column = cols[3]
    assert j == 3
    np.testing.assert_allclose([v for _i, v in column], M[:, 3])
