"""Jacobi correctness: the one-to-all engine vs numpy references."""

import numpy as np
import pytest

from repro.algorithms import jacobi
from repro.imapreduce import run_local

from tests.algorithms.support import Rig

A, B = jacobi.make_system(60, seed=9)
ITERS = 8


def run_imr(rig, iterations, threshold=None):
    rig.ingest("/j/state", jacobi.initial_state(len(B)))
    rig.ingest("/j/static", jacobi.system_to_static_records(A, B))
    job = jacobi.build_imr_job(
        state_path="/j/state",
        static_path="/j/static",
        output_path="/j/out",
        max_iterations=iterations,
        threshold=threshold,
    )
    result = rig.imr.submit(job)
    state = dict(rig.read(result.final_paths))
    return np.array([state[i] for i in range(len(B))]), result


def test_system_is_diagonally_dominant():
    diag = np.abs(np.diag(A))
    off = np.abs(A).sum(axis=1) - diag
    assert (diag > off).all()


def test_imr_matches_reference_iterations(rig):
    x, _ = run_imr(rig, ITERS)
    expected = jacobi.reference_iterations(A, B, ITERS)
    np.testing.assert_allclose(x, expected, rtol=1e-10)


def test_matches_local_reference(rig):
    x, _ = run_imr(rig, 5)
    local = run_local(
        jacobi.build_imr_job(
            state_path="/j/state",
            static_path="/j/static",
            output_path="/j/out",
            max_iterations=5,
        ),
        jacobi.initial_state(len(B)),
        {"/j/static": jacobi.system_to_static_records(A, B)},
        num_pairs=4,
    )
    np.testing.assert_allclose(x, [v for _, v in local.state], rtol=1e-12)


def test_converges_to_linear_system_solution(rig):
    x, result = run_imr(rig, 200, threshold=1e-12)
    assert result.converged
    np.testing.assert_allclose(x, jacobi.reference_solution(A, B), atol=1e-9)


def test_distance_decreases(rig):
    _, result = run_imr(rig, 10, threshold=0.0)
    distances = [it.distance for it in result.metrics.iterations]
    assert distances[0] > distances[-1]
    assert all(d >= 0 for d in distances)


def test_static_records_shape():
    records = jacobi.system_to_static_records(A, B)
    assert len(records) == len(B)
    i, (d_ii, b_i, off) = records[0]
    assert i == 0
    assert d_ii == A[0, 0]
    assert b_i == B[0]
    assert all(j != 0 for j, _ in off)
