"""Tests for the input-preparation helpers."""

import math

import pytest

from repro.algorithms import prepare_pagerank_inputs, prepare_sssp_inputs
from repro.cluster import local_cluster
from repro.dfs import DFS
from repro.graph import format_adjacency_lines, pagerank_graph, sssp_graph
from repro.simulation import Engine


def make_dfs():
    engine = Engine()
    return DFS(local_cluster(engine), replication=2)


def test_prepare_sssp_from_graph():
    dfs = make_dfs()
    graph = sssp_graph(30, seed=1)
    state_path, static_path = prepare_sssp_inputs(dfs, graph, source=3)
    state = dict(dfs.file_info(state_path).records)
    assert state[3] == 0.0
    assert state[0] == math.inf
    assert dfs.file_info(static_path).num_records == 30


def test_prepare_sssp_from_text_lines():
    graph = sssp_graph(20, seed=2)
    lines = format_adjacency_lines(graph)
    dfs = make_dfs()
    state_path, static_path = prepare_sssp_inputs(dfs, lines, source=0)
    assert dfs.file_info(state_path).num_records == 20
    assert dfs.file_info(static_path).num_records == 20


def test_prepare_sssp_validates_source():
    dfs = make_dfs()
    with pytest.raises(ValueError, match="source"):
        prepare_sssp_inputs(dfs, sssp_graph(10, seed=1), source=10)


def test_prepare_pagerank():
    dfs = make_dfs()
    graph = pagerank_graph(25, seed=1)
    state_path, static_path, n = prepare_pagerank_inputs(dfs, graph)
    assert n == 25
    state = dict(dfs.file_info(state_path).records)
    assert state[0] == pytest.approx(1 / 25)
    assert dfs.file_info(static_path).num_records == 25


def test_custom_prefix_and_overwrite():
    dfs = make_dfs()
    graph = pagerank_graph(10, seed=1)
    paths1 = prepare_pagerank_inputs(dfs, graph, prefix="/a")
    assert paths1[0] == "/a/state"
    from repro.common.errors import FileAlreadyExists

    with pytest.raises(FileAlreadyExists):
        prepare_pagerank_inputs(dfs, graph, prefix="/a")
    prepare_pagerank_inputs(dfs, graph, prefix="/a", overwrite=True)


def test_end_to_end_with_prepared_inputs():
    """The helper's outputs plug straight into the job builders."""
    from repro.algorithms import sssp
    from repro.imapreduce import IMapReduceRuntime

    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    graph = sssp_graph(30, seed=5)
    state_path, static_path = prepare_sssp_inputs(dfs, graph, source=0)
    job = sssp.build_imr_job(
        state_path=state_path,
        static_path=static_path,
        output_path="/out",
        max_iterations=3,
    )
    result = IMapReduceRuntime(cluster, dfs).submit(job)
    assert result.iterations_run == 3
