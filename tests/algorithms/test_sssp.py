"""SSSP correctness: both engines vs numpy/scipy/networkx references."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import sssp
from repro.graph import sssp_graph

from tests.algorithms.support import Rig

GRAPH = sssp_graph(120, seed=11)
SOURCE = 0
ITERS = 6


def run_imr(rig, graph, source, iterations, **kw):
    rig.ingest("/sssp/state", sssp.initial_state(graph, source))
    rig.ingest("/sssp/static", sssp.static_records(graph))
    job = sssp.build_imr_job(
        state_path="/sssp/state",
        static_path="/sssp/static",
        output_path="/out/sssp",
        max_iterations=iterations,
        **kw,
    )
    result = rig.imr.submit(job)
    return dict(rig.read(result.final_paths)), result


def run_mr(rig, graph, source, iterations, threshold=None):
    rig.ingest("/sssp/in", sssp.mr_initial_records(graph, source))
    spec = sssp.build_mr_spec(
        output_prefix="/mr/sssp", max_iterations=iterations, threshold=threshold
    )
    result = rig.driver.run(spec, ["/sssp/in"])
    state = {k: v[0] for k, v in rig.read(result.final_paths)}
    return state, result


def as_array(state, n):
    return np.array([state.get(u, math.inf) for u in range(n)])


def test_imr_matches_reference_iterations(rig):
    state, _ = run_imr(rig, GRAPH, SOURCE, ITERS)
    expected = sssp.reference_iterations(GRAPH, SOURCE, ITERS)
    np.testing.assert_allclose(as_array(state, GRAPH.num_nodes), expected)


def test_mr_matches_reference_iterations(rig):
    state, _ = run_mr(rig, GRAPH, SOURCE, ITERS)
    expected = sssp.reference_iterations(GRAPH, SOURCE, ITERS)
    np.testing.assert_allclose(as_array(state, GRAPH.num_nodes), expected)


def test_both_engines_agree_exactly(rig):
    mr_state, _ = run_mr(rig, GRAPH, SOURCE, ITERS)
    rig2 = Rig()
    imr_state, _ = run_imr(rig2, GRAPH, SOURCE, ITERS)
    assert mr_state == imr_state


def test_converged_run_matches_dijkstra(rig):
    # Enough iterations for full convergence on a 120-node graph.
    state, result = run_imr(rig, GRAPH, SOURCE, 40, threshold=0.0)
    exact = sssp.reference_exact(GRAPH, SOURCE)
    np.testing.assert_allclose(as_array(state, GRAPH.num_nodes), exact)
    assert result.converged


def test_converged_run_matches_networkx(rig):
    import networkx as nx

    state, _ = run_imr(rig, GRAPH, SOURCE, 40, threshold=0.0)
    lengths = nx.single_source_dijkstra_path_length(GRAPH.to_networkx(), SOURCE)
    for node, dist in lengths.items():
        assert state[node] == pytest.approx(dist)


def test_unreachable_nodes_stay_infinite(rig):
    from repro.graph import Digraph

    # 0 -> 1, and isolated node 2 (self-contained component).
    graph = Digraph.from_edges(3, [(0, 1), (2, 1)], [1.0, 1.0])
    state, _ = run_imr(rig, graph, 0, 4)
    assert state[0] == 0.0
    assert state[1] == 1.0
    assert state[2] == math.inf


def test_combiner_variant_is_exact(rig):
    state, _ = run_imr(rig, GRAPH, SOURCE, ITERS, combiner=True)
    expected = sssp.reference_iterations(GRAPH, SOURCE, ITERS)
    np.testing.assert_allclose(as_array(state, GRAPH.num_nodes), expected)


def test_distance_threshold_stops_after_convergence(rig):
    _, result = run_imr(rig, GRAPH, SOURCE, 60, threshold=0.0)
    # Must stop well before 60 iterations on a 120-node graph.
    assert result.iterations_run < 60
    assert result.terminated_by == "threshold"


def test_manhattan_distance_infinity_semantics():
    assert sssp.manhattan_distance(0, math.inf, math.inf) == 0.0
    assert sssp.manhattan_distance(0, math.inf, 3.0) == math.inf
    assert sssp.manhattan_distance(0, 3.0, 2.0) == 1.0
    assert sssp.manhattan_distance(0, None, math.inf) == 0.0
    assert sssp.manhattan_distance(0, None, 2.0) == 2.0


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    iters=st.integers(min_value=1, max_value=5),
)
def test_property_imr_equals_reference_on_random_graphs(seed, iters):
    graph = sssp_graph(40, seed=seed)
    rig = Rig()
    state, _ = run_imr(rig, graph, 0, iters)
    expected = sssp.reference_iterations(graph, 0, iters)
    np.testing.assert_allclose(as_array(state, graph.num_nodes), expected)
