"""Unit tests for greedy campaign shrinking."""

import pytest

from repro.cluster import FaultEvent
from repro.testing import CampaignSpec, generate_campaign, shrink, shrink_candidates
from repro.testing.shrink import (
    MIN_CLUSTER_NODES,
    MIN_INPUT_SIZE,
    MIN_ITERATIONS,
    MIN_PAIRS,
    NEUTRAL_BUFFER,
)


def big_spec(**overrides):
    base = CampaignSpec(
        seed=1,
        workload="sssp",
        input_size=24,
        cluster_nodes=5,
        speeds=(1.2, 0.8, 1.0, 1.1, 0.9),
        num_pairs=5,
        max_iterations=4,
        sync=False,
        combiner=True,
        migration=True,
        checkpoint_interval=2,
        buffer_records=4,
        faults=(
            FaultEvent(3.0, "hnode1", "fail"),
            FaultEvent(6.0, "hnode1", "recover"),
        ),
    )
    return base.but(**overrides)


def test_candidates_stay_in_envelope_or_are_skippable():
    spec = big_spec()
    spec.validate()
    for candidate in shrink_candidates(spec):
        try:
            candidate.validate()
        except ValueError:
            continue  # shrink() skips these; they just must not crash


def test_candidates_drop_later_faults_first():
    spec = big_spec()
    first, second = list(shrink_candidates(spec))[:2]
    assert first.faults == spec.faults[:1]  # recover event dropped first
    assert second.faults == spec.faults[1:]


def test_shrink_reaches_minimum_when_everything_fails():
    shrunk, attempts = shrink(big_spec(), lambda s: True)
    assert shrunk.faults == ()
    assert shrunk.input_size == MIN_INPUT_SIZE
    assert shrunk.max_iterations == MIN_ITERATIONS
    assert shrunk.num_pairs == MIN_PAIRS
    assert shrunk.cluster_nodes == MIN_CLUSTER_NODES
    assert shrunk.speeds is None
    assert not shrunk.migration and not shrunk.combiner
    assert shrunk.buffer_records == NEUTRAL_BUFFER
    assert attempts > 0
    # Local minimum: no candidate of the result still "fails" un-tried.
    assert all(c == shrunk for c in shrink_candidates(shrunk)) or not list(
        shrink_candidates(shrunk)
    )


def test_shrink_preserves_the_failing_ingredient():
    # The "bug" needs a fault event: the shrunk spec must keep one.
    shrunk, _ = shrink(big_spec(), lambda s: len(s.faults) > 0)
    assert len(shrunk.faults) == 1
    # ...and everything unrelated was still minimized.
    assert shrunk.input_size == MIN_INPUT_SIZE
    assert shrunk.max_iterations == MIN_ITERATIONS


def test_shrink_renames_fault_machines_when_dropping_heterogeneity():
    shrunk, _ = shrink(big_spec(), lambda s: len(s.faults) > 0)
    assert shrunk.speeds is None
    assert all(f.machine.startswith("node") for f in shrunk.faults)
    shrunk.validate()


def test_shrink_returns_spec_unchanged_when_nothing_simpler_fails():
    spec = big_spec()
    shrunk, attempts = shrink(spec, lambda s: s == spec)
    assert shrunk == spec
    assert attempts == len(
        [c for c in shrink_candidates(spec) if _valid(c)]
    )


def _valid(candidate):
    try:
        candidate.validate()
        return True
    except ValueError:
        return False


def test_shrink_respects_attempt_budget():
    calls = []

    def predicate(s):
        calls.append(s)
        return True

    shrink(big_spec(), predicate, max_attempts=3)
    assert len(calls) <= 3


def test_generated_campaigns_shrink_without_error():
    for seed in (11, 22, 33):
        spec = generate_campaign(seed)
        shrunk, _ = shrink(spec, lambda s: True)
        shrunk.validate()


def test_candidates_neutralize_kernel_dimension():
    spec = big_spec(use_kernels=True)
    assert any(not c.use_kernels for c in shrink_candidates(spec))
    # And never the other way around: shrinking must not *add* kernels.
    plain = big_spec(use_kernels=False)
    assert all(not c.use_kernels for c in shrink_candidates(plain))


def test_candidates_neutralize_async_dimension():
    spec = big_spec(async_mode=True)
    assert any(not c.async_mode for c in shrink_candidates(spec))
    # Shrinking must never *add* the async dimension.
    plain = big_spec(async_mode=False)
    assert all(not c.async_mode for c in shrink_candidates(plain))
