"""Unit tests for each chaos oracle and the comparison helpers."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.metrics.trace import TraceEvent
from repro.testing.oracles import (
    ALL_ORACLES,
    evaluate_oracles,
    oracle_checkpoint_rollback,
    oracle_differential,
    oracle_parallel_differential,
    oracle_termination,
    oracle_trace_well_formed,
    records_identical,
    states_match,
    values_close,
    values_identical,
)


def spec(max_iterations=5, checkpoint_interval=2):
    return SimpleNamespace(
        max_iterations=max_iterations, checkpoint_interval=checkpoint_interval
    )


def outcome(**kw):
    base = dict(
        error=None,
        result=SimpleNamespace(iterations_run=3, terminated_by="max-iterations"),
        reference=SimpleNamespace(
            iterations_run=3, terminated_by="max-iterations", state=[]
        ),
        final_state=[],
        trace_events=[],
        parallel_result=None,
        parallel_error=None,
    )
    base.update(kw)
    return SimpleNamespace(**base)


# ---------------------------------------------------------- values_close --
def test_values_close_exact_and_tolerant():
    assert values_close(3, 3)
    assert values_close(1.0, 1.0 + 1e-12)
    assert not values_close(1.0, 1.1)
    assert values_close(float("inf"), float("inf"))
    assert not values_close(float("inf"), 1.0)


def test_values_close_sequences_and_arrays():
    assert values_close([1.0, (2.0, 3.0)], [1.0 + 1e-12, (2.0, 3.0)])
    assert not values_close([1.0, 2.0], [1.0])
    assert values_close(np.array([1.0, 2.0]), np.array([1.0, 2.0 + 1e-12]))
    assert not values_close(np.array([1.0]), np.array([1.0, 2.0]))


def test_values_close_non_numeric():
    assert values_close("a", "a")
    assert not values_close("a", "b")


# ---------------------------------------------------------- states_match --
def test_states_match_identical():
    state = [(0, 1.0), (1, 2.0)]
    assert states_match(state, state) == []


def test_states_match_reports_each_difference_kind():
    ref = [(0, 1.0), (1, 2.0)]
    assert any("missing" in p for p in states_match([(0, 1.0)], ref))
    assert any(
        "unexpected" in p for p in states_match([(0, 1.0), (1, 2.0), (2, 9.0)], ref)
    )
    assert any("diverge" in p for p in states_match([(0, 1.0), (1, 2.5)], ref))
    assert any(
        "duplicate" in p for p in states_match([(0, 1.0), (0, 1.0), (1, 2.0)], ref)
    )


# ---------------------------------------------------- oracle: termination --
def test_termination_passes_clean_run():
    assert oracle_termination(spec(), outcome()) == []


def test_termination_flags_error_and_missing_result():
    v = oracle_termination(spec(), outcome(error=RuntimeError("boom")))
    assert [x.oracle for x in v] == ["termination"]
    v = oracle_termination(spec(), outcome(result=None))
    assert [x.oracle for x in v] == ["termination"]


def test_termination_flags_budget_overrun():
    over = outcome(result=SimpleNamespace(iterations_run=9, terminated_by="x"))
    assert oracle_termination(spec(max_iterations=5), over)


# --------------------------------------------------- oracle: differential --
def test_differential_passes_matching_states():
    ok = outcome(
        final_state=[(0, 1.0)],
        reference=SimpleNamespace(
            iterations_run=3, terminated_by="max-iterations", state=[(0, 1.0)]
        ),
    )
    assert oracle_differential(spec(), ok) == []


def test_differential_defers_to_termination_on_error():
    assert oracle_differential(spec(), outcome(error=RuntimeError("x"))) == []


def test_differential_flags_metadata_and_state_divergence():
    bad = outcome(
        result=SimpleNamespace(iterations_run=2, terminated_by="threshold"),
        final_state=[(0, 1.0)],
        reference=SimpleNamespace(
            iterations_run=3, terminated_by="max-iterations", state=[(0, 2.0)]
        ),
    )
    details = [v.detail for v in oracle_differential(spec(), bad)]
    assert any("terminated_by" in d for d in details)
    assert any("iterations" in d for d in details)
    assert any("diverge" in d for d in details)


# ----------------------------------------------------- oracle: checkpoint --
def ev(time, kind, **fields):
    return TraceEvent(time, kind, fields)


def test_checkpoint_passes_monotone_durable_and_valid_resume():
    events = [
        ev(0.0, "generation-start", start_iter=0, recoveries=0),
        ev(1.0, "checkpoint-durable", state_index=2),
        ev(2.0, "generation-start", start_iter=2, recoveries=1),
        ev(3.0, "checkpoint-durable", state_index=4),
    ]
    assert oracle_checkpoint_rollback(spec(), outcome(trace_events=events)) == []


def test_checkpoint_flags_resume_past_durable():
    events = [
        ev(0.0, "generation-start", start_iter=0, recoveries=0),
        ev(1.0, "checkpoint-durable", state_index=2),
        ev(2.0, "generation-start", start_iter=4, recoveries=1),
    ]
    v = oracle_checkpoint_rollback(spec(), outcome(trace_events=events))
    assert any("resumed from state 4" in x.detail for x in v)


def test_checkpoint_flags_backwards_durable_index():
    events = [
        ev(1.0, "checkpoint-durable", state_index=4),
        ev(2.0, "checkpoint-durable", state_index=2),
    ]
    v = oracle_checkpoint_rollback(spec(), outcome(trace_events=events))
    assert any("backwards" in x.detail for x in v)


# ---------------------------------------------------------- oracle: trace --
def test_trace_oracle_passes_well_formed_timeline():
    events = [
        ev(0.0, "map-iteration-start", task=0, iteration=0),
        ev(1.0, "map-iteration-end", task=0, iteration=0),
        ev(2.0, "iteration-complete", iteration=0),
    ]
    assert oracle_trace_well_formed(spec(), outcome(trace_events=events)) == []


def test_trace_oracle_flags_time_reversal():
    events = [
        ev(5.0, "iteration-complete", iteration=0),
        ev(1.0, "iteration-complete", iteration=1),
    ]
    v = oracle_trace_well_formed(spec(), outcome(trace_events=events))
    assert v and all(x.oracle == "trace" for x in v)


# -------------------------------------------------------------- evaluate --
def test_evaluate_runs_every_oracle():
    assert set(ALL_ORACLES) == {
        "termination", "differential", "kernel-differential",
        "parallel-differential", "parallel-recovery", "async-fixpoint",
        "incremental-differential", "checkpoint", "trace",
    }
    v = evaluate_oracles(spec(), outcome(error=RuntimeError("boom")))
    assert [x.oracle for x in v] == ["termination"]


# -------------------------------------------- parallel-differential oracle --
def _par(state, iterations_run=3, terminated_by="max-iterations"):
    return SimpleNamespace(
        state=state, iterations_run=iterations_run, terminated_by=terminated_by
    )


def test_parallel_oracle_inert_without_parallel_run():
    assert oracle_parallel_differential(spec(), outcome()) == []


def test_parallel_oracle_reports_backend_error():
    v = oracle_parallel_differential(
        spec(), outcome(parallel_error=RuntimeError("worker died"))
    )
    assert len(v) == 1 and "worker died" in v[0].detail


def test_parallel_oracle_demands_exact_equality():
    ref = SimpleNamespace(
        iterations_run=3, terminated_by="max-iterations",
        state=[(0, 1.0), (1, 2.0)],
    )
    ok = outcome(reference=ref, parallel_result=_par([(0, 1.0), (1, 2.0)]))
    assert oracle_parallel_differential(spec(), ok) == []
    # Even a 1-ulp float drift is a violation: no tolerance.
    drift = outcome(
        reference=ref,
        parallel_result=_par([(0, 1.0), (1, 2.0 + 2**-50)]),
    )
    v = oracle_parallel_differential(spec(), drift)
    assert v and v[0].oracle == "parallel-differential"


def test_parallel_oracle_checks_iterations_and_termination():
    ref = SimpleNamespace(
        iterations_run=3, terminated_by="max-iterations", state=[]
    )
    v = oracle_parallel_differential(
        spec(),
        outcome(reference=ref,
                parallel_result=_par([], iterations_run=2,
                                     terminated_by="threshold")),
    )
    assert {x.oracle for x in v} == {"parallel-differential"}
    assert len(v) == 2


# ------------------------------------------------ parallel-recovery oracle --
def _kill_spec(at_iteration=2, action="kill"):
    return SimpleNamespace(
        max_iterations=5, checkpoint_interval=2,
        proc_kill=(0, at_iteration, action),
    )


def _recovered(recoveries=1, events=None):
    return SimpleNamespace(
        state=[], iterations_run=5, terminated_by="max-iterations",
        recoveries=recoveries,
        recovery_events=events if events is not None else [
            {"resume_from": 2, "restored_checkpoint": 1}
        ],
    )


def test_recovery_oracle_inert_without_proc_kill_or_parallel_run():
    from repro.testing.oracles import oracle_parallel_recovery

    assert oracle_parallel_recovery(spec(), outcome()) == []
    assert oracle_parallel_recovery(_kill_spec(), outcome()) == []


def test_recovery_oracle_flags_fault_that_never_fired():
    from repro.testing.oracles import oracle_parallel_recovery

    v = oracle_parallel_recovery(
        _kill_spec(), outcome(parallel_result=_recovered(recoveries=0))
    )
    assert len(v) == 1 and "never triggered a recovery" in v[0].detail


def test_recovery_oracle_checks_resume_barrier():
    from repro.testing.oracles import oracle_parallel_recovery

    ok = outcome(parallel_result=_recovered())
    assert oracle_parallel_recovery(_kill_spec(), ok) == []
    # Resuming *past* the interrupted iteration means state was skipped.
    late = outcome(parallel_result=_recovered(
        events=[{"resume_from": 4, "restored_checkpoint": 3}]
    ))
    v = oracle_parallel_recovery(_kill_spec(at_iteration=2), late)
    assert {x.oracle for x in v} == {"parallel-recovery"}
    assert len(v) == 2  # resume too late + checkpoint too new
    # A from-scratch restart (no checkpoint armed) is a legal recovery.
    scratch = outcome(parallel_result=_recovered(
        events=[{"resume_from": 0, "restored_checkpoint": None}]
    ))
    assert oracle_parallel_recovery(_kill_spec(), scratch) == []


def test_values_identical_is_exact_and_numpy_safe():
    assert values_identical((1, 2.0), (1, 2.0))
    assert not values_identical((1, 2.0), (1, 2.0 + 2**-50))
    assert not values_identical(1, 1.0)  # type-exact
    assert not values_identical(1, True)
    assert values_identical(np.array([1.0]), np.array([1.0]))
    assert not values_identical(np.array([1.0]), np.array([1.0 + 2**-50]))
    assert not values_identical(np.array([1.0]), [1.0])
    assert records_identical([(0, np.array([1.0, 2.0]))],
                             [(0, np.array([1.0, 2.0]))])
    assert not records_identical([(0, np.array([1.0]))],
                                 [(0, np.array([2.0]))])


# ---------------------------------------------------- kernel differential --
def _kspec(**kw):
    base = dict(max_iterations=5, checkpoint_interval=2,
                use_kernels=True, workload="pagerank")
    base.update(kw)
    return SimpleNamespace(**base)


def test_kernel_oracle_inert_without_dimension():
    from repro.testing.oracles import oracle_kernel_differential

    v = oracle_kernel_differential(
        _kspec(use_kernels=False),
        outcome(kernel_result=None, kernel_error=RuntimeError("boom")),
    )
    assert v == []


def test_kernel_oracle_reports_kernel_error():
    from repro.testing.oracles import oracle_kernel_differential

    v = oracle_kernel_differential(
        _kspec(),
        outcome(kernel_result=None, kernel_error=RuntimeError("boom")),
    )
    assert len(v) == 1 and v[0].oracle == "kernel-differential"
    assert "boom" in v[0].detail


def test_kernel_oracle_tolerant_for_sum_exact_for_min():
    from repro.testing.oracles import oracle_kernel_differential

    ref = SimpleNamespace(iterations_run=3, terminated_by="maxiter",
                          state=[(0, 1.0)])
    close = SimpleNamespace(iterations_run=3, terminated_by="maxiter",
                            state=[(0, 1.0 + 1e-12)])
    # Sum merge (pagerank): within tolerance passes.
    assert oracle_kernel_differential(
        _kspec(), outcome(reference=ref, kernel_error=None,
                          kernel_result=close)) == []
    # Min merge (sssp): the same drift is a violation — bit-exact demanded.
    v = oracle_kernel_differential(
        _kspec(workload="sssp"),
        outcome(reference=ref, kernel_error=None, kernel_result=close))
    assert v and v[0].oracle == "kernel-differential"


def test_parallel_oracle_compares_against_kernel_twin():
    """With use_kernels, the backend ran the kernel job — the bit-exact
    twin is the serial columnar run, not the record reference."""
    record_ref = SimpleNamespace(iterations_run=3, terminated_by="maxiter",
                                 state=[(0, 1.0)])
    kernel_ref = SimpleNamespace(iterations_run=3, terminated_by="maxiter",
                                 state=[(0, 1.0 + 1e-12)])
    par = SimpleNamespace(iterations_run=3, terminated_by="maxiter",
                          state=[(0, 1.0 + 1e-12)])
    v = oracle_parallel_differential(
        _kspec(),
        outcome(reference=record_ref, kernel_result=kernel_ref,
                kernel_error=None, parallel_result=par,
                parallel_error=None),
    )
    assert v == []  # bit-equal to the kernel twin, despite record drift


# ------------------------------------------------- async-fixpoint oracle --
def _aspec(async_mode=True, workload="pagerank"):
    return SimpleNamespace(async_mode=async_mode, workload=workload)


def _accum(state, terminated_by="progress"):
    return SimpleNamespace(state=state, terminated_by=terminated_by)


def _aoutcome(reference, results=None, errors=None, algebra="sum"):
    return outcome(
        async_reference=reference,
        async_results=results or {},
        async_errors=errors or {},
        async_algebra=algebra,
    )


def test_async_oracle_inert_without_dimension():
    from repro.testing.oracles import oracle_async_fixpoint

    v = oracle_async_fixpoint(
        _aspec(async_mode=False),
        _aoutcome(None, errors={"serial-async": RuntimeError("boom")}),
    )
    assert v == []


def test_async_oracle_reports_run_errors_and_missing_reference():
    from repro.testing.oracles import oracle_async_fixpoint

    v = oracle_async_fixpoint(
        _aspec(), _aoutcome(None, errors={"simulated": RuntimeError("boom")})
    )
    assert len(v) == 1 and "boom" in v[0].detail
    v = oracle_async_fixpoint(_aspec(), _aoutcome(None))
    assert len(v) == 1 and "reference" in v[0].detail


def test_async_oracle_demands_progress_termination():
    from repro.testing.oracles import oracle_async_fixpoint

    ref = _accum([(0, 1.0)])
    budget = _accum([(0, 1.0)], terminated_by="maxrounds")
    v = oracle_async_fixpoint(
        _aspec(), _aoutcome(ref, results={"serial-async": budget})
    )
    assert len(v) == 1 and "maxrounds" in v[0].detail
    v = oracle_async_fixpoint(_aspec(), _aoutcome(budget))
    assert v and "sync reference" in v[0].detail


def test_async_oracle_tolerant_for_sum_exact_for_min():
    from repro.testing.oracles import oracle_async_fixpoint

    ref = _accum([(0, 1.0)])
    close = _accum([(0, 1.0 + 1e-12)])
    # Sum algebra: schedule-order float drift within tolerance passes.
    assert oracle_async_fixpoint(
        _aspec(), _aoutcome(ref, results={"serial-async": close})
    ) == []
    # Min algebra: the same drift is a violation — the fixpoint is
    # unique, so every schedule must land bit-exactly.
    v = oracle_async_fixpoint(
        _aspec(),
        _aoutcome(ref, results={"serial-async": close}, algebra="min"),
    )
    assert len(v) == 1 and "bit-exact" in v[0].detail


def test_async_oracle_flags_real_divergence_per_run():
    from repro.testing.oracles import oracle_async_fixpoint

    ref = _accum([(0, 1.0)])
    wrong = _accum([(0, 2.0)])
    v = oracle_async_fixpoint(
        _aspec(),
        _aoutcome(ref, results={"simulated": wrong,
                                "parallel-async": _accum([(0, 1.0)])}),
    )
    assert len(v) == 1 and v[0].detail.startswith("simulated")
