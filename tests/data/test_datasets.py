"""Unit tests for the dataset registry."""

import pytest

from repro.data import (
    PAGERANK_DATASETS,
    SSSP_DATASETS,
    dataset_table,
    load_graph,
)


def test_registry_has_all_paper_rows():
    assert set(SSSP_DATASETS) == {"dblp", "facebook", "sssp-s", "sssp-m", "sssp-l"}
    assert set(PAGERANK_DATASETS) == {
        "google",
        "berk-stan",
        "pagerank-s",
        "pagerank-m",
        "pagerank-l",
    }


def test_paper_statistics_recorded():
    dblp = SSSP_DATASETS["dblp"]
    assert dblp.paper_nodes == 310_556
    assert dblp.paper_edges == 1_518_617
    assert dblp.paper_file_size == "16 MB"


def test_sssp_graphs_weighted_pagerank_not():
    assert load_graph("dblp").weighted
    assert not load_graph("google").weighted


def test_stand_in_scale():
    g = load_graph("dblp")
    assert g.num_nodes == 310_556 // 20


def test_mean_degree_tracks_paper():
    g = load_graph("dblp")
    paper_ratio = 1_518_617 / 310_556
    assert g.num_edges / g.num_nodes == pytest.approx(paper_ratio, rel=0.2)


def test_synthetic_ladder_ordering():
    sizes = [load_graph(f"sssp-{t}").num_nodes for t in "sml"]
    assert sizes[0] < sizes[1] < sizes[2]


def test_load_graph_caches():
    assert load_graph("dblp") is load_graph("dblp")


def test_load_graph_node_override():
    g = load_graph("sssp-s", nodes=500)
    assert g.num_nodes == 500


def test_unknown_dataset():
    with pytest.raises(KeyError, match="unknown dataset"):
        load_graph("imaginary")


def test_dataset_table_sssp_shape():
    rows = dataset_table("sssp")
    assert [r["graph"] for r in rows] == ["dblp", "facebook", "sssp-s", "sssp-m", "sssp-l"]
    for row in rows:
        assert row["nodes"] > 0
        assert row["edges"] > 0
        assert row["file_size_bytes"] > 0
        # Degree of the stand-in should be in the ballpark of the paper's.
        assert row["mean_degree"] == pytest.approx(row["paper_mean_degree"], rel=0.35)


def test_dataset_table_file_sizes_increase_with_tier():
    rows = {r["graph"]: r for r in dataset_table("pagerank")}
    assert (
        rows["pagerank-s"]["file_size_bytes"]
        < rows["pagerank-m"]["file_size_bytes"]
        < rows["pagerank-l"]["file_size_bytes"]
    )
