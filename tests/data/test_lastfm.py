"""Unit tests for the Last.fm stand-in generator."""

import numpy as np
import pytest

from repro.data import MEAN_ARTISTS_PER_USER, load_lastfm


def small():
    return load_lastfm(num_users=300, num_artists=100, num_tastes=5, seed=1)


def test_shapes():
    data = small()
    assert data.num_users == 300
    assert len(data.records) == 300
    assert data.taste.shape == (300,)


def test_mean_artists_matches_paper_statistic():
    data = load_lastfm(num_users=2000, num_artists=500, num_tastes=10, seed=3)
    assert data.mean_artists_per_user == pytest.approx(MEAN_ARTISTS_PER_USER, rel=0.05)


def test_records_are_sparse_and_sorted():
    data = small()
    for ids, counts in data.records:
        assert len(ids) == len(counts)
        assert (np.diff(ids) > 0).all()  # strictly increasing -> unique
        assert (counts > 0).all()
        assert ids.max() < data.num_artists


def test_user_records_keys():
    data = small()
    records = data.user_records()
    assert [k for k, _ in records] == list(range(300))


def test_dense_matrix_consistent_with_records():
    data = small()
    mat = data.dense_matrix()
    ids, counts = data.records[0]
    assert np.allclose(mat[0, ids], counts)
    assert mat[0].sum() == pytest.approx(counts.sum())


def test_taste_groups_are_separable():
    """Users of one taste should overlap more with their own group's
    artists than with another group's — the clusters must be learnable."""
    data = load_lastfm(num_users=1000, num_artists=200, num_tastes=4, seed=5)
    mat = data.dense_matrix()
    centroids = np.stack([
        mat[data.taste == t].mean(axis=0) for t in range(data.num_tastes)
    ])
    own = cross = 0
    for u in range(data.num_users):
        dists = np.linalg.norm(centroids - mat[u], axis=1)
        if np.argmin(dists) == data.taste[u]:
            own += 1
        else:
            cross += 1
    assert own / (own + cross) > 0.8


def test_deterministic_and_cached():
    a = load_lastfm(num_users=300, num_artists=100, num_tastes=5, seed=1)
    assert a is small()


def test_validation():
    with pytest.raises(ValueError):
        load_lastfm(num_users=2, num_artists=10, num_tastes=5, seed=0)
