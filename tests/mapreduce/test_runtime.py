"""Integration-level tests for the baseline MapReduce engine."""

import pytest

from repro.cluster import FaultSchedule, local_cluster
from repro.common.errors import TaskFailure
from repro.dfs import DFS
from repro.mapreduce import Job, MapReduceRuntime
from repro.simulation import Engine


def setup_runtime(block_size=600, nodes=4, **kw):
    engine = Engine()
    cluster = local_cluster(engine, nodes)
    dfs = DFS(cluster, block_size=block_size, replication=2)
    return engine, cluster, dfs, MapReduceRuntime(cluster, dfs, **kw)


def word_mapper(key, value, ctx):
    for word in value.split():
        ctx.emit(word, 1)


def sum_reducer(key, values, ctx):
    ctx.emit(key, sum(values))


def ingest_text(dfs):
    lines = [
        (0, "the quick brown fox"),
        (1, "the lazy dog"),
        (2, "the quick dog"),
        (3, "fox and dog and fox"),
    ]
    dfs.ingest("/in/text", lines)
    return lines


def read_output(engine, dfs, paths):
    out = []

    def body():
        acc = []
        for path in paths:
            acc.extend((yield from dfs.read_all(path, "node0")))
        return acc

    return engine.run(engine.process(body()))


def test_wordcount_end_to_end():
    engine, _cluster, dfs, runtime = setup_runtime()
    ingest_text(dfs)
    job = Job(
        name="wordcount",
        mapper=word_mapper,
        reducer=sum_reducer,
        input_paths=["/in/text"],
        output_path="/out/wc",
        num_reduces=3,
    )
    result = runtime.submit(job)
    counts = dict(read_output(engine, dfs, result.output_paths))
    assert counts == {
        "the": 3,
        "quick": 2,
        "brown": 1,
        "fox": 3,
        "lazy": 1,
        "dog": 3,
        "and": 2,
    }


def test_job_takes_virtual_time():
    engine, _cluster, dfs, runtime = setup_runtime()
    ingest_text(dfs)
    job = Job(
        name="wc",
        mapper=word_mapper,
        reducer=sum_reducer,
        input_paths=["/in/text"],
        output_path="/out/wc",
    )
    result = runtime.submit(job)
    assert result.elapsed > runtime.cost.job_setup + runtime.cost.job_cleanup
    assert engine.now == result.end


def test_each_reduce_writes_one_part_file():
    _engine, _cluster, dfs, runtime = setup_runtime()
    ingest_text(dfs)
    job = Job(
        name="wc",
        mapper=word_mapper,
        reducer=sum_reducer,
        input_paths=["/in/text"],
        output_path="/out/wc",
        num_reduces=3,
    )
    result = runtime.submit(job)
    assert result.output_paths == [
        "/out/wc/part-00000",
        "/out/wc/part-00001",
        "/out/wc/part-00002",
    ]
    for path in result.output_paths:
        assert dfs.exists(path)


def test_partitioning_respected():
    """Each key must appear in exactly the partition its hash selects."""
    engine, _cluster, dfs, runtime = setup_runtime()
    ingest_text(dfs)
    job = Job(
        name="wc",
        mapper=word_mapper,
        reducer=sum_reducer,
        input_paths=["/in/text"],
        output_path="/out/wc",
        num_reduces=4,
    )
    result = runtime.submit(job)
    for r, path in enumerate(result.output_paths):
        for key, _ in read_output(engine, dfs, [path]):
            assert job.partitioner(key, 4) == r


def test_counters_aggregate_across_reduces():
    _engine, _cluster, dfs, runtime = setup_runtime()
    ingest_text(dfs)

    def counting_reducer(key, values, ctx):
        ctx.increment("keys_seen")
        ctx.emit(key, sum(values))

    job = Job(
        name="wc",
        mapper=word_mapper,
        reducer=counting_reducer,
        input_paths=["/in/text"],
        output_path="/out/wc",
        num_reduces=3,
    )
    result = runtime.submit(job)
    assert result.counter("keys_seen") == 7


def test_combiner_reduces_shuffle_volume():
    def run(with_combiner):
        _e, _c, dfs, runtime = setup_runtime()
        dfs.ingest("/in/text", [(i, "word word word word") for i in range(40)])
        job = Job(
            name="wc",
            mapper=word_mapper,
            reducer=sum_reducer,
            combiner=sum_reducer if with_combiner else None,
            input_paths=["/in/text"],
            output_path="/out/wc",
        )
        result = runtime.submit(job)
        counts = dict(read_output(_e, dfs, result.output_paths))
        return result, counts

    plain, counts_plain = run(False)
    combined, counts_combined = run(True)
    assert counts_plain == counts_combined == {"word": 160}
    assert combined.stats.shuffle_records < plain.stats.shuffle_records
    assert combined.stats.shuffle_bytes < plain.stats.shuffle_bytes


def test_stats_record_counts():
    _engine, _cluster, dfs, runtime = setup_runtime()
    lines = ingest_text(dfs)
    job = Job(
        name="wc",
        mapper=word_mapper,
        reducer=sum_reducer,
        input_paths=["/in/text"],
        output_path="/out/wc",
    )
    result = runtime.submit(job)
    total_words = sum(len(v.split()) for _, v in lines)
    assert result.stats.map_records == len(lines)
    assert result.stats.shuffle_records == total_words
    assert result.stats.output_records == 7
    assert result.stats.init_time > 0


def test_multiple_blocks_make_multiple_map_tasks():
    _engine, _cluster, dfs, runtime = setup_runtime(block_size=60)
    ingest_text(dfs)
    job = Job(
        name="wc",
        mapper=word_mapper,
        reducer=sum_reducer,
        input_paths=["/in/text"],
        output_path="/out/wc",
    )
    result = runtime.submit(job)
    assert result.stats.num_map_tasks > 1


def test_user_exception_surfaces_as_task_failure():
    _engine, _cluster, dfs, runtime = setup_runtime()
    ingest_text(dfs)

    def broken_mapper(key, value, ctx):
        raise ValueError("user bug")

    job = Job(
        name="broken",
        mapper=broken_mapper,
        reducer=sum_reducer,
        input_paths=["/in/text"],
        output_path="/out/x",
    )
    with pytest.raises(TaskFailure, match="user bug"):
        runtime.submit(job)


def test_worker_failure_mid_job_recovers():
    engine, cluster, dfs, runtime = setup_runtime(block_size=120)
    ingest_text(dfs)
    # Kill a worker shortly after the job starts; tasks reschedule.
    FaultSchedule().fail_at(runtime.cost.job_setup + 0.5, "node1").arm(engine, cluster)
    job = Job(
        name="wc",
        mapper=word_mapper,
        reducer=sum_reducer,
        input_paths=["/in/text"],
        output_path="/out/wc",
        num_reduces=2,
    )
    result = runtime.submit(job)
    counts = dict(read_output(engine, dfs, result.output_paths))
    assert counts["the"] == 3
    assert counts["fox"] == 3


def test_determinism_of_job_timing():
    def run_once():
        _e, _c, dfs, runtime = setup_runtime()
        ingest_text(dfs)
        job = Job(
            name="wc",
            mapper=word_mapper,
            reducer=sum_reducer,
            input_paths=["/in/text"],
            output_path="/out/wc",
        )
        result = runtime.submit(job)
        return result.elapsed, result.stats

    first = run_once()
    second = run_once()
    assert first == second


def test_sequential_jobs_accumulate_time():
    engine, _cluster, dfs, runtime = setup_runtime()
    ingest_text(dfs)
    job1 = Job(
        name="a",
        mapper=word_mapper,
        reducer=sum_reducer,
        input_paths=["/in/text"],
        output_path="/out/a",
    )
    r1 = runtime.submit(job1)
    job2 = Job(
        name="b",
        mapper=lambda k, v, ctx: ctx.emit(k, v),
        reducer=lambda k, vs, ctx: ctx.emit(k, vs[0]),
        input_paths=r1.output_paths,
        output_path="/out/b",
    )
    r2 = runtime.submit(job2)
    assert r2.start >= r1.end
    assert engine.now == r2.end
