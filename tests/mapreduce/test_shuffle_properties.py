"""Property-based tests: the shuffle contract.

Whatever the input, block layout or reduce count, every emitted pair
must reach exactly one reducer — the one its key hashes to — exactly
once, and reducers must see values grouped per key.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import local_cluster
from repro.dfs import DFS
from repro.mapreduce import Job, MapReduceRuntime
from repro.simulation import Engine


def tag_mapper(key, value, ctx):
    # Deterministic fan-out: each record emits `value` pairs.
    for i in range(value):
        ctx.emit((key + i) % 10, (key, i))


def collect_reducer(key, values, ctx):
    ctx.emit(key, tuple(sorted(values)))


def run_job(records, num_reduces, block_size):
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, block_size=block_size, replication=2)
    dfs.ingest("/in", records)
    runtime = MapReduceRuntime(cluster, dfs)
    job = Job(
        name="prop",
        mapper=tag_mapper,
        reducer=collect_reducer,
        input_paths=["/in"],
        output_path="/out",
        num_reduces=num_reduces,
    )
    result = runtime.submit(job)

    def read():
        acc = []
        for path in result.output_paths:
            acc.extend((yield from dfs.read_all(path, "node0")))
        return acc

    return dict(engine.run(engine.process(read()))), job


def expected_groups(records):
    groups = {}
    for key, value in records:
        for i in range(value):
            groups.setdefault((key + i) % 10, []).append((key, i))
    return {k: tuple(sorted(v)) for k, v in groups.items()}


@settings(max_examples=12, deadline=None)
@given(
    records=st.lists(
        st.tuples(st.integers(min_value=0, max_value=50),
                  st.integers(min_value=0, max_value=5)),
        min_size=1, max_size=25, unique_by=lambda kv: kv[0],
    ),
    num_reduces=st.integers(min_value=1, max_value=6),
    block_size=st.sampled_from([64, 256, 4096]),
)
def test_every_pair_delivered_exactly_once(records, num_reduces, block_size):
    got, job = run_job(records, num_reduces, block_size)
    assert got == expected_groups(records)


@settings(max_examples=8, deadline=None)
@given(
    records=st.lists(
        st.tuples(st.integers(min_value=0, max_value=50),
                  st.integers(min_value=1, max_value=4)),
        min_size=1, max_size=15, unique_by=lambda kv: kv[0],
    ),
    num_reduces=st.integers(min_value=2, max_value=5),
)
def test_keys_land_on_their_hash_partition(records, num_reduces):
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, block_size=512, replication=2)
    dfs.ingest("/in", records)
    runtime = MapReduceRuntime(cluster, dfs)
    job = Job(
        name="partcheck",
        mapper=tag_mapper,
        reducer=collect_reducer,
        input_paths=["/in"],
        output_path="/out",
        num_reduces=num_reduces,
    )
    result = runtime.submit(job)

    for r, path in enumerate(result.output_paths):
        def read(path=path):
            return (yield from dfs.read_all(path, "node0"))

        for key, _ in engine.run(engine.process(read())):
            assert job.partitioner(key, num_reduces) == r
