"""Speculative execution (Hadoop-style backup tasks, paper §3.4.1 [40])."""

import pytest

from repro.cluster import Cluster, Machine, heterogeneous_cluster
from repro.dfs import DFS
from repro.mapreduce import Job, MapReduceRuntime
from repro.simulation import Engine


def word_mapper(key, value, ctx):
    for word in value.split():
        ctx.emit(word, 1)


def sum_reducer(key, values, ctx):
    ctx.emit(key, sum(values))


def run_job(speculative, straggler_speed=0.1):
    engine = Engine()
    cluster = heterogeneous_cluster(
        engine, [1.0, 1.0, 1.0, straggler_speed], cores=2
    )
    dfs = DFS(cluster, block_size=600, replication=2)
    dfs.ingest("/in", [(i, "alpha beta gamma delta " * 4) for i in range(64)])
    # Compute-bound tasks so the straggler actually straggles (launch
    # overhead is wall time, not CPU, and does not scale with speed).
    from repro.mapreduce import CostModel

    cost = CostModel(task_launch=0.2, map_record_cpu=50e-3, noise_amplitude=0.0)
    runtime = MapReduceRuntime(
        cluster, dfs, cost=cost, speculative_execution=speculative
    )
    job = Job(
        name="wc",
        mapper=word_mapper,
        reducer=sum_reducer,
        input_paths=["/in"],
        output_path="/out",
        num_reduces=4,
    )
    result = runtime.submit(job)

    def read():
        acc = []
        for path in result.output_paths:
            acc.extend((yield from dfs.read_all(path, "hnode0")))
        return acc

    return result, dict(engine.run(engine.process(read())))


def test_speculation_produces_identical_results():
    _, plain = run_job(False)
    _, spec = run_job(True)
    assert plain == spec
    assert plain["alpha"] == 256


def test_speculation_beats_straggler():
    slow, _ = run_job(False)
    fast, _ = run_job(True)
    assert fast.elapsed < slow.elapsed


def test_speculation_harmless_on_homogeneous_cluster():
    plain, r1 = run_job(False, straggler_speed=1.0)
    spec, r2 = run_job(True, straggler_speed=1.0)
    assert r1 == r2
    # At worst a whisker slower (extra backup attempts burn no critical path).
    assert spec.elapsed <= plain.elapsed * 1.10


def test_speculation_with_worker_failure():
    """Backups + failures interact: the job still completes correctly."""
    from repro.cluster import FaultSchedule

    engine = Engine()
    cluster = heterogeneous_cluster(engine, [1.0, 1.0, 1.0, 0.1], cores=2)
    dfs = DFS(cluster, block_size=600, replication=2)
    dfs.ingest("/in", [(i, "x y z " * 4) for i in range(48)])
    FaultSchedule().fail_at(6.0, "hnode1").arm(engine, cluster)
    runtime = MapReduceRuntime(cluster, dfs, speculative_execution=True)
    job = Job(
        name="wc",
        mapper=word_mapper,
        reducer=sum_reducer,
        input_paths=["/in"],
        output_path="/out",
        num_reduces=3,
    )
    result = runtime.submit(job)

    def read():
        acc = []
        for path in result.output_paths:
            acc.extend((yield from dfs.read_all(path, "hnode0")))
        return acc

    counts = dict(engine.run(engine.process(read())))
    assert counts == {"x": 192, "y": 192, "z": 192}
