"""Tests for the iterative job-chain driver (the Hadoop baseline loop)."""

import pytest

from repro.cluster import local_cluster
from repro.common.errors import ConfigError
from repro.dfs import DFS
from repro.mapreduce import IterativeDriver, IterativeSpec, Job, MapReduceRuntime
from repro.simulation import Engine


def setup():
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, block_size=600, replication=2)
    runtime = MapReduceRuntime(cluster, dfs)
    return engine, cluster, dfs, runtime


def halving_mapper(key, value, ctx):
    ctx.emit(key, value / 2.0)


def identity_reducer(key, values, ctx):
    ctx.emit(key, values[0])


def make_halving_spec(max_iterations, threshold=None):
    """Each iteration halves every value; distance = sum |prev - curr|."""

    def job_factory(iteration, input_paths):
        return Job(
            name=f"halve-{iteration}",
            mapper=halving_mapper,
            reducer=identity_reducer,
            input_paths=input_paths,
            output_path=f"/iter/{iteration}",
            num_reduces=2,
        )

    def convergence_factory(iteration, prev_paths, curr_paths):
        def tag_mapper(key, value, ctx):
            ctx.emit(key, value)

        def diff_reducer(key, values, ctx):
            ctx.increment("distance", abs(values[0] - values[-1]))

        return Job(
            name=f"check-{iteration}",
            mapper=tag_mapper,
            reducer=diff_reducer,
            input_paths=list(prev_paths) + list(curr_paths),
            output_path=f"/check/{iteration}",
            num_reduces=2,
        )

    return IterativeSpec(
        name="halving",
        job_factory=job_factory,
        max_iterations=max_iterations,
        threshold=threshold,
        convergence_factory=convergence_factory if threshold is not None else None,
    )


def read_all(engine, dfs, paths):
    def body():
        acc = []
        for p in paths:
            acc.extend((yield from dfs.read_all(p, "node0")))
        return acc

    return engine.run(engine.process(body()))


def test_fixed_iterations_run_to_max():
    engine, _c, dfs, runtime = setup()
    dfs.ingest("/in", [(i, 64.0) for i in range(8)])
    result = IterativeDriver(runtime).run(make_halving_spec(3), ["/in"])
    assert result.iterations_run == 3
    assert not result.converged
    values = dict(read_all(engine, dfs, result.final_paths))
    assert values == {i: 8.0 for i in range(8)}


def test_threshold_stops_early():
    engine, _c, dfs, runtime = setup()
    dfs.ingest("/in", [(i, 1.0) for i in range(4)])
    # Distance after iteration k is sum over keys of |v_{k-1} - v_k|
    # = 4 * 2^-k; threshold 0.6 is crossed at iteration 3 (0.5).
    result = IterativeDriver(runtime).run(make_halving_spec(20, threshold=0.6), ["/in"])
    assert result.converged
    assert result.iterations_run == 3
    distances = [it.distance for it in result.metrics.iterations]
    assert distances == pytest.approx([2.0, 1.0, 0.5])


def test_metrics_per_iteration():
    _e, _c, dfs, runtime = setup()
    dfs.ingest("/in", [(i, 64.0) for i in range(8)])
    result = IterativeDriver(runtime).run(make_halving_spec(4), ["/in"])
    metrics = result.metrics
    assert metrics.num_iterations == 4
    assert metrics.total_time > 0
    for it in metrics.iterations:
        assert it.init_time > 0
        assert it.elapsed >= it.init_time
    # Cumulative series is monotone.
    series = metrics.cumulative_times()
    assert [i for i, _ in series] == [1, 2, 3, 4]
    assert all(b[1] > a[1] for a, b in zip(series, series[1:]))


def test_ex_init_curve_is_below_total():
    _e, _c, dfs, runtime = setup()
    dfs.ingest("/in", [(i, 64.0) for i in range(8)])
    result = IterativeDriver(runtime).run(make_halving_spec(4), ["/in"])
    total = dict(result.metrics.cumulative_times())
    ex_init = dict(result.metrics.cumulative_times_excluding_init())
    for k in total:
        assert ex_init[k] < total[k]


def test_intermediate_outputs_cleaned_up():
    _e, _c, dfs, runtime = setup()
    dfs.ingest("/in", [(i, 64.0) for i in range(8)])
    result = IterativeDriver(runtime).run(make_halving_spec(5), ["/in"])
    files = dfs.list_files()
    assert "/in" in files  # user input retained
    # Only the final iteration's parts remain.
    part_files = [f for f in files if f.startswith("/iter/")]
    assert part_files == sorted(result.final_paths)


def test_convergence_requires_factory():
    with pytest.raises(ConfigError):
        IterativeSpec(
            name="bad",
            job_factory=lambda i, p: None,
            max_iterations=5,
            threshold=0.1,
        )


def test_zero_iterations_rejected():
    with pytest.raises(ConfigError):
        IterativeSpec(name="bad", job_factory=lambda i, p: None, max_iterations=0)
