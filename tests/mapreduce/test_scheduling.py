"""Scheduler-focused tests: locality, slots, side inputs."""

import pytest

from repro.cluster import local_cluster
from repro.dfs import DFS
from repro.mapreduce import Job, MapReduceRuntime
from repro.simulation import Engine


def setup(block_size=200, nodes=4, **kw):
    engine = Engine()
    cluster = local_cluster(engine, nodes)
    dfs = DFS(cluster, block_size=block_size, replication=2)
    return engine, cluster, dfs, MapReduceRuntime(cluster, dfs, **kw)


def identity_mapper(key, value, ctx):
    ctx.emit(key, value)


def first_reducer(key, values, ctx):
    ctx.emit(key, values[0])


def test_map_tasks_prefer_data_local_workers():
    """With free slots everywhere, map input must be read without network."""
    engine, cluster, dfs, runtime = setup(block_size=400)
    dfs.ingest("/in", [(i, "x" * 50) for i in range(40)])
    net_before = cluster.network_bytes
    job = Job(
        name="local",
        mapper=identity_mapper,
        reducer=first_reducer,
        input_paths=["/in"],
        output_path="/out",
        num_reduces=2,
    )
    result = runtime.submit(job)
    # All input reads were local; only shuffle + replication used the NIC.
    input_bytes = dfs.file_info("/in").nbytes
    shuffle_and_dfs = cluster.network_bytes - net_before
    assert result.stats.num_map_tasks >= 2
    # Locality: network use is independent of input size re-reads — we
    # can't isolate exactly, but it must be below input + shuffle + dump.
    assert shuffle_and_dfs < input_bytes * 4


def test_more_tasks_than_slots_run_in_waves():
    engine, _c, dfs, runtime = setup(block_size=60, nodes=2)
    dfs.ingest("/in", [(i, float(i)) for i in range(40)])
    job = Job(
        name="waves",
        mapper=identity_mapper,
        reducer=first_reducer,
        input_paths=["/in"],
        output_path="/out",
        num_reduces=2,
    )
    result = runtime.submit(job)
    # 2 workers x 2 slots = 4 concurrent tasks; more tasks than that.
    assert result.stats.num_map_tasks > 4
    assert result.stats.output_records == 40


def test_side_inputs_reach_mapper_configure():
    engine, _c, dfs, runtime = setup()
    dfs.ingest("/in", [(1, 10.0), (2, 20.0)])
    dfs.ingest("/side", [("offset", 5.0)])

    class OffsetMapper:
        def __init__(self):
            self.offset = None

        def configure(self, side_data):
            self.offset = dict(side_data["/side"])["offset"]

        def map(self, key, value, ctx):
            ctx.emit(key, value + self.offset)

    job = Job(
        name="side",
        mapper=OffsetMapper(),
        reducer=first_reducer,
        input_paths=["/in"],
        output_path="/out",
        side_inputs=["/side"],
    )
    result = runtime.submit(job)

    def read():
        acc = []
        for p in result.output_paths:
            acc.extend((yield from dfs.read_all(p, "node0")))
        return acc

    got = dict(engine.run(engine.process(read())))
    assert got == {1: 15.0, 2: 25.0}


def test_job_validation():
    from repro.common.errors import ConfigError

    with pytest.raises(ConfigError):
        Job(name="x", mapper=identity_mapper, reducer=first_reducer,
            input_paths=[], output_path="/out")
    with pytest.raises(ConfigError):
        Job(name="x", mapper=identity_mapper, reducer=first_reducer,
            input_paths=["/in"], output_path="/out", num_reduces=0)


def test_non_mapper_rejected():
    with pytest.raises(TypeError):
        Job(name="x", mapper=42, reducer=first_reducer,
            input_paths=["/in"], output_path="/out")


def test_empty_input_job_completes():
    engine, _c, dfs, runtime = setup()
    dfs.ingest("/in", [])
    job = Job(
        name="empty",
        mapper=identity_mapper,
        reducer=first_reducer,
        input_paths=["/in"],
        output_path="/out",
        num_reduces=2,
    )
    result = runtime.submit(job)
    assert result.stats.map_records == 0
    assert result.stats.output_records == 0
    for path in result.output_paths:
        assert dfs.exists(path)
