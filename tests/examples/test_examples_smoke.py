"""Smoke tests: every example program must run cleanly end-to-end.

Each example carries its own assertions (validation against scipy/numpy,
exact recovery after failure, etc.), so a zero exit code is meaningful.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"
