"""Fast tests for the figure harness (cheap figures + formatting)."""

import pytest

from repro.experiments.figures import ALL_FIGURES, FigureResult, table1, table2


def test_registry_covers_every_paper_artifact():
    assert set(ALL_FIGURES) == {
        "table1", "table2",
        "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig16", "fig18", "fig20",
    }


def test_table1_rows():
    result = table1()
    assert result.figure_id == "Table 1"
    assert len(result.rows) == 5
    assert {r["graph"] for r in result.rows} == {
        "dblp", "facebook", "sssp-s", "sssp-m", "sssp-l"
    }


def test_table2_rows():
    result = table2()
    assert len(result.rows) == 5


def test_format_text_series_and_stats():
    result = FigureResult("Fig X", "demo")
    result.series = {"curve": [(1, 2.0), (2, 4.0)]}
    result.stats = {"speedup": 2.0, "note": "hello"}
    text = result.format_text()
    assert "Fig X: demo" in text
    assert "(1, 2)" in text
    assert "speedup = 2.000" in text
    assert "note = hello" in text


def test_format_text_with_string_x_values():
    result = FigureResult("Fig Z", "bars")
    result.series = {"MapReduce": [("sssp-s", 97.123), ("sssp-m", 260.7)]}
    text = result.format_text()
    assert "(sssp-s, 97.12)" in text


def test_format_text_rows():
    result = FigureResult("Table X", "demo")
    result.rows = [{"graph": "g", "nodes": 3}]
    assert "'graph': 'g'" in result.format_text()


def test_format_text_non_pair_series():
    result = FigureResult("Fig Y", "demo")
    result.series = {"bars": [("a", 1.0, "extra")]}
    assert "bars" in result.format_text()


def test_paper_claims_cover_all_figures():
    from repro.experiments.report import PAPER_CLAIMS

    assert set(PAPER_CLAIMS) == set(ALL_FIGURES)
