"""Calibration guard: the cost model must keep the paper's qualitative
shapes.  If an engine or cost-model change moves a headline ratio out of
these bands, this test fails before the benchmarks do.

Bands are deliberately loose — they encode "who wins and by roughly what
factor", not exact numbers.  See EXPERIMENTS.md for the measured values
and their comparison against the paper.
"""

import pytest

from repro.experiments import RunSpec, execute


def factor_shares(algorithm, dataset, cluster, iterations, measure=True):
    mr = execute(
        RunSpec(algorithm, dataset, "mapreduce", cluster, iterations, measure_distance=measure)
    )
    imr = execute(
        RunSpec(algorithm, dataset, "imapreduce", cluster, iterations, measure_distance=measure)
    )
    sync = execute(
        RunSpec(
            algorithm, dataset, "imapreduce", cluster, iterations,
            sync=True, measure_distance=measure,
        )
    )
    total = mr.total_time
    init = (mr.total_init_time - imr.setup_time) / total
    async_ = (sync.total_time - imr.total_time) / total
    static = (total - imr.total_time) / total - init - async_
    return {
        "speedup": total / imr.total_time,
        "init": init,
        "async": async_,
        "static": static,
    }


@pytest.fixture(scope="module")
def google():
    """Fig. 6 conditions (paper: 2x speedup; init 10%, shuffle 30%, async 10%)."""
    return factor_shares("pagerank", "google", "local", 5)


@pytest.fixture(scope="module")
def dblp():
    """Fig. 4 conditions (paper: 2-3x; init ~20%, async ~15%, shuffle ~20%;
    abstract: 'up to 5 times speedup')."""
    return factor_shares("sssp", "dblp", "local", 5)


def test_google_speedup_band(google):
    assert 1.5 <= google["speedup"] <= 3.0


def test_google_init_share_band(google):
    assert 0.05 <= google["init"] <= 0.30


def test_google_static_share_band(google):
    assert 0.15 <= google["static"] <= 0.40


def test_google_async_share_positive(google):
    assert 0.01 <= google["async"] <= 0.20


def test_dblp_speedup_band(dblp):
    # "up to 5 times speedup over Hadoop" (abstract); Fig. 4 shows 2-3x.
    assert 2.0 <= dblp["speedup"] <= 5.6


def test_dblp_async_share_band(dblp):
    assert 0.05 <= dblp["async"] <= 0.30


def test_dblp_static_share_band(dblp):
    assert 0.10 <= dblp["static"] <= 0.35


def test_smaller_inputs_favor_imapreduce_more(google, dblp):
    """§4.3.1: "iMapReduce performs better when the input is small"."""
    assert dblp["speedup"] > google["speedup"]


def test_ec2_small_tier_ratio_band():
    """Fig 9, s-tier: paper reduces PageRank to ~44% of Hadoop."""
    mr = execute(RunSpec("pagerank", "pagerank-s", "mapreduce", "ec2-20", 10))
    imr = execute(RunSpec("pagerank", "pagerank-s", "imapreduce", "ec2-20", 10))
    assert 0.30 <= imr.total_time / mr.total_time <= 0.60


def test_communication_reduction_direction():
    """Fig 11: iMapReduce exchanges far less data (paper: ~12%)."""
    mr = execute(RunSpec("sssp", "sssp-m", "mapreduce", "ec2-20", 10))
    imr = execute(RunSpec("sssp", "sssp-m", "imapreduce", "ec2-20", 10))
    assert imr.network_bytes < 0.5 * mr.network_bytes
