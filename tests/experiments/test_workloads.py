"""Tests for the experiment workload runner."""

import pytest

from repro.experiments import RunSpec, execute, make_cluster, set_cost_model
from repro.mapreduce.costmodel import DEFAULT_COST_MODEL
from repro.simulation import Engine


def teardown_module():
    set_cost_model(None)


def test_make_cluster_kinds():
    assert len(make_cluster(Engine(), "local")) == 4
    assert len(make_cluster(Engine(), "ec2-7")) == 7
    assert len(make_cluster(Engine(), "single")) == 1
    with pytest.raises(ValueError):
        make_cluster(Engine(), "mainframe")


def test_execute_is_cached():
    spec = RunSpec("sssp", "dblp", "imapreduce", "local", 2)
    assert execute(spec) is execute(spec)


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        execute(RunSpec("sorting", "dblp", "mapreduce", "local", 1))


def test_both_engines_run_sssp_and_record_iterations():
    mr = execute(RunSpec("sssp", "dblp", "mapreduce", "local", 2))
    imr = execute(RunSpec("sssp", "dblp", "imapreduce", "local", 2))
    assert mr.num_iterations == 2
    assert imr.num_iterations == 2
    assert mr.total_time > imr.total_time


def test_measure_distance_adds_cost_but_not_early_stop():
    plain = execute(RunSpec("sssp", "dblp", "mapreduce", "local", 2))
    checked = execute(RunSpec("sssp", "dblp", "mapreduce", "local", 2, measure_distance=True))
    assert checked.num_iterations == 2
    assert checked.total_time > plain.total_time
    assert all(it.distance is not None for it in checked.iterations)


def test_sync_variant_is_slower_or_equal():
    imr = execute(RunSpec("pagerank", "pagerank-s", "imapreduce", "local", 2))
    sync = execute(RunSpec("pagerank", "pagerank-s", "imapreduce", "local", 2, sync=True))
    assert sync.total_time >= imr.total_time


def test_set_cost_model_changes_results_and_clears_cache():
    spec = RunSpec("sssp", "dblp", "imapreduce", "local", 2)
    base = execute(spec).total_time
    set_cost_model(DEFAULT_COST_MODEL.with_overrides(task_launch=10.0))
    slow = execute(spec).total_time
    set_cost_model(None)
    assert slow > base
    assert execute(spec).total_time == base


def test_matrixpower_merges_paired_jobs_into_logical_iterations():
    mr = execute(RunSpec("matrixpower", "matrix8", "mapreduce", "local", 2))
    imr = execute(RunSpec("matrixpower", "matrix8", "imapreduce", "local", 2))
    assert mr.num_iterations == imr.num_iterations == 2


def test_kmeans_convergence_detection_stops_early():
    imr = execute(
        RunSpec("kmeans", "lastfm", "imapreduce", "local", 30, convergence_detection=True)
    )
    assert imr.num_iterations < 30
