"""Quick-mode smoke for the wall-clock benchmark library.

Tiny problem sizes, one repeat: exercises the whole suite path —
workload builders, serial/parallel timing, integrity checks, the sizeof
micro-benchmark, and the JSON writer — in a few seconds.
"""

import json

from repro.experiments.wallclock import (
    COUNTERS,
    build_cases,
    compare_counters,
    run_suite,
    sizeof_microbench,
    time_case,
)
from repro.imapreduce.workerproc import PHASE_COUNTERS


def test_quick_suite_writes_json(tmp_path):
    out = tmp_path / "bench.json"
    results = run_suite(out_path=str(out), workers=(1, 2), quick=True)
    loaded = json.loads(out.read_text())
    assert loaded == results
    assert loaded["meta"]["quick"] is True
    assert loaded["meta"]["workers"] == [1, 2]
    # Four record workloads plus their four kernel twins.
    assert len(loaded["workloads"]) == 8
    twins = [w for w in loaded["workloads"] if w.get("kernel_of")]
    assert {w["name"] for w in twins} == {
        "pagerank-kernel", "sssp-kernel", "kmeans-kernel", "jacobi-kernel"
    }
    for twin in twins:
        assert twin["kernel_matches_record"] is True, twin["name"]
        assert twin["speedup_vs_record"] > 0.0
    assert set(loaded["phase_breakdown"]) == {
        w["name"] for w in loaded["workloads"]
    }
    total_batches = total_dense = 0
    for workload in loaded["workloads"]:
        assert workload["record_identical"], workload["name"]
        assert [p["workers"] for p in workload["parallel"]] == [1, 2]
        for point in workload["parallel"]:
            assert point["static_loads"] == point["workers"]
            assert point["seconds"] >= 0.0
            assert set(point["counters"]) == set(COUNTERS)
            assert set(point["phase_seconds"]) == set(PHASE_COUNTERS)
            # The mesh never ships more batches than the dense PR4
            # plane; a worker with nothing for a peer sends a manifest.
            assert point["counters"]["batches_sent"] <= point["dense_batches"]
            if point["workers"] == 1:
                assert point["counters"]["batches_sent"] == 0
            total_batches += point["counters"]["batches_sent"]
            total_dense += point["dense_batches"]
        breakdown = loaded["phase_breakdown"][workload["name"]]
        assert set(breakdown) == {"1", "2"}
    # Across the suite the skip-empty contract saves real messages
    # (sssp's frontier leaves some peers unfed even at smoke sizes).
    assert total_batches < total_dense


def test_suite_runs_without_output_file():
    case = build_cases(quick=True)[1]  # sssp: cheapest
    row, ref, job = time_case(case, workers=(2,), repeats=1)
    assert row["record_identical"]
    assert row["parallel"][0]["workers"] == 2
    assert ref.state and job.kernel is None


def test_compare_counters_flags_regressions(tmp_path):
    out = tmp_path / "bench.json"
    results = run_suite(out_path=str(out), workers=(2,), quick=True)
    # Data-plane counters are deterministic: a run is its own baseline.
    assert compare_counters(results, results) == []
    worse = json.loads(json.dumps(results))
    point = worse["workloads"][0]["parallel"][0]
    point["counters"]["batches_sent"] += 1
    point["counters"]["bytes_pickled"] = int(
        point["counters"]["bytes_pickled"] * 2
    )
    regressions = compare_counters(worse, results)
    assert len(regressions) == 2
    assert any("batches_sent" in line for line in regressions)
    assert any("bytes_pickled" in line for line in regressions)
    # A baseline missing the point passes (new workloads are additive).
    assert compare_counters(results, {"workloads": []}) == []


def test_sizeof_microbench_reports_speedup():
    micro = sizeof_microbench(calls=5_000)
    assert micro["calls"] > 0
    assert micro["uncached_seconds"] >= 0.0
    assert micro["memoized_seconds"] >= 0.0


def test_checkpoint_overhead_section():
    from repro.experiments.wallclock import checkpoint_overhead

    ck = checkpoint_overhead(quick=True, workers=2, checkpoint_every=1,
                             repeats=1)
    assert ck["workload"] == "pagerank"
    assert ck["record_identical"] is True
    # HB/ckpt frames live outside ship(): the data plane must not notice.
    assert ck["dataplane_counters_identical"] is True
    assert ck["ckpt_writes"] > 0 and ck["ckpt_bytes"] > 0
    assert ck["checkpoints"]  # committed manifests at every boundary
    assert ck["checkpoint_phase_seconds"] >= 0.0


def test_compare_counters_gates_checkpoint_overhead():
    # Synthetic results: the gate fires on full-size runs only, and only
    # past the ceiling.
    base = {"workloads": [], "meta": {"quick": False}}
    ok = dict(base, checkpoint_overhead={
        "overhead_pct": 3.0, "checkpoint_every": 5,
        "record_identical": True, "dataplane_counters_identical": True,
    })
    assert compare_counters(ok, {"workloads": []}) == []
    slow = dict(base, checkpoint_overhead={
        "overhead_pct": 9.5, "checkpoint_every": 5,
        "record_identical": True, "dataplane_counters_identical": True,
    })
    problems = compare_counters(slow, {"workloads": []})
    assert len(problems) == 1 and "checkpoint overhead" in problems[0]
    quick = dict(slow, meta={"quick": True})
    assert compare_counters(quick, {"workloads": []}) == []
    broken = dict(base, checkpoint_overhead={
        "overhead_pct": 1.0, "checkpoint_every": 5,
        "record_identical": False, "dataplane_counters_identical": False,
    })
    problems = compare_counters(broken, {"workloads": []})
    assert any("diverged" in p for p in problems)
    assert any("data-plane counters" in p for p in problems)


def test_compare_counters_gates_incremental_refresh():
    # Synthetic results: at churn <= gated_churn the warm run must beat
    # the cold rerun on both counters and the fixpoints must agree; the
    # 10% point is informational except for state divergence.
    def level(churn, *, fewer_updates=True, fewer_shipped=True, match=True):
        return {
            "churn": churn, "delta_size": 3, "frontier_keys": 5,
            "warm": {"rounds": 4, "updates_processed": 10,
                     "deltas_shipped": 20, "seconds": 0.1},
            "cold": {"rounds": 40, "updates_processed": 100,
                     "deltas_shipped": 200, "seconds": 1.0},
            "update_speedup": 10.0,
            "warm_fewer_updates": fewer_updates,
            "warm_fewer_shipped": fewer_shipped,
            "states_match": match,
        }

    def results(levels):
        return {
            "workloads": [], "meta": {"quick": True},
            "incremental_refresh": {
                "gated_churn": 0.01,
                "workloads": [{"name": "sssp-refresh", "levels": levels}],
            },
        }

    ok = results([level(0.001), level(0.01), level(0.1)])
    assert compare_counters(ok, {"workloads": []}) == []
    # A 10% point doing cold-rerun work passes; a diverged one fails.
    lazy = results([level(0.1, fewer_updates=False, fewer_shipped=False)])
    assert compare_counters(lazy, {"workloads": []}) == []
    regressed = results([level(0.01, fewer_updates=False)])
    problems = compare_counters(regressed, {"workloads": []})
    assert len(problems) == 1 and "strictly fewer pairs" in problems[0]
    leaky = results([level(0.001, fewer_shipped=False)])
    problems = compare_counters(leaky, {"workloads": []})
    assert len(problems) == 1 and "strictly fewer delta records" in problems[0]
    wrong = results([level(0.1, match=False)])
    problems = compare_counters(wrong, {"workloads": []})
    assert len(problems) == 1 and "diverged" in problems[0]


def test_history_tolerates_old_baselines():
    """``repro bench --history`` must render every committed baseline.

    The older BENCH_PR4/PR5 files predate the kernel counters, the
    async_convergence section and the incremental_refresh section; the
    trajectory table backfills missing keys with ``n/a`` instead of
    crashing or printing zeros.
    """
    import os

    from repro.experiments.wallclock import format_history, load_history

    root = os.path.join(os.path.dirname(__file__), "..", "..")
    entries = load_history(root)
    committed = {e["file"] for e in entries}
    assert {"BENCH_PR4.json", "BENCH_PR5.json"} <= committed
    text = format_history(entries)
    for entry in entries:
        assert entry["file"] in text


def test_history_backfills_missing_keys_with_na():
    # A degenerate baseline stripped to the bare row shape: every
    # newer counter key must render as n/a.
    from repro.experiments.wallclock import format_history

    entries = [{
        "pr": 1, "file": "BENCH_PR1.json",
        "data": {
            "meta": {},
            "workloads": [{"name": "pagerank", "parallel": [{"workers": 2}]}],
            "async_convergence": {"workloads": [{"name": "pagerank-accum"}]},
            "incremental_refresh": {
                "workloads": [
                    {"name": "sssp-refresh", "levels": [{"churn": 0.01}]}
                ]
            },
        },
    }]
    text = format_history(entries)
    assert "n/a" in text
    for row_name in ("pagerank", "pagerank-accum", "sssp-refresh"):
        assert row_name in text
