"""Quick-mode smoke for the wall-clock benchmark library.

Tiny problem sizes, one repeat: exercises the whole suite path —
workload builders, serial/parallel timing, integrity checks, the sizeof
micro-benchmark, and the JSON writer — in a few seconds.
"""

import json

from repro.experiments.wallclock import (
    COUNTERS,
    build_cases,
    compare_counters,
    run_suite,
    sizeof_microbench,
    time_case,
)
from repro.imapreduce.workerproc import PHASE_COUNTERS


def test_quick_suite_writes_json(tmp_path):
    out = tmp_path / "bench.json"
    results = run_suite(out_path=str(out), workers=(1, 2), quick=True)
    loaded = json.loads(out.read_text())
    assert loaded == results
    assert loaded["meta"]["quick"] is True
    assert loaded["meta"]["workers"] == [1, 2]
    # Four record workloads plus their four kernel twins.
    assert len(loaded["workloads"]) == 8
    twins = [w for w in loaded["workloads"] if w.get("kernel_of")]
    assert {w["name"] for w in twins} == {
        "pagerank-kernel", "sssp-kernel", "kmeans-kernel", "jacobi-kernel"
    }
    for twin in twins:
        assert twin["kernel_matches_record"] is True, twin["name"]
        assert twin["speedup_vs_record"] > 0.0
    assert set(loaded["phase_breakdown"]) == {
        w["name"] for w in loaded["workloads"]
    }
    total_batches = total_dense = 0
    for workload in loaded["workloads"]:
        assert workload["record_identical"], workload["name"]
        assert [p["workers"] for p in workload["parallel"]] == [1, 2]
        for point in workload["parallel"]:
            assert point["static_loads"] == point["workers"]
            assert point["seconds"] >= 0.0
            assert set(point["counters"]) == set(COUNTERS)
            assert set(point["phase_seconds"]) == set(PHASE_COUNTERS)
            # The mesh never ships more batches than the dense PR4
            # plane; a worker with nothing for a peer sends a manifest.
            assert point["counters"]["batches_sent"] <= point["dense_batches"]
            if point["workers"] == 1:
                assert point["counters"]["batches_sent"] == 0
            total_batches += point["counters"]["batches_sent"]
            total_dense += point["dense_batches"]
        breakdown = loaded["phase_breakdown"][workload["name"]]
        assert set(breakdown) == {"1", "2"}
    # Across the suite the skip-empty contract saves real messages
    # (sssp's frontier leaves some peers unfed even at smoke sizes).
    assert total_batches < total_dense


def test_suite_runs_without_output_file():
    case = build_cases(quick=True)[1]  # sssp: cheapest
    row, ref, job = time_case(case, workers=(2,), repeats=1)
    assert row["record_identical"]
    assert row["parallel"][0]["workers"] == 2
    assert ref.state and job.kernel is None


def test_compare_counters_flags_regressions(tmp_path):
    out = tmp_path / "bench.json"
    results = run_suite(out_path=str(out), workers=(2,), quick=True)
    # Data-plane counters are deterministic: a run is its own baseline.
    assert compare_counters(results, results) == []
    worse = json.loads(json.dumps(results))
    point = worse["workloads"][0]["parallel"][0]
    point["counters"]["batches_sent"] += 1
    point["counters"]["bytes_pickled"] = int(
        point["counters"]["bytes_pickled"] * 2
    )
    regressions = compare_counters(worse, results)
    assert len(regressions) == 2
    assert any("batches_sent" in line for line in regressions)
    assert any("bytes_pickled" in line for line in regressions)
    # A baseline missing the point passes (new workloads are additive).
    assert compare_counters(results, {"workloads": []}) == []


def test_sizeof_microbench_reports_speedup():
    micro = sizeof_microbench(calls=5_000)
    assert micro["calls"] > 0
    assert micro["uncached_seconds"] >= 0.0
    assert micro["memoized_seconds"] >= 0.0


def test_checkpoint_overhead_section():
    from repro.experiments.wallclock import checkpoint_overhead

    ck = checkpoint_overhead(quick=True, workers=2, checkpoint_every=1,
                             repeats=1)
    assert ck["workload"] == "pagerank"
    assert ck["record_identical"] is True
    # HB/ckpt frames live outside ship(): the data plane must not notice.
    assert ck["dataplane_counters_identical"] is True
    assert ck["ckpt_writes"] > 0 and ck["ckpt_bytes"] > 0
    assert ck["checkpoints"]  # committed manifests at every boundary
    assert ck["checkpoint_phase_seconds"] >= 0.0


def test_compare_counters_gates_checkpoint_overhead():
    # Synthetic results: the gate fires on full-size runs only, and only
    # past the ceiling.
    base = {"workloads": [], "meta": {"quick": False}}
    ok = dict(base, checkpoint_overhead={
        "overhead_pct": 3.0, "checkpoint_every": 5,
        "record_identical": True, "dataplane_counters_identical": True,
    })
    assert compare_counters(ok, {"workloads": []}) == []
    slow = dict(base, checkpoint_overhead={
        "overhead_pct": 9.5, "checkpoint_every": 5,
        "record_identical": True, "dataplane_counters_identical": True,
    })
    problems = compare_counters(slow, {"workloads": []})
    assert len(problems) == 1 and "checkpoint overhead" in problems[0]
    quick = dict(slow, meta={"quick": True})
    assert compare_counters(quick, {"workloads": []}) == []
    broken = dict(base, checkpoint_overhead={
        "overhead_pct": 1.0, "checkpoint_every": 5,
        "record_identical": False, "dataplane_counters_identical": False,
    })
    problems = compare_counters(broken, {"workloads": []})
    assert any("diverged" in p for p in problems)
    assert any("data-plane counters" in p for p in problems)
