"""Quick-mode smoke for the wall-clock benchmark library.

Tiny problem sizes, one repeat: exercises the whole suite path —
workload builders, serial/parallel timing, integrity checks, the sizeof
micro-benchmark, and the JSON writer — in a few seconds.
"""

import json

from repro.experiments.wallclock import (
    build_cases,
    run_suite,
    sizeof_microbench,
    time_case,
)


def test_quick_suite_writes_json(tmp_path):
    out = tmp_path / "bench.json"
    results = run_suite(out_path=str(out), workers=(1, 2), quick=True)
    loaded = json.loads(out.read_text())
    assert loaded == results
    assert loaded["meta"]["quick"] is True
    assert loaded["meta"]["workers"] == [1, 2]
    assert len(loaded["workloads"]) == 3
    for workload in loaded["workloads"]:
        assert workload["record_identical"], workload["name"]
        assert [p["workers"] for p in workload["parallel"]] == [1, 2]
        for point in workload["parallel"]:
            assert point["static_loads"] == point["workers"]
            assert point["seconds"] >= 0.0


def test_suite_runs_without_output_file():
    case = build_cases(quick=True)[1]  # sssp: cheapest
    row = time_case(case, workers=(2,), repeats=1)
    assert row["record_identical"]
    assert row["parallel"][0]["workers"] == 2


def test_sizeof_microbench_reports_speedup():
    micro = sizeof_microbench(calls=5_000)
    assert micro["calls"] > 0
    assert micro["uncached_seconds"] >= 0.0
    assert micro["memoized_seconds"] >= 0.0
