"""Tests for RunMetrics / IterationMetrics derivations."""

import pytest

from repro.metrics import IterationMetrics, RunMetrics


def make_metrics():
    m = RunMetrics(label="test", start=10.0, end=70.0, setup_time=5.0)
    m.iterations = [
        IterationMetrics(index=0, start=15.0, end=30.0, init_time=3.0,
                         shuffle_bytes=100, state_bytes=10, distance=4.0),
        IterationMetrics(index=1, start=30.0, end=50.0, init_time=3.0,
                         shuffle_bytes=200, state_bytes=20, distance=2.0),
        IterationMetrics(index=2, start=50.0, end=70.0, init_time=3.0,
                         shuffle_bytes=300, state_bytes=30, distance=1.0),
    ]
    return m


def test_totals():
    m = make_metrics()
    assert m.total_time == 60.0
    assert m.num_iterations == 3
    assert m.total_init_time == 5.0 + 9.0
    assert m.total_shuffle_bytes == 600
    assert m.total_state_bytes == 60


def test_iteration_elapsed():
    m = make_metrics()
    assert m.iterations[0].elapsed == 15.0
    assert m.iterations[2].elapsed == 20.0


def test_cumulative_times():
    m = make_metrics()
    assert m.cumulative_times() == [(1, 20.0), (2, 40.0), (3, 60.0)]


def test_cumulative_excluding_init_subtracts_accrued_init():
    m = make_metrics()
    series = m.cumulative_times_excluding_init()
    # setup (5) + per-iteration init (3 each) accrue progressively.
    assert series == [(1, 20.0 - 8.0), (2, 40.0 - 11.0), (3, 60.0 - 14.0)]


def test_ex_init_below_total_everywhere():
    m = make_metrics()
    total = dict(m.cumulative_times())
    ex = dict(m.cumulative_times_excluding_init())
    assert all(ex[k] < total[k] for k in total)


def test_time_for_iterations():
    m = make_metrics()
    assert m.time_for_iterations(1) == 20.0
    assert m.time_for_iterations(2) == 40.0
    assert m.time_for_iterations(99) == m.total_time


def test_time_for_iterations_empty():
    m = RunMetrics(label="empty", start=0.0, end=7.0)
    assert m.time_for_iterations(1) == 7.0


def test_extras_are_free_form():
    m = make_metrics()
    m.extras["migrations"] = [{"pair": 1}]
    assert m.extras["migrations"][0]["pair"] == 1
