"""Tests for the metrics pretty-printers."""

from repro.metrics import IterationMetrics, RunMetrics, compare_runs, format_run


def make_run(label="demo", total=30.0):
    m = RunMetrics(label=label, start=0.0, end=total, setup_time=2.0,
                   network_bytes=5_000_000)
    m.iterations = [
        IterationMetrics(index=0, start=2.0, end=12.0, init_time=1.0,
                         shuffle_bytes=1_000_000, state_bytes=100_000, distance=0.5),
        IterationMetrics(index=1, start=12.0, end=total, init_time=1.0,
                         shuffle_bytes=2_000_000, state_bytes=200_000),
    ]
    return m


def test_format_run_contains_summary_and_rows():
    text = format_run(make_run())
    assert "run demo: 30.0s total" in text
    assert "2 iterations" in text
    assert "0.5" in text  # the distance
    assert text.count("\n") >= 3


def test_format_run_shows_migrations_and_recoveries():
    m = make_run()
    m.extras["migrations"] = [{"pair": 2, "from": "a", "to": "b"}]
    m.extras["recoveries"] = 1
    text = format_run(m)
    assert "migration: pair 2 a -> b" in text
    assert "recoveries: 1" in text


def test_compare_runs_relative_to_first():
    text = compare_runs({
        "MapReduce": make_run("mr", total=60.0),
        "iMapReduce": make_run("imr", total=30.0),
    })
    assert "MapReduce" in text and "iMapReduce" in text
    assert "1.00x" in text  # baseline vs itself
    assert "2.00x" in text  # the speedup column


def test_compare_runs_empty():
    assert compare_runs({}) == "(no runs)"
