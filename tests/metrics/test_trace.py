"""Tests for the tracing subsystem (and that tracing is time-neutral)."""

import pytest

from repro.cluster import local_cluster
from repro.common import IterKeys, JobConf
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime, IterativeJob
from repro.metrics.trace import TraceEvent, Tracer
from repro.simulation import Engine


def test_emit_and_select():
    tracer = Tracer()
    tracer.emit(1.0, "map-iteration-start", worker="node0", pair=1)
    tracer.emit(2.0, "map-iteration-start", worker="node1", pair=2)
    tracer.emit(3.0, "checkpoint", worker="node0", state_index=2)
    assert len(tracer.select("map-iteration-start")) == 2
    assert len(tracer.select("map-iteration-start", pair=2)) == 1
    assert tracer.kinds() == {"map-iteration-start": 2, "checkpoint": 1}


def test_event_field_access():
    event = TraceEvent(1.0, "x", {"pair": 7})
    assert event.pair == 7
    with pytest.raises(AttributeError):
        _ = event.missing


def test_clear():
    tracer = Tracer()
    tracer.emit(0.0, "x")
    tracer.clear()
    assert tracer.events == []


def test_timeline_renders_spans_and_marks():
    tracer = Tracer()
    tracer.emit(0.0, "map-iteration-start", worker="node0", task="m0")
    tracer.emit(5.0, "map-iteration-end", worker="node0", task="m0")
    tracer.emit(5.0, "reduce-iteration-start", worker="node1", task="r0")
    tracer.emit(10.0, "reduce-iteration-end", worker="node1", task="r0")
    tracer.emit(7.0, "checkpoint", worker="node1")
    text = tracer.timeline(width=40)
    assert "node0" in text and "node1" in text
    assert "m" in text and "r" in text and "C" in text


def test_timeline_empty():
    assert Tracer().timeline() == "(no spans recorded)"


# ---- integration: tracing a real run --------------------------------------


def run_traced(trace):
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/t/state", [(i, 1.0) for i in range(16)])
    conf = JobConf({IterKeys.STATE_PATH: "/t/state", IterKeys.MAX_ITER: 3})
    conf.set_int(IterKeys.CHECKPOINT_INTERVAL, 1)
    job = IterativeJob.single_phase(
        "traced",
        lambda k, s, st, ctx: ctx.emit(k, s * 0.5),
        lambda k, vs, ctx: ctx.emit(k, vs[0]),
        conf=conf,
        output_path="/t/out",
    )
    runtime = IMapReduceRuntime(cluster, dfs, trace=trace)
    return runtime.submit(job)


def test_traced_run_captures_lifecycle():
    tracer = Tracer()
    result = run_traced(tracer)
    kinds = tracer.kinds()
    assert kinds["iteration-complete"] == 3
    assert kinds["terminate"] == 1
    assert kinds["checkpoint"] >= 3  # per pair per interval
    # 4 pairs x 3 iterations of map/reduce activity (asynchronous tasks
    # may start a 4th, abandoned iteration).
    assert kinds["map-iteration-start"] >= 12
    assert kinds["reduce-iteration-start"] >= 12
    # Ends never exceed starts.
    assert kinds["reduce-iteration-end"] <= kinds["reduce-iteration-start"]
    # The timeline renders with every worker present.
    text = tracer.timeline()
    for name in ("node0", "node1", "node2", "node3"):
        assert name in text


def test_tracing_is_time_neutral():
    traced = run_traced(Tracer())
    untraced = run_traced(None)
    assert traced.metrics.total_time == untraced.metrics.total_time


def test_timeline_clamps_columns():
    """Marks at the extreme right edge must not overflow the row."""
    tracer = Tracer()
    tracer.emit(0.0, "map-iteration-start", worker="w", task="m")
    tracer.emit(100.0, "map-iteration-end", worker="w", task="m")
    tracer.emit(100.0, "checkpoint", worker="w")
    text = tracer.timeline(width=20)
    for line in text.splitlines()[1:]:
        assert len(line) == len(text.splitlines()[1])


def test_unmatched_start_is_ignored():
    tracer = Tracer()
    tracer.emit(0.0, "map-iteration-start", worker="w", task="m")
    tracer.emit(1.0, "checkpoint", worker="w")
    text = tracer.timeline(width=10)
    assert "C" in text
