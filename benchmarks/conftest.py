"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark:

1. builds one paper figure via its :mod:`repro.experiments.figures`
   function (timed by pytest-benchmark — the cost of regenerating the
   figure from scratch, simulation included);
2. prints the figure's rows/series in paper-style form (captured into
   ``benchmarks/results/<figure>.txt`` for EXPERIMENTS.md);
3. asserts the paper's qualitative *shape* — who wins, by roughly what
   factor — never exact numbers.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def figure_runner(benchmark):
    """Run a figure function once under the benchmark timer, persist its
    text rendering, and return the FigureResult."""

    def run(figure_fn):
        result = benchmark.pedantic(figure_fn, rounds=1, iterations=1)
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.format_text()
        name = result.figure_id.lower().replace(" ", "")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return result

    return run
