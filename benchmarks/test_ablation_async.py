"""Ablation: asynchronous vs synchronous map execution across workloads.

§3.3's asynchronous execution is one of the paper's three factors; this
ablation isolates it per workload.  Graph algorithms (one-to-one
mapping) can run asynchronously; K-means (one-to-all) cannot — exactly
why the paper's K-means speedup (Fig. 16) is the smallest.
"""

import pytest

from repro.experiments import RunSpec, execute


WORKLOADS = [
    ("sssp", "dblp"),
    ("pagerank", "google"),
]


def test_async_vs_sync(benchmark):
    def sweep():
        out = {}
        for algorithm, dataset in WORKLOADS:
            asyn = execute(
                RunSpec(algorithm, dataset, "imapreduce", "local", 6, measure_distance=True)
            )
            sync = execute(
                RunSpec(
                    algorithm, dataset, "imapreduce", "local", 6,
                    sync=True, measure_distance=True,
                )
            )
            out[(algorithm, dataset)] = (asyn, sync)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Ablation: asynchronous vs synchronous map execution ==")
    for (algorithm, dataset), (asyn, sync) in results.items():
        gain = 1 - asyn.total_time / sync.total_time
        print(
            f"  {algorithm:>8}/{dataset:<9}: sync {sync.total_time:7.1f}s  "
            f"async {asyn.total_time:7.1f}s  gain {gain:6.1%}"
        )

    for (algorithm, dataset), (asyn, sync) in results.items():
        # Asynchronous execution never loses once the pipeline is warm.
        assert asyn.total_time <= sync.total_time * 1.02, (algorithm, dataset)
