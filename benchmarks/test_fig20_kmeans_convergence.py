"""Fig 20: K-means with convergence detection.

Paper: running the detection as a parallel auxiliary phase (instead of
an extra synchronous Hadoop job per iteration) cuts ~25% of running
time; the computation stops after ~6 iterations.
"""

from repro.experiments.figures import fig20


def test_fig20(figure_runner):
    result = figure_runner(fig20)
    assert result.stats["time_saving"] > 0.10
    # Both implementations detect convergence well before the cap.
    assert result.stats["mapreduce_iterations"] < 30
    assert result.stats["imapreduce_iterations"] < 30
