"""Fig 10: the three factors' shares of the running-time reduction on
SSSP-m and PageRank-m.

Paper: one-time initialization and asynchronous execution each save
~5-10%; static-shuffle avoidance saves more, growing with the static
data size (SSSP-m's input is larger than PageRank-m's).
"""

from repro.experiments.figures import fig10


def test_fig10(figure_runner):
    result = figure_runner(fig10)
    for tier, factors in result.series.items():
        shares = dict(factors)
        assert shares["one-time initialization"] > 0.0
        assert shares["avoid static data shuffling"] > 0.0
        # Static-shuffle avoidance is the dominant factor (paper Fig 10).
        assert shares["avoid static data shuffling"] == max(shares.values())
    assert result.stats["total_reduction[sssp-m]"] > 0.25
    assert result.stats["total_reduction[pagerank-m]"] > 0.2
