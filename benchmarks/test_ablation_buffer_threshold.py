"""Ablation: the reduce→map buffer threshold (§3.3).

The paper inserts a buffer on the persistent socket because eagerly
triggering the map per record "will result in frequent context switches
... that impacts performance".  Sweeping the buffer size shows the
trade: tiny buffers pay per-flush overhead, huge buffers forfeit the
eager-execution overlap (one flush per iteration ≈ synchronous hand-off).
"""

import pytest

from repro.algorithms import pagerank
from repro.cluster import local_cluster
from repro.data import load_graph
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime
from repro.simulation import Engine

ITERATIONS = 6


def run_once(buffer_records):
    graph = load_graph("google")
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/b/state", pagerank.initial_state(graph))
    dfs.ingest("/b/static", pagerank.static_records(graph))
    job = pagerank.build_imr_job(
        graph.num_nodes,
        state_path="/b/state",
        static_path="/b/static",
        output_path="/b/out",
        max_iterations=ITERATIONS,
        buffer_records=buffer_records,
    )
    return IMapReduceRuntime(cluster, dfs).submit(job)


def test_buffer_threshold_sweep(benchmark):
    sizes = (8, 256, 2048, 10**9)

    def sweep():
        return {size: run_once(size) for size in sizes}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Ablation: reduce→map buffer threshold (PageRank, Google stand-in) ==")
    for size, result in results.items():
        label = "∞ (one flush/iter)" if size == 10**9 else str(size)
        print(f"  buffer={label:>18}: {result.metrics.total_time:8.1f}s")

    times = {s: r.metrics.total_time for s, r in results.items()}
    # A tiny buffer pays per-flush overhead: worse than the default.
    assert times[8] > times[2048]
    # All variants compute the same number of iterations.
    assert {r.iterations_run for r in results.values()} == {ITERATIONS}
