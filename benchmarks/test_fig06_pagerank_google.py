"""Fig 6: PageRank running time vs iterations on the Google stand-in.

Paper: ~2x speedup; init saves ~10%, static shuffling ~30%, async ~10%.
"""

from repro.experiments.figures import fig6


def test_fig6(figure_runner):
    result = figure_runner(fig6)

    curves = result.series
    mr = dict(curves["MapReduce"])
    imr = dict(curves["iMapReduce"])
    ex_init = dict(curves["MapReduce (ex. init.)"])
    sync = dict(curves["iMapReduce (sync.)"])
    for k in mr:
        # Curve ordering the paper plots: iMR < MR (ex init) < MR.
        assert ex_init[k] < mr[k]
        assert imr[k] < mr[k]
    # Asynchronous execution wins over synchronous once the pipeline is
    # warm (the first iteration or two may cross over while run-ahead
    # maps fill).
    last = max(mr)
    assert imr[last] <= sync[last] + 1e-9
    # Monotone cumulative time.
    xs = [x for x, _ in curves["MapReduce"]]
    assert xs == sorted(xs)

    assert 1.5 <= result.stats["speedup"] <= 3.0
    assert 0.05 <= result.stats["init_share"] <= 0.30
    assert 0.15 <= result.stats["static_shuffle_share"] <= 0.40
