"""Fig 9: PageRank on the synthetic s/m/l graphs (EC2-like, 20 instances).

Paper: running time reduced to 44% (s) and about 60% (m, l).
"""

from repro.experiments.figures import fig9


def test_fig9(figure_runner):
    result = figure_runner(fig9)
    ratios = {k.split("[")[1][:-1]: v for k, v in result.stats.items()}
    assert 0.30 <= ratios["pagerank-s"] <= 0.60
    for tier in ("pagerank-m", "pagerank-l"):
        assert 0.40 <= ratios[tier] <= 0.80, (tier, ratios[tier])
    assert ratios["pagerank-s"] == min(ratios.values())
