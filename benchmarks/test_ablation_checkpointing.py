"""Ablation: checkpoint interval vs failure-recovery cost (§3.4.1).

The paper checkpoints the state data "every few iterations" and recovers
from the most recent checkpoint.  This ablation quantifies the trade:

* failure-free runs — frequent checkpoints cost a little extra time
  (parallel DFS writes still contend for disk/NIC);
* runs with a mid-computation worker failure — frequent checkpoints
  bound the rollback, so recovery is cheaper.
"""

import pytest

from repro.algorithms import sssp
from repro.cluster import FaultSchedule, local_cluster
from repro.data import load_graph
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime
from repro.simulation import Engine

ITERATIONS = 10


def run_once(checkpoint_interval, fail_at=None):
    graph = load_graph("dblp")
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/a/state", sssp.initial_state(graph, 0))
    dfs.ingest("/a/static", sssp.static_records(graph))
    if fail_at is not None:
        FaultSchedule().fail_at(fail_at, "node1").arm(engine, cluster)
    job = sssp.build_imr_job(
        state_path="/a/state",
        static_path="/a/static",
        output_path="/a/out",
        max_iterations=ITERATIONS,
        checkpoint_interval=checkpoint_interval,
    )
    return IMapReduceRuntime(cluster, dfs).submit(job)


def test_checkpoint_interval_tradeoff(benchmark):
    def sweep():
        clean = {k: run_once(k) for k in (1, 3, 5)}
        # Aim the failure at ~70% through the clean run.
        when = clean[3].metrics.total_time * 0.7
        failed = {k: run_once(k, fail_at=when) for k in (1, 3, 5)}
        return clean, failed

    clean, failed = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Ablation: checkpoint interval (SSSP on DBLP stand-in) ==")
    for k in (1, 3, 5):
        print(
            f"  interval={k}: clean {clean[k].metrics.total_time:7.1f}s   "
            f"with failure {failed[k].metrics.total_time:7.1f}s   "
            f"(recoveries {failed[k].recoveries})"
        )

    # Every failed run recovered and completed all iterations.
    for k in (1, 3, 5):
        assert failed[k].iterations_run == ITERATIONS
        assert failed[k].recoveries >= 1
        # Recovery always costs something.
        assert failed[k].metrics.total_time > clean[k].metrics.total_time
    # Rolling back to a per-iteration checkpoint redoes less work than
    # rolling back up to 5 iterations.
    redo_1 = failed[1].metrics.total_time - clean[1].metrics.total_time
    redo_5 = failed[5].metrics.total_time - clean[5].metrics.total_time
    assert redo_1 < redo_5
