"""Wall-clock suite runner: real elapsed seconds, real OS processes.

Run explicitly (not part of tier-1 ``tests/``):

    PYTHONPATH=src python -m pytest benchmarks/wallclock -q

or via the CLI, which writes ``BENCH_PR4.json`` at the repo root:

    PYTHONPATH=src python -m repro bench [--quick] [--workers 1,2,4]

The full suite asserts integrity (record-identical results, one static
load per worker) on every measurement; speedup itself is *reported*, not
asserted, because it is a property of the runner's core count — the
JSON records ``cpu_count`` so readers can judge the numbers honestly.
"""

import json
import pathlib

from repro.experiments.wallclock import DEFAULT_WORKERS, run_suite

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "results"


def test_wallclock_suite():
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "wallclock.json"
    results = run_suite(out_path=str(out), workers=DEFAULT_WORKERS,
                        quick=False, log=print)
    assert out.exists()
    loaded = json.loads(out.read_text())
    assert loaded["meta"]["cpu_count"] >= 1
    assert {w["name"] for w in loaded["workloads"]} == {
        "pagerank", "sssp", "kmeans"
    }
    total_batches = total_dense = 0
    for workload in results["workloads"]:
        assert workload["record_identical"], workload["name"]
        for point in workload["parallel"]:
            assert point["static_loads"] == point["workers"]
            assert point["counters"]["batches_sent"] <= point["dense_batches"]
            total_batches += point["counters"]["batches_sent"]
            total_dense += point["dense_batches"]
    # The skip-empty mesh plus the hoisted one2all broadcast must ship
    # strictly fewer batches than the dense PR4 protocol overall.
    assert total_batches < total_dense
    assert set(results["phase_breakdown"]) == {"pagerank", "sssp", "kmeans"}
    micro = results["sizeof_microbench"]
    assert micro["speedup"] is not None and micro["speedup"] > 1.0
