"""Fig 11: total communication cost on the l-tier graphs.

Paper: iMapReduce reduces the data exchanged to ~12% of Hadoop's.  Our
byte accounting reproduces a large reduction (state-only vs
state+static+DFS traffic); the exact ratio is higher (~30%) because our
small framed state records weigh relatively more - see EXPERIMENTS.md.
"""

from repro.experiments.figures import fig11


def test_fig11(figure_runner):
    result = figure_runner(fig11)
    # SSSP's static data (weighted adjacency) dominates its baseline
    # traffic; PageRank's per-edge rank shares weigh more, so its ratio
    # is higher.  Both show the paper's direction: a large reduction.
    assert result.stats["comm_ratio[sssp-l]"] < 0.45
    assert result.stats["comm_ratio[pagerank-l]"] < 0.65
    for tier, bars in result.series.items():
        values = dict(bars)
        assert values["iMapReduce"] < 0.7 * values["MapReduce"]
