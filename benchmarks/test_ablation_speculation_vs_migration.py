"""Ablation: Hadoop's speculative execution vs iMapReduce's migration.

Both frameworks answer heterogeneity differently (paper §3.4): Hadoop
clones straggling tasks per job; iMapReduce migrates the persistent pair
once and keeps the benefit for every later iteration.  This ablation
runs PageRank on a cluster with a 4× straggler under all four policies.
"""

import pytest

from repro.algorithms import pagerank
from repro.cluster import heterogeneous_cluster
from repro.dfs import DFS
from repro.graph import pagerank_graph
from repro.imapreduce import IMapReduceRuntime, LoadBalanceConfig
from repro.mapreduce import IterativeDriver, MapReduceRuntime
from repro.simulation import Engine

ITERATIONS = 10
NODES = 3_000
SPEEDS = [1.0, 1.0, 1.0, 0.25]


def build(engine):
    cluster = heterogeneous_cluster(engine, SPEEDS, cores=2)
    dfs = DFS(cluster, replication=2)
    graph = pagerank_graph(NODES, seed=17)
    return cluster, dfs, graph


def run_mr(speculative):
    engine = Engine()
    cluster, dfs, graph = build(engine)
    dfs.ingest("/h/in", pagerank.mr_initial_records(graph))
    runtime = MapReduceRuntime(cluster, dfs, speculative_execution=speculative)
    spec = pagerank.build_mr_spec(
        graph.num_nodes, output_prefix="/h/mr", max_iterations=ITERATIONS,
        num_reduces=8,
    )
    return IterativeDriver(runtime).run(spec, ["/h/in"]).metrics


def run_imr(balanced):
    engine = Engine()
    cluster, dfs, graph = build(engine)
    dfs.ingest("/h/state", pagerank.initial_state(graph))
    dfs.ingest("/h/static", pagerank.static_records(graph))
    job = pagerank.build_imr_job(
        graph.num_nodes,
        state_path="/h/state",
        static_path="/h/static",
        output_path="/h/out",
        max_iterations=ITERATIONS,
        num_pairs=8,
        checkpoint_interval=1,
    )
    runtime = IMapReduceRuntime(
        cluster, dfs,
        load_balance=LoadBalanceConfig(enabled=balanced, deviation_threshold=0.4),
    )
    return runtime.submit(job).metrics


def test_speculation_vs_migration(benchmark):
    def sweep():
        return {
            "MapReduce": run_mr(False),
            "MapReduce + speculation": run_mr(True),
            "iMapReduce": run_imr(False),
            "iMapReduce + migration": run_imr(True),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Ablation: heterogeneity countermeasures (PageRank, 4x straggler) ==")
    for name, metrics in results.items():
        print(f"  {name:<26}: {metrics.total_time:8.1f}s")

    # Each framework's countermeasure helps itself.
    assert (
        results["MapReduce + speculation"].total_time
        <= results["MapReduce"].total_time
    )
    assert (
        results["iMapReduce + migration"].total_time
        < results["iMapReduce"].total_time
    )
    # iMapReduce with migration beats the best baseline.
    assert (
        results["iMapReduce + migration"].total_time
        < results["MapReduce + speculation"].total_time
    )
