"""Table 2: PageRank data sets statistics.

Paper: five unweighted webgraphs (Google, Berkeley-Stanford, three
log-normal synthetic graphs).

Note an internal inconsistency in the paper itself: it generates the
synthetic family from a log-normal out-degree distribution with σ=2.0,
μ=−0.5 (mean degree e^{1.5} ≈ 4.5), yet Table 2 reports ≈7.4 edges per
node for those graphs.  We follow the *published parameters* (the
generative recipe), so our synthetic tiers land near mean degree 4–5;
the real-graph stand-ins match their published edge/node ratios closely.
"""

from repro.experiments.figures import table2


def test_table2(figure_runner):
    result = figure_runner(table2)
    rows = {r["graph"]: r for r in result.rows}
    assert set(rows) == {
        "google",
        "berk-stan",
        "pagerank-s",
        "pagerank-m",
        "pagerank-l",
    }
    # Real-graph stand-ins: mean degree tracks the published ratio.
    for name in ("google", "berk-stan"):
        row = rows[name]
        assert (
            abs(row["mean_degree"] - row["paper_mean_degree"])
            <= 0.15 * row["paper_mean_degree"]
        )
    # Synthetic tiers: generated from the paper's published log-normal
    # parameters, whose analytic mean degree is e^1.5 ~ 4.5 (see module
    # docstring for the paper's internal inconsistency).
    import math

    for name in ("pagerank-s", "pagerank-m", "pagerank-l"):
        assert abs(rows[name]["mean_degree"] - math.e ** 1.5) <= 1.5
    assert (
        rows["pagerank-s"]["nodes"]
        < rows["pagerank-m"]["nodes"]
        < rows["pagerank-l"]["nodes"]
    )
