"""Fig 8: SSSP on the synthetic s/m/l graphs (EC2-like, 20 instances).

Paper: iMapReduce reduces running time to 23.2% / 37.0% / 38.6% of
Hadoop's, doing best on the smallest input.
"""

from repro.experiments.figures import fig8


def test_fig8(figure_runner):
    result = figure_runner(fig8)
    ratios = {k.split("[")[1][:-1]: v for k, v in result.stats.items()}
    for tier, ratio in ratios.items():
        assert 0.15 <= ratio <= 0.75, (tier, ratio)
    # Best (lowest) ratio on the smallest graph, as in the paper.
    assert ratios["sssp-s"] == min(ratios.values())
