"""Ablation: task migration on heterogeneous clusters (§3.4.2).

A straggler bounds every iteration of a sync-free pipeline.  The load
balancer migrates the straggler's pairs away at the cost of a rollback;
this quantifies the net gain at different degrees of heterogeneity.
"""

import pytest

from repro.algorithms import pagerank
from repro.cluster import heterogeneous_cluster
from repro.graph import pagerank_graph
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime, LoadBalanceConfig
from repro.simulation import Engine

ITERATIONS = 12
NODES = 4_000


def run_once(straggler_speed, balanced):
    graph = pagerank_graph(NODES, seed=4)
    engine = Engine()
    cluster = heterogeneous_cluster(engine, [1.0, 1.0, 1.0, straggler_speed], cores=2)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/lb/state", pagerank.initial_state(graph))
    dfs.ingest("/lb/static", pagerank.static_records(graph))
    job = pagerank.build_imr_job(
        graph.num_nodes,
        state_path="/lb/state",
        static_path="/lb/static",
        output_path="/lb/out",
        max_iterations=ITERATIONS,
        num_pairs=8,
        checkpoint_interval=1,
    )
    runtime = IMapReduceRuntime(
        cluster,
        dfs,
        load_balance=LoadBalanceConfig(
            enabled=balanced, deviation_threshold=0.4, cooldown_iterations=3
        ),
    )
    return runtime.submit(job)


def test_load_balancing_gain(benchmark):
    def sweep():
        out = {}
        for speed in (0.5, 0.25):
            out[speed] = (run_once(speed, False), run_once(speed, True))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Ablation: load balancing vs straggler severity (PageRank) ==")
    for speed, (plain, balanced) in results.items():
        gain = 1 - balanced.metrics.total_time / plain.metrics.total_time
        print(
            f"  straggler at {speed:0.2f}x: off {plain.metrics.total_time:7.1f}s  "
            f"on {balanced.metrics.total_time:7.1f}s  "
            f"gain {gain:5.1%}  migrations {len(balanced.migrations)}"
        )

    # The severe straggler must trigger migration and win overall.
    plain, balanced = results[0.25]
    assert len(balanced.migrations) >= 1
    assert balanced.metrics.total_time < plain.metrics.total_time
    # Migrations always leave the straggler.
    for move in balanced.migrations:
        assert move["from"] == "hnode3"
