"""Fig 4: SSSP running time vs iterations on the DBLP stand-in.

Paper: iMapReduce is 2-3x faster than Hadoop; one-time initialization
saves ~20%, asynchronous execution ~15%, static-shuffle avoidance ~20%.
On our 20x-smaller stand-in the fixed per-job overhead weighs more, so
the speedup is larger (the paper's own small-input trend, §4.3.1).
"""

from repro.experiments.figures import fig4


def test_fig4(figure_runner):
    result = figure_runner(fig4)

    curves = result.series
    mr = dict(curves["MapReduce"])
    imr = dict(curves["iMapReduce"])
    ex_init = dict(curves["MapReduce (ex. init.)"])
    sync = dict(curves["iMapReduce (sync.)"])
    for k in mr:
        # Curve ordering the paper plots: iMR < MR (ex init) < MR.
        assert ex_init[k] < mr[k]
        assert imr[k] < mr[k]
    # Asynchronous execution wins over synchronous once the pipeline is
    # warm (the first iteration or two may cross over while run-ahead
    # maps fill).
    last = max(mr)
    assert imr[last] <= sync[last] + 1e-9
    # Monotone cumulative time.
    xs = [x for x, _ in curves["MapReduce"]]
    assert xs == sorted(xs)

    assert 2.0 <= result.stats["speedup"] <= 5.6
    assert result.stats["async_share"] > 0.03
    assert result.stats["static_shuffle_share"] > 0.08
