"""Fig 12: SSSP-l when scaling the cluster from 20 to 80 instances.

Paper: the iMapReduce/MapReduce time ratio falls by ~8 points as the
cluster grows (more network communication for Hadoop to save).
"""

from repro.experiments.figures import fig12


def test_fig12(figure_runner):
    result = figure_runner(fig12)
    # Both engines get faster with more machines.
    for name in ("MapReduce", "iMapReduce"):
        times = [t for _, t in result.series[name]]
        assert times[0] > times[-1]
    # iMapReduce's relative advantage grows with cluster size.
    assert result.stats["ratio_drop_20_to_80"] > 0.0
