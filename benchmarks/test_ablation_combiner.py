"""Ablation: map-side Combiner on a graph workload.

§5.1.3 measures the Combiner only for K-means; here we quantify it for
SSSP (min is associative, so the combiner is exact) on both engines —
a design point the paper mentions but does not plot.
"""

import pytest

from repro.experiments import RunSpec, execute


def test_combiner_on_graph_workload(benchmark):
    def sweep():
        return {
            ("imapreduce", False): execute(
                RunSpec("sssp", "facebook", "imapreduce", "local", 6)
            ),
            ("imapreduce", True): execute(
                RunSpec("sssp", "facebook", "imapreduce", "local", 6, combiner=True)
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Ablation: combiner for SSSP (Facebook stand-in, iMapReduce) ==")
    for (engine, combiner), metrics in results.items():
        print(
            f"  combiner={str(combiner):5}: total {metrics.total_time:7.1f}s  "
            f"shuffle {metrics.total_shuffle_bytes / 1e6:7.1f} MB"
        )

    plain = results[("imapreduce", False)]
    combined = results[("imapreduce", True)]
    # The combiner collapses duplicate-target offers, cutting shuffle volume.
    assert combined.total_shuffle_bytes < plain.total_shuffle_bytes
    assert combined.total_time <= plain.total_time * 1.05
