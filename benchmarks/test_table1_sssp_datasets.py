"""Table 1: SSSP data sets statistics.

Paper: five weighted graphs (DBLP, Facebook, three log-normal synthetic
graphs) with their node/edge counts and file sizes.  We regenerate the
stand-ins and report the same columns next to the paper's values.
"""

from repro.experiments.figures import table1


def test_table1(figure_runner):
    result = figure_runner(table1)
    rows = {r["graph"]: r for r in result.rows}
    assert set(rows) == {"dblp", "facebook", "sssp-s", "sssp-m", "sssp-l"}
    # Mean degrees track the paper's edge/node ratios.
    for row in rows.values():
        assert (
            abs(row["mean_degree"] - row["paper_mean_degree"])
            <= 0.35 * row["paper_mean_degree"]
        )
    # The synthetic ladder is ordered like the paper's (s < m < l).
    assert rows["sssp-s"]["nodes"] < rows["sssp-m"]["nodes"] < rows["sssp-l"]["nodes"]
    assert (
        rows["sssp-s"]["file_size_bytes"]
        < rows["sssp-m"]["file_size_bytes"]
        < rows["sssp-l"]["file_size_bytes"]
    )
