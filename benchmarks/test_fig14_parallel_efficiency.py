"""Fig 14: parallel efficiency T*/(n*Tn) at 20/50/80 instances.

Paper: iMapReduce yields higher parallel efficiency than Hadoop for both
SSSP and PageRank (SSSP slowdown ~43% vs ~60% at 80 instances).
"""

from repro.experiments.figures import fig14


def test_fig14(figure_runner):
    result = figure_runner(fig14)
    for algorithm in ("sssp", "pagerank"):
        imr = dict(result.series[f"{algorithm}/iMapReduce"])
        mr = dict(result.series[f"{algorithm}/MapReduce"])
        for n in (20, 50, 80):
            assert imr[n] > mr[n], (algorithm, n)
            assert 0.0 < mr[n] <= 1.2
            assert 0.0 < imr[n] <= 1.2
