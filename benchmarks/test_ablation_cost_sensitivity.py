"""Ablation: how sensitive are the headline results to the cost model?

The paper's conclusions should not hinge on a single calibrated
constant.  This sweep perturbs each major cost-model group by ±50% and
checks that iMapReduce still beats the baseline on the Fig. 6 workload —
i.e. the reproduction's shape is robust, not a knife-edge artifact of
the calibration.
"""

import pytest

from repro.experiments import RunSpec, execute, set_cost_model
from repro.mapreduce.costmodel import DEFAULT_COST_MODEL


PERTURBATIONS = {
    "baseline": {},
    "init x0.5": dict(job_setup=1.0, job_cleanup=0.5, task_launch=0.5),
    "init x1.5": dict(job_setup=3.0, job_cleanup=1.5, task_launch=1.5),
    "records x0.5": dict(
        map_record_cpu=0.2e-3, emit_record_cpu=0.05e-3, reduce_value_cpu=0.1e-3
    ),
    "records x1.5": dict(
        map_record_cpu=0.6e-3, emit_record_cpu=0.15e-3, reduce_value_cpu=0.3e-3
    ),
    "bytes x0.5": dict(serialize_byte_cpu=0.125e-6, merge_byte_cpu=0.125e-6),
    "bytes x1.5": dict(serialize_byte_cpu=0.375e-6, merge_byte_cpu=0.375e-6),
    "no noise": dict(noise_amplitude=0.0),
}

SPEC_MR = RunSpec("pagerank", "google", "mapreduce", "local", 4, measure_distance=True)
SPEC_IMR = RunSpec("pagerank", "google", "imapreduce", "local", 4, measure_distance=True)


def teardown_module():
    set_cost_model(None)


def test_speedup_robust_to_cost_model(benchmark):
    def sweep():
        out = {}
        for label, overrides in PERTURBATIONS.items():
            set_cost_model(DEFAULT_COST_MODEL.with_overrides(**overrides))
            mr = execute(SPEC_MR)
            imr = execute(SPEC_IMR)
            out[label] = mr.total_time / imr.total_time
        set_cost_model(None)
        return out

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Ablation: cost-model sensitivity (PageRank/Google, 4 iters) ==")
    for label, speedup in speedups.items():
        print(f"  {label:<14}: {speedup:5.2f}x")

    # The win survives every perturbation, and its magnitude stays in a
    # sane band around the calibrated value.
    for label, speedup in speedups.items():
        assert speedup > 1.25, (label, speedup)
        assert speedup < 4.0, (label, speedup)
