"""Fig 5: SSSP running time vs iterations on the Facebook stand-in.

Paper: same four curves as Fig 4, 2-3x overall speedup.
"""

from repro.experiments.figures import fig5


def test_fig5(figure_runner):
    result = figure_runner(fig5)

    curves = result.series
    mr = dict(curves["MapReduce"])
    imr = dict(curves["iMapReduce"])
    ex_init = dict(curves["MapReduce (ex. init.)"])
    sync = dict(curves["iMapReduce (sync.)"])
    for k in mr:
        # Curve ordering the paper plots: iMR < MR (ex init) < MR.
        assert ex_init[k] < mr[k]
        assert imr[k] < mr[k]
    # Asynchronous execution wins over synchronous once the pipeline is
    # warm (the first iteration or two may cross over while run-ahead
    # maps fill).
    last = max(mr)
    assert imr[last] <= sync[last] + 1e-9
    # Monotone cumulative time.
    xs = [x for x, _ in curves["MapReduce"]]
    assert xs == sorted(xs)

    assert 1.7 <= result.stats["speedup"] <= 5.6
    assert result.stats["static_shuffle_share"] > 0.08
