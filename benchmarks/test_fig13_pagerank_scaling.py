"""Fig 13: PageRank-l when scaling the cluster from 20 to 80 instances.

Paper: the time ratio falls by ~7 points from 20 to 80 instances.
"""

from repro.experiments.figures import fig13


def test_fig13(figure_runner):
    result = figure_runner(fig13)
    for name in ("MapReduce", "iMapReduce"):
        times = [t for _, t in result.series[name]]
        assert times[0] > times[-1]
    assert result.stats["ratio_drop_20_to_80"] > 0.0
