"""Fig 18: matrix power computation (two map-reduce phases/iteration).

Paper: ~10% speedup - the phase-2 shuffle is inherent, so iMapReduce
only saves the framework overheads.
"""

from repro.experiments.figures import fig18


def test_fig18(figure_runner):
    result = figure_runner(fig18)
    assert 1.02 <= result.stats["speedup"] <= 1.8
