"""Fig 16 (+ the Combiner experiment of §5.1.3): K-means on the Last.fm
stand-in.

Paper: iMapReduce achieves ~1.2x over Hadoop (less than the graph
algorithms - K-means must broadcast state and run maps synchronously);
the Combiner reduces both engines' times by ~23-26%.
"""

from repro.experiments.figures import fig16


def test_fig16(figure_runner):
    result = figure_runner(fig16)
    assert 1.02 <= result.stats["speedup"] <= 1.9
    assert 0.02 <= result.stats["combiner_saving_mapreduce"] <= 0.6
    assert 0.02 <= result.stats["combiner_saving_imapreduce"] <= 0.6
