#!/usr/bin/env python3
"""Visualizing what the framework actually does: execution tracing.

Attaches a :class:`~repro.metrics.Tracer` to the iMapReduce runtime and
renders the per-worker activity timeline — you can see the §3.3
asynchronous pipeline (map spans of iteration k+1 overlapping reduce
spans of iteration k), the parallel checkpoints (``C``), and how a
worker failure (``!``) triggers a rollback and re-run.

Run:  python examples/execution_timeline.py
"""

from repro.algorithms import pagerank
from repro.cluster import FaultSchedule, local_cluster
from repro.dfs import DFS
from repro.graph import pagerank_graph
from repro.imapreduce import IMapReduceRuntime
from repro.metrics import Tracer
from repro.simulation import Engine

NODES = 3_000
ITERATIONS = 5


def run(inject_failure: bool):
    graph = pagerank_graph(NODES, seed=12)
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/pr/state", pagerank.initial_state(graph))
    dfs.ingest("/pr/static", pagerank.static_records(graph))
    if inject_failure:
        FaultSchedule().fail_at(9.0, "node2").arm(engine, cluster)
    tracer = Tracer()
    runtime = IMapReduceRuntime(cluster, dfs, trace=tracer)
    job = pagerank.build_imr_job(
        graph.num_nodes,
        state_path="/pr/state",
        static_path="/pr/static",
        output_path="/pr/out",
        max_iterations=ITERATIONS,
        checkpoint_interval=2,
    )
    result = runtime.submit(job)
    return tracer, result


def main():
    tracer, result = run(inject_failure=False)
    print(f"== clean run: {ITERATIONS} iterations, "
          f"{result.metrics.total_time:.1f} virtual s ==")
    print(tracer.timeline(width=76))
    print(f"   events: {tracer.kinds()}")

    print()
    tracer, result = run(inject_failure=True)
    print(f"== with node2 failing mid-run: {result.recoveries} recovery, "
          f"{result.metrics.total_time:.1f} virtual s ==")
    print(tracer.timeline(width=76))
    map_starts = tracer.select("map-iteration-start", worker="node2")
    print(f"   node2 map activity before dying: {len(map_starts)} iterations")


if __name__ == "__main__":
    main()
