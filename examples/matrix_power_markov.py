#!/usr/bin/env python3
"""Matrix powers via chained map-reduce phases (the paper's §5.2).

Scenario: a Markov chain's k-step transition probabilities are the k-th
power of its transition matrix.  Each iteration multiplies the static
matrix M into the iterated state N = M^k using TWO map-reduce phases
chained with ``add_successor`` semantics (phase 1 joins rows/columns,
phase 2 multiplies and sums) — the multi-phase extension of iMapReduce.

The result is validated against ``numpy.linalg.matrix_power``.

Run:  python examples/matrix_power_markov.py
"""

import numpy as np

from repro.algorithms import matrixpower as mp
from repro.cluster import local_cluster
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime
from repro.mapreduce import IterativeDriver, MapReduceRuntime
from repro.simulation import Engine

STATES = 30
STEPS = 4  # compute M^(STEPS+1)


def random_markov_matrix(n: int, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    raw = rng.random((n, n)) * (rng.random((n, n)) < 0.3)
    raw += np.eye(n) * 0.1  # ensure every state has an outgoing step
    return raw / raw.sum(axis=1, keepdims=True)


def main():
    matrix = random_markov_matrix(STATES)

    # ---- iMapReduce: two phases per iteration ----
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/markov/state", mp.matrix_to_state_records(matrix))
    dfs.ingest("/markov/static", mp.matrix_to_column_records(matrix))
    job = mp.build_imr_job(
        state_path="/markov/state",
        static_path="/markov/static",
        output_path="/markov/out",
        max_iterations=STEPS,
    )
    result = IMapReduceRuntime(cluster, dfs).submit(job)

    def read():
        records = []
        for path in result.final_paths:
            records.extend((yield from dfs.read_all(path, "node0")))
        return records

    power = mp.records_to_matrix(
        engine.run(engine.process(read())), matrix.shape
    )
    expected = mp.reference_power(matrix, STEPS + 1)
    assert np.allclose(power, expected), "distributed power differs from numpy!"
    print(
        f"[iMapReduce] M^{STEPS + 1} over {STATES} states in "
        f"{result.metrics.total_time:.1f} virtual s — matches numpy"
    )
    print(
        f"[stationary] after {STEPS + 1} steps, state-0 row: "
        f"{np.array2string(power[0][:6], precision=4)} ..."
    )

    # ---- the Hadoop baseline: two chained jobs per iteration ----
    engine2 = Engine()
    cluster2 = local_cluster(engine2)
    dfs2 = DFS(cluster2, replication=2)
    dfs2.ingest("/markov/m", mp.matrix_to_mr_records(matrix, "M"))
    dfs2.ingest("/markov/n", mp.matrix_to_mr_records(matrix, "N"))
    driver = IterativeDriver(MapReduceRuntime(cluster2, dfs2))
    spec = mp.build_mr_spec(
        m_path="/markov/m", output_prefix="/markov/mr", max_iterations=STEPS
    )
    baseline = driver.run(spec, ["/markov/n"])
    print(
        f"[MapReduce]  same computation as TWO chained jobs per iteration: "
        f"{baseline.metrics.total_time:.1f} virtual s "
        f"({baseline.metrics.total_time / result.metrics.total_time:.2f}x slower; on "
        "this small matrix the per-job overhead dominates — at Fig. 18's scale "
        "the inherent phase-2 shuffle shrinks the gap to ~10-25%)"
    )


if __name__ == "__main__":
    main()
