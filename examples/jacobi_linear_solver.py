#!/usr/bin/env python3
"""Solving a linear system with distributed Jacobi iteration (§5.1).

The paper names the Jacobi method as the archetypal computation needing
the one-to-all (broadcast) mapping: each reduce task produces a slice of
the iterate x, and every map task needs the *intact* vector for the next
sweep.  This example solves a diagonally dominant system to machine
precision and validates against ``numpy.linalg.solve``.

Run:  python examples/jacobi_linear_solver.py
"""

import numpy as np

from repro.algorithms import jacobi
from repro.cluster import local_cluster
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime
from repro.metrics import format_run
from repro.simulation import Engine

N = 400


def main():
    a, b = jacobi.make_system(N, density=0.15, seed=42)

    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/jacobi/state", jacobi.initial_state(N))
    dfs.ingest("/jacobi/static", jacobi.system_to_static_records(a, b))

    job = jacobi.build_imr_job(
        state_path="/jacobi/state",
        static_path="/jacobi/static",
        output_path="/jacobi/out",
        max_iterations=300,
        threshold=1e-10,  # Manhattan distance between sweeps
    )
    result = IMapReduceRuntime(cluster, dfs).submit(job)

    def read():
        records = []
        for path in result.final_paths:
            records.extend((yield from dfs.read_all(path, "node0")))
        return records

    state = dict(engine.run(engine.process(read())))
    x = np.array([state[i] for i in range(N)])
    exact = jacobi.reference_solution(a, b)
    residual = np.linalg.norm(a @ x - b)

    print(
        f"[jacobi]   {N}x{N} system converged in {result.iterations_run} sweeps "
        f"({result.metrics.total_time:.1f} virtual s, "
        f"final distance {result.final_distance:.2e})"
    )
    print(f"[validate] ||Ax - b|| = {residual:.2e}; "
          f"max |x - numpy.solve| = {np.abs(x - exact).max():.2e}")

    print("[breakdown]")
    # Show the first iterations of the per-iteration metrics table.
    text = format_run(result.metrics)
    print("\n".join(text.splitlines()[:8]))
    print("   ...")


if __name__ == "__main__":
    main()
