#!/usr/bin/env python3
"""Clustering music listeners by taste (the paper's §5.1/§5.3 workload).

Scenario: a Last.fm-style service clusters users by their artist
listening histories to build taste groups for recommendation.  This
exercises the iMapReduce *extensions*:

* one-to-all broadcast from reduces to maps (every map task needs every
  centroid, §5.1);
* the auxiliary map-reduce phase that detects convergence in parallel
  with the main computation (§5.3) — no extra synchronous job;
* map-side Combiners, the experiment of §5.1.3.

Run:  python examples/music_taste_clustering.py
"""

import numpy as np

from repro.algorithms import kmeans
from repro.cluster import local_cluster
from repro.data import load_lastfm
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime
from repro.simulation import Engine

USERS, ARTISTS, TASTES = 2_000, 300, 6


def run(combiner: bool, aux_detection: bool):
    data = load_lastfm(num_users=USERS, num_artists=ARTISTS, num_tastes=TASTES, seed=11)
    centroids = kmeans.initial_centroids(data, TASTES, seed=2)

    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/music/centroids", centroids)
    dfs.ingest("/music/listeners", data.user_records())

    job = kmeans.build_imr_job(
        state_path="/music/centroids",
        static_path="/music/listeners",
        output_path="/music/out",
        max_iterations=25,
        combiner=combiner,
        track_membership=aux_detection,
        aux=kmeans.make_convergence_aux(move_threshold=10) if aux_detection else None,
    )
    result = IMapReduceRuntime(cluster, dfs).submit(job)

    def read():
        records = []
        for path in result.final_paths:
            records.extend((yield from dfs.read_all(path, "node0")))
        return records

    return data, result, engine.run(engine.process(read()))


def main():
    # ---- converge via the auxiliary phase ----
    data, result, state = run(combiner=False, aux_detection=True)
    print(
        f"[aux]      stopped by '{result.terminated_by}' after "
        f"{result.iterations_run} iterations ({result.metrics.total_time:.1f} virtual s)"
    )

    # How well do the clusters recover the generator's taste groups?
    membership = {}
    for cid, (centroid, members) in state:
        for uid in members:
            membership[uid] = cid
    agreement = 0
    for taste in range(TASTES):
        users = [u for u in range(USERS) if data.taste[u] == taste]
        if not users:
            continue
        cluster_ids = [membership[u] for u in users]
        agreement += max(cluster_ids.count(c) for c in set(cluster_ids))
    print(f"[quality]  {agreement / USERS:.0%} of listeners grouped with their taste majority")

    # ---- the Combiner experiment (§5.1.3) ----
    _, plain, _ = run(combiner=False, aux_detection=False)
    _, combined, _ = run(combiner=True, aux_detection=False)
    saving = 1 - combined.metrics.total_time / plain.metrics.total_time
    shuffle_saving = 1 - (
        combined.metrics.total_shuffle_bytes / plain.metrics.total_shuffle_bytes
    )
    print(
        f"[combiner] shuffle bytes cut by {shuffle_saving:.0%}, "
        f"running time by {saving:.0%} "
        f"({plain.metrics.total_time:.1f}s -> {combined.metrics.total_time:.1f}s)"
    )


if __name__ == "__main__":
    main()
