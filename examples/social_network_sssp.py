#!/usr/bin/env python3
"""Shortest paths in a social network (the paper's §2.1.1 workload).

Scenario: a Facebook-like interaction graph where link weights encode
interaction frequency (closer friends = lower weight); we compute every
member's "social distance" from one seed user, as used for friend
recommendation.  The script shows:

* threshold-based termination (the framework stops when the distance
  between consecutive iterations drops to zero — the paper's §3.1.2);
* fault tolerance: the same job is re-run with a worker failing
  mid-computation; checkpoint-based recovery (§3.4.1) produces the
  identical result;
* validation against scipy's Dijkstra.

Run:  python examples/social_network_sssp.py
"""

import numpy as np

from repro.algorithms import sssp
from repro.cluster import FaultSchedule, local_cluster
from repro.data import load_graph
from repro.dfs import DFS
from repro.imapreduce import IMapReduceRuntime
from repro.simulation import Engine

SOURCE = 0


def run(with_failure: bool):
    graph = load_graph("facebook", nodes=5_000)
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/sssp/state", sssp.initial_state(graph, SOURCE))
    dfs.ingest("/sssp/static", sssp.static_records(graph))

    job = sssp.build_imr_job(
        state_path="/sssp/state",
        static_path="/sssp/static",
        output_path="/sssp/out",
        max_iterations=50,
        threshold=0.0,  # stop when nothing changes any more
        checkpoint_interval=2,
    )
    runtime = IMapReduceRuntime(cluster, dfs)

    if with_failure:
        # Estimate a mid-run instant from the clean run and kill a worker
        # there; the master recovers from the latest checkpoint.
        FaultSchedule().fail_at(12.0, "node2").arm(engine, cluster)

    result = runtime.submit(job)

    def read():
        records = []
        for path in result.final_paths:
            records.extend((yield from dfs.read_all(path, "node0")))
        return records

    distances = dict(engine.run(engine.process(read())))
    return graph, result, distances


def main():
    graph, clean, distances = run(with_failure=False)
    reached = [d for d in distances.values() if d != float("inf")]
    print(
        f"[clean]    converged after {clean.iterations_run} iterations "
        f"({clean.metrics.total_time:.1f} virtual s); "
        f"{len(reached)}/{graph.num_nodes} members reachable, "
        f"median social distance {np.median(reached):.3f}"
    )

    # ---- validate against scipy's Dijkstra ----
    exact = sssp.reference_exact(graph, SOURCE)
    ours = np.array([distances[u] for u in range(graph.num_nodes)])
    assert np.allclose(ours, exact), "distributed result differs from Dijkstra!"
    print("[validate] matches scipy.sparse.csgraph.dijkstra exactly")

    # ---- the same job with a mid-run worker failure ----
    _, failed, distances_failed = run(with_failure=True)
    assert distances_failed == distances, "recovery changed the result!"
    print(
        f"[failure]  worker killed mid-run: {failed.recoveries} recovery, "
        f"same exact result, {failed.metrics.total_time:.1f} virtual s "
        f"(vs {clean.metrics.total_time:.1f} clean)"
    )


if __name__ == "__main__":
    main()
