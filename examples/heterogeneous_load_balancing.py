#!/usr/bin/env python3
"""Load balancing on a heterogeneous cluster (the paper's §3.4.2).

Scenario: a PageRank-style computation runs on a cluster where one
machine is much slower than the rest (a common reality on shared
clusters — the paper's motivation for task migration).  The master
compares the per-iteration completion reports, spots the straggler, and
migrates its map/reduce pair to the fastest worker, rolling every task
back to the latest checkpoint.

The script runs the same job with the load balancer off and on, and
shows the migration, the identical results, and the time saved.

Run:  python examples/heterogeneous_load_balancing.py
"""

from repro.cluster import heterogeneous_cluster
from repro.common import IterKeys, JobConf, ModPartitioner
from repro.data import load_graph
from repro.dfs import DFS
from repro.graph import pagerank_graph
from repro.imapreduce import IMapReduceRuntime, IterativeJob, LoadBalanceConfig
from repro.simulation import Engine

NUM_NODES = 4_000
ITERATIONS = 14
DAMPING = 0.8


def pagerank_map(key, rank, neighbors, ctx):
    ctx.emit(key, (1.0 - DAMPING) / NUM_NODES)
    if neighbors:
        share = DAMPING * rank / len(neighbors)
        for v in neighbors:
            ctx.emit(v, share)


def pagerank_reduce(key, values, ctx):
    ctx.emit(key, sum(values))


def run(balanced: bool):
    graph = pagerank_graph(NUM_NODES, seed=4)
    engine = Engine()
    # Three healthy machines and one at quarter speed.
    cluster = heterogeneous_cluster(engine, [1.0, 1.0, 1.0, 0.25], cores=2)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/pr/state", [(u, 1.0 / NUM_NODES) for u in range(NUM_NODES)])
    dfs.ingest("/pr/static", list(graph.static_records()))

    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/pr/state")
    conf.set(IterKeys.STATIC_PATH, "/pr/static")
    conf.set_int(IterKeys.MAX_ITER, ITERATIONS)
    conf.set_int(IterKeys.CHECKPOINT_INTERVAL, 1)
    job = IterativeJob.single_phase(
        "pagerank-lb",
        pagerank_map,
        pagerank_reduce,
        conf=conf,
        output_path="/pr/out",
        partitioner=ModPartitioner(),
        num_pairs=8,
    )
    runtime = IMapReduceRuntime(
        cluster,
        dfs,
        load_balance=LoadBalanceConfig(
            enabled=balanced, deviation_threshold=0.4, cooldown_iterations=3
        ),
    )
    result = runtime.submit(job)

    def read():
        records = []
        for path in result.final_paths:
            records.extend((yield from dfs.read_all(path, "hnode0")))
        return records

    return result, dict(engine.run(engine.process(read())))


def main():
    plain, ranks_plain = run(balanced=False)
    balanced, ranks_balanced = run(balanced=True)

    print(
        f"[off] {ITERATIONS} iterations with a 4x straggler: "
        f"{plain.metrics.total_time:.1f} virtual s, migrations: none"
    )
    for move in balanced.migrations:
        print(
            f"[on]  master migrated pair {move['pair']} "
            f"{move['from']} -> {move['to']} "
            f"(deviation {move['deviation']:.0%}, rolled back to state "
            f"{move['at_state']})"
        )
    print(
        f"[on]  same job with load balancing: {balanced.metrics.total_time:.1f} "
        f"virtual s ({1 - balanced.metrics.total_time / plain.metrics.total_time:.0%} faster)"
    )
    assert ranks_plain.keys() == ranks_balanced.keys()
    worst = max(abs(ranks_plain[u] - ranks_balanced[u]) for u in ranks_plain)
    print(f"[check] results identical (max rank difference {worst:.2e})")


if __name__ == "__main__":
    main()
