#!/usr/bin/env python3
"""Quickstart: write an iterative job the way the paper's Fig. 3 does.

This example implements PageRank with the iMapReduce programming
interfaces (§3.5) and runs it three ways:

1. serially with :func:`repro.imapreduce.run_local` (no cluster — the
   fastest way to try the API);
2. on the simulated 4-node cluster with the iMapReduce engine;
3. on the same cluster with the Hadoop-like baseline, to see the
   speedup the paper reports.

Run:  python examples/quickstart.py
"""

from repro.cluster import local_cluster
from repro.common import IterKeys, JobConf, ModPartitioner
from repro.dfs import DFS
from repro.graph import pagerank_graph
from repro.imapreduce import IMapReduceRuntime, IterativeJob, run_local
from repro.mapreduce import IterativeDriver, MapReduceRuntime
from repro.simulation import Engine

DAMPING = 0.8
NUM_NODES = 2_000
ITERATIONS = 10


# ---- the user program: map / reduce / distance (paper §3.5, Fig. 3) ----
def pagerank_map(key, rank, neighbors, ctx):
    """Spread d*R(u)/|N+(u)| to the neighbours, retain (1-d)/N."""
    ctx.emit(key, (1.0 - DAMPING) / NUM_NODES)
    if neighbors:
        share = DAMPING * rank / len(neighbors)
        for v in neighbors:
            ctx.emit(v, share)


def pagerank_reduce(key, values, ctx):
    """Sum the partial ranks."""
    ctx.emit(key, sum(values))


def manhattan(key, prev, curr):
    """The paper's example distance: |prev - curr|, summed over keys."""
    return abs((prev or 0.0) - curr)


def build_job():
    conf = JobConf()
    conf.set(IterKeys.STATE_PATH, "/pagerank/state")  # initial ranks
    conf.set(IterKeys.STATIC_PATH, "/pagerank/static")  # adjacency lists
    conf.set_int(IterKeys.MAX_ITER, ITERATIONS)
    conf.set_float(IterKeys.DIST_THRESH, 0.0001)
    return IterativeJob.single_phase(
        "quickstart-pagerank",
        pagerank_map,
        pagerank_reduce,
        conf=conf,
        output_path="/pagerank/out",
        distance_fn=manhattan,
        partitioner=ModPartitioner(),
    )


def main():
    graph = pagerank_graph(NUM_NODES, seed=7)
    state = [(u, 1.0 / NUM_NODES) for u in range(NUM_NODES)]
    static = list(graph.static_records())

    # ---- 1. serial run (no cluster) ----
    local = run_local(build_job(), state, {"/pagerank/static": static}, num_pairs=4)
    top = sorted(local.state, key=lambda kv: -kv[1])[:5]
    print(f"[local]       converged={local.converged} after {local.iterations_run} iterations")
    print(f"[local]       top-5 pages: {[(u, round(r, 6)) for u, r in top]}")

    # ---- 2. iMapReduce on the simulated cluster ----
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/pagerank/state", state)
    dfs.ingest("/pagerank/static", static)
    result = IMapReduceRuntime(cluster, dfs).submit(build_job())
    print(
        f"[iMapReduce]  {result.iterations_run} iterations in "
        f"{result.metrics.total_time:.1f} virtual seconds "
        f"(terminated by {result.terminated_by})"
    )

    # ---- 3. Hadoop-like baseline: a chain of MapReduce jobs ----
    from repro.algorithms import pagerank as pr

    engine2 = Engine()
    cluster2 = local_cluster(engine2)
    dfs2 = DFS(cluster2, replication=2)
    dfs2.ingest("/in/pagerank", pr.mr_initial_records(graph))
    driver = IterativeDriver(MapReduceRuntime(cluster2, dfs2))
    spec = pr.build_mr_spec(
        NUM_NODES, output_prefix="/mr/pagerank", max_iterations=result.iterations_run
    )
    baseline = driver.run(spec, ["/in/pagerank"])
    print(
        f"[MapReduce]   same {baseline.iterations_run} iterations in "
        f"{baseline.metrics.total_time:.1f} virtual seconds"
    )
    print(
        f"[comparison]  iMapReduce speedup: "
        f"{baseline.metrics.total_time / result.metrics.total_time:.2f}x"
    )


if __name__ == "__main__":
    main()
