#!/usr/bin/env python3
"""Plain (non-iterative) MapReduce — the backward-compatibility path.

The paper's prototype "is backward compatible to Hadoop MapReduce in the
sense that it supports any Hadoop MapReduce job" (§1).  In this library
the same cluster/DFS substrate runs classic batch jobs through the
baseline engine: here, the canonical word count over a small corpus,
with a Combiner and a look at the job statistics.

Run:  python examples/batch_wordcount.py
"""

from repro import DFS, Engine, Job, MapReduceRuntime, local_cluster

CORPUS = [
    "the quick brown fox jumps over the lazy dog",
    "the dog barks and the fox runs",
    "a quick brown dog meets a lazy fox",
    "mapreduce counts words and words and words",
]


def tokenize(key, line, ctx):
    for word in line.split():
        ctx.emit(word, 1)


def total(key, counts, ctx):
    ctx.emit(key, sum(counts))


def main():
    engine = Engine()
    cluster = local_cluster(engine)
    dfs = DFS(cluster, replication=2)
    dfs.ingest("/corpus", list(enumerate(CORPUS * 50)))  # 200 lines

    runtime = MapReduceRuntime(cluster, dfs)
    job = Job(
        name="wordcount",
        mapper=tokenize,
        reducer=total,
        combiner=total,  # local aggregation before the shuffle
        input_paths=["/corpus"],
        output_path="/counts",
        num_reduces=4,
    )
    result = runtime.submit(job)

    def read():
        acc = []
        for path in result.output_paths:
            acc.extend((yield from dfs.read_all(path, "node0")))
        return acc

    counts = dict(engine.run(engine.process(read())))
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print(f"[job]   {result.elapsed:.1f} virtual s, "
          f"{result.stats.num_map_tasks} map / {result.stats.num_reduce_tasks} reduce tasks")
    print(f"[stats] {result.stats.map_records} lines in, "
          f"{result.stats.shuffle_records} pairs shuffled "
          f"({result.stats.shuffle_bytes / 1e3:.1f} KB), "
          f"{result.stats.output_records} distinct words out")
    print(f"[top-5] {top}")
    assert counts["the"] == 200 and counts["words"] == 150


if __name__ == "__main__":
    main()
