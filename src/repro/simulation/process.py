"""Simulated processes: generator coroutines driven by the engine.

A process body is a generator that ``yield``\\ s :class:`Event` objects;
the process sleeps until the yielded event triggers, then resumes with the
event's value (or the event's exception thrown in).  A process is itself
an event, succeeding with the generator's return value — so processes can
wait on each other, and :class:`~repro.simulation.events.AllOf` over
processes is the fork/join pattern both engines use for task barriers.

``interrupt`` throws :class:`~repro.simulation.events.Interrupt` into the
process at its current wait point.  It is how the iMapReduce master kills
task pairs for migration (§3.4.2) and how fault injection kills every
process on a failed worker (§3.4.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..common.errors import SimulationError
from .events import URGENT, Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from .core import Engine

__all__ = ["Process"]


class Process(Event):
    """An event wrapping a running generator."""

    def __init__(self, engine: "Engine", generator: Generator[Event, Any, Any], name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {type(generator).__name__}")
        super().__init__(engine)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Event | None = None
        # Kick-start on the engine queue (urgent so a process created at
        # time t observes time t before any normal event at t fires).
        start = Event(engine)
        start._ok = True
        start._value = None
        start.add_callback(self._resume)
        engine._push(start, URGENT)

    # -- state -------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self.triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on (None if running
        or finished)."""
        return self._target

    # -- interruption --------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        No-op if the process already finished.  The interrupt is delivered
        via an urgent event so it preempts normal events scheduled for the
        same instant.
        """
        if self.triggered:
            return
        carrier = Event(self.engine)
        carrier._ok = False
        carrier._value = Interrupt(cause)
        carrier.defused = True
        # Detach from the current target so its eventual trigger does not
        # resume us a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._target = None
        carrier.add_callback(self._resume)
        self.engine._push(carrier, URGENT)

    # -- engine hook -----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:  # interrupted and finished before delivery
            if event._ok is False:
                event.defused = True
            return
        self.engine._active_process = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event.defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An uncaught interrupt terminates the process "cleanly": the
            # killer knew what it was doing (migration / fault injection).
            self._target = None
            self._ok = True
            self._value = exc.cause
            self.engine._push(self, URGENT)
            return
        except BaseException as exc:
            self._target = None
            self.fail(exc)
            return
        finally:
            self.engine._active_process = None

        if not isinstance(next_target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded non-event {next_target!r}"
            )
            self._generator.close()
            self._target = None
            self.fail(error)
            return
        if next_target.engine is not self.engine:
            raise SimulationError("process yielded an event from another engine")
        self._target = next_target
        next_target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name} {'alive' if self.is_alive else 'done'}>"
