"""The discrete-event engine: a virtual clock and an event queue.

Events are totally ordered by ``(time, priority, sequence)``; ties at the
same instant resolve by insertion order, which makes every simulation a
deterministic function of its inputs — two runs of an experiment produce
bit-identical virtual times and byte counts (asserted in tests).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable

from ..common.errors import SimulationError
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Engine"]


class Engine:
    """Event loop owning the virtual clock."""

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = count()
        self._active_process: Process | None = None

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- factories --------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------------
    def _push(self, event: Event, priority: int, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by Timeout check
            raise SimulationError("time went backwards")
        self._now = when
        event._process()

    def run(self, until: Event | float | None = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until the queue drains; returns ``None``.
        * ``until=Event`` — run until that event is processed; returns its
          value (re-raising its exception if it failed).
        * ``until=float`` — run until virtual time reaches that instant.
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "deadlock: event queue drained before `until` event triggered"
                    )
                self.step()
            if stop._ok:
                return stop._value
            stop.defused = True
            raise stop._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run until {horizon} < now={self._now}")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
