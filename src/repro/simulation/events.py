"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence with a value.  Simulated
processes (generator coroutines, see :mod:`repro.simulation.process`)
``yield`` events to wait on them.  The design follows SimPy's proven
semantics, restricted to what the two MapReduce engines need:

* ``Event`` — manually triggered via :meth:`Event.succeed` / :meth:`fail`.
* ``Timeout`` — succeeds after a virtual-time delay.
* ``AllOf`` / ``AnyOf`` — composite conditions.
* ``Interrupt`` — the exception thrown into a process by
  ``Process.interrupt`` (used for task migration and fault injection).

Triggering an event does not run its callbacks synchronously; the event is
pushed onto the engine's queue and its callbacks run when it is popped.
This keeps the execution order a pure function of ``(time, priority,
insertion sequence)`` — the determinism the experiments rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .core import Engine

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "Interrupt", "URGENT", "NORMAL"]

#: Queue priorities: urgent events (interrupts) preempt same-time events.
URGENT = 0
NORMAL = 1

_PENDING = object()


class Event:
    """A one-shot occurrence in virtual time."""

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        #: Set when a failure was delivered to at least one waiter (or
        #: explicitly defused); undelivered failures crash the engine run.
        self.defused = False

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine._push(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.engine._push(self, NORMAL)
        return self

    def trigger(self, other: "Event") -> None:
        """Trigger with the same outcome as an already-triggered event."""
        if other._ok:
            self.succeed(other._value)
        else:
            self.fail(other._value)

    # -- engine hook -------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks.  Called exactly once by the engine."""
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        if self._ok is False and not self.defused:
            # A failure nobody waited on: surface it instead of losing it.
            raise self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run at once (matches SimPy semantics for
            # waiting on a past event via Condition machinery).
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds ``delay`` virtual seconds after creation."""

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        engine._push(self, NORMAL, delay=self.delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout cannot be re-triggered")

    fail = succeed  # type: ignore[assignment]


class _Condition(Event):
    """Common machinery for AllOf/AnyOf."""

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events: tuple[Event, ...] = tuple(events)
        self._pending = 0
        for event in self.events:
            if not isinstance(event, Event):
                raise SimulationError(f"condition over non-event: {event!r}")
            if event.engine is not engine:
                raise SimulationError("condition mixes events from two engines")
        if not self.events:
            self.succeed(())
            return
        self._pending = len(self.events)
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds (with the tuple of child values) when every child has
    succeeded; fails fast with the first child failure."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if event._ok is False:
                event.defused = True
            return
        if event._ok is False:
            event.defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(tuple(child._value for child in self.events))


class AnyOf(_Condition):
    """Succeeds with ``(event, value)`` of the first child to succeed."""

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if event._ok is False:
                event.defused = True
            return
        if event._ok is False:
            event.defused = True
            self.fail(event._value)
            return
        self.succeed((event, event._value))


class Interrupt(Exception):
    """Thrown into a process by ``Process.interrupt(cause)``."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]
