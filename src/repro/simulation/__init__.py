"""Deterministic discrete-event simulation kernel (SimPy-like subset)."""

from .core import Engine
from .events import AllOf, AnyOf, Event, Interrupt, Timeout
from .process import Process
from .resources import Resource, Store

__all__ = [
    "Engine",
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Timeout",
    "Process",
    "Resource",
    "Store",
]
