"""Shared resources for simulated processes.

* :class:`Resource` — ``capacity`` identical servers with a FIFO wait
  queue.  Models CPU cores and task slots.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``.
  Models the persistent reduce→map socket channels (§3.2.1) and the
  master's report mailbox.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from ..common.errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Engine

__all__ = ["Resource", "Store"]


class Resource:
    """``capacity`` servers, granted in strict FIFO order.

    Usage from a process body::

        grant = resource.request()
        yield grant
        try:
            yield engine.timeout(work)
        finally:
            resource.release()
    """

    def __init__(self, engine: "Engine", capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that succeeds when a server is granted."""
        grant = Event(self.engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed()
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Release one server (caller must hold one)."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        # Hand the server straight to the next waiter, if any.
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered:  # waiter was cancelled/interrupted
                continue
            waiter.succeed()
            return
        self._in_use -= 1

    def cancel(self, grant: Event) -> None:
        """Withdraw a pending request (used when a task is killed while
        queued for a CPU)."""
        if grant.triggered:
            return
        try:
            self._waiters.remove(grant)
        except ValueError:
            pass
        grant.defused = True
        grant._ok = True  # mark resolved so release-loop skips it
        grant._value = None

    def use(self, duration: float) -> Generator[Event, Any, None]:
        """Process helper: hold one server for ``duration`` seconds."""
        grant = self.request()
        try:
            yield grant
            yield self.engine.timeout(duration)
        finally:
            if grant.triggered and grant.processed:
                self.release()
            elif grant.triggered:
                # Granted but the grant event was still in-queue when we
                # were interrupted: the server was committed; release it.
                self.release()
            else:
                self.cancel(grant)


class Store:
    """Unbounded FIFO channel.

    ``put`` never blocks (buffer capacity is modelled in time by the
    sender paying transfer cost before putting, not by back-pressure).
    ``get`` returns an event succeeding with the oldest item.
    """

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        event = Event(self.engine)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> list[Any]:
        """Remove and return all buffered items without waiting."""
        items = list(self._items)
        self._items.clear()
        return items
