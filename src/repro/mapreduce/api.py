"""User-facing MapReduce programming interfaces.

Mirrors Hadoop's model: a job provides a mapper and a reducer (and
optionally a combiner); the framework feeds the mapper every input
record, shuffles its emissions by key, and feeds the reducer each key
with the list of values emitted for it.

Both class-based and plain-function styles are supported::

    class MyMapper(Mapper):
        def map(self, key, value, ctx):
            ctx.emit(key, value * 2)

    def my_mapper(key, value, ctx):
        ctx.emit(key, value * 2)

Counters (:meth:`Context.increment`) are the side channel jobs use to
report aggregates to the driver — exactly how a Hadoop convergence-check
job reports the inter-iteration distance.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

__all__ = ["Context", "Mapper", "Reducer", "Combiner", "as_mapper", "as_reducer"]


class Context:
    """Collects emissions and counter updates from user code."""

    __slots__ = ("emitted", "counters")

    def __init__(self):
        self.emitted: list[tuple[Any, Any]] = []
        self.counters: dict[str, float] = {}

    def emit(self, key: Any, value: Any) -> None:
        self.emitted.append((key, value))

    def increment(self, counter: str, amount: float = 1.0) -> None:
        self.counters[counter] = self.counters.get(counter, 0.0) + amount

    def take(self) -> list[tuple[Any, Any]]:
        emitted, self.emitted = self.emitted, []
        return emitted


@runtime_checkable
class Mapper(Protocol):
    """``map(key, value, ctx)`` — emit zero or more pairs via ``ctx``."""

    def map(self, key: Any, value: Any, ctx: Context) -> None: ...


@runtime_checkable
class Reducer(Protocol):
    """``reduce(key, values, ctx)`` — ``values`` is every value emitted
    for ``key`` this round, in a key-sorted shuffle."""

    def reduce(self, key: Any, values: list[Any], ctx: Context) -> None: ...


@runtime_checkable
class Combiner(Protocol):
    """Map-side local aggregation, same contract as Reducer."""

    def reduce(self, key: Any, values: list[Any], ctx: Context) -> None: ...


class _FunctionMapper:
    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[Any, Any, Context], None]):
        self._fn = fn

    def map(self, key: Any, value: Any, ctx: Context) -> None:
        self._fn(key, value, ctx)


class _FunctionReducer:
    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[Any, list, Context], None]):
        self._fn = fn

    def reduce(self, key: Any, values: list[Any], ctx: Context) -> None:
        self._fn(key, values, ctx)


def as_mapper(obj: Mapper | Callable[[Any, Any, Context], None]) -> Mapper:
    """Accept either a Mapper instance or a plain ``f(key, value, ctx)``."""
    if hasattr(obj, "map"):
        return obj  # type: ignore[return-value]
    if callable(obj):
        return _FunctionMapper(obj)
    raise TypeError(f"not a mapper: {obj!r}")


def as_reducer(obj: Reducer | Callable[[Any, list, Context], None]) -> Reducer:
    """Accept either a Reducer instance or a plain ``f(key, values, ctx)``."""
    if hasattr(obj, "reduce"):
        return obj  # type: ignore[return-value]
    if callable(obj):
        return _FunctionReducer(obj)
    raise TypeError(f"not a reducer: {obj!r}")
