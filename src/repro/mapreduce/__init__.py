"""Hadoop-like baseline MapReduce engine on the simulated cluster."""

from .api import Combiner, Context, Mapper, Reducer, as_mapper, as_reducer
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .driver import IterativeDriver, IterativeResult, IterativeSpec
from .job import Job, JobResult, JobStats
from .runtime import MapReduceRuntime

__all__ = [
    "Combiner",
    "Context",
    "Mapper",
    "Reducer",
    "as_mapper",
    "as_reducer",
    "DEFAULT_COST_MODEL",
    "CostModel",
    "IterativeDriver",
    "IterativeResult",
    "IterativeSpec",
    "Job",
    "JobResult",
    "JobStats",
    "MapReduceRuntime",
]
