"""The Hadoop-like baseline engine.

Executes one :class:`~repro.mapreduce.job.Job` at a time on the simulated
cluster, the way Hadoop 0.x ran it:

1. job setup at the master (``job_setup`` virtual seconds);
2. a *map wave*: one map task per input block, placed locality-first into
   per-worker map slots, each task paying ``task_launch``, reading its
   block from the DFS, running the user mapper, partitioning (and
   optionally combining) its output and spilling it to local disk;
3. a *reduce wave*: each reduce task fetches its partition from every map
   task's machine (network unless co-located), sorts/merges, runs the
   user reducer, and writes ``part-NNNNN`` back to the DFS with
   replication;
4. job cleanup.

Failed workers are handled the Hadoop way: the affected tasks are
rescheduled on surviving workers (map outputs on a dead machine are
recomputed by re-running those map tasks).

The user's map/reduce functions really execute; every modelled cost is
charged from the :class:`~repro.mapreduce.costmodel.CostModel`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

from ..cluster import Cluster, Machine
from ..common.errors import SchedulingError, TaskFailure, WorkerFailure
from ..common.records import group_by_key
from ..common.serialization import sizeof_records
from ..dfs import DFS, Split
from ..simulation import Store
from .api import Context
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .job import Job, JobResult, JobStats

__all__ = ["MapReduceRuntime"]


@dataclass
class _MapOutput:
    """One map task's partitioned, locally-spilled output."""

    map_id: int
    worker: str
    partitions: dict[int, list[tuple[Any, Any]]]
    sizes: dict[int, int]
    records_in: int
    op_start: float  # when the map operation began (init-time accounting)


@dataclass
class _ReduceOutput:
    reduce_id: int
    counters: dict[str, float]
    records_out: int
    shuffled_records: int
    shuffled_bytes: int


class MapReduceRuntime:
    """Runs Hadoop-style jobs on a simulated cluster."""

    #: Hadoop's default of two slots of each kind per worker (§3.1.1).
    def __init__(
        self,
        cluster: Cluster,
        dfs: DFS,
        cost: CostModel = DEFAULT_COST_MODEL,
        map_slots_per_worker: int = 2,
        reduce_slots_per_worker: int = 2,
        max_task_retries: int = 4,
        speculative_execution: bool = False,
    ):
        self.cluster = cluster
        self.dfs = dfs
        self.engine = cluster.engine
        self.cost = cost
        self.map_slots = map_slots_per_worker
        self.reduce_slots = reduce_slots_per_worker
        self.max_task_retries = max_task_retries
        #: Hadoop-style backup tasks ([40] in the paper): once a wave is
        #: half done and slots sit idle, clone a still-running task onto a
        #: different worker; the first finisher wins.  Off by default (the
        #: paper's evaluation does not exercise it); the
        #: heterogeneous-cluster ablation turns it on.
        self.speculative = speculative_execution

    # -- public API -------------------------------------------------------
    def submit(self, job: Job) -> JobResult:
        """Run ``job`` to completion; virtual time accumulates across
        submissions on the same cluster (a job chain is a timeline)."""
        proc = self.engine.process(self._job_proc(job), name=f"mr-job:{job.name}")
        return self.engine.run(proc)

    def submit_async(self, job: Job):
        """Start a job and return its process (waitable event)."""
        return self.engine.process(self._job_proc(job), name=f"mr-job:{job.name}")

    # -- job orchestration ----------------------------------------------------
    def _job_proc(self, job: Job):
        engine = self.engine
        start = engine.now
        net_before = self.cluster.network_bytes
        yield engine.timeout(self.cost.job_setup)

        splits: list[Split] = []
        for path in job.input_paths:
            splits.extend(self.dfs.splits(path))

        # ---- map wave ----
        map_results: list[_MapOutput] = yield from self._run_wave(
            tasks=list(enumerate(splits)),
            slots_per_worker=self.map_slots,
            runner=lambda task, worker: self._map_task(job, task[0], task[1], worker),
            locations=lambda task: task[1].locations,
            kind="map",
        )
        map_results.sort(key=lambda m: m.map_id)

        # ---- reduce wave ----
        reduce_results: list[_ReduceOutput] = yield from self._run_wave(
            tasks=list(range(job.num_reduces)),
            slots_per_worker=self.reduce_slots,
            runner=lambda task, worker: self._reduce_task(job, task, worker, map_results),
            locations=lambda task: (),
            kind="reduce",
        )
        reduce_results.sort(key=lambda r: r.reduce_id)

        yield engine.timeout(self.cost.job_cleanup)
        end = engine.now

        counters: dict[str, float] = {}
        for r in reduce_results:
            for name, value in r.counters.items():
                counters[name] = counters.get(name, 0.0) + value

        # Paper §4.2: initialization time is measured from job submission
        # to the *average* instant map tasks start their map operation,
        # plus the cleanup tail.
        mean_map_op_start = sum(m.op_start for m in map_results) / len(map_results)
        init_time = (mean_map_op_start - start) + self.cost.job_cleanup

        stats = JobStats(
            init_time=init_time,
            map_records=sum(m.records_in for m in map_results),
            reduce_records=sum(r.shuffled_records for r in reduce_results),
            output_records=sum(r.records_out for r in reduce_results),
            shuffle_records=sum(r.shuffled_records for r in reduce_results),
            shuffle_bytes=sum(r.shuffled_bytes for r in reduce_results),
            network_bytes=self.cluster.network_bytes - net_before,
            num_map_tasks=len(map_results),
            num_reduce_tasks=len(reduce_results),
        )
        return JobResult(
            job=job,
            start=start,
            end=end,
            counters=counters,
            stats=stats,
            output_paths=job.output_part_paths(),
        )

    # -- wave scheduling ---------------------------------------------------------
    def _run_wave(self, tasks, slots_per_worker, runner, locations, kind):
        """Schedule ``tasks`` into per-worker slots; returns their results.

        Locality-first greedy assignment, FIFO completion handling,
        Hadoop-style rescheduling of tasks lost to worker failures, and
        (optionally) speculative backup attempts for wave stragglers.
        """
        engine = self.engine
        completions = Store(engine)
        total = len(tasks)
        pending = deque(range(total))
        free = {m.name: slots_per_worker for m in self.cluster.alive_workers()}
        attempts: dict[int, list] = {i: [] for i in range(total)}
        done: dict[int, Any] = {}
        running = 0
        retries = 0
        backups = 0
        max_backups = len(self.cluster)

        def monitor(idx, worker: Machine, proc):
            try:
                result = yield proc
            except BaseException as exc:  # user code raised in the task
                completions.put((idx, worker, ("error", exc)))
                return
            completions.put((idx, worker, result))

        def launch(idx, worker_name):
            nonlocal running
            free[worker_name] -= 1
            machine = self.cluster[worker_name]
            proc = machine.spawn(runner(tasks[idx], machine), name=f"{kind}-task")
            attempts[idx].append((worker_name, proc))
            engine.process(monitor(idx, machine, proc), name=f"{kind}-mon")
            running += 1

        def try_assign():
            nonlocal backups
            progress = True
            while pending and progress:
                progress = False
                for _ in range(len(pending)):
                    idx = pending.popleft()
                    worker = self._pick_worker(free, locations(tasks[idx]))
                    if worker is None:
                        pending.append(idx)
                        continue
                    launch(idx, worker)
                    progress = True
            if not self.speculative or pending or len(done) * 2 < total:
                return
            # Speculation: the wave is at least half done and slots are
            # idle — back up single-attempt stragglers elsewhere.
            for idx in range(total):
                if backups >= max_backups:
                    break
                if idx in done or len(attempts[idx]) != 1:
                    continue
                avoid = attempts[idx][0][0]
                candidates = {w: f for w, f in free.items() if w != avoid}
                worker = self._pick_worker(candidates, ())
                if worker is not None:
                    launch(idx, worker)
                    backups += 1

        try_assign()
        while running:
            idx, worker, result = yield completions.get()
            running -= 1
            is_ok = isinstance(result, tuple) and result and result[0] == "ok"

            if idx in done:
                # A duplicate attempt resolving after the winner: reclaim
                # the slot; its output is discarded.
                if not worker.failed:
                    free[worker.name] = free.get(worker.name, 0) + 1
                try_assign()
                continue

            if is_ok:
                done[idx] = result[1]
                if not worker.failed:
                    free[worker.name] = free.get(worker.name, 0) + 1
                # First finisher wins: kill any other attempt (Hadoop
                # prefers the first completed task's output).
                for other_worker, proc in attempts[idx]:
                    if proc.is_alive:
                        proc.interrupt("speculation-loser")
            elif isinstance(result, tuple) and result and result[0] == "error":
                raise TaskFailure(f"{kind}:{idx}", result[1])
            else:
                # Worker failure (or a stray cancellation): drop the dead
                # worker's slots and requeue unless a twin attempt runs.
                if isinstance(result, WorkerFailure):
                    free.pop(worker.name, None)
                attempts[idx] = [
                    (w, p) for w, p in attempts[idx] if w != worker.name
                ]
                if not attempts[idx]:
                    retries += 1
                    if retries > self.max_task_retries * max(total, 1):
                        raise SchedulingError(
                            f"{kind} wave: too many task retries ({retries})"
                        )
                    if not any(v > 0 for v in free.values()) and not running:
                        refreshed = {
                            m.name: slots_per_worker
                            for m in self.cluster.alive_workers()
                        }
                        if not refreshed:
                            raise SchedulingError(
                                f"{kind} wave: no alive workers left"
                            )
                        free.update(refreshed)
                    pending.append(idx)
            try_assign()
            if not running and pending:
                raise SchedulingError(
                    f"{kind} wave: {len(pending)} tasks unassignable"
                )
        return [done[i] for i in sorted(done)]

    def _pick_worker(self, free_slots: dict[str, int], preferred: Iterable[str]) -> str | None:
        """Locality first; otherwise the free worker with most slots."""
        for name in preferred:
            if free_slots.get(name, 0) > 0 and not self.cluster[name].failed:
                return name
        best: str | None = None
        best_free = 0
        for name, free in free_slots.items():
            if free > best_free and not self.cluster[name].failed:
                best, best_free = name, free
        return best

    # -- tasks -----------------------------------------------------------------
    def _map_task(self, job: Job, map_id: int, split: Split, worker: Machine):
        engine = self.engine
        cost = self.cost
        yield engine.timeout(cost.task_launch)
        if job.side_inputs:
            side_data = {}
            for path in job.side_inputs:
                side_data[path] = yield from self.dfs.read_all(path, worker)
            if hasattr(job.mapper, "configure"):
                job.mapper.configure(side_data)
        op_start = engine.now
        records = yield from self.dfs.read_block(split.path, split.block_index, worker)

        ctx = Context()
        mapper = job.mapper
        for key, value in records:
            mapper.map(key, value, ctx)
        emitted = ctx.take()

        partitions: dict[int, list[tuple[Any, Any]]] = {}
        partitioner = job.partitioner
        nparts = job.num_reduces
        for pair in emitted:
            partitions.setdefault(partitioner(pair[0], nparts), []).append(pair)

        work = cost.map_record_cpu * len(records) + cost.emit_record_cpu * len(emitted)

        if job.combiner is not None:
            combined: dict[int, list[tuple[Any, Any]]] = {}
            combine_in = 0
            for part, pairs in partitions.items():
                cctx = Context()
                for key, values in group_by_key(pairs):
                    combine_in += len(values)
                    job.combiner.reduce(key, values, cctx)
                combined[part] = cctx.take()
                for name, value in cctx.counters.items():
                    ctx.counters[name] = ctx.counters.get(name, 0.0) + value
            partitions = combined
            work += cost.combine_value_cpu * combine_in

        sizes = {part: sizeof_records(pairs) for part, pairs in partitions.items()}
        work += cost.serialize_byte_cpu * sum(sizes.values())
        yield from worker.compute(cost.noisy(work, "map", job.name, map_id))

        yield from worker.disk_write(sum(sizes.values()))
        return (
            "ok",
            _MapOutput(
                map_id=map_id,
                worker=worker.name,
                partitions=partitions,
                sizes=sizes,
                records_in=len(records),
                op_start=op_start,
            ),
        )

    def _reduce_task(self, job: Job, reduce_id: int, worker: Machine, map_outputs: list[_MapOutput]):
        engine = self.engine
        cost = self.cost
        yield engine.timeout(cost.task_launch)

        fetched: list[tuple[Any, Any]] = []
        shuffled_bytes = 0
        for output in map_outputs:
            pairs = output.partitions.get(reduce_id)
            if not pairs:
                continue
            nbytes = output.sizes.get(reduce_id, 0)
            yield from self.cluster.transfer(output.worker, worker, nbytes)
            yield from worker.disk_write(nbytes)
            fetched.extend(pairs)
            shuffled_bytes += nbytes

        yield from worker.disk_read(shuffled_bytes)
        yield from worker.compute(
            cost.noisy(
                cost.sort_cost(len(fetched)) + cost.merge_byte_cpu * shuffled_bytes,
                "shuffle", job.name, reduce_id,
            )
        )

        ctx = Context()
        reducer = job.reducer
        for key, values in group_by_key(fetched):
            reducer.reduce(key, values, ctx)
        out = ctx.take()
        yield from worker.compute(
            cost.noisy(
                cost.reduce_value_cpu * len(fetched)
                + cost.emit_record_cpu * len(out),
                "reduce", job.name, reduce_id,
            )
        )

        yield from self.dfs.write(job.part_path(reduce_id), out, worker, overwrite=True)
        return (
            "ok",
            _ReduceOutput(
                reduce_id=reduce_id,
                counters=dict(ctx.counters),
                records_out=len(out),
                shuffled_records=len(fetched),
                shuffled_bytes=shuffled_bytes,
            ),
        )
