"""Calibrated virtual-time cost model.

Every second of virtual time the engines charge comes from here.  The
structure (what is charged where) is what produces the paper's effects;
the constants set the *proportions*:

* ``job_setup``/``job_cleanup``/``task_launch`` — per-job and per-task
  scheduling overhead.  The Hadoop baseline pays these every iteration;
  iMapReduce pays them once (§3.1, "one-time initialization", measured at
  ~10–20% of baseline running time in Figs. 4–7).
* per-record CPU costs — map/emit/sort/reduce work per record.  Emit,
  sort and reduce-value costs are paid per *shuffled* record, so shipping
  the static data every iteration (the baseline) costs CPU in proportion
  to its size, on top of wire bytes — together the "static data
  shuffling" factor (~20–30%).
* bytes cross the disk/NIC pipes priced by the serialization model.

Provenance of the defaults: our stand-in datasets are ~20× smaller than
the paper's (DESIGN.md §2), so per-record costs are set ~20× above
2009-era Hadoop per-record costs (tens of microseconds); this keeps the
*shares* of init/compute/shuffle per iteration in the bands the paper
measured while absolute virtual times land within a small factor of the
paper's (hundreds of seconds per multi-iteration run).  The calibration
test (tests/experiments/test_calibration.py) pins the bands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Virtual-time prices (seconds; per-record values are reference
    CPU-seconds, divided by a machine's ``cpu_speed`` when charged)."""

    # -- control plane -----------------------------------------------------
    job_setup: float = 2.0  # job submission, split computation, task creation
    job_cleanup: float = 1.0  # commit outputs, tear down tasks
    task_launch: float = 1.0  # per-task scheduling + JVM start
    heartbeat: float = 0.2  # master<->worker control-message latency
    #: Latency of releasing a *synchronous* global iteration barrier: the
    #: master learns every reduce finished and reactivates the dormant
    #: maps through the Hadoop control plane, which acts on TaskTracker
    #: heartbeat boundaries (3 s default in the Hadoop 0.19/0.20 the
    #: paper builds on).  Asynchronous execution (§3.3) bypasses this
    #: entirely — state arrives on the persistent sockets — which is the
    #: "synchronization overhead" the paper's third factor removes.
    sync_release_latency: float = 3.0

    # -- data plane (per record) -----------------------------------------------
    map_record_cpu: float = 0.4e-3  # run the user map on one input record
    emit_record_cpu: float = 0.1e-3  # partition + collect one map output
    sort_record_cpu: float = 0.005e-3  # × log2(n): sort/merge at the reducer
    reduce_value_cpu: float = 0.2e-3  # merge + user reduce per input value
    combine_value_cpu: float = 0.05e-3  # map-side combiner per input value
    join_record_cpu: float = 0.1e-3  # iMapReduce state⋈static join per record
    distance_record_cpu: float = 0.02e-3  # per-record distance() evaluation

    # -- data plane (per byte) ---------------------------------------------------
    # Serialization at the map output and deserialization/merge at the
    # reduce input.  These carry the *size*-proportional half of shuffle
    # cost, so fat records (adjacency lists riding the baseline's shuffle)
    # cost more than the small state records — the effect behind the
    # paper's "static data shuffling" factor.  Values are effective rates
    # for the ~20×-scaled-down datasets (DESIGN.md §2): real Hadoop
    # serialization is ~20× cheaper per byte, and our files are ~20×
    # smaller, so the time *shares* match the paper's.
    serialize_byte_cpu: float = 0.25e-6
    merge_byte_cpu: float = 0.25e-6

    #: Amplitude of the deterministic per-(task, iteration) service-time
    #: variation.  Real tasks never take exactly their mean time — GC
    #: pauses, I/O interference and OS scheduling add transient noise —
    #: and this texture is what §3.3's asynchronous map execution absorbs
    #: (a pair slow in one iteration starts its next map without waiting
    #: for the global barrier).  The multiplier is a pure function of the
    #: key, so runs stay bit-reproducible and both engines see identical
    #: per-task noise.
    noise_amplitude: float = 0.2

    #: Extra salt mixed into the noise hash.  ``0`` keeps the historical
    #: noise texture; a job's ``mapred.iterjob.seed`` is threaded in here
    #: (see :meth:`IMapReduceRuntime.submit`) so seeded runs explore a
    #: different — but still fully replayable — schedule per seed.
    noise_seed: int = 0

    def sort_cost(self, num_records: int) -> float:
        """n·log₂(n) comparison-sort cost for ``num_records`` records."""
        if num_records <= 1:
            return 0.0
        return self.sort_record_cpu * num_records * math.log2(num_records)

    def noisy(self, work: float, *key) -> float:
        """Apply the deterministic service-time variation to ``work``."""
        if self.noise_amplitude <= 0:
            return work
        from ..common.partition import stable_hash

        salted = key if not self.noise_seed else (self.noise_seed, *key)
        unit = (stable_hash(tuple(salted)) % 10_000) / 10_000.0  # [0, 1)
        return work * (1.0 + self.noise_amplitude * (2.0 * unit - 1.0))

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy with selected constants replaced (ablation studies)."""
        return replace(self, **kwargs)


#: The calibration used by every experiment unless overridden.
DEFAULT_COST_MODEL = CostModel()
