"""Job descriptions and results for the Hadoop-like baseline engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..common.config import JobConf
from ..common.errors import ConfigError
from ..common.partition import HashPartitioner, Partitioner
from .api import Combiner, Mapper, Reducer, as_mapper, as_reducer

__all__ = ["Job", "JobStats", "JobResult"]


@dataclass
class Job:
    """One MapReduce job: what Hadoop's ``JobConf`` + ``JobClient`` carry.

    ``input_paths`` name DFS files (a previous job's ``part-*`` outputs or
    ingested input); ``output_path`` is a directory-like prefix under
    which the job writes ``part-NNNNN`` files, one per reduce task.
    """

    name: str
    mapper: Mapper | Callable
    reducer: Reducer | Callable
    input_paths: Sequence[str]
    output_path: str
    num_reduces: int = 4
    combiner: Combiner | Callable | None = None
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    conf: JobConf = field(default_factory=JobConf)
    #: Distributed-cache style side files: every map task reads these from
    #: the DFS before mapping and, if the mapper defines
    #: ``configure(side_data)``, passes ``{path: records}`` to it (how
    #: Hadoop K-means ships the centroids to every mapper).
    side_inputs: Sequence[str] = ()

    def __post_init__(self):
        if not self.input_paths:
            raise ConfigError(f"job {self.name!r}: no input paths")
        if self.num_reduces < 1:
            raise ConfigError(f"job {self.name!r}: num_reduces must be >= 1")
        self.mapper = as_mapper(self.mapper)
        self.reducer = as_reducer(self.reducer)
        if self.combiner is not None:
            self.combiner = as_reducer(self.combiner)

    def part_path(self, index: int) -> str:
        return f"{self.output_path}/part-{index:05d}"

    def output_part_paths(self) -> list[str]:
        return [self.part_path(r) for r in range(self.num_reduces)]


@dataclass(frozen=True, slots=True)
class JobStats:
    """Per-job accounting the iterative driver folds into RunMetrics.

    ``init_time`` follows the paper's §4.2 measurement: job submission to
    the averaged instant map tasks begin their map operation, plus the
    cleanup tail.
    """

    init_time: float
    map_records: int
    reduce_records: int
    output_records: int
    shuffle_records: int
    shuffle_bytes: int
    network_bytes: int
    num_map_tasks: int
    num_reduce_tasks: int


@dataclass
class JobResult:
    """Outcome of one job run."""

    job: Job
    start: float
    end: float
    counters: dict[str, float]
    stats: JobStats
    output_paths: list[str]

    @property
    def elapsed(self) -> float:
        return self.end - self.start

    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)
