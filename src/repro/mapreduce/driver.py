"""The baseline's iterative driver — the client-side loop the paper's
§1 describes users writing around Hadoop.

Each iteration submits a fresh MapReduce job whose input is the previous
iteration's output; optionally an *additional* convergence-check job runs
after each iteration (the paper: "users have to perform another
MapReduce job after each iteration to measure the difference"), reporting
the inter-iteration distance through a counter.

This accumulation of per-job setup, DFS load/dump and synchronization is
exactly the overhead iMapReduce removes; the driver therefore also keeps
the per-iteration accounting the figures need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..common.errors import ConfigError
from ..metrics import IterationMetrics, RunMetrics
from .job import Job, JobResult
from .runtime import MapReduceRuntime

__all__ = ["IterativeSpec", "IterativeResult", "IterativeDriver"]


@dataclass
class IterativeSpec:
    """Describes an iterative computation as a chain of jobs.

    ``job_factory(iteration, input_paths)`` builds the iteration's job;
    its output paths feed the next iteration.  If ``threshold`` is set,
    ``convergence_factory(iteration, prev_paths, curr_paths)`` must build
    the extra checking job, which reports the distance between the two
    results by incrementing the ``distance_counter`` counter.
    """

    name: str
    job_factory: Callable[[int, list[str]], Job]
    max_iterations: int
    threshold: float | None = None
    convergence_factory: Callable[[int, list[str], list[str]], Job] | None = None
    distance_counter: str = "distance"
    #: Delete intermediate outputs once no longer needed (keeps the
    #: simulated DFS — and host memory — bounded on long chains).
    cleanup_intermediate: bool = True

    def __post_init__(self):
        if self.max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")
        if self.threshold is not None and self.convergence_factory is None:
            raise ConfigError("a threshold needs a convergence_factory")


@dataclass
class IterativeResult:
    """Outcome of an iterative chain run."""

    metrics: RunMetrics
    final_paths: list[str]
    job_results: list[JobResult] = field(default_factory=list)
    converged: bool = False
    iterations_run: int = 0


class IterativeDriver:
    """Runs an :class:`IterativeSpec` as a chain of MapReduce jobs."""

    def __init__(self, runtime: MapReduceRuntime):
        self.runtime = runtime
        self.dfs = runtime.dfs

    def run(self, spec: IterativeSpec, input_paths: Sequence[str]) -> IterativeResult:
        metrics = RunMetrics(label=f"mapreduce:{spec.name}")
        metrics.start = self.runtime.engine.now
        net_start = self.runtime.cluster.network_bytes

        current_paths = list(input_paths)
        previous_paths: list[str] | None = None
        result = IterativeResult(metrics=metrics, final_paths=current_paths)

        for iteration in range(spec.max_iterations):
            iter_start = self.runtime.engine.now
            job = spec.job_factory(iteration, current_paths)
            job_result = self.runtime.submit(job)
            result.job_results.append(job_result)

            init_time = job_result.stats.init_time
            shuffle_bytes = job_result.stats.shuffle_bytes
            net_bytes = job_result.stats.network_bytes
            distance: float | None = None

            new_paths = job_result.output_paths
            if spec.threshold is not None:
                assert spec.convergence_factory is not None
                check = spec.convergence_factory(iteration, current_paths, new_paths)
                check_result = self.runtime.submit(check)
                result.job_results.append(check_result)
                distance = check_result.counter(spec.distance_counter)
                init_time += check_result.stats.init_time
                shuffle_bytes += check_result.stats.shuffle_bytes
                net_bytes += check_result.stats.network_bytes
                if spec.cleanup_intermediate:
                    for path in check_result.output_paths:
                        if self.dfs.exists(path):
                            self.dfs.delete(path)

            metrics.iterations.append(
                IterationMetrics(
                    index=iteration,
                    start=iter_start,
                    end=self.runtime.engine.now,
                    init_time=init_time,
                    shuffle_bytes=shuffle_bytes,
                    network_bytes=net_bytes,
                    map_records=job_result.stats.map_records,
                    reduce_records=job_result.stats.reduce_records,
                    distance=distance,
                )
            )

            # Retire the iteration's inputs (but never the user's data).
            if spec.cleanup_intermediate and previous_paths:
                for path in previous_paths:
                    if self.dfs.exists(path):
                        self.dfs.delete(path)
            previous_paths = [p for p in current_paths if p not in input_paths]
            current_paths = new_paths
            result.iterations_run = iteration + 1

            if distance is not None and distance <= spec.threshold:
                result.converged = True
                break

        if spec.cleanup_intermediate and previous_paths:
            for path in previous_paths:
                if self.dfs.exists(path):
                    self.dfs.delete(path)

        metrics.end = self.runtime.engine.now
        metrics.network_bytes = self.runtime.cluster.network_bytes - net_start
        result.final_paths = current_paths
        return result
