"""Last.fm stand-in: synthetic user–artist listening histories.

The paper's K-means experiment (§5.1.3) clusters 359,347 Last.fm users by
artist preference; each user has 48.9 preferred artists on average and
the input file is 1.5 GB.  The real listening log is not redistributable,
so we generate an equivalent workload:

* users belong to ``num_tastes`` latent taste groups (ground truth);
* each taste group prefers a contiguous-ish subset of artists;
* a user's record is a sparse preference vector — on average
  :data:`MEAN_ARTISTS_PER_USER` ``(artist_id, play_count)`` pairs — the
  statistic that controls the record sizes the framework shuffles.

K-means then runs over the users' preference vectors exactly as the
paper describes: assign each user to the nearest centroid, re-average.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["LastFmDataset", "MEAN_ARTISTS_PER_USER", "load_lastfm"]

#: Paper §5.1.3: "each user has 48.9 preferred artists on average".
MEAN_ARTISTS_PER_USER = 48.9

#: Paper's corpus size, for reference in reports.
PAPER_USERS = 359_347


@dataclass(frozen=True)
class LastFmDataset:
    """Synthetic user–artist preferences plus generation ground truth."""

    num_users: int
    num_artists: int
    num_tastes: int
    #: ``records[u] = (artist_ids, play_counts)`` as small numpy arrays.
    records: tuple[tuple[np.ndarray, np.ndarray], ...]
    #: Latent taste group per user (ground truth, for evaluation only).
    taste: np.ndarray

    def user_records(self) -> list[tuple[int, tuple[np.ndarray, np.ndarray]]]:
        """Key/value records for DFS ingestion: ``(user_id, prefs)``."""
        return [(u, self.records[u]) for u in range(self.num_users)]

    def dense_matrix(self) -> np.ndarray:
        """Dense user×artist matrix for reference implementations."""
        mat = np.zeros((self.num_users, self.num_artists))
        for u, (ids, counts) in enumerate(self.records):
            mat[u, ids] = counts
        return mat

    @property
    def mean_artists_per_user(self) -> float:
        return float(np.mean([len(ids) for ids, _ in self.records]))


@lru_cache(maxsize=None)
def load_lastfm(
    num_users: int = 4000,
    num_artists: int = 500,
    num_tastes: int = 10,
    seed: int = 7,
) -> LastFmDataset:
    """Generate (and cache) the Last.fm stand-in.

    Each taste group draws artists from a Zipf-ish popularity profile
    concentrated on its own slice of the artist catalogue, with a little
    cross-over mass, so the clusters are recoverable but not trivial.
    """
    if num_users < num_tastes:
        raise ValueError("need at least one user per taste group")
    rng = np.random.default_rng(seed)
    taste = rng.integers(0, num_tastes, size=num_users)

    # Per-taste artist popularity profiles.
    profiles = np.full((num_tastes, num_artists), 0.05 / num_artists)
    slice_width = num_artists // num_tastes
    for t in range(num_tastes):
        lo = t * slice_width
        hi = num_artists if t == num_tastes - 1 else lo + slice_width
        ranks = np.arange(1, hi - lo + 1, dtype=float)
        profiles[t, lo:hi] += 0.95 * (1.0 / ranks) / np.sum(1.0 / ranks)
    profiles /= profiles.sum(axis=1, keepdims=True)

    records: list[tuple[np.ndarray, np.ndarray]] = []
    for u in range(num_users):
        k = max(1, min(num_artists, rng.poisson(MEAN_ARTISTS_PER_USER)))
        ids = rng.choice(num_artists, size=k, replace=False, p=profiles[taste[u]])
        ids.sort()
        counts = rng.geometric(0.05, size=k).astype(np.float64)
        records.append((ids.astype(np.int64), counts))

    return LastFmDataset(
        num_users=num_users,
        num_artists=num_artists,
        num_tastes=num_tastes,
        records=tuple(records),
        taste=taste,
    )
