"""Dataset registry: the paper's evaluation datasets, reproduced at
laptop scale.

The paper evaluates on two real SSSP graphs (DBLP, Facebook), two real
PageRank webgraphs (Google, Berkeley–Stanford), and log-normal synthetic
families for both (Tables 1 and 2).  None of the real graphs ship with
this repository, so every dataset here is a *synthetic stand-in*
generated with the paper's own log-normal model (§4.1.2), with

* the published node counts scaled down by :data:`REAL_SCALE` (real
  graphs) or to the s/m/l ladder in :data:`SYNTHETIC_SIZES` (synthetic
  families), and
* μ solved so the expected mean degree equals the published
  edges/nodes ratio (the σ values are the paper's).

``file size`` in the reproduced tables is computed from the text encoding
of the generated graph — the same quantity the paper reports for its
input files.

All generation is seeded; repeated calls return cached identical objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..common.serialization import sizeof_text_line
from ..graph import Digraph, pagerank_graph, sssp_graph

__all__ = [
    "DatasetInfo",
    "REAL_SCALE",
    "SYNTHETIC_SIZES",
    "SSSP_DATASETS",
    "PAGERANK_DATASETS",
    "load_graph",
    "dataset_table",
]

#: Real-graph stand-ins are generated at 1/20 of the published node count.
REAL_SCALE = 20

#: Node counts for the synthetic families.  The paper uses 1M/10M/50M
#: (SSSP) and 1M/10M/30M (PageRank); we keep a small:medium:large ladder
#: with the same ordering and a 1:5:15 spread that stays laptop-friendly.
SYNTHETIC_SIZES = {"s": 10_000, "m": 50_000, "l": 150_000}


@dataclass(frozen=True, slots=True)
class DatasetInfo:
    """One row of Table 1 / Table 2, paper numbers plus our stand-in."""

    name: str
    kind: str  # "sssp" (weighted) | "pagerank" (unweighted)
    paper_nodes: int
    paper_edges: int
    paper_file_size: str
    nodes: int
    mean_degree: float | None  # None -> use the paper's synthetic-family μ
    seed: int

    @property
    def weighted(self) -> bool:
        return self.kind == "sssp"


def _real(name: str, kind: str, nodes: int, edges: int, size: str, seed: int) -> DatasetInfo:
    return DatasetInfo(
        name=name,
        kind=kind,
        paper_nodes=nodes,
        paper_edges=edges,
        paper_file_size=size,
        nodes=max(nodes // REAL_SCALE, 2),
        mean_degree=edges / nodes,
        seed=seed,
    )


def _synthetic(name: str, kind: str, nodes: int, edges: int, size: str, tier: str, seed: int) -> DatasetInfo:
    return DatasetInfo(
        name=name,
        kind=kind,
        paper_nodes=nodes,
        paper_edges=edges,
        paper_file_size=size,
        nodes=SYNTHETIC_SIZES[tier],
        mean_degree=None,
        seed=seed,
    )


#: Table 1 of the paper (SSSP data sets).
SSSP_DATASETS: dict[str, DatasetInfo] = {
    d.name: d
    for d in [
        _real("dblp", "sssp", 310_556, 1_518_617, "16 MB", seed=101),
        _real("facebook", "sssp", 1_204_004, 5_430_303, "58 MB", seed=102),
        _synthetic("sssp-s", "sssp", 1_000_000, 7_868_140, "87 MB", "s", seed=103),
        _synthetic("sssp-m", "sssp", 10_000_000, 78_873_968, "958 MB", "m", seed=104),
        _synthetic("sssp-l", "sssp", 50_000_000, 369_455_293, "5.19 GB", "l", seed=105),
    ]
}

#: Table 2 of the paper (PageRank data sets).
PAGERANK_DATASETS: dict[str, DatasetInfo] = {
    d.name: d
    for d in [
        _real("google", "pagerank", 916_417, 6_078_254, "49 MB", seed=201),
        _real("berk-stan", "pagerank", 685_230, 7_600_595, "57 MB", seed=202),
        _synthetic("pagerank-s", "pagerank", 1_000_000, 7_425_360, "61 MB", "s", seed=203),
        _synthetic("pagerank-m", "pagerank", 10_000_000, 75_061_501, "690 MB", "m", seed=204),
        _synthetic("pagerank-l", "pagerank", 30_000_000, 224_493_620, "2.26 GB", "l", seed=205),
    ]
}

_ALL = {**SSSP_DATASETS, **PAGERANK_DATASETS}


@lru_cache(maxsize=None)
def load_graph(name: str, nodes: int | None = None) -> Digraph:
    """Generate (and cache) the stand-in graph for a registered dataset.

    ``nodes`` overrides the default stand-in size (used by scaling
    experiments that sweep sizes).
    """
    try:
        info = _ALL[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; known: {sorted(_ALL)}"
        ) from None
    n = nodes if nodes is not None else info.nodes
    if info.kind == "sssp":
        return sssp_graph(n, mean_degree=info.mean_degree, seed=info.seed)
    return pagerank_graph(n, mean_degree=info.mean_degree, seed=info.seed)


def _file_size_bytes(graph: Digraph) -> int:
    return sum(sizeof_text_line(k, v) for k, v in graph.static_records())


def dataset_table(kind: str) -> list[dict]:
    """Reproduce Table 1 (``kind='sssp'``) or Table 2 (``'pagerank'``).

    Returns one row per dataset with the paper's published statistics and
    the stand-in's measured statistics.
    """
    source = SSSP_DATASETS if kind == "sssp" else PAGERANK_DATASETS
    rows = []
    for info in source.values():
        graph = load_graph(info.name)
        rows.append(
            {
                "graph": info.name,
                "paper_nodes": info.paper_nodes,
                "paper_edges": info.paper_edges,
                "paper_file_size": info.paper_file_size,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "file_size_bytes": _file_size_bytes(graph),
                "mean_degree": graph.num_edges / graph.num_nodes,
                "paper_mean_degree": info.paper_edges / info.paper_nodes,
            }
        )
    return rows
