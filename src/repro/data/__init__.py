"""Dataset registry: paper Tables 1–2 stand-ins and the Last.fm workload."""

from .datasets import (
    PAGERANK_DATASETS,
    REAL_SCALE,
    SSSP_DATASETS,
    SYNTHETIC_SIZES,
    DatasetInfo,
    dataset_table,
    load_graph,
)
from .lastfm import MEAN_ARTISTS_PER_USER, LastFmDataset, load_lastfm

__all__ = [
    "PAGERANK_DATASETS",
    "REAL_SCALE",
    "SSSP_DATASETS",
    "SYNTHETIC_SIZES",
    "DatasetInfo",
    "dataset_table",
    "load_graph",
    "MEAN_ARTISTS_PER_USER",
    "LastFmDataset",
    "load_lastfm",
]
