"""Campaign execution: build the world a spec describes, run it, judge it.

``run_campaign`` is the single entry the smoke tests, the shrinker and
the CLI all share: spec in, :class:`CampaignOutcome` out — the
distributed run (or the exception it died with), the serial reference
execution, the trace, and every oracle violation.

``run_chaos`` drives a whole seeded campaign battery: generate K specs
from a master seed, run each, greedily shrink the failures, and return a
:class:`ChaosReport` whose failures carry one-line replay commands.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..algorithms import kmeans, pagerank, sssp
from ..cluster import Cluster, heterogeneous_cluster, local_cluster
from ..common import IterKeys, stable_seed
from ..data.lastfm import load_lastfm
from ..dfs import DFS
from ..graph.generators import pagerank_graph, sssp_graph
from ..imapreduce import (
    ChaosKnobs,
    FailureDetectorConfig,
    IMapReduceRuntime,
    LoadBalanceConfig,
    ProcFault,
    patch_static_table,
    random_edge_churn,
    run_accum_local,
    run_accum_parallel,
    run_accum_simulated,
    run_incremental_accum,
    run_local,
    run_parallel,
)
from ..imapreduce.incremental import ADJACENCY_KINDS, cold_initial_deltas
from ..metrics.trace import TraceEvent, Tracer
from ..simulation import Engine
from .campaign import REPLICATION, WORKLOADS, CampaignSpec, generate_campaign
from .oracles import OracleViolation, evaluate_oracles
from .shrink import shrink

__all__ = [
    "CampaignOutcome",
    "CampaignFailure",
    "ChaosReport",
    "run_campaign",
    "campaign_fails",
    "run_chaos",
]

STATE_PATH = "/chaos/state"
STATIC_PATH = "/chaos/static"
OUTPUT_PATH = "/chaos/out"


@dataclass
class CampaignOutcome:
    """Everything one campaign produced, plus the oracles' verdict."""

    spec: CampaignSpec
    result: Any = None  # IterativeRunResult | None
    reference: Any = None  # LocalRunResult | None
    final_state: list = field(default_factory=list)
    trace_events: list[TraceEvent] = field(default_factory=list)
    error: BaseException | None = None
    violations: list[OracleViolation] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Set when the campaign also ran the real multiprocess backend
    #: (``parallel`` mode): its result, or the exception it died with.
    parallel_result: Any = None  # ParallelRunResult | None
    parallel_error: BaseException | None = None
    #: Set when ``spec.use_kernels``: the kernel-enabled job's serial
    #: columnar run (or the exception it died with).  In ``parallel``
    #: mode the multiprocess backend runs the kernel job too, and the
    #: parallel oracle compares against this result bit-for-bit.
    kernel_result: Any = None  # LocalRunResult | None
    kernel_error: BaseException | None = None
    #: Set when ``spec.async_mode``: the accumulative (Maiter-mode)
    #: twin's runs, judged by the ``async-fixpoint`` oracle.
    #: ``async_reference`` is the synchronous serial run;
    #: ``async_results`` maps schedule name (``"serial-async"``,
    #: ``"simulated"``, ``"kernel-async"``, ``"parallel-async"``) to its
    #: result; ``async_errors`` maps the name to the exception instead
    #: when a run died.  ``async_algebra`` is ``"min"`` or ``"sum"``.
    async_reference: Any = None  # AccumRunResult | None
    async_results: dict = field(default_factory=dict)
    async_errors: dict = field(default_factory=dict)
    async_algebra: str = ""
    #: Set when ``spec.input_delta``: the incremental-refresh
    #: (i2MapReduce-mode) twin's runs, judged by the
    #: ``incremental-differential`` oracle.  ``incremental_reference``
    #: is the cold rerun on the *mutated* input;
    #: ``incremental_results`` maps schedule name
    #: (``"warm-serial-sync"``, ``"warm-serial-async"``,
    #: ``"warm-kernel-async"``, ``"warm-parallel-async"``) to its
    #: warm-started run; ``incremental_errors`` maps the name to the
    #: exception instead when a run died.
    incremental_reference: Any = None  # AccumRunResult | None
    incremental_results: dict = field(default_factory=dict)
    incremental_errors: dict = field(default_factory=dict)
    incremental_algebra: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CampaignFailure:
    """A failing campaign with its shrunk reproduction."""

    campaign_seed: int
    spec: CampaignSpec
    violations: list[OracleViolation]
    shrunk: CampaignSpec | None = None
    shrink_attempts: int = 0

    def replay_lines(self, bug: str | None = None) -> list[str]:
        suffix = f" --inject-bug {bug}" if bug else ""
        lines = [f"repro chaos --campaign-seed {self.campaign_seed}{suffix}"]
        if self.shrunk is not None and self.shrunk != self.spec:
            lines.append(f"repro chaos --spec '{self.shrunk.to_json()}'{suffix}")
        return lines


@dataclass
class ChaosReport:
    """Outcome of a whole campaign battery."""

    master_seed: int
    campaigns: int = 0
    passed: int = 0
    failures: list[CampaignFailure] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: One dict per campaign whose parallel run took the recovery path:
    #: campaign seed, the seeded ``proc_kill``, and the backend's
    #: ``recovery_events`` verbatim.  ``repro chaos --recovery-log``
    #: serializes these as JSONL for CI artifacts.
    recovery_events: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


# ------------------------------------------------------------ workloads --
def _build_workload(spec: CampaignSpec, use_kernel: bool = False):
    """Spec → (job, state_records, static_records_by_path).

    ``use_kernel`` builds the same workload with its vectorized columnar
    kernel attached (the ``use_kernels`` campaign dimension); inputs and
    record-level phases are identical either way.
    """
    if spec.workload == "sssp":
        graph = sssp_graph(spec.input_size, seed=stable_seed(spec.seed, "graph"))
        state = sssp.initial_state(graph, source=0)
        static = sssp.static_records(graph)
        job = sssp.build_imr_job(
            state_path=STATE_PATH,
            static_path=STATIC_PATH,
            output_path=OUTPUT_PATH,
            max_iterations=spec.max_iterations,
            num_pairs=spec.num_pairs,
            sync=spec.sync,
            combiner=spec.combiner,
            checkpoint_interval=spec.checkpoint_interval,
            buffer_records=spec.buffer_records,
            use_kernel=use_kernel,
        )
    elif spec.workload == "pagerank":
        graph = pagerank_graph(spec.input_size, seed=stable_seed(spec.seed, "graph"))
        state = pagerank.initial_state(graph)
        static = pagerank.static_records(graph)
        job = pagerank.build_imr_job(
            spec.input_size,
            state_path=STATE_PATH,
            static_path=STATIC_PATH,
            output_path=OUTPUT_PATH,
            max_iterations=spec.max_iterations,
            num_pairs=spec.num_pairs,
            sync=spec.sync,
            combiner=spec.combiner,
            checkpoint_interval=spec.checkpoint_interval,
            buffer_records=spec.buffer_records,
            use_kernel=use_kernel,
        )
    elif spec.workload == "kmeans":
        data = load_lastfm(
            num_users=spec.input_size,
            num_artists=8,
            num_tastes=2,
            seed=stable_seed(spec.seed, "lastfm") % (2**31),
        )
        k = min(3, max(2, spec.num_pairs))
        state = kmeans.initial_centroids(data, k, seed=stable_seed(spec.seed, "centroids") % (2**31))
        static = data.user_records()
        job = kmeans.build_imr_job(
            state_path=STATE_PATH,
            static_path=STATIC_PATH,
            output_path=OUTPUT_PATH,
            max_iterations=spec.max_iterations,
            num_pairs=spec.num_pairs,
            combiner=spec.combiner,
            checkpoint_interval=spec.checkpoint_interval,
            use_kernel=use_kernel,
            num_artists=8 if use_kernel else None,
        )
    else:  # pragma: no cover - validate() rejects earlier
        raise ValueError(f"unknown workload {spec.workload!r}")
    job.conf.set_int(IterKeys.SEED, spec.seed or 1)
    return job, state, {STATIC_PATH: static}


#: Pending-mass threshold for ``+``-algebra accumulative twins; ``min``
#: algebras drain exactly at 0.  Campaign inputs are tiny (≤ 28 nodes),
#: so this leaves the async-fixpoint oracle's 1e-9 absolute tolerance
#: orders of magnitude of headroom.
ACCUM_SUM_THRESHOLD = 1e-12
#: Round budget no converging accumulative campaign run ever hits.
ACCUM_MAX_ROUNDS = 2000


def _build_accum_workload(spec: CampaignSpec, use_kernel: bool = False):
    """Spec → (accum_job, initial_deltas, static_records_by_path, algebra).

    The accumulative (Maiter-mode) twin of :func:`_build_workload` for
    the workloads that have one: the same seeded input graph, formulated
    as an :class:`~repro.imapreduce.accum.AccumJob`.
    """
    if spec.workload == "sssp":
        graph = sssp_graph(spec.input_size, seed=stable_seed(spec.seed, "graph"))
        deltas = sssp.accum_initial_deltas(0)
        static = sssp.static_records(graph)
        job = sssp.build_accum_job(
            state_path=STATE_PATH,
            static_path=STATIC_PATH,
            output_path=OUTPUT_PATH,
            max_rounds=ACCUM_MAX_ROUNDS,
            num_pairs=spec.num_pairs,
            use_kernel=use_kernel,
        )
        algebra = "min"
    elif spec.workload == "pagerank":
        graph = pagerank_graph(spec.input_size, seed=stable_seed(spec.seed, "graph"))
        deltas = pagerank.accum_initial_deltas(spec.input_size, pagerank.DAMPING)
        static = pagerank.static_records(graph)
        job = pagerank.build_accum_job(
            state_path=STATE_PATH,
            static_path=STATIC_PATH,
            output_path=OUTPUT_PATH,
            threshold=ACCUM_SUM_THRESHOLD,
            max_rounds=ACCUM_MAX_ROUNDS,
            num_pairs=spec.num_pairs,
            use_kernel=use_kernel,
        )
        algebra = "sum"
    else:  # pragma: no cover - validate() rejects async_mode elsewhere
        raise ValueError(f"no accumulative twin for {spec.workload!r}")
    return job, deltas, {STATIC_PATH: static}, algebra


def _run_accum_twin(
    spec: CampaignSpec,
    outcome: CampaignOutcome,
    *,
    parallel: bool,
    parallel_workers: int,
    parallel_start_method: str | None,
) -> None:
    """Run the accumulative twin under every schedule the spec asks for.

    All runs share one job and one input; the ``async-fixpoint`` oracle
    compares each asynchronous schedule's fixpoint against the
    synchronous serial reference.
    """
    job, deltas, static_map, algebra = _build_accum_workload(spec)
    outcome.async_algebra = algebra
    try:
        outcome.async_reference = run_accum_local(
            job, deltas, static_map, num_pairs=spec.num_pairs, mode="sync"
        )
    except Exception as exc:
        outcome.async_errors["sync-reference"] = exc
        return
    runs: list[tuple[str, Callable[[], Any]]] = [
        (
            "serial-async",
            lambda: run_accum_local(
                job, deltas, static_map, num_pairs=spec.num_pairs, mode="async"
            ),
        ),
        (
            "simulated",
            lambda: run_accum_simulated(
                job, deltas, static_map, num_pairs=spec.num_pairs, seed=spec.seed
            ),
        ),
    ]
    if spec.use_kernels:
        kjob, _, _, _ = _build_accum_workload(spec, use_kernel=True)
        runs.append(
            (
                "kernel-async",
                lambda: run_accum_local(
                    kjob, deltas, static_map, num_pairs=spec.num_pairs,
                    mode="async",
                ),
            )
        )
    if parallel:
        runs.append(
            (
                "parallel-async",
                lambda: run_accum_parallel(
                    job,
                    deltas,
                    static_map,
                    num_pairs=spec.num_pairs,
                    num_workers=parallel_workers,
                    mode="async",
                    start_method=parallel_start_method,
                ),
            )
        )
    for name, thunk in runs:
        try:
            outcome.async_results[name] = thunk()
        except Exception as exc:  # judged by the async-fixpoint oracle
            outcome.async_errors[name] = exc


def _run_incremental_twin(
    spec: CampaignSpec,
    outcome: CampaignOutcome,
    *,
    parallel: bool,
    parallel_workers: int,
    parallel_start_method: str | None,
) -> None:
    """Run the incremental-refresh (i2MapReduce-mode) twin.

    One cold base run converges and is memoized; the spec's pinned
    churn parameters synthesize a :class:`DataDelta` against the
    campaign graph; a cold rerun on the mutated input becomes the
    reference fixpoint; and every warm-started refresh — serial sync,
    serial async, the kernel twin, the real multiprocess backend — is
    judged against it by the ``incremental-differential`` oracle.
    """
    job, deltas, static_map, algebra = _build_accum_workload(spec)
    outcome.incremental_algebra = algebra
    table = dict(static_map[STATIC_PATH])
    insert, delete, churn_seed = spec.input_delta
    plan_kwargs = (
        {"source": 0} if spec.workload == "sssp"
        else {"damping": pagerank.DAMPING}
    )
    try:
        delta = random_edge_churn(
            table, spec.workload, insert=insert, delete=delete,
            seed=churn_seed,
        )
        memo = run_accum_local(
            job, deltas, {STATIC_PATH: table}, num_pairs=spec.num_pairs,
            mode="sync",
        )
        mutated = dict(table)
        patch_static_table(mutated, delta, ADJACENCY_KINDS[spec.workload])
        outcome.incremental_reference = run_accum_local(
            job,
            cold_initial_deltas(spec.workload, mutated, **plan_kwargs),
            {STATIC_PATH: mutated},
            num_pairs=spec.num_pairs,
            mode="sync",
        )
    except Exception as exc:
        outcome.incremental_errors["cold-base"] = exc
        return
    runs: list[tuple[str, Callable[[], Any]]] = [
        (
            "warm-serial-sync",
            lambda: run_incremental_accum(
                job, spec.workload, delta, memo.state,
                {STATIC_PATH: dict(table)}, num_pairs=spec.num_pairs,
                mode="sync", **plan_kwargs,
            ),
        ),
        (
            "warm-serial-async",
            lambda: run_incremental_accum(
                job, spec.workload, delta, memo.state,
                {STATIC_PATH: dict(table)}, num_pairs=spec.num_pairs,
                mode="async", **plan_kwargs,
            ),
        ),
    ]
    if spec.use_kernels:
        kjob, _, _, _ = _build_accum_workload(spec, use_kernel=True)
        runs.append(
            (
                "warm-kernel-async",
                lambda: run_incremental_accum(
                    kjob, spec.workload, delta, memo.state,
                    {STATIC_PATH: dict(table)}, num_pairs=spec.num_pairs,
                    mode="async", **plan_kwargs,
                ),
            )
        )
    if parallel:
        runs.append(
            (
                "warm-parallel-async",
                lambda: run_incremental_accum(
                    job, spec.workload, delta, memo.state,
                    {STATIC_PATH: dict(table)}, num_pairs=spec.num_pairs,
                    mode="async", backend="parallel",
                    num_workers=parallel_workers,
                    start_method=parallel_start_method,
                    **plan_kwargs,
                ),
            )
        )
    for name, thunk in runs:
        try:
            outcome.incremental_results[name] = thunk()
        except Exception as exc:  # judged by the incremental oracle
            outcome.incremental_errors[name] = exc


def _build_cluster(spec: CampaignSpec, engine: Engine) -> Cluster:
    if spec.speeds is not None:
        return heterogeneous_cluster(engine, list(spec.speeds))
    return local_cluster(engine, spec.cluster_nodes)


# -------------------------------------------------------------- running --
def run_campaign(
    spec: CampaignSpec,
    knobs: ChaosKnobs | None = None,
    *,
    parallel: bool = False,
    parallel_workers: int = 2,
    parallel_start_method: str | None = None,
) -> CampaignOutcome:
    """Run one campaign end to end and evaluate every oracle.

    ``knobs`` deliberately breaks the runtime (harness self-test): a
    correct harness must report violations for a broken runtime.

    ``parallel`` is a run-time dimension, not part of the spec (pinned
    campaign seeds keep generating byte-identical specs): the same
    workload additionally runs on the real multiprocess backend and the
    ``parallel-differential`` oracle demands record-for-record equality
    with the serial reference.  Campaign workloads never use thresholds
    or aux phases, so the comparison is float-exact by construction.
    ``parallel_start_method`` pins the multiprocessing start method
    (the differential matrix exercises ``spawn`` as well as ``fork``).
    """
    started = time.perf_counter()
    spec.validate()
    job, state, static_map = _build_workload(spec)
    outcome = CampaignOutcome(spec=spec)

    engine = Engine()
    cluster = _build_cluster(spec, engine)
    dfs = DFS(cluster, replication=REPLICATION)
    dfs.ingest(STATE_PATH, state)
    for path, records in static_map.items():
        dfs.ingest(path, records)
    # Link-fault draws are keyed off the campaign seed, so the whole
    # scenario — workload, faults, and every per-message loss verdict —
    # replays from one integer.
    spec.fault_schedule().arm(engine, cluster, net_seed=spec.seed)

    tracer = Tracer()
    runtime = IMapReduceRuntime(
        cluster,
        dfs,
        load_balance=LoadBalanceConfig(enabled=spec.migration),
        trace=tracer,
        chaos=knobs,
        # Campaigns run with observed failure detection + localized
        # recovery: the master learns about crashes from heartbeat
        # silence (or boot-id changes), never by fiat.
        failure_detector=FailureDetectorConfig(),
    )
    try:
        outcome.result = runtime.submit(job)
    except Exception as exc:  # judged by the termination oracle
        outcome.error = exc

    # Read the final partitions straight from the DFS metadata — no
    # simulated I/O, so a fault event pending after the job's completion
    # cannot interfere with the readback.
    if outcome.result is not None:
        final: list = []
        for path in outcome.result.final_paths:
            if dfs.exists(path):
                final.extend(dfs.file_info(path).records)
        outcome.final_state = sorted(final, key=lambda kv: repr(kv[0]))

    outcome.reference = run_local(
        job, state, static_map, num_pairs=spec.num_pairs
    )
    outcome.reference.state.sort(key=lambda kv: repr(kv[0]))
    kernel_job = None
    if spec.use_kernels:
        # The same workload with its columnar kernel attached: the serial
        # columnar run is judged against the record-path reference by the
        # kernel-differential oracle.
        kernel_job, _, _ = _build_workload(spec, use_kernel=True)
        try:
            outcome.kernel_result = run_local(
                kernel_job, state, static_map, num_pairs=spec.num_pairs
            )
            outcome.kernel_result.state.sort(key=lambda kv: repr(kv[0]))
        except Exception as exc:  # judged by the kernel oracle
            outcome.kernel_error = exc
    if parallel:
        # With kernels on, the multiprocess backend runs the kernel job
        # and must reproduce the *serial columnar* run bit-for-bit (both
        # paths order every merge identically); otherwise it runs the
        # record job against the record reference, as before.
        par_job = kernel_job if (spec.use_kernels and kernel_job is not None) else job
        # Process-death campaigns arm the backend's fault tolerance: the
        # seeded kill/stop fires mid-run, recovery restores the durable
        # checkpoint, and the same differential oracle that judges an
        # unfaulted run judges the recovered one.
        par_kwargs: dict = {}
        if spec.proc_kill is not None:
            victim, at_iteration, action = spec.proc_kill
            mesh_size = max(1, min(parallel_workers, spec.num_pairs))
            par_kwargs = dict(
                checkpoint_every=spec.checkpoint_interval,
                heartbeat_interval=0.05,
                # SIGSTOP is only caught by heartbeat silence; give spawn
                # meshes headroom for their interpreter startup.
                suspicion_timeout=(
                    30.0 if parallel_start_method == "spawn" else 8.0
                ),
                faults=(
                    ProcFault(
                        worker=victim % mesh_size,
                        iteration=at_iteration,
                        action=action,
                    ),
                ),
            )
        try:
            outcome.parallel_result = run_parallel(
                par_job,
                state,
                static_map,
                num_pairs=spec.num_pairs,
                num_workers=parallel_workers,
                start_method=parallel_start_method,
                **par_kwargs,
            )
            outcome.parallel_result.state.sort(key=lambda kv: repr(kv[0]))
        except Exception as exc:  # judged by the parallel oracle
            outcome.parallel_error = exc
    if spec.async_mode:
        _run_accum_twin(
            spec,
            outcome,
            parallel=parallel,
            parallel_workers=parallel_workers,
            parallel_start_method=parallel_start_method,
        )
    if spec.input_delta is not None:
        _run_incremental_twin(
            spec,
            outcome,
            parallel=parallel,
            parallel_workers=parallel_workers,
            parallel_start_method=parallel_start_method,
        )
    outcome.trace_events = list(tracer.events)
    outcome.violations = evaluate_oracles(spec, outcome)
    outcome.wall_seconds = time.perf_counter() - started
    return outcome


def campaign_fails(
    spec: CampaignSpec,
    knobs: ChaosKnobs | None = None,
    oracles: set[str] | None = None,
    *,
    parallel: bool = False,
) -> bool:
    """Shrinking predicate: does ``spec`` still violate (the given) oracles?"""
    try:
        outcome = run_campaign(spec, knobs, parallel=parallel)
    except Exception:
        # A spec the runner itself cannot execute (shrinker stepped
        # outside the envelope) does not count as a reproduction.
        return False
    if oracles is None:
        return bool(outcome.violations)
    return any(v.oracle in oracles for v in outcome.violations)


def run_chaos(
    master_seed: int,
    campaigns: int,
    *,
    workloads: tuple[str, ...] = WORKLOADS,
    knobs: ChaosKnobs | None = None,
    shrink_failures: bool = True,
    strip_net_faults: bool = False,
    parallel: bool = False,
    parallel_start_method: str | None = None,
    log: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run a battery of ``campaigns`` seeded campaigns.

    Campaign seeds derive from ``master_seed`` through a dedicated RNG,
    so the battery is reproducible as a whole and every individual
    failure is replayable via ``--campaign-seed``.
    """
    started = time.perf_counter()
    rng = random.Random(master_seed)
    report = ChaosReport(master_seed=master_seed)
    for index in range(campaigns):
        campaign_seed = rng.randrange(1, 2**48)
        spec = generate_campaign(campaign_seed, workloads)
        if strip_net_faults:
            spec = spec.but(net_faults=())
        outcome = run_campaign(
            spec, knobs, parallel=parallel,
            parallel_start_method=parallel_start_method,
        )
        report.campaigns += 1
        par = outcome.parallel_result
        if par is not None and getattr(par, "recoveries", 0):
            report.recovery_events.append(
                {
                    "campaign_seed": campaign_seed,
                    "proc_kill": list(spec.proc_kill)
                    if spec.proc_kill is not None
                    else None,
                    "recoveries": par.recoveries,
                    "events": list(par.recovery_events),
                }
            )
        if outcome.ok:
            report.passed += 1
            if log:
                log(
                    f"campaign {index + 1}/{campaigns} seed={campaign_seed} "
                    f"ok ({spec.describe()})"
                )
            continue
        failure = CampaignFailure(
            campaign_seed=campaign_seed,
            spec=spec,
            violations=list(outcome.violations),
        )
        if log:
            log(
                f"campaign {index + 1}/{campaigns} seed={campaign_seed} "
                f"FAILED: {'; '.join(map(str, outcome.violations))}"
            )
        if shrink_failures:
            failed_oracles = {v.oracle for v in outcome.violations}
            failure.shrunk, failure.shrink_attempts = shrink(
                spec,
                lambda s: campaign_fails(
                    s, knobs, failed_oracles, parallel=parallel
                ),
            )
            if log and failure.shrunk != spec:
                log(f"  shrunk to: {failure.shrunk.describe()}")
        report.failures.append(failure)
    report.wall_seconds = time.perf_counter() - started
    return report
