"""Campaign generation: one seed → one fully-specified chaos scenario.

A :class:`CampaignSpec` is the complete, JSON-serializable description of
one randomized end-to-end run: the workload (SSSP / PageRank / K-means on
a seeded random input), the cluster topology, the runtime-mode matrix
(synchronous maps, combiner, migration, checkpoint interval, buffer
size), and a fault schedule of fail/recover events at random virtual
times.  :func:`generate_campaign` is a pure function of the seed, which
is what makes every chaos failure replayable from one line
(``repro chaos --campaign-seed N``).

Safety envelope — campaigns are adversarial but never *unsatisfiable*:

* machine 0 never fails (the job needs a survivor, and the harness reads
  results through it);
* at most ``replication - 1`` machines are down at any instant, so
  injected faults cannot lose every replica of a DFS block (that would
  be a storage loss, not a runtime bug);
* the pair count always fits the surviving workers' task slots, so
  recovery is always schedulable (§3.1.1).
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, replace

from ..cluster.faults import FaultEvent, FaultSchedule
from ..cluster.network import LinkFault

__all__ = ["WORKLOADS", "REPLICATION", "CampaignSpec", "generate_campaign"]

WORKLOADS = ("sssp", "pagerank", "kmeans")

#: DFS replication every campaign uses; bounds concurrent failures.
REPLICATION = 2

#: Pairs-per-worker slot limit the runtime enforces (§3.1.1).
PAIRS_PER_WORKER = 2


@dataclass(frozen=True)
class CampaignSpec:
    """One chaos scenario, fully determined and JSON-round-trippable."""

    seed: int
    workload: str
    #: Graph nodes (SSSP / PageRank) or users (K-means).
    input_size: int
    cluster_nodes: int
    #: Per-machine CPU speeds; ``None`` means the homogeneous local
    #: topology, a tuple means a heterogeneous cluster (exercises §3.4.2).
    speeds: tuple[float, ...] | None
    num_pairs: int
    max_iterations: int
    sync: bool
    combiner: bool
    migration: bool
    checkpoint_interval: int
    buffer_records: int
    faults: tuple[FaultEvent, ...] = ()
    #: Link-level misbehaviour windows (loss, delay, transient partitions).
    net_faults: tuple[LinkFault, ...] = ()
    #: Exercise the columnar kernel path: the campaign additionally runs
    #: the kernel-enabled job through the executors and the kernel
    #: differential oracle compares it against the record-path reference.
    use_kernels: bool = False
    #: Real process death for ``parallel``-mode runs: ``(worker,
    #: iteration, action)`` — the multiprocess backend's worker kills
    #: (``"kill"``, SIGKILL) or freezes (``"stop"``, SIGSTOP) itself at
    #: the start of that iteration, and the run must *recover* from its
    #: durable checkpoints back to record-equality with the serial
    #: reference.  ``None`` = no process fault.  Like ``parallel`` itself,
    #: this dimension only bites when the campaign runs in parallel mode;
    #: the simulated runtime ignores it.
    proc_kill: tuple | None = None
    #: Asynchronous delta-based (Maiter-mode) accumulative twin: the
    #: campaign additionally runs the workload's ``AccumJob`` — sync
    #: serial reference, async serial, seeded-deferral simulated, the
    #: delta kernel twin when ``use_kernels``, and the real multiprocess
    #: backend in parallel mode — and the ``async-fixpoint`` oracle
    #: demands they all land on the same fixpoint (bit-exact for ``min``
    #: algebras, within tolerance for ``+``).  Only sssp and pagerank
    #: carry accumulative formulations; false elsewhere.
    async_mode: bool = False
    #: Incremental-refresh (i2MapReduce-mode) twin: ``(insert, delete,
    #: churn_seed)`` churn parameters resolved against the campaign's
    #: actual graph via :func:`repro.imapreduce.random_edge_churn`.
    #: The campaign additionally runs a cold base accum run, memoizes
    #: it, mutates the input, and demands every warm-started refresh
    #: (serial sync, serial async, multiprocess) land on the cold
    #: rerun's fixpoint — the ``incremental-differential`` oracle.
    #: ``None`` = no input mutation.  Graph workloads only.
    input_delta: tuple | None = None

    # -- derived -----------------------------------------------------------
    def machine_names(self) -> list[str]:
        prefix = "hnode" if self.speeds is not None else "node"
        return [f"{prefix}{i}" for i in range(self.cluster_nodes)]

    def fault_schedule(self) -> FaultSchedule:
        return FaultSchedule(list(self.faults), list(self.net_faults))

    def _partition_isolated(self, fault: LinkFault) -> int:
        """How many workers a partition window cuts off from the master.

        Those workers will be falsely confirmed dead if the window
        outlasts the suspicion budget, so their pairs must fit on the
        master's side of the split.  A partition between two non-master
        groups isolates nobody from the master (heartbeats still flow).
        """
        if not fault.partition:
            return 0
        master = self.machine_names()[0]
        if fault.group_b:
            if master in fault.group_a:
                return len(fault.group_b)
            if master in fault.group_b:
                return len(fault.group_a)
            return 0
        return len(fault.group_a)

    def validate(self) -> None:
        """Reject specs outside the safety envelope (shrinker guard)."""
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.cluster_nodes < 2:
            raise ValueError("need at least 2 cluster nodes")
        if self.speeds is not None and len(self.speeds) != self.cluster_nodes:
            raise ValueError("speeds must match cluster_nodes")
        if self.max_iterations < 1 or self.num_pairs < 1:
            raise ValueError("need at least one iteration and one pair")
        schedule = self.fault_schedule()
        names = set(self.machine_names())
        unknown = schedule.machines() - names
        if unknown:
            raise ValueError(f"faults name unknown machines {sorted(unknown)}")
        if self.machine_names()[0] in schedule.machines():
            raise ValueError("machine 0 must never fail")
        if schedule.max_concurrent_failures() > REPLICATION - 1:
            raise ValueError("too many concurrent failures for the replication")
        worst_alive = self.cluster_nodes - max(1, schedule.max_concurrent_failures())
        if self.faults and self.num_pairs > worst_alive * PAIRS_PER_WORKER:
            raise ValueError("pairs would not fit the surviving workers")
        if self.async_mode and self.workload not in ("sssp", "pagerank"):
            raise ValueError(
                f"async_mode needs an accumulative workload, not "
                f"{self.workload!r}"
            )
        if self.proc_kill is not None:
            worker, iteration, action = self.proc_kill
            if action not in ("kill", "stop"):
                raise ValueError(f"unknown proc_kill action {action!r}")
            if worker < 0:
                raise ValueError("proc_kill worker must be >= 0")
            if not 0 <= iteration < self.max_iterations:
                raise ValueError(
                    "proc_kill iteration must land inside the iteration budget"
                )
        if self.input_delta is not None:
            if self.workload not in ("sssp", "pagerank"):
                raise ValueError(
                    f"input_delta needs a graph workload, not "
                    f"{self.workload!r}"
                )
            if len(self.input_delta) != 3:
                raise ValueError("input_delta must be (insert, delete, seed)")
            insert, delete, _churn_seed = self.input_delta
            if insert < 0 or delete < 0 or insert + delete == 0:
                raise ValueError("input_delta churn must mutate something")
        master = self.machine_names()[0]
        for fault in self.net_faults:
            unknown = fault.machines() - names
            if unknown:
                raise ValueError(
                    f"link faults name unknown machines {sorted(unknown)}"
                )
            if fault.partition:
                if master in fault.group_a and not fault.group_b:
                    raise ValueError("machine 0 must not be cut off from the cluster")
                if fault.end - fault.start > 60.0:
                    raise ValueError(
                        "partition window exceeds the retransmission budget"
                    )
                # Cut-off workers may be falsely confirmed dead; their
                # pairs must still fit the master's side of the split
                # (worst case on top of a concurrent machine failure).
                reachable = (
                    self.cluster_nodes
                    - schedule.max_concurrent_failures()
                    - self._partition_isolated(fault)
                )
                if self.num_pairs > reachable * PAIRS_PER_WORKER:
                    raise ValueError(
                        "pairs would not fit the master-reachable workers "
                        "during the partition"
                    )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d["faults"] = [asdict(e) for e in self.faults]
        d["net_faults"] = [
            {**asdict(f), "group_a": list(f.group_a), "group_b": list(f.group_b)}
            for f in self.net_faults
        ]
        if self.speeds is not None:
            d["speeds"] = list(self.speeds)
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignSpec":
        d = dict(d)
        d["faults"] = tuple(FaultEvent(**e) for e in d.get("faults", ()))
        d["net_faults"] = tuple(
            LinkFault(
                **{
                    **f,
                    "group_a": tuple(f.get("group_a", ())),
                    "group_b": tuple(f.get("group_b", ())),
                }
            )
            for f in d.get("net_faults", ())
        )
        if d.get("speeds") is not None:
            d["speeds"] = tuple(d["speeds"])
        if d.get("proc_kill") is not None:
            d["proc_kill"] = tuple(d["proc_kill"])
        if d.get("input_delta") is not None:
            d["input_delta"] = tuple(d["input_delta"])
        return cls(**d)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def but(self, **changes) -> "CampaignSpec":
        """A modified copy (shrinking aid)."""
        return replace(self, **changes)

    def describe(self) -> str:
        modes = []
        modes.append("sync" if self.sync else "async")
        if self.combiner:
            modes.append("combiner")
        if self.migration:
            modes.append("migration")
        if self.speeds is not None:
            modes.append("hetero")
        if self.use_kernels:
            modes.append("kernels")
        if self.proc_kill is not None:
            w, i, action = self.proc_kill
            modes.append(f"proc-{action}:w{w}@i{i}")
        if self.async_mode:
            modes.append("accum-async")
        if self.input_delta is not None:
            ins, dels, churn_seed = self.input_delta
            modes.append(f"delta:+{ins}/-{dels}@s{churn_seed}")
        return (
            f"{self.workload} n={self.input_size} on {self.cluster_nodes} nodes, "
            f"{self.num_pairs} pairs, {self.max_iterations} iters, "
            f"ckpt every {self.checkpoint_interval}, buffer {self.buffer_records}, "
            f"[{' '.join(modes)}]; faults: {self.fault_schedule().describe()}"
        )


def _random_faults(
    rng: random.Random, names: list[str], horizon: float
) -> tuple[FaultEvent, ...]:
    """A chronological fail/recover sequence within the safety envelope.

    Every fail except possibly the last is followed by its recovery
    before the next fail, so at most one machine is ever down at once
    (= ``REPLICATION - 1``).  Machine 0 is never touched.
    """
    count = rng.choice((0, 1, 1, 1, 2))
    candidates = names[1:]
    if not candidates:
        return ()
    events: list[FaultEvent] = []
    t = rng.uniform(1.0, horizon)
    for i in range(count):
        machine = rng.choice(candidates)
        events.append(FaultEvent(round(t, 3), machine, "fail"))
        last = i == count - 1
        if not last or rng.random() < 0.5:
            t += rng.uniform(0.5, max(1.0, horizon / 2))
            events.append(FaultEvent(round(t, 3), machine, "recover"))
            t += rng.uniform(0.2, max(0.5, horizon / 3))
        else:
            break  # an unrecovered failure must be the last event
    return tuple(events)


def _random_net_faults(
    rng: random.Random,
    names: list[str],
    horizon: float,
    num_pairs: int,
    faults: tuple[FaultEvent, ...],
) -> tuple[LinkFault, ...]:
    """Random link misbehaviour windows inside the safety envelope.

    Loss and delay windows may cover every link (the reliable channels
    and the suspicion threshold must absorb them); a transient partition
    always cuts off exactly one non-master machine, and only when its
    pairs still fit the master-reachable side should the cut-off worker
    be falsely confirmed dead on top of a concurrent machine failure.
    """
    concurrent = FaultSchedule(list(faults)).max_concurrent_failures()
    out: list[LinkFault] = []
    if rng.random() < 0.5:
        start = rng.uniform(0.0, horizon)
        length = rng.uniform(1.0, max(2.0, horizon / 2))
        out.append(
            LinkFault(
                round(start, 3),
                round(start + length, 3),
                loss_rate=round(rng.uniform(0.05, 0.3), 3),
            )
        )
    if rng.random() < 0.3:
        start = rng.uniform(0.0, horizon)
        length = rng.uniform(1.0, max(2.0, horizon / 2))
        out.append(
            LinkFault(
                round(start, 3),
                round(start + length, 3),
                extra_delay=round(rng.uniform(0.05, 0.4), 3),
            )
        )
    if rng.random() < 0.35 and len(names) > 1:
        victim = rng.choice(names[1:])
        start = rng.uniform(1.0, horizon)
        length = rng.uniform(0.5, 6.0)
        if num_pairs <= (len(names) - 1 - concurrent) * PAIRS_PER_WORKER:
            out.append(
                LinkFault(
                    round(start, 3),
                    round(start + length, 3),
                    partition=True,
                    group_a=(victim,),
                )
            )
    return tuple(out)


def generate_campaign(
    seed: int, workloads: tuple[str, ...] = WORKLOADS
) -> CampaignSpec:
    """The pure seed → campaign function."""
    rng = random.Random(seed)
    # K-means campaigns are the heaviest (broadcast state, dense
    # vectors); sample it less often than the graph workloads.
    weighted = [w for w in workloads for _ in range(1 if w == "kmeans" else 2)]
    workload = rng.choice(weighted)

    cluster_nodes = rng.randint(3, 5)
    speeds: tuple[float, ...] | None = None
    if rng.random() < 0.3:
        speeds = tuple(round(rng.uniform(0.5, 1.5), 2) for _ in range(cluster_nodes))

    # Worst case one machine is down: keep pairs within surviving slots.
    max_pairs = min(6, (cluster_nodes - 1) * PAIRS_PER_WORKER)
    num_pairs = rng.randint(2, max_pairs)
    max_iterations = rng.randint(2, 5)
    sync = rng.random() < 0.5
    combiner = rng.random() < 0.5
    migration = rng.random() < 0.3
    checkpoint_interval = rng.choice((1, 1, 2, 3))
    buffer_records = rng.choice((1, 4, 64, 2048))
    input_size = rng.randint(10, 20) if workload == "kmeans" else rng.randint(8, 28)

    # Virtual-time horizon the faults should land inside: setup plus a
    # per-iteration allowance (synchronous barriers pay the ~3 s heartbeat
    # release, so sync runs stretch much further).
    sync_effective = sync or workload == "kmeans"
    horizon = 3.0 + max_iterations * (4.0 if sync_effective else 1.5)
    names = [f"{'hnode' if speeds else 'node'}{i}" for i in range(cluster_nodes)]
    faults = _random_faults(rng, names, horizon)
    # Drawn strictly after every other field so adding the network fault
    # dimension left all previously pinned campaign seeds intact.
    net_faults = _random_net_faults(rng, names, horizon, num_pairs, faults)
    # Same precedent again: the kernel dimension draws after net_faults,
    # keeping every previously pinned campaign seed byte-identical.
    use_kernels = rng.random() < 0.4
    # And the process-death dimension draws last of all, for the same
    # reason.  The victim is drawn over {0, 1}: parallel-mode campaigns
    # run 2 workers (the runner clamps to the actual mesh size anyway),
    # and SIGSTOPs are rarer — each one costs a real suspicion timeout.
    proc_kill: tuple | None = None
    if rng.random() < 0.35:
        proc_kill = (
            rng.randrange(2),
            rng.randrange(max_iterations),
            "kill" if rng.random() < 0.75 else "stop",
        )
    # The accumulative (Maiter-mode) dimension draws after proc_kill —
    # the same append-only discipline, so every previously pinned
    # campaign seed still replays byte-identically.  The coin is spent
    # unconditionally; only the accumulative workloads can honour it.
    async_mode = rng.random() < 0.4 and workload in ("sssp", "pagerank")
    # The incremental-refresh dimension draws LAST — append-only
    # discipline once more, so every previously pinned campaign seed
    # (chaos-network, parallel-recovery, async-parity CI legs) still
    # replays byte-identically.  Coins are spent unconditionally; only
    # the graph workloads can honour the dimension.
    input_delta: tuple | None = None
    delta_coin = rng.random()
    insert_count = rng.randint(0, 3)
    delete_count = rng.randint(0 if insert_count else 1, 3)
    churn_seed = rng.randrange(2**16)
    if delta_coin < 0.35 and workload in ("sssp", "pagerank"):
        input_delta = (insert_count, delete_count, churn_seed)

    spec = CampaignSpec(
        seed=seed,
        workload=workload,
        input_size=input_size,
        cluster_nodes=cluster_nodes,
        speeds=speeds,
        num_pairs=num_pairs,
        max_iterations=max_iterations,
        sync=sync,
        combiner=combiner,
        migration=migration,
        checkpoint_interval=checkpoint_interval,
        buffer_records=buffer_records,
        faults=faults,
        net_faults=net_faults,
        use_kernels=use_kernels,
        proc_kill=proc_kill,
        async_mode=async_mode,
        input_delta=input_delta,
    )
    spec.validate()
    return spec
