"""Greedy campaign shrinking: smallest spec that still reproduces.

Given a failing :class:`CampaignSpec` and a predicate "does this spec
still fail?", repeatedly try simplifying transformations — drop a fault
event, shrink the input, cut iterations, neutralize mode flags — and
keep each one that preserves the failure.  The loop runs to a fixpoint
(no candidate still fails), so the result is locally minimal: removing
any single remaining ingredient makes the bug disappear.  Candidates
that step outside the campaign safety envelope are skipped rather than
run.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .campaign import CampaignSpec

__all__ = ["shrink_candidates", "shrink"]

MIN_INPUT_SIZE = 8
MIN_ITERATIONS = 1
MIN_PAIRS = 2
MIN_CLUSTER_NODES = 3
#: Neutral values a minimal reproduction should prefer.
NEUTRAL_BUFFER = 2048


def shrink_candidates(spec: CampaignSpec) -> Iterator[CampaignSpec]:
    """One-step simplifications of ``spec``, most aggressive first."""
    # 1. Fewer fault events (drop later events first: earlier faults
    #    usually carry the interesting interleaving).
    for index in range(len(spec.faults) - 1, -1, -1):
        yield spec.but(faults=tuple(spec.fault_schedule().without(index).events))
    #    Likewise the network: drop all link faults at once first (a
    #    crash-only reproduction is far easier to read), then one by one.
    if len(spec.net_faults) > 1:
        yield spec.but(net_faults=())
    for index in range(len(spec.net_faults) - 1, -1, -1):
        yield spec.but(
            net_faults=spec.net_faults[:index] + spec.net_faults[index + 1:]
        )
    # 2. Smaller input.
    if spec.input_size > MIN_INPUT_SIZE:
        yield spec.but(input_size=max(MIN_INPUT_SIZE, spec.input_size // 2))
        yield spec.but(input_size=spec.input_size - 1)
    # 3. Fewer iterations.
    if spec.max_iterations > MIN_ITERATIONS:
        yield spec.but(max_iterations=spec.max_iterations - 1)
    # 4. Fewer pairs.
    if spec.num_pairs > MIN_PAIRS:
        yield spec.but(num_pairs=MIN_PAIRS)
    # 5. Smaller, homogeneous cluster (only when no fault event names a
    #    machine the smaller topology would not have).
    if spec.cluster_nodes > MIN_CLUSTER_NODES:
        smaller = spec.but(
            cluster_nodes=MIN_CLUSTER_NODES,
            speeds=spec.speeds[:MIN_CLUSTER_NODES] if spec.speeds else None,
        )
        touched = spec.fault_schedule().machines()
        for fault in spec.net_faults:
            touched |= fault.machines()
        if touched <= set(smaller.machine_names()):
            yield smaller
    if spec.speeds is not None:
        yield spec.but(
            speeds=None,
            faults=tuple(
                f.__class__(f.when, f.machine.replace("hnode", "node"), f.action)
                for f in spec.faults
            ),
            net_faults=tuple(
                f.__class__(
                    f.start,
                    f.end,
                    loss_rate=f.loss_rate,
                    dup_rate=f.dup_rate,
                    extra_delay=f.extra_delay,
                    partition=f.partition,
                    group_a=tuple(n.replace("hnode", "node") for n in f.group_a),
                    group_b=tuple(n.replace("hnode", "node") for n in f.group_b),
                )
                for f in spec.net_faults
            ),
        )
    # 6. Neutral mode flags.
    if spec.migration:
        yield spec.but(migration=False)
    if spec.combiner:
        yield spec.but(combiner=False)
    if spec.use_kernels:
        yield spec.but(use_kernels=False)
    if spec.async_mode:
        yield spec.but(async_mode=False)
    if spec.input_delta is not None:
        yield spec.but(input_delta=None)
    if spec.proc_kill is not None:
        yield spec.but(proc_kill=None)
        # A SIGSTOP reproduction that survives as a plain SIGKILL is
        # cheaper to replay (no suspicion timeout to sit through).
        if spec.proc_kill[2] == "stop":
            yield spec.but(proc_kill=(*spec.proc_kill[:2], "kill"))
    if spec.buffer_records != NEUTRAL_BUFFER:
        yield spec.but(buffer_records=NEUTRAL_BUFFER)


def shrink(
    spec: CampaignSpec,
    still_fails: Callable[[CampaignSpec], bool],
    max_attempts: int = 200,
) -> tuple[CampaignSpec, int]:
    """Greedily minimize ``spec`` while ``still_fails`` holds.

    Returns the shrunk spec and the number of candidate runs spent.
    ``still_fails(spec)`` is assumed true on entry; the returned spec is
    guaranteed to still fail (it is only replaced by failing candidates).
    """
    attempts = 0
    current = spec
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in shrink_candidates(current):
            if attempts >= max_attempts:
                break
            try:
                candidate.validate()
            except ValueError:
                continue
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current, attempts
