"""Chaos-campaign harness: seeded random fault injection with
differential oracles across execution modes.

The subsystem turns the runtime's hardest-to-test claims — checkpoint/
rollback fault tolerance (§3.4.1), task-pair migration (§3.4.2) and
asynchronous map execution (§3.3) — into a property that scales with the
runtime instead of one hand-written test per bug:

    for any seeded random campaign (workload × topology × fault schedule
    × mode matrix), the distributed engine's result must match the serial
    reference execution, and the path it took must satisfy the runtime's
    own invariants.

Entry points: :func:`generate_campaign` (seed → spec),
:func:`run_campaign` (spec → judged outcome), :func:`run_chaos`
(battery + shrinking), and the ``repro chaos`` CLI.
"""

from .campaign import WORKLOADS, CampaignSpec, generate_campaign
from .oracles import (
    ALL_ORACLES,
    OracleViolation,
    evaluate_oracles,
    records_identical,
    states_match,
    values_close,
    values_identical,
)
from .runner import (
    CampaignFailure,
    CampaignOutcome,
    ChaosReport,
    campaign_fails,
    run_campaign,
    run_chaos,
)
from .shrink import shrink, shrink_candidates

__all__ = [
    "WORKLOADS",
    "CampaignSpec",
    "generate_campaign",
    "ALL_ORACLES",
    "OracleViolation",
    "evaluate_oracles",
    "records_identical",
    "states_match",
    "values_close",
    "values_identical",
    "CampaignFailure",
    "CampaignOutcome",
    "ChaosReport",
    "campaign_fails",
    "run_campaign",
    "run_chaos",
    "shrink",
    "shrink_candidates",
]
