"""Differential and invariant oracles for chaos campaigns.

Each oracle inspects one completed campaign run and returns a list of
violations (empty == pass).  The headline check is *differential*: the
distributed engine's final state must match the serial reference
executor's (:func:`repro.imapreduce.run_local`) within a small floating
tolerance — the same result-equivalence methodology Stratosphere and
i2MapReduce use to validate their iterative runtimes — regardless of
which faults, migrations or asynchronous run-ahead the campaign threw at
the engine.  The invariant oracles then cross-check the *path* the
engine took: it terminated cleanly, recoveries rolled back no further
forward than the last durable checkpoint, and the trace is structurally
well-formed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..metrics.trace import check_well_formed

__all__ = [
    "OracleViolation",
    "values_close",
    "values_identical",
    "records_identical",
    "states_match",
    "oracle_termination",
    "oracle_differential",
    "oracle_kernel_differential",
    "oracle_parallel_differential",
    "oracle_parallel_recovery",
    "oracle_async_fixpoint",
    "oracle_incremental_differential",
    "oracle_checkpoint_rollback",
    "oracle_trace_well_formed",
    "ALL_ORACLES",
    "evaluate_oracles",
]

#: Float tolerance for the differential comparison.  Arrival order of
#: shuffled values can differ between the engines (reduction order of
#: float sums), so bit-equality is too strict; measured discrepancies are
#: ~1e-16, so 1e-6 relative leaves six orders of headroom while still
#: catching any real divergence.
RTOL = 1e-6
ATOL = 1e-9


@dataclass(frozen=True)
class OracleViolation:
    """One failed check: which oracle, and what it saw."""

    oracle: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.detail}"


def values_close(a: Any, b: Any, rtol: float = RTOL, atol: float = ATOL) -> bool:
    """Tolerant structural equality over the state-value vocabulary.

    Handles floats (including ``inf``), numpy arrays and scalars, and
    tuples/lists of the above recursively; any other type must compare
    equal exactly.
    """
    import numpy as np

    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return False
        return all(values_close(x, y, rtol, atol) for x, y in zip(a, b))
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        if a_arr.shape != b_arr.shape:
            return False
        return bool(np.allclose(a_arr, b_arr, rtol=rtol, atol=atol, equal_nan=True))
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if a == b:  # covers inf == inf and exact ints
            return True
        return bool(np.isclose(a, b, rtol=rtol, atol=atol, equal_nan=True))
    return a == b


def values_identical(a: Any, b: Any) -> bool:
    """Bit-exact structural equality (no tolerance), numpy-safe.

    ``a == b`` on records whose values hold numpy arrays raises (array
    truth value); this walks containers and compares arrays with
    ``array_equal`` instead.
    """
    import numpy as np

    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            type(a) is type(b)
            and a.dtype == b.dtype
            and bool(np.array_equal(a, b))
        )
    if isinstance(a, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(values_identical(x, y) for x, y in zip(a, b))
        )
    return type(a) is type(b) and a == b


def records_identical(
    a: list[tuple[Any, Any]], b: list[tuple[Any, Any]]
) -> bool:
    """Record-for-record equality of two final states."""
    return values_identical(list(a), list(b))


def states_match(
    distributed: list[tuple[Any, Any]], reference: list[tuple[Any, Any]]
) -> list[str]:
    """Compare two final states key-by-key; returns difference reports."""
    problems: list[str] = []
    dist = dict(distributed)
    ref = dict(reference)
    if len(dist) != len(distributed):
        problems.append("distributed state has duplicate keys")
    missing = sorted(set(ref) - set(dist), key=repr)
    extra = sorted(set(dist) - set(ref), key=repr)
    if missing:
        problems.append(f"keys missing from distributed state: {missing[:5]}")
    if extra:
        problems.append(f"unexpected keys in distributed state: {extra[:5]}")
    mismatches = [
        key
        for key in ref
        if key in dist and not values_close(dist[key], ref[key])
    ]
    if mismatches:
        sample = sorted(mismatches, key=repr)[:5]
        detail = ", ".join(
            f"{k!r}: engine={dist[k]!r} reference={ref[k]!r}" for k in sample
        )
        problems.append(f"{len(mismatches)} value(s) diverge: {detail}")
    return problems


# --------------------------------------------------------------- oracles --
# Every oracle has the signature (spec, outcome) -> list[OracleViolation];
# ``outcome`` is the CampaignOutcome the runner assembled.


def oracle_termination(spec, outcome) -> list[OracleViolation]:
    """Every campaign terminates cleanly, within its iteration budget."""
    v: list[OracleViolation] = []
    if outcome.error is not None:
        v.append(
            OracleViolation(
                "termination",
                f"run raised {type(outcome.error).__name__}: {outcome.error}",
            )
        )
        return v
    result = outcome.result
    if result is None:
        v.append(OracleViolation("termination", "run produced no result"))
        return v
    if result.iterations_run > spec.max_iterations:
        v.append(
            OracleViolation(
                "termination",
                f"ran {result.iterations_run} iterations, budget was "
                f"{spec.max_iterations}",
            )
        )
    return v


def oracle_differential(spec, outcome) -> list[OracleViolation]:
    """Final state equals the serial reference execution within tolerance."""
    if outcome.error is not None or outcome.result is None:
        return []  # termination oracle owns this failure
    v: list[OracleViolation] = []
    ref = outcome.reference
    if outcome.result.terminated_by != ref.terminated_by:
        v.append(
            OracleViolation(
                "differential",
                f"terminated_by={outcome.result.terminated_by!r}, reference "
                f"says {ref.terminated_by!r}",
            )
        )
    if outcome.result.iterations_run != ref.iterations_run:
        v.append(
            OracleViolation(
                "differential",
                f"ran {outcome.result.iterations_run} iterations, reference "
                f"ran {ref.iterations_run}",
            )
        )
    for problem in states_match(outcome.final_state, ref.state):
        v.append(OracleViolation("differential", problem))
    return v


def oracle_kernel_differential(spec, outcome) -> list[OracleViolation]:
    """The columnar kernel run agrees with the record-path reference.

    ``min``-merge workloads (sssp) must match record for record — the
    kernel performs the identical float additions and ``min`` is
    order-independent.  ``sum``-merge workloads (pagerank, kmeans) are
    compared within :data:`RTOL`/:data:`ATOL`: vectorized accumulation
    reorders the float additions, bounded by ``(n−1)·eps·Σ|xᵢ|`` — orders
    of magnitude inside the tolerance at campaign scale.  Inert unless
    ``spec.use_kernels``.
    """
    if not getattr(spec, "use_kernels", False):
        return []
    v: list[OracleViolation] = []
    if outcome.kernel_error is not None:
        v.append(
            OracleViolation(
                "kernel-differential",
                f"kernel run raised {type(outcome.kernel_error).__name__}: "
                f"{outcome.kernel_error}",
            )
        )
        return v
    ker = outcome.kernel_result
    if ker is None:
        return v
    ref = outcome.reference
    if ker.terminated_by != ref.terminated_by:
        v.append(
            OracleViolation(
                "kernel-differential",
                f"terminated_by={ker.terminated_by!r}, reference says "
                f"{ref.terminated_by!r}",
            )
        )
    if ker.iterations_run != ref.iterations_run:
        v.append(
            OracleViolation(
                "kernel-differential",
                f"ran {ker.iterations_run} iterations, reference ran "
                f"{ref.iterations_run}",
            )
        )
    if spec.workload == "sssp":
        if not records_identical(ker.state, ref.state):
            detail = "; ".join(states_match(ker.state, ref.state)) or (
                "states compare close but not record-identical"
            )
            v.append(OracleViolation("kernel-differential", detail))
    else:
        for problem in states_match(ker.state, ref.state):
            v.append(OracleViolation("kernel-differential", problem))
    return v


def oracle_parallel_differential(spec, outcome) -> list[OracleViolation]:
    """The real multiprocess backend reproduces its serial twin
    *record for record* — no float tolerance.

    ``run_parallel`` shares the per-pair map/combine code path with
    ``run_local`` and orders every reduce input and distance fold
    identically, so its results are bit-equal by construction; any
    drift, however small, is a routing or ordering bug.  With
    ``spec.use_kernels`` the backend ran the kernel job, and the serial
    twin is the *columnar* run (same ordering argument, vectorized); the
    comparison stays bit-exact.  The oracle is inert unless the campaign
    ran in ``parallel`` mode.
    """
    v: list[OracleViolation] = []
    if outcome.parallel_error is not None:
        v.append(
            OracleViolation(
                "parallel-differential",
                f"run_parallel raised "
                f"{type(outcome.parallel_error).__name__}: "
                f"{outcome.parallel_error}",
            )
        )
        return v
    par = outcome.parallel_result
    if par is None:
        return v
    ref = outcome.reference
    if getattr(spec, "use_kernels", False):
        ref = outcome.kernel_result
        if ref is None:  # kernel run failed; its own oracle reports that
            return v
    if par.terminated_by != ref.terminated_by:
        v.append(
            OracleViolation(
                "parallel-differential",
                f"terminated_by={par.terminated_by!r}, reference says "
                f"{ref.terminated_by!r}",
            )
        )
    if par.iterations_run != ref.iterations_run:
        v.append(
            OracleViolation(
                "parallel-differential",
                f"ran {par.iterations_run} iterations, reference ran "
                f"{ref.iterations_run}",
            )
        )
    if not records_identical(par.state, ref.state):
        detail = "; ".join(states_match(par.state, ref.state)) or (
            "states compare close but not record-identical"
        )
        v.append(OracleViolation("parallel-differential", detail))
    return v


def oracle_parallel_recovery(spec, outcome) -> list[OracleViolation]:
    """A seeded process death must actually fire *and* be recovered, and
    every recovery must resume no later than the iteration the death
    interrupted.

    The differential oracle already proves the recovered result equals
    the unfaulted reference; this one proves the run took the recovery
    path at all (a fault that silently never fired would make the
    differential check vacuous) and that the resume point respects the
    checkpoint barrier — the real-backend analogue of
    :func:`oracle_checkpoint_rollback`.  Inert unless the campaign
    carries a ``proc_kill`` and ran in ``parallel`` mode.
    """
    if getattr(spec, "proc_kill", None) is None:
        return []
    par = outcome.parallel_result
    if par is None:  # parallel mode off, or the run died: other oracles own it
        return []
    v: list[OracleViolation] = []
    _victim, at_iteration, action = spec.proc_kill
    if par.recoveries < 1:
        v.append(
            OracleViolation(
                "parallel-recovery",
                f"seeded proc {action} at iteration {at_iteration} never "
                "triggered a recovery",
            )
        )
        return v
    for event in par.recovery_events:
        if event["resume_from"] > at_iteration:
            v.append(
                OracleViolation(
                    "parallel-recovery",
                    f"recovery resumed from iteration {event['resume_from']} "
                    f"but the fault interrupted iteration {at_iteration}",
                )
            )
        restored = event["restored_checkpoint"]
        if restored is not None and restored >= at_iteration:
            v.append(
                OracleViolation(
                    "parallel-recovery",
                    f"restored checkpoint {restored} is not older than the "
                    f"interrupted iteration {at_iteration}",
                )
            )
    return v


def oracle_async_fixpoint(spec, outcome) -> list[OracleViolation]:
    """Fixpoint equivalence for the accumulative (Maiter-mode) twin.

    Every asynchronous schedule of the same accumulative job — serial
    top-fraction, seeded-deferral simulated, delta kernel, real
    multiprocess — must land on the synchronous reference's fixpoint:
    record-identical for ``min`` algebras (the fixpoint is unique and
    the deltas drain exactly), within :data:`RTOL`/:data:`ATOL` for
    ``+`` algebras (every run stops at pending mass ≤ the job threshold,
    so each sits within a threshold-sized ball of the true fixpoint —
    the campaign thresholds leave orders of magnitude of headroom).
    Every run must terminate by accumulated progress, not the round
    budget.  Inert unless ``spec.async_mode``.
    """
    if not getattr(spec, "async_mode", False):
        return []
    v: list[OracleViolation] = []
    for name, error in outcome.async_errors.items():
        v.append(
            OracleViolation(
                "async-fixpoint",
                f"{name} run raised {type(error).__name__}: {error}",
            )
        )
    ref = outcome.async_reference
    if ref is None:
        if not outcome.async_errors:
            v.append(
                OracleViolation("async-fixpoint", "no sync reference was run")
            )
        return v
    if ref.terminated_by != "progress":
        v.append(
            OracleViolation(
                "async-fixpoint",
                f"sync reference terminated by {ref.terminated_by!r}, "
                "not accumulated progress",
            )
        )
    exact = outcome.async_algebra == "min"
    for name, result in outcome.async_results.items():
        if result.terminated_by != "progress":
            v.append(
                OracleViolation(
                    "async-fixpoint",
                    f"{name} run terminated by {result.terminated_by!r}, "
                    "not accumulated progress",
                )
            )
            continue
        if exact:
            if not records_identical(result.state, ref.state):
                detail = "; ".join(states_match(result.state, ref.state)) or (
                    "states compare close but not record-identical"
                )
                v.append(
                    OracleViolation(
                        "async-fixpoint",
                        f"{name} (min algebra, must be bit-exact): {detail}",
                    )
                )
        else:
            for problem in states_match(result.state, ref.state):
                v.append(OracleViolation("async-fixpoint", f"{name}: {problem}"))
    return v


def oracle_incremental_differential(spec, outcome) -> list[OracleViolation]:
    """Warm-refresh equivalence for the incremental (i2MapReduce-mode)
    twin.

    Every warm-started refresh of the mutated input — memoized state
    plus change-propagated perturbation deltas, on any engine — must
    land on the *cold rerun's* fixpoint: record-identical for ``min``
    algebras (surviving memo values are the same left-folded path sums
    the cold rerun computes, invalidated keys re-derive them), within
    :data:`RTOL`/:data:`ATOL` for ``+`` algebras (the residual-injected
    warm run stops at the same pending-mass threshold the cold run
    does).  Every run must terminate by accumulated progress, not the
    round budget.  Inert unless ``spec.input_delta``.
    """
    if getattr(spec, "input_delta", None) is None:
        return []
    v: list[OracleViolation] = []
    for name, error in outcome.incremental_errors.items():
        v.append(
            OracleViolation(
                "incremental-differential",
                f"{name} run raised {type(error).__name__}: {error}",
            )
        )
    ref = outcome.incremental_reference
    if ref is None:
        if not outcome.incremental_errors:
            v.append(
                OracleViolation(
                    "incremental-differential", "no cold rerun was run"
                )
            )
        return v
    if ref.terminated_by != "progress":
        v.append(
            OracleViolation(
                "incremental-differential",
                f"cold rerun terminated by {ref.terminated_by!r}, "
                "not accumulated progress",
            )
        )
    exact = outcome.incremental_algebra == "min"
    for name, result in outcome.incremental_results.items():
        if result.terminated_by != "progress":
            v.append(
                OracleViolation(
                    "incremental-differential",
                    f"{name} run terminated by {result.terminated_by!r}, "
                    "not accumulated progress",
                )
            )
            continue
        if exact:
            if not records_identical(result.state, ref.state):
                detail = "; ".join(states_match(result.state, ref.state)) or (
                    "states compare close but not record-identical"
                )
                v.append(
                    OracleViolation(
                        "incremental-differential",
                        f"{name} (min algebra, warm must be bit-exact "
                        f"against the cold rerun): {detail}",
                    )
                )
        else:
            for problem in states_match(result.state, ref.state):
                v.append(
                    OracleViolation(
                        "incremental-differential", f"{name}: {problem}"
                    )
                )
    return v


def oracle_checkpoint_rollback(spec, outcome) -> list[OracleViolation]:
    """Recovery never resumes from a newer iteration than the last
    durable checkpoint, and durable checkpoints only move forward."""
    v: list[OracleViolation] = []
    durable = 0
    last_durable = 0
    for event in outcome.trace_events:
        if event.kind == "checkpoint-durable":
            index = event.fields["state_index"]
            if index <= last_durable:
                v.append(
                    OracleViolation(
                        "checkpoint",
                        f"durable checkpoint went backwards: {index} after "
                        f"{last_durable}",
                    )
                )
            last_durable = index
            durable = max(durable, index)
        elif event.kind == "generation-start":
            start = event.fields["start_iter"]
            if start > durable:
                v.append(
                    OracleViolation(
                        "checkpoint",
                        f"generation resumed from state {start} but only "
                        f"state {durable} was durable",
                    )
                )
        elif event.kind == "pair-recovery":
            resume = event.fields.get("resume_state", 0)
            if resume > durable:
                v.append(
                    OracleViolation(
                        "checkpoint",
                        f"pair {event.fields.get('pair')} recovered from state "
                        f"{resume} but only state {durable} was durable",
                    )
                )
    return v


def oracle_trace_well_formed(spec, outcome) -> list[OracleViolation]:
    """Per-iteration trace events form a structurally valid timeline."""
    problems = check_well_formed(
        list(outcome.trace_events), spec.checkpoint_interval
    )
    return [OracleViolation("trace", p) for p in problems]


ALL_ORACLES: dict[str, Callable] = {
    "termination": oracle_termination,
    "differential": oracle_differential,
    "kernel-differential": oracle_kernel_differential,
    "parallel-differential": oracle_parallel_differential,
    "parallel-recovery": oracle_parallel_recovery,
    "async-fixpoint": oracle_async_fixpoint,
    "incremental-differential": oracle_incremental_differential,
    "checkpoint": oracle_checkpoint_rollback,
    "trace": oracle_trace_well_formed,
}


def evaluate_oracles(spec, outcome) -> list[OracleViolation]:
    """Run every oracle; concatenated violations, [] == all pass."""
    violations: list[OracleViolation] = []
    for oracle in ALL_ORACLES.values():
        violations.extend(oracle(spec, outcome))
    return violations
