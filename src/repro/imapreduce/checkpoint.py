"""Durable checkpoints and fault injection for the real backend (§3.4/§5).

The paper's runtime support dumps iterated state to disk every few
iterations so a failure rolls back to the last dump instead of to
iteration zero.  This module is that dump for :func:`run_parallel`:

* **Spool files** — each worker serializes its pair states every
  ``checkpoint_every`` iterations into one file per ``(generation,
  iteration, worker)``.  The on-disk format *is* the wire format: the
  exact frame the data plane would ship (pickled header + protocol-5
  payload with out-of-band numpy buffers), written as length-prefixed
  parts, so the record path and the columnar path both round-trip
  bit-exactly through the same encoders the mesh already trusts.
* **Atomic commit** — files land under a temp name, are fsynced, then
  ``os.replace``\\ d into place; a torn write (kill -9 mid-``write``)
  can therefore never be confused with a committed checkpoint, and the
  BLAKE2 digest in the manifest catches the rename-landed-but-truncated
  cases a crashed filesystem could still produce.
* **Manifests** — the coordinator commits ``manifest-<iteration>.json``
  only after *every* worker's spool file for that iteration arrived and
  the iteration itself was merged, so a manifest is a global barrier:
  restoring from it yields exactly the cluster state at the end of that
  iteration.  Validation walks manifests newest-first and falls back to
  the previous one when any referenced file is torn or missing.
* **Fault plans** — :class:`ProcFault` describes a seeded kill -9 /
  SIGSTOP a worker inflicts on *itself* at an exact ``(iteration,
  phase)`` point, which makes real process death deterministic enough
  for the chaos campaigns' differential oracles to judge recovery
  bit-exactly.  ``generation`` gates re-firing: a respawned worker
  (generation > 0) replays the same iterations without re-dying.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
from dataclasses import dataclass
from typing import Any

from ..common.errors import JobError

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "ProcFault",
    "fire_fault",
]

#: Length prefix per part: 8 bytes, big-endian.
_LEN_BYTES = 8
_DIGEST_SIZE = 16


class CheckpointError(JobError):
    """A spool file or manifest is torn, missing, or inconsistent."""


@dataclass(frozen=True)
class ProcFault:
    """One seeded process fault: ``worker`` dies at the start of
    ``(iteration, phase)`` — ``kill`` is SIGKILL (hard death, sentinel
    fires), ``stop`` is SIGSTOP (a hang only the heartbeat suspicion
    timeout can detect)."""

    worker: int
    iteration: int
    phase: int = 0
    action: str = "kill"
    generation: int = 0

    def __post_init__(self) -> None:
        if self.action not in ("kill", "stop"):
            raise ValueError(f"unknown fault action {self.action!r}")

    def matches(self, generation: int, worker: int, iteration: int, phase: int) -> bool:
        return (
            self.generation == generation
            and self.worker == worker
            and self.iteration == iteration
            and self.phase == phase
        )


def fire_fault(fault: ProcFault) -> None:
    """Inflict ``fault`` on the calling process — a *real* signal, not a
    simulated one; SIGKILL never returns."""
    sig = signal.SIGKILL if fault.action == "kill" else signal.SIGSTOP
    os.kill(os.getpid(), sig)


def _frame_parts(iteration: int, worker: int, payload) -> tuple[list, int]:
    # Imported lazily: workerproc imports this module for ProcFault.
    from .workerproc import CKPT_REPORT, encode_frame

    return encode_frame(CKPT_REPORT, iteration, 0, worker, payload)


def _read_parts(raw: bytes) -> list[bytes]:
    """Split a spool file back into its length-prefixed parts."""
    parts: list[bytes] = []
    offset = 0
    total = len(raw)
    while offset < total:
        if offset + _LEN_BYTES > total:
            raise CheckpointError("torn spool file: truncated length prefix")
        size = int.from_bytes(raw[offset:offset + _LEN_BYTES], "big")
        offset += _LEN_BYTES
        if offset + size > total:
            raise CheckpointError("torn spool file: truncated part")
        parts.append(raw[offset:offset + size])
        offset += size
    if not parts:
        raise CheckpointError("torn spool file: empty")
    return parts


class CheckpointStore:
    """One spool directory of per-worker checkpoint files + manifests."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    # -- worker side ---------------------------------------------------
    def write(self, generation: int, iteration: int, worker: int, payload) -> dict:
        """Durably spool one worker's pair states; returns the manifest
        entry (file name, byte count, digest) to report upstream."""
        name = f"ckpt-g{generation:03d}-i{iteration:06d}-w{worker:03d}.bin"
        path = os.path.join(self.root, name)
        parts, _ = _frame_parts(iteration, worker, payload)
        digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        tmp = f"{path}.tmp.{os.getpid()}"
        total = 0
        with open(tmp, "wb") as fh:
            for part in parts:
                prefix = len(part).to_bytes(_LEN_BYTES, "big")
                fh.write(prefix)
                fh.write(part)
                digest.update(prefix)
                digest.update(part)
                total += _LEN_BYTES + len(part)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return {
            "file": name,
            "bytes": total,
            "digest": digest.hexdigest(),
            "worker": worker,
            "iteration": iteration,
            "generation": generation,
        }

    # -- coordinator side ----------------------------------------------
    def read_payload(self, entry: dict) -> Any:
        """Decode one spool file, validating size and digest; raises
        :class:`CheckpointError` on any torn or tampered content."""
        path = os.path.join(self.root, entry["file"])
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise CheckpointError(f"missing spool file {entry['file']}: {exc}")
        if len(raw) != entry["bytes"]:
            raise CheckpointError(
                f"torn spool file {entry['file']}: "
                f"{len(raw)} bytes on disk, manifest says {entry['bytes']}"
            )
        if hashlib.blake2b(raw, digest_size=_DIGEST_SIZE).hexdigest() != entry["digest"]:
            raise CheckpointError(f"digest mismatch in {entry['file']}")
        parts = _read_parts(raw)
        try:
            kind, iteration, _phase, _src, sizes = pickle.loads(parts[0])
        except Exception as exc:
            raise CheckpointError(f"bad header in {entry['file']}: {exc}")
        expected = 2 + (len(sizes) if sizes else 0)
        if len(parts) != expected:
            raise CheckpointError(
                f"torn spool file {entry['file']}: "
                f"{len(parts)} parts, header promises {expected}"
            )
        try:
            return pickle.loads(parts[1], buffers=[bytearray(b) for b in parts[2:]])
        except Exception as exc:
            raise CheckpointError(f"bad payload in {entry['file']}: {exc}")

    def commit(self, iteration: int, generation: int, entries: list[dict]) -> str:
        """Atomically publish the manifest that makes ``iteration``'s
        checkpoint the restore point."""
        name = f"manifest-i{iteration:06d}.json"
        path = os.path.join(self.root, name)
        body = json.dumps(
            {"iteration": iteration, "generation": generation, "entries": entries},
            sort_keys=True,
        )
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    def manifests(self) -> list[dict]:
        """All committed manifests, newest iteration first; unreadable
        ones (a torn commit) are skipped."""
        found = []
        for name in os.listdir(self.root):
            if not (name.startswith("manifest-") and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(self.root, name)) as fh:
                    found.append(json.load(fh))
            except (OSError, ValueError):
                continue
        found.sort(key=lambda m: m["iteration"], reverse=True)
        return found

    # -- retention ------------------------------------------------------
    def gc(self, keep: int = 1) -> dict:
        """Prune old checkpoints: keep the newest ``keep`` manifests and
        every spool file they reference, delete the rest.

        Spool dirs accumulate one file per ``(generation, iteration,
        worker)`` across a run's lifetime (and across runs when a memo
        store shares the directory); only the files referenced by a
        retained manifest are ever restore candidates, so everything
        else — older manifests, their spools, and orphan spools no
        manifest ever committed (a fenced generation's partial writes) —
        is dead weight.  Deletion order is manifests first, then files,
        so a reader that races the sweep can never see a live manifest
        pointing at a pruned spool.  Returns a summary dict
        (``kept_manifests``, ``pruned_manifests``, ``pruned_files``,
        ``pruned_bytes``).
        """
        if keep < 1:
            raise ValueError("gc keep must be >= 1")
        kept = self.manifests()[:keep]
        live = {e["file"] for m in kept for e in m.get("entries", [])}
        live |= {f"manifest-i{m['iteration']:06d}.json" for m in kept}
        pruned_manifests = 0
        pruned_files = 0
        pruned_bytes = 0
        doomed_manifests: list[str] = []
        doomed_spools: list[str] = []
        for name in sorted(os.listdir(self.root)):
            if name in live:
                continue
            if name.startswith("manifest-") and name.endswith(".json"):
                doomed_manifests.append(name)
            elif name.startswith("ckpt-") or ".tmp." in name:
                doomed_spools.append(name)
        for name in doomed_manifests + doomed_spools:
            path = os.path.join(self.root, name)
            try:
                size = os.path.getsize(path)
                os.remove(path)
            except OSError:
                continue
            if name in doomed_manifests:
                pruned_manifests += 1
            else:
                pruned_files += 1
            pruned_bytes += size
        return {
            "kept_manifests": len(kept),
            "pruned_manifests": pruned_manifests,
            "pruned_files": pruned_files,
            "pruned_bytes": pruned_bytes,
        }
