"""The iMapReduce engine: persistent tasks, static/state separation,
asynchronous map execution, checkpointing, and load balancing.

Execution model (paper §3):

* One *pair* of persistent map/reduce tasks per partition, both pinned to
  the same worker so the reduce→map state channel is local (§3.2.1).
  There must be enough task slots for all pairs at once (§3.1.1).
* One-time initialization: the state and static input files are read
  from the DFS, partitioned with the job's partitioner, and each pair's
  partition is written back to the DFS with a replica on the pair's
  worker (this doubles as checkpoint 0 and as the §3.4.1 static-data
  replica).  After that, iterations touch the DFS only for checkpoints.
* Each iteration: phase-0 maps join arriving state with their local
  static data and run the user map (eagerly per arriving buffer chunk in
  asynchronous mode, §3.3); map output shuffles to the phase's reduces;
  the final phase's reduce produces the next state, measures the
  distance, reports to the master, optionally checkpoints in parallel,
  and streams the state back to its paired map in buffer-sized chunks.
* The master merges per-task distances, decides termination (max
  iterations, distance threshold, or an auxiliary phase's signal) and —
  in synchronous mode — releases the global iteration barrier.
* Fault tolerance and load balancing both restart the task *generation*
  from the most recent complete checkpoint (§3.4): on a worker failure
  the dead worker's pairs move to survivors; when the per-iteration
  completion reports show a worker lagging beyond the deviation
  threshold, its slowest pair migrates to the fastest worker.

Consistency note: asynchronous tasks may run up to one iteration past
the master's termination decision (a reduce cannot *complete* iteration
k+1 at the instant the last report of k arrives, because its processing
takes non-zero virtual time).  Final-phase reduces therefore keep their
last two iterations' outputs and dump exactly the iteration the stop
sentinel names, so results are reproducible and comparable with the
baseline and the references regardless of run-ahead.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from ..cluster import Cluster, Machine
from ..common.errors import SchedulingError, TaskFailure, WorkerFailure
from ..common.records import group_by_key
from ..common.serialization import sizeof_records
from ..dfs import DFS
from ..mapreduce.api import Context
from ..mapreduce.costmodel import DEFAULT_COST_MODEL, CostModel
from ..metrics import IterationMetrics, RunMetrics
from ..metrics.trace import Tracer
from ..simulation import Store
from .channels import IterationMailbox, ReliableConfig, StopIteration_
from .failure_detector import FailureDetector, FailureDetectorConfig
from .job import IterativeJob, IterativeRunResult, Phase

__all__ = [
    "LoadBalanceConfig",
    "ChaosKnobs",
    "IMapReduceRuntime",
    "AuxContext",
    "run_accum_simulated",
]


@dataclass(frozen=True)
class LoadBalanceConfig:
    """§3.4.2 migration policy knobs."""

    enabled: bool = False
    #: Migrate when (slowest - avg) / avg exceeds this, where avg excludes
    #: the longest and shortest report (as in the paper).
    deviation_threshold: float = 0.5
    #: Minimum iterations between migrations (avoids the paper's noted
    #: partition-thrashing pathology).
    cooldown_iterations: int = 3


@dataclass(frozen=True)
class ChaosKnobs:
    """Deliberate-bug switches for the chaos harness's self-test.

    The chaos campaign harness (:mod:`repro.testing`) validates itself by
    flipping one of these on and checking that its oracles catch the
    resulting misbehaviour.  They must all stay ``False`` in real runs.
    """

    #: Acknowledge a checkpoint to the master *without* writing the state
    #: files — the durability contract of §3.4.1 silently broken.  A later
    #: recovery then resumes from a checkpoint that does not exist.
    skip_checkpoint_write: bool = False
    #: Checkpoint the *previous* iteration's state under the current
    #: index — an off-by-one durability bug.  Failure-free runs are
    #: unaffected; a recovery silently resumes one iteration stale, which
    #: only a differential oracle can see.
    stale_checkpoint_content: bool = False
    #: The failure detector suspects silent workers but never confirms
    #: them, so a crashed worker's pairs are never recovered: the job
    #: hangs until the master's stall watchdog aborts it.
    ignore_heartbeat_timeout: bool = False
    #: Reliable channels send each message exactly once: a loss-window
    #: drop is never retransmitted and some gather starves forever
    #: (livelock), again only the stall watchdog can surface it.
    skip_retransmit: bool = False

    def any_active(self) -> bool:
        return (
            self.skip_checkpoint_write
            or self.stale_checkpoint_content
            or self.ignore_heartbeat_timeout
            or self.skip_retransmit
        )


class AuxContext(Context):
    """Context handed to auxiliary-phase user code (§5.3)."""

    def __init__(self, task_state: dict):
        super().__init__()
        self.task_state = task_state
        self.terminate_requested = False

    def signal_terminate(self) -> None:
        self.terminate_requested = True


@dataclass
class _Checkpoint:
    state_index: int  # state_s = state after s iterations; 0 == initial
    path_prefix: str

    def part(self, pair: int) -> str:
        return f"{self.path_prefix}/part-{pair:05d}"


@dataclass
class _IterAccount:
    shuffle_bytes: int = 0
    state_bytes: int = 0
    map_records: int = 0
    reduce_records: int = 0


@dataclass
class _GenOutcome:
    kind: str  # "done" | "recover" | "migrate" | "error"
    terminated_by: str = ""
    final_distance: float | None = None
    last_iteration: int = -1
    failed_worker: str | None = None
    migration: dict | None = None
    error: BaseException | None = None
    #: Localized per-pair recoveries performed *within* this generation.
    pair_recoveries: int = 0


class IMapReduceRuntime:
    """Runs :class:`~repro.imapreduce.job.IterativeJob` on the cluster."""

    def __init__(
        self,
        cluster: Cluster,
        dfs: DFS,
        cost: CostModel = DEFAULT_COST_MODEL,
        pairs_per_worker_limit: int = 2,
        load_balance: LoadBalanceConfig | None = None,
        trace: "Tracer | None" = None,
        chaos: ChaosKnobs | None = None,
        failure_detector: FailureDetectorConfig | None = None,
        reliable: ReliableConfig | None = None,
    ):
        self.cluster = cluster
        self.dfs = dfs
        self.engine = cluster.engine
        self.cost = cost
        self.pairs_limit = pairs_per_worker_limit
        self.lb = load_balance or LoadBalanceConfig()
        self.trace = trace
        self.chaos = chaos or ChaosKnobs()
        #: ``None`` keeps the historical omniscient failure path (a dead
        #: task's WorkerFailure value reaches the master by fiat) — the
        #: timing-pinned baseline.  With a config, the master learns of
        #: failures only through heartbeat silence and recovers *pairs*,
        #: not whole generations.
        self.fd_config = failure_detector
        self.reliable = reliable or ReliableConfig()
        self._detector: FailureDetector | None = None

    def _emit(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.emit(self.engine.now, kind, **fields)

    # ------------------------------------------------------------------ API --
    def submit(self, job: IterativeJob) -> IterativeRunResult:
        # Seed plumbing: a job-level master seed re-salts the deterministic
        # service-time noise, so every stochastic choice of the run is a
        # pure function of ``mapred.iterjob.seed`` and replays exactly.
        seed = job.conf.get_seed()
        if seed and self.cost.noise_seed != seed:
            self.cost = self.cost.with_overrides(noise_seed=seed)
        proc = self.engine.process(self._run_proc(job), name=f"imr-job:{job.name}")
        return self.engine.run(proc)

    # -------------------------------------------------------------- top level --
    def _run_proc(self, job: IterativeJob):
        if self.fd_config is not None and self.fd_config.enabled:
            self._detector = FailureDetector(
                self.cluster, self.fd_config, self._emit, self.chaos
            )
            self._detector.start()
        try:
            result = yield from self._run_body(job)
            return result
        finally:
            if self._detector is not None:
                self._detector.stop()
                self._detector = None

    def _run_body(self, job: IterativeJob):
        engine = self.engine
        metrics = RunMetrics(label=f"imapreduce:{job.name}")
        metrics.start = engine.now
        net_before = self.cluster.network_bytes

        workers = self.cluster.alive_workers()
        num_pairs = job.num_pairs or len(workers)
        if num_pairs > len(workers) * self.pairs_limit:
            raise SchedulingError(
                f"{num_pairs} persistent pairs need more than the "
                f"{len(workers)}×{self.pairs_limit} available task slots (§3.1.1)"
            )
        assignment = {
            p: workers[p % len(workers)].name for p in range(num_pairs)
        }

        # ---- one-time initialization (§3.1: happens exactly once) ----
        self._lb_block_until = -(10**9)
        yield engine.timeout(self.cost.job_setup)
        while True:
            try:
                checkpoint = yield from self._initial_load(job, assignment, num_pairs)
                break
            except WorkerFailure:
                self._reassign_failed(assignment, num_pairs)
        metrics.setup_time = engine.now - metrics.start

        migrations: list[dict] = []
        recoveries = 0
        pair_recoveries = 0
        accounts: dict[int, _IterAccount] = defaultdict(_IterAccount)

        while True:
            # Oracle hook: every (re)start of the persistent-task
            # generation announces the state it resumes from, so the
            # chaos harness can check that a recovery never resumes past
            # the last durable checkpoint (§3.4.1).
            self._emit(
                "generation-start",
                start_iter=checkpoint.state_index,
                recoveries=recoveries,
            )
            outcome = yield from self._generation(
                job, assignment, num_pairs, checkpoint, metrics, accounts
            )
            pair_recoveries += outcome.pair_recoveries
            if outcome.kind == "error":
                raise TaskFailure(job.name, outcome.error)
            if outcome.kind == "done":
                break
            if outcome.kind == "recover":
                recoveries += 1
                self._reassign_failed(assignment, num_pairs)
                self._emit(
                    "recovery",
                    worker=outcome.failed_worker,
                    resume_state=checkpoint.state_index,
                )
            elif outcome.kind == "migrate":
                assert outcome.migration is not None
                plan = outcome.migration
                assignment[plan["pair"]] = plan["to"]
                plan["at_state"] = checkpoint.state_index
                migrations.append(plan)
                self._lb_block_until = outcome.last_iteration + self.lb.cooldown_iterations

        metrics.end = engine.now
        metrics.network_bytes = self.cluster.network_bytes - net_before
        # Fold byte accounting into the recorded iterations.
        for it in metrics.iterations:
            acct = accounts.get(it.index)
            if acct:
                it.shuffle_bytes = acct.shuffle_bytes
                it.state_bytes = acct.state_bytes
                it.map_records = acct.map_records
                it.reduce_records = acct.reduce_records
        metrics.extras["migrations"] = migrations
        metrics.extras["recoveries"] = recoveries
        metrics.extras["pair_recoveries"] = pair_recoveries
        metrics.extras["num_pairs"] = num_pairs

        completed = [it.index for it in metrics.iterations]
        return IterativeRunResult(
            job=job,
            metrics=metrics,
            final_paths=[job.part_path(p) for p in range(num_pairs)],
            iterations_run=max(completed) + 1 if completed else 0,
            converged=outcome.terminated_by == "threshold",
            terminated_by=outcome.terminated_by,
            final_distance=outcome.final_distance,
            migrations=migrations,
            recoveries=recoveries + pair_recoveries,
        )

    def _dead_workers(self) -> set[str]:
        """Workers the runtime must not schedule onto: down to the
        resource manager, or confirmed dead by the failure detector
        (the master cannot tell a partitioned worker from a crashed one,
        so a confirmed worker is dead until its heartbeats resume)."""
        dead = {name for name, m in self.cluster.machines.items() if m.failed}
        if self._detector is not None:
            dead |= self._detector.confirmed
        return dead

    def _reassign_failed(
        self,
        assignment: dict[int, str],
        num_pairs: int,
        dead: set[str] | None = None,
    ) -> None:
        """Move dead workers' pairs to the least-loaded survivors (§3.4.1).

        Placing each orphan on the survivor currently hosting the fewest
        pairs keeps post-recovery load balanced — round-robin over the
        survivor list could pile every orphan onto workers that were
        already full.  Ties break toward cluster order, deterministically.
        """
        if dead is None:
            dead = self._dead_workers()
        alive = [
            m.name for m in self.cluster.alive_workers() if m.name not in dead
        ]
        if not alive:
            raise SchedulingError("no alive workers left to recover onto")
        if num_pairs > len(alive) * self.pairs_limit:
            raise SchedulingError("not enough task slots on surviving workers")
        load = {name: 0 for name in alive}
        for p in range(num_pairs):
            name = assignment[p]
            if name in load:
                load[name] += 1
        rank = {name: i for i, name in enumerate(alive)}
        for p in range(num_pairs):
            if assignment[p] not in load:
                target = min(alive, key=lambda name: (load[name], rank[name]))
                assignment[p] = target
                load[target] += 1

    # ------------------------------------------------------- one-time loading --
    def _partition_file(self, path: str, job: IterativeJob, num_pairs: int):
        records = self.dfs.file_info(path).records
        parts: list[list] = [[] for _ in range(num_pairs)]
        for pair in records:
            parts[job.partitioner(pair[0], num_pairs)].append(pair)
        return parts

    def _initial_load(self, job: IterativeJob, assignment: dict[int, str], num_pairs: int):
        """Distributed partition-and-load of the state and static inputs.

        Each pair's loader reads its share of the raw input blocks,
        partitions them, exchanges partitions with the other loaders
        (bytes on the wire), and writes its own partition back to the
        DFS with a local first replica.  The DFS copy is the §3.4.1
        replica used for recovery and migration, and the state copy is
        checkpoint 0.
        """
        engine = self.engine
        cost = self.cost
        paths = [job.state_path] + [
            ph.static_path for ph in job.phases if ph.static_path
        ]
        for source in paths:
            parts = self._partition_file(source, job, num_pairs)
            total_bytes = self.dfs.file_info(source).nbytes
            share = total_bytes // num_pairs

            def loader(p: int, source=source, parts=parts, share=share):
                worker = self.cluster[assignment[p]]
                yield engine.timeout(cost.task_launch)
                # Read this loader's share of the raw file.
                yield from worker.disk_read(share)
                n_scanned = max(1, len(self.dfs.file_info(source).records) // num_pairs)
                yield from worker.compute(cost.emit_record_cpu * n_scanned)
                # Exchange: receive partition p's records from the other
                # loaders (each holds ~1/P of them).
                my_bytes = sizeof_records(parts[p])
                for q in range(num_pairs):
                    if q == p:
                        continue
                    src = self.cluster[assignment[q]]
                    yield from self.cluster.reliable_transfer(
                        src, worker, my_bytes // num_pairs,
                        description=f"initial-load:{q}->{p}",
                    )
                yield from self.dfs.write(
                    self._part_file(source, job, p), parts[p], worker, overwrite=True
                )

            loaders = [
                self.cluster[assignment[p]].spawn(loader(p), name=f"load:{p}")
                for p in range(num_pairs)
            ]
            yield engine.all_of(loaders)
            for proc in loaders:
                if isinstance(proc.value, WorkerFailure):
                    raise proc.value
        return _Checkpoint(state_index=0, path_prefix=self._state_prefix(job, 0))

    def _part_file(self, source: str, job: IterativeJob, pair: int) -> str:
        if source == job.state_path:
            return f"{self._state_prefix(job, 0)}/part-{pair:05d}"
        return f"/_imr/{job.name}/static{source}/part-{pair:05d}"

    def _static_part(self, job: IterativeJob, phase: Phase, pair: int) -> str:
        assert phase.static_path is not None
        return f"/_imr/{job.name}/static{phase.static_path}/part-{pair:05d}"

    def _state_prefix(self, job: IterativeJob, state_index: int) -> str:
        return f"/_imr/{job.name}/state-{state_index:05d}"

    # -------------------------------------------------------------- generation --
    def _generation(
        self,
        job: IterativeJob,
        assignment: dict[int, str],
        num_pairs: int,
        checkpoint: _Checkpoint,
        metrics: RunMetrics,
        accounts: dict[int, _IterAccount],
    ):
        """Spawn all persistent tasks and coordinate until the job stops,
        a worker fails, or a migration is ordered."""
        engine = self.engine
        phases = job.phases
        F = len(phases)
        start_iter = checkpoint.state_index

        map_boxes = [
            [IterationMailbox(engine, f"map{j}.{p}") for p in range(num_pairs)]
            for j in range(F)
        ]
        reduce_boxes = [
            [IterationMailbox(engine, f"red{j}.{p}") for p in range(num_pairs)]
            for j in range(F)
        ]
        master_box = Store(engine)

        aux = job.aux
        aux_map_boxes: list[IterationMailbox] = []
        aux_reduce_boxes: list[IterationMailbox] = []
        aux_workers: list[Machine] = []
        if aux is not None:
            alive = self.cluster.alive_workers()
            aux_workers = [alive[t % len(alive)] for t in range(aux.num_tasks)]
            aux_map_boxes = [
                IterationMailbox(engine, f"auxmap.{t}") for t in range(aux.num_tasks)
            ]
            aux_reduce_boxes = [
                IterationMailbox(engine, f"auxred.{t}") for t in range(aux.num_tasks)
            ]

        ctx = _GenContext(
            runtime=self,
            job=job,
            num_pairs=num_pairs,
            # Shared (not copied): localized pair recovery re-homes pairs
            # mid-generation and the next generation must see the moves.
            assignment=assignment,
            start_iter=start_iter,
            checkpoint=checkpoint,
            map_boxes=map_boxes,
            reduce_boxes=reduce_boxes,
            master_box=master_box,
            aux_map_boxes=aux_map_boxes,
            aux_reduce_boxes=aux_reduce_boxes,
            accounts=accounts,
            aux_workers=[w.name for w in aux_workers],
            reliable=self.reliable,
        )

        procs = []
        map_procs = []
        aux_procs = []
        try:
            for j in range(F):
                for p in range(num_pairs):
                    worker = self.cluster[assignment[p]]
                    map_proc = worker.spawn(
                        _map_task(ctx, j, p, worker), name=f"map{j}.{p}"
                    )
                    procs.append(map_proc)
                    map_procs.append(map_proc)
                    ctx.pair_procs[("map", j, p)] = map_proc
                    red_proc = worker.spawn(
                        _reduce_task(ctx, j, p, worker), name=f"red{j}.{p}"
                    )
                    procs.append(red_proc)
                    ctx.pair_procs[("red", j, p)] = red_proc
            if aux is not None:
                for t in range(aux.num_tasks):
                    worker = aux_workers[t]
                    aux_map_proc = worker.spawn(
                        _aux_map_task(ctx, t, worker), name=f"auxmap.{t}"
                    )
                    procs.append(aux_map_proc)
                    map_procs.append(aux_map_proc)
                    aux_procs.append(aux_map_proc)
                    aux_red_proc = worker.spawn(
                        _aux_reduce_task(ctx, t, worker), name=f"auxred.{t}"
                    )
                    procs.append(aux_red_proc)
                    aux_procs.append(aux_red_proc)
        except WorkerFailure as failure:
            # A worker died between assignment and spawn: recover.
            for proc in procs:
                proc.interrupt("shutdown")
            yield engine.timeout(0.0)
            return _GenOutcome(kind="recover", failed_worker=failure.worker)
        ctx.procs = procs
        ctx.map_procs = map_procs

        # Failure monitors: translate a dead task into a master message.
        # With the failure detector armed, a task killed by its machine's
        # crash is deliberately NOT reported — the master must notice the
        # silence through missed heartbeats.
        for (kind_, j, p), proc in ctx.pair_procs.items():
            self._watch(ctx, proc, pair=p)
        for proc in aux_procs:
            self._watch(ctx, proc)

        detector = self._detector
        if detector is not None:
            detector.attach(master_box)
            ctx.last_progress = engine.now
            engine.process(self._watchdog(ctx), name="imr-watchdog")

        try:
            outcome = yield from self._master(job, ctx, metrics)
        finally:
            ctx.done = True
            if detector is not None:
                detector.detach()
        outcome.pair_recoveries = ctx.recoveries

        if outcome.kind in ("recover", "migrate", "error"):
            for proc in ctx.procs:
                proc.interrupt("shutdown")
            # Let interrupts deliver before tearing down further.
            yield engine.timeout(0.0)
        else:
            # Clean stop: wait for tasks to flush final output.
            yield engine.all_of(
                [p for p in ctx.procs if p.is_alive] or [engine.timeout(0)]
            )
        return outcome

    def _watch(self, ctx: "_GenContext", proc, pair: int | None = None) -> None:
        """Monitor one task process and report its fate to the master.

        * ``WorkerFailure`` as the *interrupt value* means the task's own
          machine crashed.  Legacy (no detector): reported by fiat.  With
          the detector: ignored — heartbeat silence is the only evidence.
        * ``WorkerFailure`` *raised* means a remote machine died under a
          DFS operation the task was driving; the task itself is now dead
          on a live worker, which its node manager observes and reports
          (``task-crash``) so just that pair is recovered in place.
        * Any other exception is a job error.
        * Fencing/shutdown interrupts carry string values: ignored.
        """
        detector = self._detector
        master_box = ctx.master_box

        def monitor():
            try:
                value = yield proc
            except WorkerFailure as failure:
                if detector is None:
                    master_box.put(("error", failure))
                elif pair is not None:
                    master_box.put(("task-crash", pair))
                else:
                    master_box.put(("failure", failure.worker))
                return
            except BaseException as exc:
                master_box.put(("error", exc))
                return
            if isinstance(value, WorkerFailure) and detector is None:
                master_box.put(("failure", value.worker))

        self.engine.process(monitor(), name="imr-monitor")

    def _watchdog(self, ctx: "_GenContext"):
        """Master-side liveness backstop.  Heartbeat traffic keeps the
        event queue forever non-empty, so the engine's deadlock detection
        can no longer catch a livelocked generation (a lost message
        nobody retransmits); instead, prolonged *global* silence at the
        master becomes a hard error the termination oracle can see."""
        stall = self.fd_config.stall_timeout
        engine = self.engine
        while not ctx.done:
            yield engine.timeout(stall / 4.0)
            if ctx.done:
                return
            if engine.now - ctx.last_progress > stall:
                ctx.master_box.put(
                    (
                        "error",
                        TaskFailure(
                            ctx.job.name,
                            RuntimeError(
                                f"master saw no progress for {stall:.0f}s of "
                                "virtual time — livelocked or lost traffic"
                            ),
                        ),
                    )
                )
                return

    # ------------------------------------------------------------------ master --
    def _master(self, job: IterativeJob, ctx: "_GenContext", metrics: RunMetrics):
        engine = self.engine
        num_pairs = ctx.num_pairs
        reports: dict[int, dict[int, tuple[float | None, float]]] = defaultdict(dict)
        ckpt_acks: dict[int, set[int]] = defaultdict(set)
        iter_start = engine.now
        aux_stop = False
        lb_block_until = getattr(self, "_lb_block_until", -(10**9))

        while True:
            message = yield ctx.master_box.get()
            ctx.last_progress = engine.now
            kind = message[0]

            if kind == "error":
                return _GenOutcome(kind="error", error=message[1])

            if kind == "failure":
                worker = message[1]
                if self._detector is None or worker in ctx.aux_workers:
                    # Legacy fiat path, and aux tasks (which keep no
                    # checkpointed state of their own): whole-generation
                    # rollback to the last durable checkpoint.
                    self._emit("worker-failure", worker=worker)
                    return _GenOutcome(kind="recover", failed_worker=worker)
                affected = [
                    p for p in range(num_pairs) if ctx.assignment[p] == worker
                ]
                if not affected:
                    continue  # stale confirmation: pairs already moved on
                self._emit("worker-failure", worker=worker)
                yield from self._recover_pairs(job, ctx, affected, worker, ckpt_acks)
                continue

            if kind == "task-crash":
                # A pair task died on a live worker (e.g. a DFS replica
                # machine crashed mid-operation): recover just that pair,
                # in place if its worker is still usable.
                pair = message[1]
                self._emit("task-crash", pair=pair, worker=ctx.assignment[pair])
                yield from self._recover_pairs(job, ctx, [pair], None, ckpt_acks)
                continue

            if kind == "ckpt":
                _, state_index, pair = message
                ckpt_acks[state_index].add(pair)
                if len(ckpt_acks[state_index]) == num_pairs:
                    old = ctx.checkpoint.state_index
                    if state_index > old:
                        ctx.checkpoint.state_index = state_index
                        ctx.checkpoint.path_prefix = self._state_prefix(job, state_index)
                        self._drop_state_files(job, old, num_pairs)
                        ctx.prune_replay(state_index)
                        # Oracle hook: the checkpoint is now the durable
                        # rollback point every recovery must respect.
                        self._emit("checkpoint-durable", state_index=state_index)
                continue

            if kind == "aux-terminate":
                aux_stop = True
                continue

            if kind != "report":
                continue

            _, iteration, pair, local_distance, _proc_time = message
            if iteration in ctx.completed:
                continue  # re-report from a recovered pair's re-run
            reports[iteration][pair] = (local_distance, _proc_time)
            if len(reports[iteration]) < num_pairs:
                continue

            # ---- iteration `iteration` complete ----
            pair_reports = reports.pop(iteration)
            ctx.completed.add(iteration)
            distance: float | None = None
            if job.distance_fn is not None:
                distance = sum(
                    d for d, _ in pair_reports.values() if d is not None
                )
            metrics.iterations.append(
                IterationMetrics(
                    index=iteration,
                    start=iter_start,
                    end=engine.now,
                    init_time=0.0,
                    distance=distance,
                )
            )
            self._emit("iteration-complete", iteration=iteration, distance=distance)
            iter_start = engine.now

            completed = iteration + 1
            terminated_by = ""
            if aux_stop:
                terminated_by = "aux"
            elif job.max_iterations is not None and completed >= job.max_iterations:
                terminated_by = "maxiter"
            elif (
                job.threshold is not None
                and distance is not None
                and distance <= job.threshold
            ):
                terminated_by = "threshold"

            if terminated_by:
                self._emit("terminate", iteration=iteration, reason=terminated_by)
                # Stop at the decision instant: tasks can then be at most
                # one iteration ahead (completing k+1 requires virtual
                # time strictly after the last report of k), so the
                # two-deep state history always holds the named state.
                ctx.stop_all(iteration)
                return _GenOutcome(
                    kind="done",
                    terminated_by=terminated_by,
                    final_distance=distance,
                    last_iteration=iteration,
                )

            # ---- load balancing (§3.4.2) ----
            if (
                self.lb.enabled
                and iteration >= lb_block_until
                and num_pairs >= 3
                and ctx.checkpoint.state_index > 0
            ):
                plan = self._plan_migration(ctx, pair_reports)
                if plan is not None:
                    yield engine.timeout(self.cost.heartbeat)
                    self._emit("migration", **plan)
                    return _GenOutcome(
                        kind="migrate", migration=plan, last_iteration=iteration
                    )

            # Release the next iteration's global barrier (sync mode only;
            # asynchronous tasks pace themselves through the data flow).
            if job.synchronous:
                yield engine.timeout(self.cost.sync_release_latency)
                for p in range(num_pairs):
                    ctx.map_boxes[0][p].put(("sync", iteration))

    # -------------------------------------------------- localized recovery --
    def _recover_pairs(
        self,
        job: IterativeJob,
        ctx: "_GenContext",
        affected: list[int],
        failed_worker: str | None,
        ckpt_acks: dict[int, set[int]],
    ):
        """Per-pair localized recovery (§3.4.1, narrowed).

        The paper restarts the whole generation from the last durable
        checkpoint when a worker fails; here only the *affected pairs*
        roll back.  Unaffected pairs keep their tasks, mailboxes and
        progress — in synchronous mode they simply hold at the barrier
        until the recovered pairs catch up, and in asynchronous mode the
        data flow paces them naturally.
        """
        engine = self.engine
        resume = ctx.checkpoint.state_index
        F = len(job.phases)
        affected_set = set(affected)

        # 1) Fence every process of the old incarnations — checkpoint
        #    writers included — so no zombie emission or stale ack can
        #    race the replacements.  (For a falsely-confirmed worker this
        #    interrupt models the lease expiry that makes a real node
        #    manager kill its own tasks once it loses the master.)
        for key in [k for k in ctx.pair_procs if k[2] in affected_set]:
            proc = ctx.pair_procs.pop(key)
            if proc.is_alive:
                proc.interrupt("fenced")
            if proc in ctx.procs:
                ctx.procs.remove(proc)
            if proc in ctx.map_procs:
                ctx.map_procs.remove(proc)
        for p in affected:
            for proc in ctx.ckpt_procs.pop(p, []):
                if proc.is_alive:
                    proc.interrupt("fenced")
        yield engine.timeout(0.0)  # let the interrupts land

        # 2) Pending checkpoints must wait for the replacements: drop the
        #    old incarnations' acks so the durable index cannot advance
        #    (and prune the files) while a replacement still needs to
        #    read the state it is about to resume from.
        for state_index, acks in ckpt_acks.items():
            if state_index > resume:
                acks -= affected_set

        # 3) Fresh mailboxes — the old ones hold a dead incarnation's
        #    partial gathers and dedup history.
        for j in range(F):
            for p in affected:
                ctx.map_boxes[j][p] = IterationMailbox(engine, f"map{j}.{p}")
                ctx.reduce_boxes[j][p] = IterationMailbox(engine, f"red{j}.{p}")

        # 4) Re-home the orphaned pairs onto the least-loaded survivors.
        dead = self._dead_workers()
        if failed_worker is not None:
            dead.add(failed_worker)
        self._reassign_failed(ctx.assignment, ctx.num_pairs, dead=dead)

        # 5) Re-feed the logged cross-pair traffic for the iterations the
        #    replacements will re-run (live senders have moved on and
        #    will not resend), plus the barrier tokens already released.
        for p in affected:
            for j in range(F):
                ctx.replay_into("map", j, p, resume)
                ctx.replay_into("red", j, p, resume)
            if job.synchronous:
                for k in sorted(ctx.completed):
                    if k >= resume:
                        ctx.map_boxes[0][p].put(("sync", k))

        ctx.recoveries += 1
        for p in affected:
            self._emit(
                "pair-recovery",
                pair=p,
                from_worker=failed_worker,
                worker=ctx.assignment[p],
                resume_state=resume,
            )

        # 6) Spawn the replacement incarnations: static data reloads from
        #    the DFS replica, state from the last durable checkpoint.
        for p in affected:
            worker = self.cluster[ctx.assignment[p]]
            try:
                for j in range(F):
                    map_proc = worker.spawn(
                        _map_task(ctx, j, p, worker, start=resume),
                        name=f"map{j}.{p}",
                    )
                    ctx.pair_procs[("map", j, p)] = map_proc
                    ctx.procs.append(map_proc)
                    ctx.map_procs.append(map_proc)
                    self._watch(ctx, map_proc, pair=p)
                    red_proc = worker.spawn(
                        _reduce_task(ctx, j, p, worker, start=resume),
                        name=f"red{j}.{p}",
                    )
                    ctx.pair_procs[("red", j, p)] = red_proc
                    ctx.procs.append(red_proc)
                    self._watch(ctx, red_proc, pair=p)
            except WorkerFailure as wf:
                # The chosen survivor died in the window: report it and
                # let the resulting failure message re-recover this pair.
                ctx.master_box.put(("failure", wf.worker))

    def _plan_migration(self, ctx: "_GenContext", pair_reports) -> dict | None:
        """The paper's policy: average processing time excluding the
        longest and shortest; migrate the slowest worker's laggard pair to
        the fastest worker if its deviation exceeds the threshold."""
        times = {p: t for p, (_, t) in pair_reports.items()}
        worker_time: dict[str, float] = defaultdict(float)
        for p, t in times.items():
            name = ctx.assignment[p]
            worker_time[name] = max(worker_time[name], t)
        if len(worker_time) < 3:
            return None
        ordered = sorted(worker_time.values())
        trimmed = ordered[1:-1]
        avg = sum(trimmed) / len(trimmed)
        if avg <= 0:
            return None
        slowest = max(worker_time, key=lambda w: worker_time[w])
        fastest = min(worker_time, key=lambda w: worker_time[w])
        deviation = (worker_time[slowest] - avg) / avg
        if deviation <= self.lb.deviation_threshold or slowest == fastest:
            return None
        candidates = [p for p, w in ctx.assignment.items() if w == slowest]
        if not candidates:
            return None
        pair = max(candidates, key=lambda p: times.get(p, 0.0))
        return {
            "pair": pair,
            "from": slowest,
            "to": fastest,
            "deviation": deviation,
        }

    def _drop_state_files(self, job: IterativeJob, state_index: int, num_pairs: int) -> None:
        prefix = self._state_prefix(job, state_index)
        for p in range(num_pairs):
            path = f"{prefix}/part-{p:05d}"
            if self.dfs.exists(path):
                self.dfs.delete(path)


# ============================ generation context ============================


@dataclass
class _GenContext:
    """Shared wiring for one generation of persistent tasks."""

    runtime: IMapReduceRuntime
    job: IterativeJob
    num_pairs: int
    assignment: dict[int, str]
    start_iter: int
    checkpoint: _Checkpoint
    map_boxes: list[list[IterationMailbox]]
    reduce_boxes: list[list[IterationMailbox]]
    master_box: Store
    aux_map_boxes: list[IterationMailbox]
    aux_reduce_boxes: list[IterationMailbox]
    accounts: dict[int, _IterAccount]
    aux_workers: list[str] = field(default_factory=list)
    procs: list = field(default_factory=list)
    map_procs: list = field(default_factory=list)
    reliable: ReliableConfig = field(default_factory=ReliableConfig)
    #: (boxkind, phase, dest_pair) -> {iteration -> {dedup_key: (message,
    #: nbytes, always_wire)}} — cross-pair traffic kept for replay.
    replay_log: dict = field(default_factory=dict)
    #: Iterations the master has fully accounted (guards re-reports from
    #: recovered pairs, and sources the re-issued sync tokens).
    completed: set = field(default_factory=set)
    #: ("map"|"red", phase, pair) -> Process, for fencing on recovery.
    pair_procs: dict = field(default_factory=dict)
    #: pair -> in-flight checkpoint-writer processes (fenced with it).
    ckpt_procs: dict = field(default_factory=dict)
    #: Localized recoveries performed in this generation.
    recoveries: int = 0
    #: Set once the master returned; quiesces the stall watchdog.
    done: bool = False
    #: Virtual time of the last master-visible progress (watchdog input).
    last_progress: float = 0.0

    # -- messaging ----------------------------------------------------------
    def send(
        self,
        boxkind: str,
        phase: int,
        dest_pair: int,
        message: tuple,
        nbytes: int,
        src_machine: Machine,
        src_pair: int | None = None,
        always_wire: bool = False,
    ):
        """Route one cross-task message to a mailbox.

        On a clean network this is event-identical to the historical
        ``transfer(...)`` + ``box.put(...)`` sequence (``always_wire``
        preserves call sites that paid the wire even for zero bytes), so
        failure-free timing is unchanged.  With a link fault model armed
        it becomes a stop-and-wait reliable channel: retransmit with
        exponential backoff until the receiver — looked up afresh each
        attempt, so recovery re-routes in-flight traffic — acknowledges;
        the receiver's mailbox suppresses retransmission duplicates.

        Cross-pair main-phase messages are also recorded in the replay
        log: live senders retain their shuffle output on local disk
        (§3.4.1), so a recovered pair can be re-fed traffic the dead
        incarnation already consumed without any global rollback.
        """
        key = (boxkind, phase, dest_pair, src_pair, message[0], message[1])
        if boxkind in ("map", "red") and src_pair is not None and src_pair != dest_pair:
            flows = self.replay_log.setdefault((boxkind, phase, dest_pair), {})
            flows.setdefault(message[1], {})[key] = (message, nbytes, always_wire)
        if self.cluster.net is None:
            if nbytes or always_wire:
                target = self.cluster[self._dest_worker(boxkind, dest_pair)]
                yield from self.cluster.transfer(src_machine, target, nbytes)
            self._box(boxkind, phase, dest_pair).deliver(message, key)
            return
        yield from self._reliable_send(
            boxkind, phase, dest_pair, message, nbytes, src_machine, key, always_wire
        )

    def _reliable_send(
        self, boxkind, phase, dest_pair, message, nbytes, src_machine, key, always_wire
    ):
        cfg = self.reliable
        rto = cfg.rto_initial
        for _attempt in range(cfg.max_retries):
            target = self.cluster[self._dest_worker(boxkind, dest_pair)]
            if nbytes or always_wire:
                delivered = yield from self.cluster.transfer(src_machine, target, nbytes)
            else:
                delivered = yield from self.cluster.control_send(src_machine, target)
            if delivered:
                self._box(boxkind, phase, dest_pair).deliver(message, key)
                acked = yield from self.cluster.control_send(target, src_machine)
                if acked:
                    return
                # Ack lost: the retransmit below re-delivers the same
                # message; the receiver's dedup set absorbs the duplicate.
            if self.runtime.chaos.skip_retransmit:
                return  # injected bug: fire-and-forget delivery
            yield self.engine.timeout(rto)
            rto = min(rto * cfg.rto_backoff, cfg.rto_max)
        raise TaskFailure(
            f"{boxkind}{phase}.{dest_pair}",
            f"message {message[0]!r} for iteration {message[1]} undeliverable "
            f"after {cfg.max_retries} retries",
        )

    def _dest_worker(self, boxkind: str, dest_pair: int) -> str:
        if boxkind in ("auxmap", "auxred"):
            return self.aux_workers[dest_pair]
        return self.assignment[dest_pair]

    def _box(self, boxkind: str, phase: int, dest_pair: int) -> IterationMailbox:
        if boxkind == "map":
            return self.map_boxes[phase][dest_pair]
        if boxkind == "red":
            return self.reduce_boxes[phase][dest_pair]
        if boxkind == "auxmap":
            return self.aux_map_boxes[dest_pair]
        return self.aux_reduce_boxes[dest_pair]

    def prune_replay(self, state_index: int) -> None:
        """Forget logged traffic no future recovery can need (iterations
        before the durable checkpoint are never re-run)."""
        for flows in self.replay_log.values():
            for it in [i for i in flows if i < state_index]:
                del flows[it]

    def replay_into(self, boxkind: str, phase: int, pair: int, resume: int) -> None:
        """Seed a recovered pair's fresh mailbox with the logged cross-pair
        messages for iterations ≥ ``resume``.  Redelivery is charged no
        wire time: the bytes were paid for once and the retained local
        spill files serve the re-read (documented simplification)."""
        flows = self.replay_log.get((boxkind, phase, pair))
        if not flows:
            return
        box = self._box(boxkind, phase, pair)
        for it in sorted(flows):
            if it < resume:
                continue
            for key, (message, _nbytes, _always_wire) in flows[it].items():
                box.deliver(message, key)

    def stop_all(self, final_iteration: int | None = None) -> None:
        # Map tasks have no output to flush: interrupt them even
        # mid-computation (the run-ahead work of §3.3's asynchronous maps
        # is abandoned, as when the paper's master notifies termination).
        for proc in self.map_procs:
            proc.interrupt("stop")
        for rows in (self.map_boxes, self.reduce_boxes):
            for row in rows:
                for box in row:
                    box.stop(final_iteration)
        for box in self.aux_map_boxes:
            box.stop(final_iteration)
        for box in self.aux_reduce_boxes:
            box.stop(final_iteration)

    def trace(self, kind: str, **fields) -> None:
        self.runtime._emit(kind, **fields)

    @property
    def engine(self):
        return self.runtime.engine

    @property
    def cluster(self):
        return self.runtime.cluster

    @property
    def cost(self):
        return self.runtime.cost

    @property
    def dfs(self):
        return self.runtime.dfs


# =============================== map task ===============================


def _map_task(
    ctx: _GenContext,
    phase_index: int,
    pair: int,
    worker: Machine,
    start: int | None = None,
):
    """Persistent map task for one phase/pair (paper §3.1.1, §3.2, §3.3).

    ``start`` overrides the generation's start iteration for replacement
    incarnations spawned by localized recovery (they resume from the last
    durable checkpoint while the generation's other pairs run ahead)."""
    engine, cost, job = ctx.engine, ctx.cost, ctx.job
    phase = job.phases[phase_index]
    box = ctx.map_boxes[phase_index][pair]
    num_pairs = ctx.num_pairs
    one2all = phase.mapping == "one2all"
    synchronous = job.synchronous
    start = ctx.start_iter if start is None else start

    yield engine.timeout(cost.task_launch)

    # ---- one-time static load: DFS → local FS (§3.2) ----
    static: dict[Any, Any] = {}
    if phase.static_path is not None:
        part = ctx.runtime._static_part(job, phase, pair)
        records = yield from ctx.dfs.read_all(part, worker)
        static = dict(records)

    # ---- initial state (phase 0 only; later phases receive in-iteration) ----
    initial_chunks: list[list] | None = None
    if phase_index == 0:
        prefix = ctx.checkpoint.path_prefix
        if one2all:
            gathered: list = []
            for q in range(num_pairs):
                gathered.extend(
                    (yield from ctx.dfs.read_all(f"{prefix}/part-{q:05d}", worker))
                )
            initial_chunks = [gathered]
        else:
            initial_chunks = [
                (yield from ctx.dfs.read_all(f"{prefix}/part-{pair:05d}", worker))
            ]

    iteration = start
    try:
        while True:
            out_parts: dict[int, list] = defaultdict(list)
            records_in = 0
            emitted = 0
            work_start = engine.now

            def process_chunk(chunk: list) -> None:
                nonlocal records_in, emitted
                cctx = Context()
                if one2all:
                    # One static record + the full broadcast state (§5.1.2).
                    state_list = sorted(chunk, key=lambda kv: _order_key(kv[0]))
                    for key, static_value in sorted(
                        static.items(), key=lambda kv: _order_key(kv[0])
                    ):
                        phase.map_fn(key, state_list, static_value, cctx)
                        records_in += 1
                else:
                    for key, state_value in chunk:
                        phase.map_fn(key, state_value, static.get(key), cctx)
                        records_in += 1
                for key, value in cctx.take():
                    out_parts[job.partitioner(key, num_pairs)].append((key, value))
                    emitted += 1

            if initial_chunks is not None:
                chunks, initial_chunks = initial_chunks, None
                ctx.trace(
                    "map-iteration-start",
                    worker=worker.name, task=f"map{phase_index}.{pair}",
                    pair=pair, iteration=iteration,
                )
                for chunk in chunks:
                    yield from worker.compute(
                        cost.noisy(
                            cost.join_record_cpu * len(chunk)
                            + cost.map_record_cpu * len(chunk),
                            "imr-map", phase_index, pair, iteration,
                        )
                    )
                    before = emitted
                    process_chunk(chunk)
                    yield from worker.compute(
                        cost.noisy(
                            cost.emit_record_cpu * (emitted - before),
                            "imr-emit", phase_index, pair, iteration,
                        )
                    )
            else:
                if synchronous and iteration > start:
                    # Global barrier: previous iteration fully reported.
                    yield from box.wait_control("sync", iteration - 1)
                senders = num_pairs if one2all else 1
                finished: set = set()
                broadcast_pending: list = []
                first_chunk = True
                while len(finished) < senders:
                    message = yield from box.next_message(("state",), iteration)
                    if first_chunk:
                        # Processing-time clock starts when input arrives,
                        # not while waiting for the paired reduce.
                        work_start = engine.now
                        first_chunk = False
                        ctx.trace(
                            "map-iteration-start",
                            worker=worker.name, task=f"map{phase_index}.{pair}",
                            pair=pair, iteration=iteration,
                        )
                    _, _, sender, chunk, last = message
                    if last:
                        finished.add(sender)
                    if one2all:
                        # Cannot start before every reducer's output arrives
                        # (§5.1.2: the map needs the intact state set).
                        broadcast_pending.extend(chunk)
                        if len(finished) < senders:
                            continue
                        chunk = broadcast_pending
                    # Eager join + map on each arriving chunk (§3.3).
                    yield from worker.compute(
                        cost.noisy(
                            cost.join_record_cpu * len(chunk)
                            + cost.map_record_cpu * len(chunk),
                            "imr-map", phase_index, pair, iteration,
                        )
                    )
                    before = emitted
                    process_chunk(chunk)
                    yield from worker.compute(
                        cost.noisy(
                            cost.emit_record_cpu * (emitted - before),
                            "imr-emit", phase_index, pair, iteration,
                        )
                    )

            # ---- combiner (map-side aggregation) ----
            if phase.combiner is not None:
                combined: dict[int, list] = {}
                combine_in = 0
                for part, pairs_ in out_parts.items():
                    cctx = Context()
                    for key, values in group_by_key(pairs_):
                        combine_in += len(values)
                        phase.combiner(key, values, cctx)
                    combined[part] = cctx.take()
                out_parts = combined
                yield from worker.compute(cost.combine_value_cpu * combine_in)

            # ---- shuffle to this phase's reduce tasks ----
            acct = ctx.accounts[iteration]
            acct.map_records += records_in
            part_sizes = {
                q: sizeof_records(pairs_) for q, pairs_ in out_parts.items() if pairs_
            }
            yield from worker.compute(
                cost.serialize_byte_cpu * sum(part_sizes.values())
            )
            # iMapReduce keeps intermediate data in files (§6): spill the
            # partitioned map output to local disk before serving it.
            yield from worker.disk_write(sum(part_sizes.values()))
            for q in range(num_pairs):
                pairs_ = out_parts.get(q)
                if pairs_:
                    nbytes = part_sizes[q]
                    acct.shuffle_bytes += nbytes
                    yield from ctx.send(
                        "red", phase_index, q,
                        ("mapout", iteration, pair, pairs_),
                        nbytes, worker, src_pair=pair,
                    )
            for q in range(num_pairs):
                yield from ctx.send(
                    "red", phase_index, q,
                    ("mapdone", iteration, pair), 0, worker, src_pair=pair,
                )
            if phase_index == 0:
                # Report this pair's map processing duration to its
                # final-phase reduce for the §3.4.2 completion report.
                ctx.reduce_boxes[len(job.phases) - 1][pair].put(
                    ("mapdur", iteration, pair, engine.now - work_start)
                )
            ctx.trace(
                "map-iteration-end",
                worker=worker.name, task=f"map{phase_index}.{pair}",
                pair=pair, iteration=iteration,
            )
            iteration += 1
    except StopIteration_:
        return ("stopped", phase_index, pair)


def _order_key(key: Any):
    return (type(key).__name__, key)


# =============================== reduce task ===============================


def _reduce_task(
    ctx: _GenContext,
    phase_index: int,
    pair: int,
    worker: Machine,
    start: int | None = None,
):
    """Persistent reduce task for one phase/pair.

    ``start`` as for :func:`_map_task`: replacement incarnations resume
    from the checkpoint index instead of the generation's start."""
    engine, cost, job = ctx.engine, ctx.cost, ctx.job
    phase = job.phases[phase_index]
    box = ctx.reduce_boxes[phase_index][pair]
    num_pairs = ctx.num_pairs
    is_last_phase = phase_index == len(job.phases) - 1
    track_distance = is_last_phase and job.distance_fn is not None
    interval = job.checkpoint_interval
    start = ctx.start_iter if start is None else start

    yield engine.timeout(cost.task_launch)

    prev_state: dict[Any, Any] = {}
    if track_distance:
        part = f"{ctx.checkpoint.path_prefix}/part-{pair:05d}"
        prev_state = dict((yield from ctx.dfs.read_all(part, worker)))

    iteration = start
    # The final-phase reduce keeps its last two iterations' outputs so it
    # can dump whichever one the master's stop decision names (tasks may
    # legitimately run one iteration ahead in asynchronous mode).
    state_history: dict[int, list[tuple[Any, Any]]] = {}
    try:
        while True:
            records = yield from box.gather_map_outputs(iteration, num_pairs)
            gather_end = engine.now
            ctx.trace(
                "reduce-iteration-start",
                worker=worker.name, task=f"red{phase_index}.{pair}",
                pair=pair, iteration=iteration,
            )

            merge_bytes = sizeof_records(records)
            yield from worker.disk_read(merge_bytes)
            yield from worker.compute(
                cost.noisy(
                    cost.sort_cost(len(records))
                    + cost.merge_byte_cpu * merge_bytes,
                    "imr-shuffle", phase_index, pair, iteration,
                )
            )
            acct = ctx.accounts[iteration]
            acct.reduce_records += len(records)

            next_phase = (phase_index + 1) % len(job.phases)
            next_iteration = iteration + (1 if next_phase == 0 else 0)
            next_mapping = job.phases[next_phase].mapping
            streaming = next_mapping == "one2one"
            buffer = max(1, job.buffer_records)
            target_box = ctx.map_boxes[next_phase][pair]

            def flush(chunk: list, last: bool):
                """Stream a buffer of state to the paired map (§3.3):
                the eager trigger the paper amortises with the buffer."""
                for rec in chunk:
                    q = job.partitioner(rec[0], num_pairs)
                    if q != pair:
                        raise TaskFailure(
                            f"reduce{phase_index}.{pair}",
                            f"one2one phase emitted key {rec[0]!r} belonging "
                            f"to partition {q}; use mapping='one2all' or keep "
                            "keys within their partition",
                        )
                acct.state_bytes += sizeof_records(chunk)
                # The paired map lives on the same worker (scheduler
                # guarantee), so no NIC cost — only the per-flush
                # context-switch overhead (§3.3).
                yield engine.timeout(cost.heartbeat / 50.0)
                target_box.put(("state", next_iteration, pair, chunk, last))

            # ---- reduce, streaming buffers out as they fill (§3.3) ----
            rctx = Context()
            output: list = []
            flushed = 0
            charged_values = 0
            consumed = 0
            for key, values in group_by_key(records):
                phase.reduce_fn(key, values, rctx)
                consumed += len(values)
                output.extend(rctx.take())
                if streaming and len(output) - flushed >= buffer:
                    yield from worker.compute(
                        cost.noisy(
                            cost.reduce_value_cpu * (consumed - charged_values)
                            + cost.emit_record_cpu * (len(output) - flushed),
                            "imr-reduce", phase_index, pair, iteration, flushed,
                        )
                    )
                    yield from flush(output[flushed:], last=False)
                    charged_values = consumed
                    flushed = len(output)
            yield from worker.compute(
                cost.noisy(
                    cost.reduce_value_cpu * (consumed - charged_values)
                    + cost.emit_record_cpu * (len(output) - flushed),
                    "imr-reduce", phase_index, pair, iteration, flushed,
                )
            )
            if streaming:
                yield from flush(output[flushed:], last=True)

            if is_last_phase:
                state_history[iteration] = output
                state_history.pop(iteration - 2, None)
                # ---- distance (§3.1.2) ----
                local_distance: float | None = None
                if track_distance:
                    yield from worker.compute(cost.distance_record_cpu * len(output))
                    local_distance = 0.0
                    for key, value in output:
                        local_distance += job.distance_fn(
                            key, prev_state.get(key), value
                        )
                    prev_state = dict(output)

                # ---- checkpoint (§3.4.1, parallel with the iteration) ----
                state_index = iteration + 1
                if interval > 0 and state_index % interval == 0:
                    path = (
                        f"{ctx.runtime._state_prefix(job, state_index)}"
                        f"/part-{pair:05d}"
                    )

                    ckpt_data = list(output)
                    if ctx.runtime.chaos.stale_checkpoint_content:
                        ckpt_data = list(state_history.get(iteration - 1, output))

                    def ckpt_proc(path=path, data=ckpt_data, s=state_index):
                        if not ctx.runtime.chaos.skip_checkpoint_write:
                            yield from ctx.dfs.write(path, data, worker, overwrite=True)
                        ctx.trace(
                            "checkpoint", worker=worker.name, pair=pair,
                            state_index=s,
                        )
                        ctx.master_box.put(("ckpt", s, pair))

                    proc = worker.spawn(ckpt_proc(), name=f"ckpt.{pair}")
                    # Registered so a localized recovery can fence the
                    # writer of a superseded incarnation.
                    writers = ctx.ckpt_procs.setdefault(pair, [])
                    writers[:] = [w for w in writers if w.is_alive]
                    writers.append(proc)

                # ---- report to master (§3.4.2 completion report) ----
                # Processing time = this pair's map work + reduce work;
                # both scale with the worker's speed and partition size,
                # which is what the load balancer needs to see.
                dur_msg = yield from box.next_message(("mapdur",), iteration)
                map_duration = dur_msg[3]
                ctx.master_box.put(
                    (
                        "report",
                        iteration,
                        pair,
                        local_distance,
                        map_duration + (engine.now - gather_end),
                    )
                )

                # ---- copy to the auxiliary phase, if any (§5.3) ----
                if ctx.aux_map_boxes:
                    aux_n = len(ctx.aux_map_boxes)
                    aux_parts: dict[int, list] = defaultdict(list)
                    for rec in output:
                        aux_parts[job.partitioner(rec[0], aux_n)].append(rec)
                    for t in range(aux_n):
                        recs = aux_parts.get(t, [])
                        nbytes = sizeof_records(recs)
                        if nbytes:
                            acct.state_bytes += nbytes
                        yield from ctx.send(
                            "auxmap", 0, t,
                            ("state", iteration, pair, recs, True),
                            nbytes, worker, src_pair=pair,
                        )

            # ---- broadcast state to every next-phase map (§5.1) ----
            if not streaming:
                nbytes = sizeof_records(output)
                for q in range(num_pairs):
                    ctx.accounts[iteration].state_bytes += nbytes
                    # always_wire: the historical path paid the wire even
                    # for an empty broadcast — timing must not change.
                    yield from ctx.send(
                        "map", next_phase, q,
                        ("state", next_iteration, pair, list(output), True),
                        nbytes, worker, src_pair=pair, always_wire=True,
                    )
            ctx.trace(
                "reduce-iteration-end",
                worker=worker.name, task=f"red{phase_index}.{pair}",
                pair=pair, iteration=iteration,
            )
            iteration += 1
    except StopIteration_ as stop:
        if is_last_phase:
            # Dump the final state to the DFS (§3.1: "written to DFS only
            # once when the iteration terminates") — exactly the iteration
            # the master's decision names, even if we ran ahead.
            final = stop.final_iteration
            if final is None or final not in state_history:
                final = max(state_history, default=None)
            data = state_history.get(final, []) if final is not None else []
            yield from ctx.dfs.write(
                job.part_path(pair), data, worker, overwrite=True
            )
        return ("stopped", phase_index, pair)


# =============================== aux tasks ===============================


def _aux_map_task(ctx: _GenContext, task: int, worker: Machine):
    """Auxiliary-phase map: observes the main phase's output (§5.3)."""
    engine, cost, job = ctx.engine, ctx.cost, ctx.job
    aux = job.aux
    assert aux is not None
    box = ctx.aux_map_boxes[task]
    task_state: dict = {}
    iteration = ctx.start_iter
    yield engine.timeout(cost.task_launch)
    try:
        while True:
            chunks = yield from box.gather_state_chunks(iteration, ctx.num_pairs)
            records = [rec for chunk in chunks for rec in chunk]
            actx = AuxContext(task_state)
            for key, value in records:
                aux.map_fn(key, value, actx)
            emitted = actx.take()
            yield from worker.compute(
                cost.map_record_cpu * len(records)
                + cost.emit_record_cpu * len(emitted)
            )
            aux_n = len(ctx.aux_reduce_boxes)
            parts: dict[int, list] = defaultdict(list)
            for rec in emitted:
                parts[job.partitioner(rec[0], aux_n)].append(rec)
            for t in range(len(ctx.aux_reduce_boxes)):
                recs = parts.get(t)
                if recs:
                    yield from ctx.send(
                        "auxred", 0, t,
                        ("mapout", iteration, task, recs),
                        sizeof_records(recs), worker, src_pair=task,
                    )
                yield from ctx.send(
                    "auxred", 0, t,
                    ("mapdone", iteration, task), 0, worker, src_pair=task,
                )
            iteration += 1
    except StopIteration_:
        return ("stopped", "auxmap", task)


def _aux_reduce_task(ctx: _GenContext, task: int, worker: Machine):
    """Auxiliary-phase reduce: may signal global termination (§5.3)."""
    engine, cost, job = ctx.engine, ctx.cost, ctx.job
    aux = job.aux
    assert aux is not None
    box = ctx.aux_reduce_boxes[task]
    task_state: dict = {}
    iteration = ctx.start_iter
    yield engine.timeout(cost.task_launch)
    try:
        while True:
            records = yield from box.gather_map_outputs(iteration, aux.num_tasks)
            yield from worker.compute(cost.sort_cost(len(records)))
            actx = AuxContext(task_state)
            for key, values in group_by_key(records):
                aux.reduce_fn(key, values, actx)
            yield from worker.compute(cost.reduce_value_cpu * len(records))
            if actx.terminate_requested:
                ctx.master_box.put(("aux-terminate", iteration))
            iteration += 1
    except StopIteration_:
        return ("stopped", "auxred", task)


# ------------------------------------------------- accumulative (Maiter) --
def run_accum_simulated(
    job,
    delta_records,
    static_records=None,
    *,
    num_pairs: int = 4,
    seed: int = 0,
    mode: str = "async",
    defer_probability: float = 0.35,
    max_defer: int = 2,
    keep_trace: bool = False,
):
    """Asynchronous accumulative execution under seeded network chaos.

    The chaos twin of
    :func:`~repro.imapreduce.localrun.run_accum_local`: the same
    :class:`~repro.imapreduce.accum.AccumPair` engine, but every
    cross-pair delta batch may be *deferred* — held in flight for 1 to
    ``max_defer`` rounds with probability ``defer_probability`` — and
    each pair's top-fraction knob is jittered per round, so deltas
    arrive late and out of schedule exactly as they would on a loaded
    mesh.  Delivery stays exactly-once (never duplicated, never
    dropped): the accumulative model tolerates reordering but a ``+``
    algebra cannot absorb the same delta twice, and the
    fixpoint-equivalence oracle leans on that.

    All randomness flows from ``stable_seed(seed, "accum-sim")``, so a
    chaos-campaign spec replays byte-identically.  Termination needs
    the pending mass at threshold *and* an empty in-flight set — a
    deferred batch still counts as unaccumulated progress.
    """
    import random

    from ..common.config import stable_seed
    from ..common.partition import bind_partitioner
    from .accum import (
        AccumPair,
        AccumRunResult,
        check_mode,
        partition_accum_inputs,
    )

    check_mode(mode)
    if not 0.0 <= defer_probability <= 1.0:
        raise ValueError("defer_probability must be in [0, 1]")
    if max_defer < 1:
        raise ValueError("max_defer must be >= 1")
    rng = random.Random(stable_seed(seed, "accum-sim"))

    part = bind_partitioner(job.partitioner, num_pairs)
    delta_parts, static_tables = partition_accum_inputs(
        job, delta_records, static_records, num_pairs, part
    )
    pairs = [
        AccumPair(p, job.accumulator, static_tables[p], keys=static_tables[p])
        for p in range(num_pairs)
    ]
    for p in range(num_pairs):
        pairs[p].absorb(delta_parts[p])

    threshold = job.threshold if job.threshold is not None else 0.0
    max_rounds = job.max_rounds if job.max_rounds is not None else 10**9
    frac = job.top_fraction
    #: In-flight cross-pair batches: (due_round, dst, src, seq, records).
    inflight: list[tuple[int, int, int, int, list]] = []
    seq = 0
    trace: list[dict] = []
    rounds = 0
    shipped = 0
    mass = 0.0
    terminated_by = ""

    while True:
        # ---- deliver batches whose deferral expired (dest ascending,
        # then source ascending, then send order — the mesh's gather
        # order under reordering) ----
        due = sorted(
            (b for b in inflight if b[0] <= rounds),
            key=lambda b: (b[1], b[2], b[3]),
        )
        if due:
            inflight = [b for b in inflight if b[0] > rounds]
            for _due, dst, _src, _seq, records in due:
                pairs[dst].absorb(records)

        # ---- accumulated-progress check: mass at threshold AND no
        # delta still in flight ----
        mass = 0.0
        for ps in pairs:
            mass += ps.mass()
        if keep_trace:
            trace.append(
                {
                    "round": rounds,
                    "pending_mass": mass,
                    "updates": sum(ps.updates_processed for ps in pairs),
                    "emitted": sum(ps.deltas_emitted for ps in pairs),
                    "shipped": shipped,
                    "in_flight": len(inflight),
                }
            )
        if mass <= threshold and not inflight:
            terminated_by = "progress"
            break
        if rounds >= max_rounds:
            terminated_by = "maxrounds"
            break

        # ---- select + apply with a per-pair jittered schedule ----
        outboxes = [[[] for _ in range(num_pairs)] for _ in range(num_pairs)]
        for ps in pairs:
            pair_frac = frac
            if mode == "async":
                pair_frac = min(1.0, frac * rng.choice((0.5, 1.0, 1.5, 2.0)))
            ps.apply(job, ps.select(mode, pair_frac), part, outboxes[ps.pair])

        # ---- route: local batches land now; cross-pair batches may be
        # deferred (seeded coin per batch, src then dst ascending) ----
        for src in range(num_pairs):
            for dst in range(num_pairs):
                batch = outboxes[src][dst]
                if not batch:
                    continue
                if dst == src:
                    pairs[dst].absorb(batch)
                    continue
                shipped += len(batch)
                delay = 0
                if rng.random() < defer_probability:
                    delay = rng.randint(1, max_defer)
                inflight.append((rounds + 1 + delay, dst, src, seq, batch))
                seq += 1
        rounds += 1

    assert not inflight or terminated_by == "maxrounds", "lost in-flight deltas"
    final = sorted(
        (rec for ps in pairs for rec in ps.state.items()),
        key=lambda kv: _order_key(kv[0]),
    )
    return AccumRunResult(
        state=final,
        rounds=rounds,
        converged=terminated_by == "progress",
        terminated_by=terminated_by,
        pending_mass=mass,
        updates_processed=sum(ps.updates_processed for ps in pairs),
        deltas_emitted=sum(ps.deltas_emitted for ps in pairs),
        deltas_shipped=shipped,
        mode="simulated",
        trace=trace,
        counters={"seed": seed, "defer_probability": defer_probability,
                  "max_defer": max_defer},
    )
