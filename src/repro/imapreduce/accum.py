"""Accumulative iteration (Maiter mode): delta propagation under an algebra.

The synchronous engine ships and reprocesses *full* state every
superstep even when most keys have converged.  Maiter (by the
iMapReduce authors) reformulates fixpoint computations accumulatively:
state starts at the algebra's identity, every update is a *delta*
``v ← v ⊕ Δv``, and the work an applied delta creates is itself a set
of deltas for other keys.  Because ``⊕`` is commutative and
associative, deltas may be coalesced while queued, applied in any
order, and scheduled by impact — only keys whose pending delta would
actually change the state need touching, and only nonzero deltas ever
cross the wire.

This module holds the pieces every backend shares:

* :class:`Accumulator` — the algebra: identity element, merge op, and
  a priority measure (how much applying a pending delta would move the
  state).  The algebra laws (identity, commutativity, associativity —
  which subsumes delta-composition ``s ⊕ (d₁ ⊕ d₂) = (s ⊕ d₁) ⊕ d₂``)
  are checked over sample values at job build time, so a
  non-conforming merge op is a :class:`ConfigError`, not a silent
  wrong fixpoint.
* :class:`AccumJob` — the job model: an accumulator plus a
  delta-emitting update function ``update(key, delta, state,
  static_value, emit)`` called once per applied delta.
* :class:`AccumPair` — one pair's engine state (state dict, pending
  delta queue, priority scheduling).  The serial executor
  (:func:`~repro.imapreduce.localrun.run_accum_local`), the
  multiprocess worker loop and the simulated async schedule all drive
  the *same* class through the same call sequence, which is what makes
  serial/parallel runs record-for-record identical per mode.

Scheduling and termination
--------------------------

Execution is *round-synchronized asynchronous*: rounds keep the
all-to-all skip-empty exchange (the mesh's gather contract needs a
frame or manifest from every peer), but within a round each pair
drains only its highest-priority pending keys (``mode="async"``
applies the top ``mapred.accum.topfrac`` fraction by priority;
``mode="sync"`` drains everything — the synchronous reference the
fixpoint-equivalence oracle compares against).  Termination is a
global accumulated-progress check instead of the iteration-distance
barrier: stop when the summed priority of every pending delta is at or
below ``mapred.iterjob.disthresh``.

Correctness: for ``min`` algebras the fixpoint is unique and every
schedule reaches it exactly, so async results are *bit-equal* to the
synchronous reference.  For ``+`` algebras the fixpoint of a
contraction is unique but floats fold in schedule order; both runs
stop within ``threshold`` of the fixpoint (for PageRank the unapplied
mass ``m`` bounds the remaining state change by ``m·d/(1−d)``), so the
oracle compares with a tolerance derived from the threshold.  The
delta plane must be exactly-once for ``+`` algebras — a duplicated
delta is silently wrong — which the pipe mesh and the simulated
deferral schedule both guarantee by construction.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable

from ..common.config import IterKeys, JobConf
from ..common.errors import ConfigError
from ..common.partition import HashPartitioner, Partitioner, bind_partitioner

__all__ = [
    "Accumulator",
    "AccumJob",
    "AccumPair",
    "AccumRunResult",
    "SUM",
    "MIN",
    "TOP_FRACTION_KEY",
    "DEFAULT_TOP_FRACTION",
    "partition_accum_inputs",
    "partition_state",
]

#: Conf key: fraction of a pair's *active* pending keys drained per
#: async round (by descending priority).  1.0 degenerates to sync.
TOP_FRACTION_KEY = "mapred.accum.topfrac"
DEFAULT_TOP_FRACTION = 0.25

#: ``update(key, delta, state, static_value, emit)`` — called once per
#: applied delta whose merge changed the state; ``state`` is the
#: post-merge value and ``emit(dest_key, delta)`` queues propagation.
UpdateFn = Callable[[Any, Any, Any, Any, Callable[[Any, Any], None]], None]


def _order_key(key: Any) -> tuple:
    """Total order over mixed-type keys (localrun's sort rule)."""
    return (type(key).__name__, key)


def _agree(a: Any, b: Any) -> bool:
    """Law-check equality: exact for non-floats, tight isclose for
    floats (so a genuine float ``+`` passes but ``mean`` cannot)."""
    if a == b:
        return True
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
    return False


@dataclass(frozen=True)
class Accumulator:
    """The accumulative algebra: ``(identity, ⊕)`` plus a priority.

    ``samples`` feed the build-time law validation — pick values
    representative of the job's state domain (include the identity and,
    for ``min``, ``inf``).  ``priority_fn(state, delta)`` overrides the
    default impact measure ``|state − (state ⊕ delta)|`` (0 when the
    merge is a no-op, ``inf`` when it first reaches an infinite state).
    """

    name: str
    identity: Any
    merge: Callable[[Any, Any], Any]
    samples: tuple = ()
    priority_fn: Callable[[Any, Any], float] | None = None

    def validate(self) -> None:
        """Check the algebra laws over the samples; raise ConfigError.

        Associativity subsumes the delta-composition law the pending
        queues rely on: ``merge(s, d1 ⊕ d2) == merge(merge(s, d1), d2)``
        is exactly associativity with ``s, d1, d2`` drawn from the same
        sample set.
        """
        samples = tuple(self.samples)
        if len(samples) < 3:
            raise ConfigError(
                f"accumulator {self.name!r}: needs >= 3 sample values to "
                "validate the algebra laws"
            )
        merge = self.merge
        ident = self.identity
        for x in samples:
            if not _agree(merge(x, ident), x) or not _agree(merge(ident, x), x):
                raise ConfigError(
                    f"accumulator {self.name!r}: {ident!r} is not an "
                    f"identity for sample {x!r}"
                )
        for a, b in itertools.product(samples, repeat=2):
            if not _agree(merge(a, b), merge(b, a)):
                raise ConfigError(
                    f"accumulator {self.name!r}: merge is not commutative "
                    f"on samples ({a!r}, {b!r})"
                )
        for a, b, c in itertools.product(samples, repeat=3):
            if not _agree(merge(merge(a, b), c), merge(a, merge(b, c))):
                raise ConfigError(
                    f"accumulator {self.name!r}: merge is not associative "
                    f"on samples ({a!r}, {b!r}, {c!r}) — pending deltas "
                    "cannot be coalesced"
                )

    def priority(self, state: Any, delta: Any) -> float:
        """Impact of applying ``delta`` to ``state`` (0 = no-op)."""
        if self.priority_fn is not None:
            return self.priority_fn(state, delta)
        merged = self.merge(state, delta)
        if merged == state:
            return 0.0
        try:
            return abs(state - merged)
        except TypeError:
            return 1.0  # non-numeric state: any change counts equally


def _merge_sum(a, b):
    return a + b


#: The two algebras the shipped workloads use.  ``SUM`` samples are
#: dyadic rationals (exact float addition) of comparable magnitude, so
#: the associativity check is noise-free; ``MIN`` includes ``inf``
#: because unreached sssp/components state starts there.
SUM = Accumulator(
    "sum", 0.0, _merge_sum, samples=(0.0, 1.0, -0.75, 0.5, 2.25, 0.125)
)
MIN = Accumulator(
    "min", math.inf, min, samples=(math.inf, 0.0, 3.5, -2.0, 7.25, 1)
)


@dataclass
class AccumJob:
    """An accumulative (Maiter-mode) iterative computation.

    The job model twin of :class:`~repro.imapreduce.job.IterativeJob`:
    the state input (``mapred.iterjob.statepath``) holds the *initial
    deltas* (state starts at the identity everywhere), the static input
    is joined by key exactly as in §3.2, and termination is by global
    pending-progress threshold (``mapred.iterjob.disthresh``) and/or a
    round cap (``mapred.iterjob.maxiter``).
    """

    name: str
    accumulator: Accumulator
    update_fn: UpdateFn
    output_path: str
    conf: JobConf = field(default_factory=JobConf)
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    num_pairs: int | None = None
    #: Optional columnar delta twin (see
    #: :class:`~repro.imapreduce.columnar.AccumKernel`): dense pending
    #: arrays with an active-key mask replace the per-record loops.
    kernel: Any | None = None

    def __post_init__(self):
        self.accumulator.validate()
        if self.num_pairs is not None and self.num_pairs < 1:
            raise ConfigError(f"job {self.name!r}: num_pairs must be >= 1")
        if self.max_rounds is None and self.threshold is None:
            raise ConfigError(
                f"job {self.name!r}: set maxiter or disthresh so the "
                "accumulative iteration can terminate"
            )
        frac = self.top_fraction
        if not 0.0 < frac <= 1.0:
            raise ConfigError(
                f"job {self.name!r}: {TOP_FRACTION_KEY} must be in (0, 1], "
                f"got {frac!r}"
            )

    # -- derived configuration --------------------------------------------
    @property
    def delta_path(self) -> str:
        """DFS path of the initial delta records (the state input)."""
        return self.conf.get_required(IterKeys.STATE_PATH)

    @property
    def static_path(self) -> str | None:
        return self.conf.get(IterKeys.STATIC_PATH)

    @property
    def max_rounds(self) -> int | None:
        return self.conf.get_int(IterKeys.MAX_ITER)

    @property
    def threshold(self) -> float | None:
        """Global accumulated-progress termination threshold."""
        return self.conf.get_float(IterKeys.DIST_THRESH)

    @property
    def top_fraction(self) -> float:
        frac = self.conf.get_float(TOP_FRACTION_KEY, DEFAULT_TOP_FRACTION)
        return DEFAULT_TOP_FRACTION if frac is None else frac

    def part_path(self, pair: int) -> str:
        return f"{self.output_path}/part-{pair:05d}"


@dataclass
class AccumRunResult:
    """Outcome of an accumulative run (any backend, any mode)."""

    state: list
    rounds: int
    converged: bool
    terminated_by: str  # "progress" | "maxrounds"
    pending_mass: float
    updates_processed: int
    deltas_emitted: int
    #: Cross-pair delta records (the data the synchronous mode would
    #: have shipped as full state; the bench gate compares these).
    deltas_shipped: int
    mode: str  # "sync" | "async" | "simulated"
    #: Per-round convergence-vs-work rows (``keep_trace=True``):
    #: cumulative updates/emitted/shipped and the pending mass at the
    #: start of each round, plus the final termination row.
    trace: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    # Parallel-backend extras.
    num_workers: int | None = None
    worker_stats: list = field(default_factory=list)
    wall_seconds: float = 0.0

    def state_dict(self) -> dict:
        return dict(self.state)

    def counter(self, name: str) -> int:
        """Sum a mesh counter over the parallel backend's workers."""
        return sum(int(s.get(name, 0)) for s in self.worker_stats)


class AccumPair:
    """One pair's accumulative engine: state, pending queue, scheduler.

    Every backend drives this class through the identical sequence —
    ``mass → select → apply → absorb`` per round, pairs in ascending
    id, incoming batches in ascending source-pair order — so per-mode
    results are bit-identical across serial and parallel runs (dict
    iteration order is insertion order, and the insertion sequences
    match by construction).
    """

    __slots__ = (
        "pair",
        "acc",
        "state",
        "pending",
        "static",
        "updates_processed",
        "deltas_emitted",
    )

    def __init__(self, pair: int, accumulator: Accumulator, static_table: dict,
                 keys=(), initial_state=None):
        self.pair = pair
        self.acc = accumulator
        self.static = static_table
        ident = accumulator.identity
        #: Key universe materialized up front (static keys), so the
        #: final state covers unreached keys at the identity — matching
        #: the synchronous executors' full state records.
        self.state: dict[Any, Any] = {k: ident for k in keys}
        #: Warm start (incremental mode): memoized converged values are
        #: *preloaded* — written into the state without running the
        #: update function, so no propagation fires for them.  Feeding
        #: them through ``absorb`` instead would re-emit every key's
        #: downstream deltas (a full recomputation, and a wrong fixpoint
        #: for non-idempotent algebras like ``+``).
        if initial_state is not None:
            self.state.update(initial_state)
        self.pending: dict[Any, Any] = {}
        self.updates_processed = 0
        self.deltas_emitted = 0

    def absorb(self, records) -> None:
        """Coalesce arriving deltas into the pending queue with ``⊕``
        (exact by the delta-composition law)."""
        merge = self.acc.merge
        ident = self.acc.identity
        pending = self.pending
        get = pending.get
        for k, d in records:
            pending[k] = merge(get(k, ident), d)

    def mass(self) -> float:
        """Summed priority of every pending delta — this pair's
        contribution to the global accumulated-progress check."""
        acc = self.acc
        ident = acc.identity
        state_get = self.state.get
        priority = acc.priority
        total = 0.0
        for k, d in self.pending.items():
            total += priority(state_get(k, ident), d)
        return total

    def select(self, mode: str, top_fraction: float) -> list:
        """Keys to drain this round.

        ``sync``: every pending key.  ``async``: the top
        ``top_fraction`` of *active* keys (priority > 0) by descending
        priority, ties broken by key order — the per-pair priority
        queue keyed by pending-delta magnitude.
        """
        pending = self.pending
        if not pending:
            return []
        if mode == "sync":
            return sorted(pending, key=_order_key)
        acc = self.acc
        ident = acc.identity
        state_get = self.state.get
        priority = acc.priority
        scored = []
        for k, d in pending.items():
            p = priority(state_get(k, ident), d)
            if p > 0:
                scored.append((p, k))
        if not scored:
            return []
        scored.sort(key=lambda t: (-t[0], _order_key(t[1])))
        count = max(1, math.ceil(top_fraction * len(scored)))
        return [k for _p, k in scored[:count]]

    def apply(self, job: AccumJob, selected: list, part, outboxes: list) -> int:
        """Pop and apply the selected pending deltas in order; emissions
        append to ``outboxes[dest_pair]`` in application order."""
        acc = self.acc
        merge = acc.merge
        ident = acc.identity
        state = self.state
        pending = self.pending
        static_get = self.static.get
        update = job.update_fn
        emitted = 0

        def emit(dest, d):
            nonlocal emitted
            outboxes[part(dest)].append((dest, d))
            emitted += 1

        applied = 0
        for k in selected:
            d = pending.pop(k)
            old = state.get(k, ident)
            new = merge(old, d)
            state[k] = new
            applied += 1
            if new == old:
                continue  # no-op delta: nothing to propagate
            update(k, d, new, static_get(k), emit)
        self.updates_processed += applied
        self.deltas_emitted += emitted
        return applied

    def final_records(self) -> list:
        return sorted(self.state.items(), key=lambda kv: _order_key(kv[0]))


def partition_accum_inputs(
    job: AccumJob,
    delta_records,
    static_records,
    num_pairs: int,
    part=None,
) -> tuple[list[list], list[dict]]:
    """Partition the initial deltas and the static table exactly like
    the synchronous executors (same loop, same insertion order — the
    determinism contract's first link)."""
    if part is None:
        part = bind_partitioner(job.partitioner, num_pairs)
    delta_parts: list[list] = [[] for _ in range(num_pairs)]
    for rec in delta_records:
        delta_parts[part(rec[0])].append(rec)
    static_by_path = {k: dict(v) for k, v in (static_records or {}).items()}
    table = static_by_path.get(job.static_path or "", {})
    static_tables: list[dict] = [{} for _ in range(num_pairs)]
    for key, value in table.items():
        static_tables[part(key)][key] = value
    return delta_parts, static_tables


def partition_state(records, num_pairs: int, part) -> list[list]:
    """Partition warm-start state records with the same loop (and
    therefore insertion order) as the initial deltas."""
    parts: list[list] = [[] for _ in range(num_pairs)]
    if records is not None:
        for rec in records:
            parts[part(rec[0])].append(rec)
    return parts


def check_mode(mode: str) -> None:
    if mode not in ("sync", "async"):
        raise ConfigError(f"unknown accumulative mode {mode!r}")
