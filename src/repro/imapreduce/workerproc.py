"""Worker-process side of the real multiprocess backend.

One :func:`worker_main` process hosts a *set* of persistent map/reduce
task pairs for the whole job (§3.1: tasks are assigned once and live
for every iteration).  The static-data partitions for its pairs arrive
in the init blob and are deserialized exactly once; only state batches
cross process boundaries afterwards (§3.2's static/state separation).

Data plane
----------

* pair → paired next-iteration map: in-process (the paper's persistent
  local socket degenerates to a buffer when the pair is co-located);
* cross-pair shuffle / multi-phase repartition / one2all broadcast:
  a mesh of queues, one inbound queue per worker, every message tagged
  ``(kind, iteration, phase, source worker)``.  A worker advances as
  soon as *its own* inputs for the next step are complete — there is no
  coordinator barrier on the data path, mirroring §3.3's asynchronous
  map start (a pair's map for iteration k+1 begins the moment its
  reduce output for k and the peer batches arrive, even while other
  workers still finish iteration k).

Control plane (coordinator queue): per-iteration distance partials and
state snapshots (only when the job measures a distance, runs an aux
phase, or keeps history), and the final state.  Jobs that terminate by
``maxiter`` alone free-run: workers cross zero synchronization points
per iteration beyond the data mesh itself.

Determinism contract: every step processes pairs in ascending pair id
and assembles incoming batches in ascending source-pair order, so
reduce value lists — and therefore every float fold — are ordered
exactly as :func:`~repro.imapreduce.localrun.run_local` orders them.
The differential oracle can demand record-for-record equality.
"""

from __future__ import annotations

import pickle
import traceback
from typing import Any

from ..common.partition import bind_partitioner
from ..common.records import group_by_key
from ..mapreduce.api import Context
from .localrun import map_pair, order_key, sorted_static

__all__ = ["WorkerConfig", "worker_main"]

#: Control-plane message kinds (worker → coordinator).
ITER_REPORT = "iter"
FINAL_REPORT = "final"
ERROR_REPORT = "error"
#: Coordinator → worker.
VERDICT = "verdict"
CONTINUE = "continue"
#: Worker ↔ worker data-plane kinds.
SHUFFLE = "shuffle"
REPART = "repart"
BCAST = "bcast"


class WorkerConfig:
    """Everything one worker needs, shipped as a single pickle blob.

    The blob is pickled explicitly by the coordinator (not implicitly by
    the spawn machinery) so the job's pickle round-trip is exercised on
    every backend start regardless of the multiprocessing start method.
    """

    def __init__(
        self,
        worker_id: int,
        num_workers: int,
        num_pairs: int,
        job,
        state_parts: dict[int, list],
        static_parts: list[dict[int, dict]],
        send_state: bool,
        wait_verdict: bool,
    ):
        self.worker_id = worker_id
        self.num_workers = num_workers
        self.num_pairs = num_pairs
        self.job = job
        self.state_parts = state_parts  # pair -> records (this worker's pairs)
        self.static_parts = static_parts  # [phase] -> pair -> key->static
        self.send_state = send_state
        self.wait_verdict = wait_verdict

    def to_blob(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_blob(blob: bytes) -> "WorkerConfig":
        return pickle.loads(blob)


def _owner(pair: int, num_workers: int) -> int:
    """The static pair→worker assignment (round-robin, fixed for the job)."""
    return pair % num_workers


class _Inbox:
    """Buffered receive with out-of-order stashing.

    A fast worker may deliver its phase-``k+1`` batch while this worker
    still waits on a slow peer's phase-``k`` batch; anything not yet
    wanted is stashed under its ``(kind, iteration, phase)`` slot and
    found there when the step catches up.
    """

    def __init__(self, queue, worker_id: int):
        self._queue = queue
        self._id = worker_id
        self._stash: dict[tuple, dict[int, Any]] = {}
        self._verdicts: dict[int, str] = {}

    def _pump(self, timeout: float | None) -> None:
        msg = self._queue.get(timeout=timeout)
        kind = msg[0]
        if kind == VERDICT:
            _, iteration, verdict = msg
            self._verdicts[iteration] = verdict
        else:
            kind, iteration, phase, src, payload = msg
            self._stash.setdefault((kind, iteration, phase), {})[src] = payload

    def gather(
        self, kind: str, iteration: int, phase: int, sources: list[int],
        timeout: float | None,
    ) -> dict[int, Any]:
        """Block until a ``kind`` batch from every source has arrived."""
        if not sources:  # single worker: nothing to wait for
            return {}
        slot = (kind, iteration, phase)
        while True:
            have = self._stash.get(slot)
            if have is not None and all(s in have for s in sources):
                return self._stash.pop(slot)
            self._pump(timeout)

    def verdict(self, iteration: int, timeout: float | None) -> str:
        while iteration not in self._verdicts:
            self._pump(timeout)
        return self._verdicts.pop(iteration)


def worker_main(
    blob: bytes, inboxes: list, coordinator, timeout: float | None = None
) -> None:
    """Process entry point: run every iteration for this worker's pairs."""
    try:
        _worker_loop(WorkerConfig.from_blob(blob), inboxes, coordinator, timeout)
    except BaseException:
        wid = -1
        try:
            wid = WorkerConfig.from_blob(blob).worker_id
        except Exception:
            pass
        coordinator.put((ERROR_REPORT, wid, traceback.format_exc()))


def _worker_loop(
    cfg: WorkerConfig, inboxes: list, coordinator, timeout: float | None
) -> None:
    job = cfg.job
    wid = cfg.worker_id
    num_workers = cfg.num_workers
    num_pairs = cfg.num_pairs
    phases = job.phases
    last_phase = len(phases) - 1
    my_pairs = sorted(cfg.state_parts)
    peers = [w for w in range(num_workers) if w != wid]
    inbox = _Inbox(inboxes[wid], wid)
    part = bind_partitioner(job.partitioner, num_pairs)
    distance_fn = job.distance_fn

    # Static data: deserialized from the init blob exactly once for the
    # whole job; iterations only ever read it (§3.2.1).  ``static_loads``
    # is the observable the wall-clock benchmark asserts on.
    static_parts = cfg.static_parts
    static_sorted = [
        {p: sorted_static(per_pair[p]) for p in my_pairs}
        if phase.mapping == "one2all"
        else None
        for phase, per_pair in zip(phases, static_parts)
    ]
    static_loads = 1
    stats = {
        "worker": wid,
        "pairs": list(my_pairs),
        "static_loads": static_loads,
        "static_records": sum(len(d) for per in static_parts for d in per.values()),
        "records_sent": 0,
        "batches_sent": 0,
    }

    def send_batches(kind: str, iteration: int, phase: int, routed: dict[int, dict]):
        """Ship per-destination-worker batches; empty batches still go so
        receivers can count arrivals instead of timing out."""
        for w in peers:
            payload = routed.get(w) or {}
            inboxes[w].put((kind, iteration, phase, wid, payload))
            stats["batches_sent"] += 1
            stats["records_sent"] += sum(
                len(recs) for by_src in payload.values() for recs in by_src.values()
            )
        return routed.get(wid) or {}

    current: dict[int, list] = {p: list(recs) for p, recs in cfg.state_parts.items()}
    prev: dict[int, dict] | None = (
        {p: dict(recs) for p, recs in current.items()}
        if distance_fn is not None
        else None
    )

    max_iterations = job.max_iterations if job.max_iterations is not None else 10**9
    iterations_run = 0
    terminated_by = ""

    for iteration in range(max_iterations):
        for phase_index, phase in enumerate(phases):
            one2all = phase.mapping == "one2all"
            broadcast = None
            if one2all:
                # All-gather the phase input so every map sees the full
                # broadcast state, in the reference executor's order.
                mine = {p: current.get(p, []) for p in my_pairs}
                for w in peers:
                    inboxes[w].put((BCAST, iteration, phase_index, wid, mine))
                    stats["batches_sent"] += 1
                gathered = inbox.gather(BCAST, iteration, phase_index, peers, timeout)
                gathered[wid] = mine
                by_pair: dict[int, list] = {}
                for batch in gathered.values():
                    by_pair.update(batch)
                # Flatten in ascending pair order before sorting so ties
                # under the (stable) sort match the serial executor.
                broadcast = sorted(
                    (
                        rec
                        for p in range(num_pairs)
                        for rec in by_pair.get(p, ())
                    ),
                    key=lambda kv: order_key(kv[0]),
                )

            # ---- map (+ combiner), then route to the reduce side ----
            routed: dict[int, dict[int, dict[int, list]]] = {}
            phase_static = static_parts[phase_index]
            phase_sorted = static_sorted[phase_index]
            for p in my_pairs:
                emitted = map_pair(
                    phase,
                    current.get(p, []),
                    phase_static[p],
                    phase_sorted[p] if phase_sorted is not None else None,
                    broadcast,
                    part,
                )
                for rec in emitted:
                    q = part(rec[0])
                    routed.setdefault(_owner(q, num_workers), {}).setdefault(
                        q, {}
                    ).setdefault(p, []).append(rec)
            local = send_batches(SHUFFLE, iteration, phase_index, routed)
            arrived = inbox.gather(SHUFFLE, iteration, phase_index, peers, timeout)
            arrived[wid] = local

            # ---- reduce ----
            # Reduce inputs are concatenated in ascending source-pair
            # order (not arrival order): float folds must see values in
            # the serial executor's sequence.
            out_parts: dict[int, list] = {}
            for q in my_pairs:
                records: list = []
                for src_pair in range(num_pairs):
                    by_src = arrived.get(_owner(src_pair, num_workers))
                    if by_src:
                        records.extend(by_src.get(q, {}).get(src_pair, ()))
                ctx = Context()
                for key, values in group_by_key(records):
                    phase.reduce_fn(key, values, ctx)
                out_parts[q] = ctx.take()

            if phase_index == last_phase:
                # Persistent pair channel: reduce k's output is map k+1's
                # input for the same pair, never leaving this process.
                current = out_parts
            else:
                # Multi-phase routing (§5.2): repartition to the next
                # phase's maps across the mesh.
                routed = {}
                for q in my_pairs:
                    for rec in out_parts[q]:
                        dest = part(rec[0])
                        routed.setdefault(_owner(dest, num_workers), {}).setdefault(
                            dest, {}
                        ).setdefault(q, []).append(rec)
                local = send_batches(REPART, iteration, phase_index, routed)
                arrived = inbox.gather(REPART, iteration, phase_index, peers, timeout)
                arrived[wid] = local
                current = {}
                for p in my_pairs:
                    records = []
                    for src_pair in range(num_pairs):
                        by_src = arrived.get(_owner(src_pair, num_workers))
                        if by_src:
                            records.extend(by_src.get(p, {}).get(src_pair, ()))
                    current[p] = records

        iterations_run = iteration + 1

        # ---- per-iteration control-plane report ----
        report: dict[str, Any] = {}
        if distance_fn is not None and prev is not None:
            partials = {}
            for p in my_pairs:
                prev_get = prev[p].get
                partial = 0.0
                for key, value in current.get(p, []):
                    partial += distance_fn(key, prev_get(key), value)
                partials[p] = partial
                prev[p] = dict(current.get(p, []))
            report["distance"] = partials
        if cfg.send_state:
            report["state"] = {p: current.get(p, []) for p in my_pairs}
        if report or cfg.wait_verdict:
            coordinator.put((ITER_REPORT, wid, iteration, report))
        if cfg.wait_verdict:
            verdict = inbox.verdict(iteration, timeout)
            if verdict != CONTINUE:
                terminated_by = verdict
                break

    coordinator.put(
        (
            FINAL_REPORT,
            wid,
            {
                "state": {p: current.get(p, []) for p in my_pairs},
                "iterations_run": iterations_run,
                "terminated_by": terminated_by,
                "stats": stats,
            },
        )
    )
