"""Worker-process side of the real multiprocess backend.

One :func:`worker_main` process hosts a *set* of persistent map/reduce
task pairs for the whole job (§3.1: tasks are assigned once and live
for every iteration).  The static-data partitions for its pairs arrive
in the init blob and are deserialized exactly once; only state batches
cross process boundaries afterwards (§3.2's static/state separation).

Data plane
----------

The mesh is a set of point-to-point OS pipes — one
:class:`multiprocessing.connection.Connection` per ordered worker pair —
plus a verdict pipe from and a report pipe to the coordinator.  On the
wire every logical message is a *frame*:

* a small pickled header ``(kind, iteration, phase, src, buf_sizes)``;
* for data frames, one payload pickle (protocol 5) whose large leaves
  (numpy state: centroids, coordinate vectors) are split out by
  ``buffer_callback`` and written as raw out-of-band parts straight from
  the array memory — the array bytes are never copied into the pickle
  stream, and the receiver reads them into fresh writable storage with
  ``recv_bytes_into`` (one unavoidable pipe copy, nothing else);
* header-only *manifest* frames (``buf_sizes is None``) replace the
  empty batches the dense protocol used to pickle and ship to every
  peer on every phase: a sender that feeds a destination ships data, a
  sender that does not ships the 60-byte manifest, and receivers count
  arrivals (data or manifest) against the peer set instead of timing
  out.  ``batches_sent`` counts only data frames.

Shuffle payloads are a flat ``[(dest_pair, src_pair, records), ...]``
list — one pickle per destination worker — instead of the old nested
``pair → src_pair → list`` dict-of-dicts.  Route decisions
(``part(key) → (owner_worker, pair)``) are memoized per worker: the key
universe of graph workloads is stable, so after the first iteration the
partitioner is never re-evaluated on the hot path.

The one2all broadcast (§5.1) is hoisted: every worker sends its state
parts to pair-0's owner, which flattens in ascending pair order, sorts
*once*, and ships the sorted broadcast back — ``2(W-1)`` messages and
one sort per iteration instead of ``W(W-1)`` messages and ``W`` sorts.

All sends go through a per-worker feeder thread, so the main thread
never blocks on a full pipe (two workers exchanging batches larger than
the pipe buffer would otherwise deadlock); serialization stays on the
main thread so the profiler can attribute it.

Control plane: per-iteration distance partials and state snapshots
(only when the job measures a distance, runs an aux phase, or keeps
history), and the final state.  Jobs that terminate by ``maxiter``
alone free-run: workers cross zero synchronization points per
iteration beyond the data mesh itself.

Profiler: every worker accumulates wall-time per phase of its loop —
``map, combine, serialize, deserialize, send, wait, reduce, report,
checkpoint, recover`` — into ``stats["phase_seconds"]``, surfaced by
``repro bench --profile``.

Fault tolerance (§3.4): when the coordinator arms checkpointing, each
worker spools its pair states to disk every ``checkpoint_every``
iterations through :class:`~repro.imapreduce.checkpoint.CheckpointStore`
and reports the file receipt; a heartbeat thread multiplexes liveness
beacons onto the report pipe so a SIGSTOPped (not just dead) worker is
detectable.  Respawned workers start at ``cfg.start_iteration`` from
restored state — see :mod:`.parallel` for the recovery protocol.

Determinism contract: every step processes pairs in ascending pair id
and assembles incoming batches in ascending source-pair order, so
reduce value lists — and therefore every float fold — are ordered
exactly as :func:`~repro.imapreduce.localrun.run_local` orders them.
The differential oracle can demand record-for-record equality.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
import traceback
from multiprocessing.connection import wait as _conn_wait
from typing import Any

from ..common.partition import bind_partitioner
from ..common.records import group_by_key
from ..mapreduce.api import Context
from .accum import AccumJob, AccumPair
from .checkpoint import CheckpointStore, fire_fault
from .columnar import (
    concat_broadcast,
    decode_columnar,
    encode_columnar,
    kernel_enabled,
    merge_columnar,
    route_columnar,
)
from .localrun import map_pair, order_key, sorted_static

__all__ = ["WorkerConfig", "worker_main", "PHASE_COUNTERS", "PEER_LOST_EXIT"]

#: Control-plane message kinds (worker → coordinator).
ITER_REPORT = "iter"
FINAL_REPORT = "final"
ERROR_REPORT = "error"
#: Liveness beacon (worker → coordinator, header-only, off the stats).
HEARTBEAT = "hb"
#: Checkpoint spool-file receipt (worker → coordinator).
CKPT_REPORT = "ckpt"
#: Coordinator → worker.
VERDICT = "verdict"
CONTINUE = "continue"
#: Worker ↔ worker data-plane kinds.
SHUFFLE = "shuffle"
REPART = "repart"
BCAST = "bcast"
BCAST_SORTED = "bcast+"

#: Wire pickle protocol: 5 for out-of-band buffer support.
_PROTOCOL = 5

#: The profiler's wall-time counters, in reporting order.  ``kernel``
#: attributes the columnar path's compute (prepare + map_kernel + merge
#: + finalize + broadcast assembly); it stays zero on the record path,
#: whose compute lands in ``map``/``combine``/``reduce``.  ``checkpoint``
#: is the durable-spool write path (§3.4.1) and ``recover`` the
#: restore-from-checkpoint load after a respawn; both stay zero on an
#: unfaulted run without checkpointing.  ``schedule`` (priority scoring
#: + selection) and ``delta`` (apply/emit/absorb) belong to the
#: accumulative Maiter-mode loop and stay zero on synchronous jobs.
PHASE_COUNTERS = (
    "map",
    "combine",
    "kernel",
    "schedule",
    "delta",
    "serialize",
    "deserialize",
    "send",
    "wait",
    "reduce",
    "report",
    "checkpoint",
    "recover",
)

#: Exit code for a worker that lost a peer or coordinator pipe (EOF /
#: EPIPE under the spawn start method when a sibling dies).  It is a
#: *quiet* exit — no error frame — because the root cause is the peer's
#: death, which the coordinator detects and recovers on its own.
PEER_LOST_EXIT = 3

#: Sender-side marker for a header-only manifest frame (never pickled).
_NO_PAYLOAD = object()


# ------------------------------------------------------------- framing --
def encode_frame(kind, iteration: int, phase: int, src: int, payload):
    """Build one wire frame; returns ``(parts, nbytes)``.

    ``parts`` is the list of byte-likes to ship with consecutive
    ``send_bytes`` calls on one connection: header, then (for data
    frames) the payload pickle, then each out-of-band buffer written
    directly from its source memory.
    """
    if payload is _NO_PAYLOAD:
        header = pickle.dumps(
            (kind, iteration, phase, src, None), protocol=_PROTOCOL
        )
        return [header], len(header)
    buffers: list = []
    data = pickle.dumps(payload, protocol=_PROTOCOL, buffer_callback=buffers.append)
    try:
        raws = [b.raw() for b in buffers]
    except BufferError:  # pragma: no cover - non-contiguous exotic buffer
        data = pickle.dumps(payload, protocol=_PROTOCOL)
        raws = []
    sizes = tuple(r.nbytes for r in raws)
    header = pickle.dumps(
        (kind, iteration, phase, src, sizes), protocol=_PROTOCOL
    )
    nbytes = len(header) + len(data) + sum(sizes)
    return [header, data, *raws], nbytes


def read_frame(conn):
    """Read one frame; returns ``(kind, iteration, phase, src, payload,
    nbytes)`` — ``payload is None`` for header-only manifest frames.

    Out-of-band buffers are received into fresh ``bytearray`` storage so
    reconstructed numpy arrays stay writable.
    """
    header = conn.recv_bytes()
    kind, iteration, phase, src, sizes = pickle.loads(header)
    if sizes is None:
        return kind, iteration, phase, src, None, len(header)
    data = conn.recv_bytes()
    nbytes = len(header) + len(data)
    if sizes:
        buffers = []
        for size in sizes:
            buf = bytearray(size)
            conn.recv_bytes_into(buf)
            buffers.append(buf)
            nbytes += size
        payload = pickle.loads(data, buffers=buffers)
    else:
        payload = pickle.loads(data)
    return kind, iteration, phase, src, payload, nbytes


class WorkerConfig:
    """Everything one worker needs, shipped as a single pickle blob.

    The blob is pickled explicitly by the coordinator (not implicitly by
    the spawn machinery) so the job's pickle round-trip is exercised on
    every backend start regardless of the multiprocessing start method.
    """

    def __init__(
        self,
        worker_id: int,
        num_workers: int,
        num_pairs: int,
        job,
        state_parts: dict[int, list],
        static_parts: list[dict[int, dict]],
        send_state: bool,
        wait_verdict: bool,
        *,
        generation: int = 0,
        start_iteration: int = 0,
        owner_of: list[int] | None = None,
        checkpoint_every: int | None = None,
        spool_dir: str | None = None,
        faults: tuple = (),
        columnar_state: bool = False,
        accum_mode: str = "async",
        accum_initial_state: dict[int, list] | None = None,
    ):
        self.worker_id = worker_id
        self.num_workers = num_workers
        self.num_pairs = num_pairs
        self.job = job
        self.state_parts = state_parts  # pair -> records (this worker's pairs)
        self.static_parts = static_parts  # [phase] -> pair -> key->static
        self.send_state = send_state
        self.wait_verdict = wait_verdict
        #: Incarnation of the whole mesh; bumped on every recovery so a
        #: replayed iteration does not re-fire generation-0 fault plans.
        self.generation = generation
        #: First iteration this mesh runs (checkpoint iteration + 1).
        self.start_iteration = start_iteration
        #: Explicit pair→worker map (round-robin when ``None``); made
        #: explicit so recovery can reassign a dead worker's pairs.
        self.owner_of = owner_of
        self.checkpoint_every = checkpoint_every
        self.spool_dir = spool_dir
        #: Seeded self-inflicted process faults (:class:`ProcFault`).
        self.faults = tuple(faults)
        #: ``state_parts`` holds restored columnar ``(keys, values)``
        #: arrays instead of record lists.
        self.columnar_state = columnar_state
        #: Accumulative jobs only: the round scheduling mode
        #: (``"sync"`` drains every pending delta, ``"async"`` the
        #: top-priority fraction).
        self.accum_mode = accum_mode
        #: Accumulative warm start (incremental mode): pair → memoized
        #: converged records, preloaded into the pairs' state without
        #: propagation; ``state_parts`` then carries only the
        #: change-scoped perturbation deltas.
        self.accum_initial_state = accum_initial_state

    def resolved_owner_of(self) -> list[int]:
        if self.owner_of is not None:
            return list(self.owner_of)
        return [p % self.num_workers for p in range(self.num_pairs)]

    def to_blob(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_blob(blob: bytes) -> "WorkerConfig":
        return pickle.loads(blob)


class _Feeder(threading.Thread):
    """Per-worker sender thread: the main thread frames and enqueues,
    the feeder performs the (possibly blocking) pipe writes.

    Decoupling sends from the worker loop is what makes the pipe mesh
    deadlock-free: main threads only ever block *reading*, so some
    receiver is always draining and every blocked write eventually
    completes.  ``seconds`` accumulates actual write wall-time for the
    profiler's ``send`` counter (read after :meth:`flush`).
    """

    def __init__(self, worker_id: int):
        super().__init__(name=f"imr-feeder-{worker_id}", daemon=True)
        self._q: queue.Queue = queue.Queue()
        self.seconds = 0.0
        self.error: BaseException | None = None

    def run(self) -> None:
        while True:
            item = self._q.get()
            if item is None:
                self._q.task_done()
                return
            conn, parts = item
            started = time.perf_counter()
            try:
                for part in parts:
                    conn.send_bytes(part)
            except BaseException as exc:  # surfaced on the next send/flush
                if self.error is None:
                    self.error = exc
            self.seconds += time.perf_counter() - started
            self._q.task_done()

    def send(self, conn, parts) -> None:
        if self.error is not None:
            raise self.error
        self._q.put((conn, parts))

    def flush(self) -> None:
        """Block until every enqueued frame hit the pipe."""
        self._q.join()
        if self.error is not None:
            raise self.error

    def stop(self) -> None:
        self._q.put(None)
        self.join(timeout=10.0)


class _PeerLost(Exception):
    """A mesh or coordinator pipe hit EOF/EPIPE: a peer process died.

    Raised instead of letting the raw OS error bubble into an error
    frame — the death is the *peer's* story, and the coordinator hears
    it from that peer's sentinel.  The holder exits quietly with
    :data:`PEER_LOST_EXIT` so recovery treats it as collateral, not as a
    deterministic worker bug."""


class _Heartbeat(threading.Thread):
    """Liveness beacon: one header-only frame onto the report pipe every
    ``interval`` seconds, routed through the feeder so beacon writes can
    never interleave with (and corrupt) a data frame mid-parts.

    Runs through SIGSTOP detection's *negative* space: a stopped process
    freezes this thread with everything else, the beacons cease, and the
    coordinator's suspicion timeout fires.
    """

    def __init__(self, feeder: "_Feeder", conn, worker_id: int, interval: float):
        super().__init__(name=f"imr-heartbeat-{worker_id}", daemon=True)
        self._feeder = feeder
        self._conn = conn
        self._interval = interval
        self._parts, _ = encode_frame(HEARTBEAT, 0, 0, worker_id, _NO_PAYLOAD)
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            try:
                self._feeder.send(self._conn, self._parts)
            except BaseException:
                return  # pipe gone: the main thread is already failing

    def stop(self) -> None:
        self._halt.set()


def _fire_faults(cfg: WorkerConfig, iteration: int, phase: int) -> None:
    """Self-inflict any seeded fault scheduled for this exact point."""
    for fault in cfg.faults:
        if fault.matches(cfg.generation, cfg.worker_id, iteration, phase):
            fire_fault(fault)


class _Inbox:
    """Readiness-based receive with out-of-order stashing.

    Blocks in :func:`multiprocessing.connection.wait` over every inbound
    connection (peer mesh pipes + the coordinator's verdict pipe), so a
    ready message costs microseconds, not a poll interval.  A fast
    worker may deliver its phase-``k+1`` frame while this worker still
    waits on a slow peer's phase-``k`` frame; anything not yet wanted is
    stashed under its ``(kind, iteration, phase)`` slot and found there
    when the step catches up.
    """

    def __init__(self, conns: list, timings: dict[str, float]):
        self._conns = list(conns)
        self._timings = timings
        self._stash: dict[tuple, dict[int, Any]] = {}
        self._verdicts: dict[int, str] = {}

    def _pump(self, timeout: float | None) -> None:
        timings = self._timings
        started = time.perf_counter()
        ready = _conn_wait(self._conns, timeout)
        timings["wait"] += time.perf_counter() - started
        if not ready:
            raise TimeoutError(f"no mesh message within {timeout}s")
        for conn in ready:
            started = time.perf_counter()
            kind, iteration, phase, src, payload, _ = read_frame(conn)
            timings["deserialize"] += time.perf_counter() - started
            if kind == VERDICT:
                self._verdicts[iteration] = payload
            else:
                self._stash.setdefault((kind, iteration, phase), {})[src] = payload

    def gather(
        self, kind: str, iteration: int, phase: int, sources: list[int],
        timeout: float | None,
    ) -> dict[int, Any]:
        """Block until a frame (data or manifest) from every source
        arrived; manifest senders appear with a ``None`` payload."""
        if not sources:  # single worker: nothing to wait for
            return {}
        slot = (kind, iteration, phase)
        while True:
            have = self._stash.get(slot)
            if have is not None and all(s in have for s in sources):
                return self._stash.pop(slot)
            self._pump(timeout)

    def verdict(self, iteration: int, timeout: float | None) -> str:
        while iteration not in self._verdicts:
            self._pump(timeout)
        return self._verdicts.pop(iteration)


def worker_main(
    worker_id: int,
    blob: bytes,
    peer_recv: dict[int, Any],
    peer_send: dict[int, Any],
    verdict_conn,
    report_conn,
    timeout: float | None = None,
    heartbeat_interval: float | None = None,
) -> None:
    """Process entry point: run every iteration for this worker's pairs.

    ``worker_id`` and ``heartbeat_interval`` travel as their own
    arguments (not only inside ``blob``) so the error path never has to
    re-unpickle the whole config just to label a traceback — and so the
    liveness beacon starts *before* the potentially large blob unpickle,
    keeping startup inside the coordinator's suspicion window.
    """
    feeder: _Feeder | None = None
    heartbeat: _Heartbeat | None = None
    try:
        feeder = _Feeder(worker_id)
        feeder.start()
        if heartbeat_interval is not None:
            heartbeat = _Heartbeat(feeder, report_conn, worker_id, heartbeat_interval)
            heartbeat.start()
        cfg = WorkerConfig.from_blob(blob)
        if isinstance(cfg.job, AccumJob):
            loop = _worker_loop_accum
        elif kernel_enabled(cfg.job):
            loop = _worker_loop_kernel
        else:
            loop = _worker_loop
        loop(
            cfg, peer_recv, peer_send, verdict_conn, report_conn, feeder, timeout
        )
        feeder.flush()
        if heartbeat is not None:
            heartbeat.stop()
        feeder.stop()
    except (_PeerLost, EOFError, BrokenPipeError, ConnectionResetError):
        # A peer (or the coordinator) died under us: exit quietly with a
        # recognizable code.  The coordinator learns the root cause from
        # the dead peer's own sentinel; an error frame here would turn a
        # recoverable death into a spurious deterministic failure.
        raise SystemExit(PEER_LOST_EXIT)
    except BaseException:
        parts, _ = encode_frame(ERROR_REPORT, 0, 0, worker_id, traceback.format_exc())
        try:
            if feeder is not None and feeder.is_alive() and feeder.error is None:
                feeder.send(report_conn, parts)
                feeder.stop()
            else:
                for part in parts:
                    report_conn.send_bytes(part)
        except Exception:  # pragma: no cover - coordinator gone; sentinel
            pass  # detection still reports the death


def _worker_loop(
    cfg: WorkerConfig,
    peer_recv: dict[int, Any],
    peer_send: dict[int, Any],
    verdict_conn,
    report_conn,
    feeder: _Feeder,
    timeout: float | None,
) -> None:
    job = cfg.job
    wid = cfg.worker_id
    num_pairs = cfg.num_pairs
    phases = job.phases
    last_phase = len(phases) - 1
    my_pairs = sorted(cfg.state_parts)
    peers = sorted(peer_recv)
    part = bind_partitioner(job.partitioner, num_pairs)
    distance_fn = job.distance_fn
    owner_of = cfg.resolved_owner_of()
    perf = time.perf_counter

    timings = {name: 0.0 for name in PHASE_COUNTERS}
    inbox = _Inbox([*peer_recv.values(), verdict_conn], timings)
    ckpt_store = (
        CheckpointStore(cfg.spool_dir)
        if cfg.checkpoint_every and cfg.spool_dir
        else None
    )

    # Static data: deserialized from the init blob exactly once for the
    # whole job; iterations only ever read it (§3.2.1).  ``static_loads``
    # is the observable the wall-clock benchmark asserts on.
    static_parts = cfg.static_parts
    static_sorted = [
        {p: sorted_static(per_pair[p]) for p in my_pairs}
        if phase.mapping == "one2all"
        else None
        for phase, per_pair in zip(phases, static_parts)
    ]
    stats: dict[str, Any] = {
        "worker": wid,
        "pairs": list(my_pairs),
        "static_loads": 1,
        "static_records": sum(len(d) for per in static_parts for d in per.values()),
        "records_sent": 0,
        "batches_sent": 0,
        "manifest_frames": 0,
        "bytes_pickled": 0,
        "ckpt_writes": 0,
        "ckpt_bytes": 0,
    }

    # part(key) -> (owner worker, pair), memoized for the job's stable
    # key universe: after iteration 0 the partitioner never runs again
    # on the shuffle hot path.
    route_cache: dict[Any, tuple[int, int]] = {}
    cached_route = route_cache.get

    def ship(kind: str, iteration: int, phase: int, dest: int, payload) -> None:
        started = perf()
        parts, nbytes = encode_frame(kind, iteration, phase, wid, payload)
        timings["serialize"] += perf() - started
        stats["bytes_pickled"] += nbytes
        if payload is _NO_PAYLOAD:
            stats["manifest_frames"] += 1
        else:
            stats["batches_sent"] += 1
        feeder.send(peer_send[dest], parts)

    def exchange(
        kind: str, iteration: int, phase_index: int,
        routed: dict[int, dict[tuple[int, int], list]],
    ) -> dict[int, dict[int, list]]:
        """Skip-empty send + gather; returns ``dest_pair → src_pair →
        records`` merged over local and remote batches."""
        for v in peers:
            batch = routed.get(v)
            if batch:
                flat = [(q, src, recs) for (q, src), recs in batch.items()]
                ship(kind, iteration, phase_index, v, flat)
                stats["records_sent"] += sum(len(recs) for _, _, recs in flat)
            else:
                ship(kind, iteration, phase_index, v, _NO_PAYLOAD)
        merged: dict[int, dict[int, list]] = {}
        local = routed.get(wid)
        if local:
            for (q, src), recs in local.items():
                merged.setdefault(q, {})[src] = recs
        arrived = inbox.gather(kind, iteration, phase_index, peers, timeout)
        for batch in arrived.values():
            if batch:
                for q, src, recs in batch:
                    merged.setdefault(q, {})[src] = recs
        return merged

    def route(out_records: dict[int, list]) -> dict[int, dict[tuple[int, int], list]]:
        """Group emissions as ``dest_worker → (dest_pair, src_pair) →
        records`` through the memoized route cache."""
        routed: dict[int, dict[tuple[int, int], list]] = {}
        for src_pair, records in out_records.items():
            for rec in records:
                key = rec[0]
                hop = cached_route(key)
                if hop is None:
                    q = part(key)
                    hop = route_cache[key] = (owner_of[q], q)
                dest = routed.setdefault(hop[0], {})
                slot = (hop[1], src_pair)
                bucket = dest.get(slot)
                if bucket is None:
                    bucket = dest[slot] = []
                bucket.append(rec)
        return routed

    # State load: the initial partitions, or — after a recovery respawn —
    # the restored checkpoint's records.  The distance baseline ``prev``
    # is rebuilt from the same snapshot, which is exact: at the start of
    # iteration k+1 an unfaulted worker's ``prev`` is precisely the
    # state at the end of iteration k, i.e. what the checkpoint holds.
    started = perf()
    current: dict[int, list] = {p: list(recs) for p, recs in cfg.state_parts.items()}
    prev: dict[int, dict] | None = (
        {p: dict(recs) for p, recs in current.items()}
        if distance_fn is not None
        else None
    )
    if cfg.start_iteration:
        timings["recover"] += perf() - started

    max_iterations = job.max_iterations if job.max_iterations is not None else 10**9
    iterations_run = cfg.start_iteration
    terminated_by = ""
    sorter = owner_of[0]  # hoisted one2all sort runs here

    for iteration in range(cfg.start_iteration, max_iterations):
        for phase_index, phase in enumerate(phases):
            if cfg.faults:
                _fire_faults(cfg, iteration, phase_index)
            broadcast = None
            if phase.mapping == "one2all":
                # Hoisted all-gather: pair-0's owner flattens in
                # ascending pair order and sorts once; everyone else
                # receives the broadcast pre-sorted (§5.1).
                mine = [(p, current.get(p, [])) for p in my_pairs]
                if wid == sorter:
                    gathered = inbox.gather(BCAST, iteration, phase_index, peers, timeout)
                    by_pair = dict(mine)
                    for batch in gathered.values():
                        if batch:
                            for p, recs in batch:
                                by_pair[p] = recs
                    started = perf()
                    broadcast = sorted(
                        (
                            rec
                            for p in range(num_pairs)
                            for rec in by_pair.get(p, ())
                        ),
                        key=lambda kv: order_key(kv[0]),
                    )
                    timings["map"] += perf() - started
                    for v in peers:
                        ship(BCAST_SORTED, iteration, phase_index, v, broadcast)
                        stats["records_sent"] += len(broadcast)
                else:
                    if any(recs for _, recs in mine):
                        ship(BCAST, iteration, phase_index, sorter, mine)
                        stats["records_sent"] += sum(len(r) for _, r in mine)
                    else:
                        ship(BCAST, iteration, phase_index, sorter, _NO_PAYLOAD)
                    got = inbox.gather(
                        BCAST_SORTED, iteration, phase_index, [sorter], timeout
                    )
                    broadcast = got[sorter]

            # ---- map (+ combiner), then route to the reduce side ----
            phase_static = static_parts[phase_index]
            phase_sorted = static_sorted[phase_index]
            emitted_by_pair: dict[int, list] = {}
            for p in my_pairs:
                emitted_by_pair[p] = map_pair(
                    phase,
                    current.get(p, []),
                    phase_static[p],
                    phase_sorted[p] if phase_sorted is not None else None,
                    broadcast,
                    part,
                    timings=timings,
                )
            merged = exchange(
                SHUFFLE, iteration, phase_index, route(emitted_by_pair)
            )

            # ---- reduce ----
            # Reduce inputs are concatenated in ascending source-pair
            # order (not arrival order): float folds must see values in
            # the serial executor's sequence.
            started = perf()
            out_parts: dict[int, list] = {}
            for q in my_pairs:
                records: list = []
                by_src = merged.get(q)
                if by_src:
                    for src_pair in range(num_pairs):
                        recs = by_src.get(src_pair)
                        if recs:
                            records.extend(recs)
                ctx = Context()
                for key, values in group_by_key(records):
                    phase.reduce_fn(key, values, ctx)
                out_parts[q] = ctx.take()
            timings["reduce"] += perf() - started

            if phase_index == last_phase:
                # Persistent pair channel: reduce k's output is map k+1's
                # input for the same pair, never leaving this process.
                current = out_parts
            else:
                # Multi-phase routing (§5.2): repartition to the next
                # phase's maps across the mesh.
                merged = exchange(REPART, iteration, phase_index, route(out_parts))
                current = {}
                for p in my_pairs:
                    records = []
                    by_src = merged.get(p)
                    if by_src:
                        for src_pair in range(num_pairs):
                            recs = by_src.get(src_pair)
                            if recs:
                                records.extend(recs)
                    current[p] = records

        iterations_run = iteration + 1

        # ---- per-iteration control-plane report ----
        started = perf()
        report: dict[str, Any] = {}
        if distance_fn is not None and prev is not None:
            partials = {}
            for p in my_pairs:
                prev_get = prev[p].get
                partial = 0.0
                new_prev = {}  # built during the distance pass: no
                for key, value in current.get(p, ()):  # second rebuild
                    partial += distance_fn(key, prev_get(key), value)
                    new_prev[key] = value
                partials[p] = partial
                prev[p] = new_prev
            report["distance"] = partials
        if cfg.send_state:
            report["state"] = {p: current.get(p, []) for p in my_pairs}
        if report or cfg.wait_verdict:
            parts, nbytes = encode_frame(ITER_REPORT, iteration, 0, wid, report)
            stats["bytes_pickled"] += nbytes
            feeder.send(report_conn, parts)
        timings["report"] += perf() - started

        # ---- durable checkpoint (§3.4.1) ----
        # After the report, before the verdict: the report for iteration
        # k always reaches the coordinator ahead of the checkpoint
        # receipt on the same FIFO pipe, so a committed manifest is
        # never ahead of the merged control-plane state.
        if ckpt_store is not None and (iteration + 1) % cfg.checkpoint_every == 0:
            started = perf()
            entry = ckpt_store.write(
                cfg.generation, iteration, wid,
                {"path": "record", "pairs": {p: current.get(p, []) for p in my_pairs}},
            )
            stats["ckpt_writes"] += 1
            stats["ckpt_bytes"] += entry["bytes"]
            parts, _ = encode_frame(CKPT_REPORT, iteration, 0, wid, entry)
            feeder.send(report_conn, parts)
            timings["checkpoint"] += perf() - started

        if cfg.wait_verdict:
            verdict = inbox.verdict(iteration, timeout)
            if verdict != CONTINUE:
                terminated_by = verdict
                break

    feeder.flush()  # pick up the feeder's write time before reporting
    timings["send"] = feeder.seconds
    stats["phase_seconds"] = {k: round(v, 6) for k, v in timings.items()}
    stats["route_cache_size"] = len(route_cache)
    final = {
        "state": {p: current.get(p, []) for p in my_pairs},
        "iterations_run": iterations_run,
        "terminated_by": terminated_by,
        "stats": stats,
    }
    parts, _ = encode_frame(FINAL_REPORT, iterations_run, 0, wid, final)
    feeder.send(report_conn, parts)


def _worker_loop_accum(
    cfg: WorkerConfig,
    peer_recv: dict[int, Any],
    peer_send: dict[int, Any],
    verdict_conn,
    report_conn,
    feeder: _Feeder,
    timeout: float | None,
) -> None:
    """Accumulative (Maiter-mode) worker loop.

    Rounds are mass-checked *before* they execute: at the top of each
    round the worker reports its per-pair pending-priority masses (round
    0 reports the initial deltas' mass) plus its cumulative work
    counters, then blocks on the coordinator's verdict.  On CONTINUE it
    drains its pairs' priority queues (``cfg.accum_mode`` selects sync
    or top-fraction async scheduling), applies the deltas, and exchanges
    only the nonzero delta batches over the skip-empty shuffle — a
    silent pair costs one manifest frame, and a converged worker's
    entire round is manifests.

    Determinism contract: pairs ascending, arriving batches absorbed in
    ascending source-pair order, and the coordinator folds per-pair
    masses in ascending pair order — the exact operation sequence of
    :func:`~repro.imapreduce.localrun.run_accum_local`, so serial and
    parallel runs of the same mode are record-for-record identical
    (floats included).
    """
    job = cfg.job
    wid = cfg.worker_id
    num_pairs = cfg.num_pairs
    mode = cfg.accum_mode
    frac = job.top_fraction
    my_pairs = sorted(cfg.state_parts)
    peers = sorted(peer_recv)
    part = bind_partitioner(job.partitioner, num_pairs)
    owner_of = cfg.resolved_owner_of()
    perf = time.perf_counter

    timings = {name: 0.0 for name in PHASE_COUNTERS}
    inbox = _Inbox([*peer_recv.values(), verdict_conn], timings)

    static_tables = cfg.static_parts[0]
    stats: dict[str, Any] = {
        "worker": wid,
        "pairs": list(my_pairs),
        "static_loads": 1,
        "static_records": sum(len(d) for d in static_tables.values()),
        "records_sent": 0,
        "batches_sent": 0,
        "manifest_frames": 0,
        "bytes_pickled": 0,
        "ckpt_writes": 0,
        "ckpt_bytes": 0,
    }

    warm = cfg.accum_initial_state or {}
    pairs = {
        p: AccumPair(
            p,
            job.accumulator,
            static_tables[p],
            keys=static_tables[p],
            initial_state=warm.get(p),
        )
        for p in my_pairs
    }
    for p in my_pairs:
        pairs[p].absorb(cfg.state_parts[p])

    def ship(kind: str, iteration: int, dest: int, payload) -> None:
        started = perf()
        parts, nbytes = encode_frame(kind, iteration, 0, wid, payload)
        timings["serialize"] += perf() - started
        stats["bytes_pickled"] += nbytes
        if payload is _NO_PAYLOAD:
            stats["manifest_frames"] += 1
        else:
            stats["batches_sent"] += 1
        feeder.send(peer_send[dest], parts)

    def exchange(
        iteration: int, routed: dict[int, dict[tuple[int, int], list]]
    ) -> dict[int, dict[int, list]]:
        """Skip-empty delta send + gather (the synchronous loop's
        contract verbatim): data frames only to fed destinations,
        manifests elsewhere, merged as dest_pair → src_pair → records."""
        for v in peers:
            batch = routed.get(v)
            if batch:
                flat = [(q, src, recs) for (q, src), recs in batch.items()]
                ship(SHUFFLE, iteration, v, flat)
                stats["records_sent"] += sum(len(recs) for _, _, recs in flat)
            else:
                ship(SHUFFLE, iteration, v, _NO_PAYLOAD)
        merged: dict[int, dict[int, list]] = {}
        local = routed.get(wid)
        if local:
            for (q, src), recs in local.items():
                merged.setdefault(q, {})[src] = recs
        arrived = inbox.gather(SHUFFLE, iteration, 0, peers, timeout)
        for batch in arrived.values():
            if batch:
                for q, src, recs in batch:
                    merged.setdefault(q, {})[src] = recs
        return merged

    shipped = 0  # cumulative cross-pair delta records
    rnd = 0
    terminated_by = ""

    while True:
        # ---- pre-round mass report + verdict ----
        started = perf()
        masses = {p: pairs[p].mass() for p in my_pairs}
        timings["schedule"] += perf() - started
        started = perf()
        report = {
            "mass": masses,
            "updates": sum(pairs[p].updates_processed for p in my_pairs),
            "emitted": sum(pairs[p].deltas_emitted for p in my_pairs),
            "shipped": shipped,
        }
        parts, nbytes = encode_frame(ITER_REPORT, rnd, 0, wid, report)
        stats["bytes_pickled"] += nbytes
        feeder.send(report_conn, parts)
        timings["report"] += perf() - started
        verdict = inbox.verdict(rnd, timeout)
        if verdict != CONTINUE:
            terminated_by = verdict
            break

        # ---- select (priority queues) ----
        started = perf()
        selections = {p: pairs[p].select(mode, frac) for p in my_pairs}
        timings["schedule"] += perf() - started

        # ---- apply + emit ----
        started = perf()
        outboxes = {p: [[] for _ in range(num_pairs)] for p in my_pairs}
        for p in my_pairs:
            pairs[p].apply(job, selections[p], part, outboxes[p])
        routed: dict[int, dict[tuple[int, int], list]] = {}
        for p in my_pairs:
            for q in range(num_pairs):
                recs = outboxes[p][q]
                if recs:
                    routed.setdefault(owner_of[q], {})[(q, p)] = recs
                    if q != p:
                        shipped += len(recs)
        timings["delta"] += perf() - started

        merged = exchange(rnd, routed)

        # ---- absorb (ascending source-pair order) ----
        started = perf()
        for q in my_pairs:
            by_src = merged.get(q)
            if by_src:
                target = pairs[q]
                for src in range(num_pairs):
                    recs = by_src.get(src)
                    if recs:
                        target.absorb(recs)
        timings["delta"] += perf() - started
        rnd += 1

    feeder.flush()
    timings["send"] = feeder.seconds
    stats["phase_seconds"] = {k: round(v, 6) for k, v in timings.items()}
    stats["updates_processed"] = sum(pairs[p].updates_processed for p in my_pairs)
    stats["deltas_emitted"] = sum(pairs[p].deltas_emitted for p in my_pairs)
    stats["deltas_shipped"] = shipped
    final = {
        "state": {p: pairs[p].final_records() for p in my_pairs},
        "iterations_run": rnd,
        "terminated_by": terminated_by,
        "stats": stats,
    }
    parts, _ = encode_frame(FINAL_REPORT, rnd, 0, wid, final)
    feeder.send(report_conn, parts)


def _worker_loop_kernel(
    cfg: WorkerConfig,
    peer_recv: dict[int, Any],
    peer_send: dict[int, Any],
    verdict_conn,
    report_conn,
    feeder: _Feeder,
    timeout: float | None,
) -> None:
    """The columnar twin of :func:`_worker_loop` for kernel-enabled jobs.

    State lives as per-pair ``(keys, values)`` arrays; each iteration is
    one ``map_kernel`` + one vectorized merge per pair.  Cross-pair
    traffic stays columnar end-to-end: shuffle payloads are flat
    ``[(dest_pair, src_pair, keys, values), ...]`` lists whose arrays
    ride the protocol-5 out-of-band buffer frames without per-record
    pickling.  The determinism contract is the serial columnar
    executor's: merges concatenate batches in ascending source-pair
    order and broadcast assembly sorts the same unique key array, so
    kernel-parallel results are bit-equal to kernel-serial ones.
    Control-plane reports decode to records, so the coordinator is
    path-agnostic.
    """
    job = cfg.job
    kernel = job.kernel
    wid = cfg.worker_id
    num_pairs = cfg.num_pairs
    phase = job.phases[0]
    one2all = phase.mapping == "one2all"
    my_pairs = sorted(cfg.state_parts)
    peers = sorted(peer_recv)
    part_array = job.partitioner.bind_array(num_pairs)
    distance_fn = job.distance_fn
    owner_of = cfg.resolved_owner_of()
    perf = time.perf_counter

    timings = {name: 0.0 for name in PHASE_COUNTERS}
    inbox = _Inbox([*peer_recv.values(), verdict_conn], timings)
    ckpt_store = (
        CheckpointStore(cfg.spool_dir)
        if cfg.checkpoint_every and cfg.spool_dir
        else None
    )

    # ---- columnar partition load: encode state, build static columns --
    # A restored checkpoint already holds the encoded (keys, values)
    # arrays — loading them back is the ``recover`` phase; the initial
    # encode from records is ``kernel`` time as before.
    started = perf()
    owned: dict[int, Any] = {}
    values: dict[int, Any] = {}
    if cfg.columnar_state:
        for p in my_pairs:
            owned[p], values[p] = cfg.state_parts[p]
    else:
        for p in my_pairs:
            owned[p], values[p] = encode_columnar(
                cfg.state_parts[p], kernel.state_dtype, kernel.state_width
            )
    timings["recover" if cfg.columnar_state else "kernel"] += perf() - started
    started = perf()
    static_tables = cfg.static_parts[0]
    prepared = {p: kernel.prepare(p, owned[p], static_tables[p]) for p in my_pairs}
    timings["kernel"] += perf() - started

    stats: dict[str, Any] = {
        "worker": wid,
        "pairs": list(my_pairs),
        "static_loads": 1,
        "static_records": sum(
            len(d) for per in cfg.static_parts for d in per.values()
        ),
        "records_sent": 0,
        "batches_sent": 0,
        "manifest_frames": 0,
        "bytes_pickled": 0,
        "ckpt_writes": 0,
        "ckpt_bytes": 0,
    }

    def ship(kind: str, iteration: int, dest: int, payload) -> None:
        started = perf()
        parts, nbytes = encode_frame(kind, iteration, 0, wid, payload)
        timings["serialize"] += perf() - started
        stats["bytes_pickled"] += nbytes
        if payload is _NO_PAYLOAD:
            stats["manifest_frames"] += 1
        else:
            stats["batches_sent"] += 1
        feeder.send(peer_send[dest], parts)

    def decoded_state() -> dict[int, list]:
        return {p: decode_columnar(owned[p], values[p]) for p in my_pairs}

    prev: dict[int, Any] | None = (
        {p: values[p].copy() for p in my_pairs}
        if distance_fn is not None
        else None
    )

    max_iterations = job.max_iterations if job.max_iterations is not None else 10**9
    iterations_run = cfg.start_iteration
    terminated_by = ""
    sorter = owner_of[0]

    for iteration in range(cfg.start_iteration, max_iterations):
        if cfg.faults:
            _fire_faults(cfg, iteration, 0)
        broadcast = None
        if one2all:
            # Hoisted all-gather, columnar: pair-0's owner concatenates
            # every pair's (keys, values) and sorts the unique key array
            # once; the sorted broadcast ships back as two arrays.
            mine = [(p, owned[p], values[p]) for p in my_pairs]
            if wid == sorter:
                gathered = inbox.gather(BCAST, iteration, 0, peers, timeout)
                parts_by_pair = {p: (k, v) for p, k, v in mine}
                for batch in gathered.values():
                    if batch:
                        for p, k, v in batch:
                            parts_by_pair[p] = (k, v)
                started = perf()
                broadcast = concat_broadcast(
                    [parts_by_pair[p] for p in sorted(parts_by_pair)]
                )
                timings["kernel"] += perf() - started
                for v in peers:
                    ship(BCAST_SORTED, iteration, v, broadcast)
                    stats["records_sent"] += int(broadcast[0].size)
            else:
                if any(k.size for _, k, _ in mine):
                    ship(BCAST, iteration, sorter, mine)
                    stats["records_sent"] += sum(int(k.size) for _, k, _ in mine)
                else:
                    ship(BCAST, iteration, sorter, _NO_PAYLOAD)
                got = inbox.gather(BCAST_SORTED, iteration, 0, [sorter], timeout)
                broadcast = got[sorter]

        # ---- map + route (columnar) ----
        started = perf()
        routed: dict[int, list] = {}  # dest worker -> [(q, src, keys, vals)]
        for p in my_pairs:
            out_keys, out_vals = kernel.map_kernel(
                p, owned[p], values[p], prepared[p], broadcast
            )
            for q, ks, vs in route_columnar(out_keys, out_vals, part_array, num_pairs):
                routed.setdefault(owner_of[q], []).append((q, p, ks, vs))
        timings["kernel"] += perf() - started

        # ---- skip-empty exchange ----
        for v in peers:
            batch = routed.get(v)
            if batch:
                ship(SHUFFLE, iteration, v, batch)
                stats["records_sent"] += sum(int(ks.size) for _, _, ks, _ in batch)
            else:
                ship(SHUFFLE, iteration, v, _NO_PAYLOAD)
        merged: dict[int, dict[int, tuple]] = {}  # q -> src -> (keys, vals)
        for q, src, ks, vs in routed.get(wid, ()):
            merged.setdefault(q, {})[src] = (ks, vs)
        arrived = inbox.gather(SHUFFLE, iteration, 0, peers, timeout)
        for batch in arrived.values():
            if batch:
                for q, src, ks, vs in batch:
                    merged.setdefault(q, {})[src] = (ks, vs)

        # ---- vectorized merge + finalize, ascending source order ----
        started = perf()
        for q in my_pairs:
            if owned[q].size == 0:
                continue
            by_src = merged.get(q, {})
            batches = [by_src[s] for s in range(num_pairs) if s in by_src]
            acc = merge_columnar(kernel, owned[q], batches)
            values[q] = kernel.finalize(q, owned[q], acc, values[q], prepared[q])
        timings["kernel"] += perf() - started
        iterations_run = iteration + 1

        # ---- per-iteration control-plane report ----
        started = perf()
        report: dict[str, Any] = {}
        if distance_fn is not None and prev is not None:
            partials = {}
            for p in my_pairs:
                partials[p] = (
                    kernel.distance_partial(owned[p], prev[p], values[p])
                    if owned[p].size
                    else 0.0
                )
                prev[p] = values[p].copy()
            report["distance"] = partials
        if cfg.send_state:
            report["state"] = decoded_state()
        if report or cfg.wait_verdict:
            parts, nbytes = encode_frame(ITER_REPORT, iteration, 0, wid, report)
            stats["bytes_pickled"] += nbytes
            feeder.send(report_conn, parts)
        timings["report"] += perf() - started

        # ---- durable checkpoint, columnar (§3.4.1): the encoded
        # (keys, values) arrays ride the same protocol-5 out-of-band
        # buffer path to disk that they ride over the mesh ----
        if ckpt_store is not None and (iteration + 1) % cfg.checkpoint_every == 0:
            started = perf()
            entry = ckpt_store.write(
                cfg.generation, iteration, wid,
                {
                    "path": "kernel",
                    "pairs": {p: (owned[p], values[p]) for p in my_pairs},
                },
            )
            stats["ckpt_writes"] += 1
            stats["ckpt_bytes"] += entry["bytes"]
            parts, _ = encode_frame(CKPT_REPORT, iteration, 0, wid, entry)
            feeder.send(report_conn, parts)
            timings["checkpoint"] += perf() - started

        if cfg.wait_verdict:
            verdict = inbox.verdict(iteration, timeout)
            if verdict != CONTINUE:
                terminated_by = verdict
                break

    feeder.flush()
    timings["send"] = feeder.seconds
    stats["phase_seconds"] = {k: round(v, 6) for k, v in timings.items()}
    stats["route_cache_size"] = 0  # no per-key routing on the kernel path
    final = {
        "state": decoded_state(),
        "iterations_run": iterations_run,
        "terminated_by": terminated_by,
        "stats": stats,
    }
    parts, _ = encode_frame(FINAL_REPORT, iterations_run, 0, wid, final)
    feeder.send(report_conn, parts)
