"""Incremental recomputation for evolving inputs (i2MapReduce mode).

A production graph changes continuously — edges appear, disappear, and
re-weight between refreshes — but every engine in this repository so
far answers a change with a cold full rerun.  i2MapReduce (by the
iMapReduce authors) shows the alternative: *memoize* the converged
per-pair state of the previous run (their MRBG-Store), compute the set
of keys a :class:`DataDelta` can actually affect (*change
propagation*), and recompute only those, warm-starting everything else
from the memo.  This module is that mode for all three executors:

* :class:`DataDelta` — edge/point inserts, deletes, and weight updates
  against the static partitions, validated against the resident tables.
* :class:`MemoStore` — converged-state memoization on the
  protocol-5/blake2b checkpoint spool plane
  (:class:`~repro.imapreduce.checkpoint.CheckpointStore`): per-pair
  state payloads under an atomically-committed, digest-validated
  manifest, with retention GC.
* :func:`patch_static_table` — applies a delta to a resident static
  partition *in place*, preserving the adjacency-row order a direct
  rebuild from the mutated edge list would produce, so the columnar
  kernels' ``prepare`` CSR columns rebuilt from the patched table are
  bit-identical to ones built from scratch (the round-trip property
  test's contract).
* :func:`plan_changes` — the change-propagation logic: from the delta
  and the memoized state it derives the *dirty frontier* (keys that
  receive perturbation deltas), the *reset set* (keys whose memoized
  value may no longer be a valid fixpoint component), and the
  perturbation deltas themselves.
* :func:`run_incremental_accum` / :func:`run_incremental_local` /
  :func:`run_incremental_parallel` — warm-started execution on the
  accumulative engines (serial, kernel, multiprocess) and on the
  synchronous engines.

Change propagation per algebra
------------------------------

**Sum algebras (pagerank).**  The fixpoint solves the linear system
``x = b + d·Mᵀx``.  The memoized ``x*`` satisfies the *old* system, so
on the accumulative engine a delta becomes an injected residual, not a
restart: for every source ``u`` whose out-row changed, retract the old
contribution ``d·x*[u]/|N_old(u)|`` from each old neighbour and grant
``d·x*[u]/|N_new(u)|`` to each new neighbour — together exactly
``d·(M_new − M_old)ᵀ·x*``, plus the ``Δb`` teleport correction when the
node count changed.  Because the system is a contraction, iterating
these perturbations from the preloaded ``x*`` converges to the new
fixpoint; no keys are reset.

**Min algebras (sssp, components).**  Inserted edges and weight
*decreases* are monotone improvements: inject the offer
``state[u] ⊕ w`` at the target and let it drain.  Deletions and weight
*increases* are non-monotone — a memoized distance may have routed
through the removed edge — so the plan conservatively *invalidates*
the forward-reachable set (old graph) of every worsened edge's head:
those keys restart at the identity, re-seeded by their initial deltas
and by boundary offers from every surviving in-edge whose source kept
its memo.  Keys outside the reset set cannot have routed through a
worsened edge (they would be reachable from its head), so their memo
stands.  Every surviving value is the same left-folded path sum the
cold rerun computes, which is why warm min-algebra runs are *bit
exact* against the cold rerun — the bar the
``incremental-differential`` oracle enforces.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..common.errors import JobError
from ..common.partition import bind_partitioner
from .accum import AccumJob, AccumRunResult
from .checkpoint import CheckpointStore

__all__ = [
    "DeltaError",
    "DataDelta",
    "AdjacencyKind",
    "ADJACENCY_KINDS",
    "MemoStore",
    "ChangePlan",
    "patch_static_table",
    "plan_changes",
    "cold_initial_deltas",
    "warm_sync_state",
    "run_incremental_accum",
    "run_incremental_local",
    "run_incremental_parallel",
    "random_edge_churn",
]


class DeltaError(JobError):
    """A :class:`DataDelta` is malformed or inconsistent with the data."""


@dataclass(frozen=True)
class AdjacencyKind:
    """Shape of one algorithm's static adjacency rows.

    ``weighted`` rows hold ``(target, weight)`` entries, unweighted rows
    bare targets; ``symmetric`` tables store every undirected edge in
    both endpoint rows (components); ``sorted_rows`` keeps each row in
    sorted order after a patch (the direct-build convention of
    :func:`repro.algorithms.components.static_records`) — unsorted
    kinds preserve edge-list order: survivors keep their position,
    insertions append, matching what
    :meth:`~repro.graph.digraph.Digraph.from_edges`'s stable sort
    produces from the mutated edge list.
    """

    weighted: bool = False
    symmetric: bool = False
    sorted_rows: bool = False


#: The shipped graph algorithms' adjacency shapes.
ADJACENCY_KINDS: dict[str, AdjacencyKind] = {
    "pagerank": AdjacencyKind(),
    "sssp": AdjacencyKind(weighted=True),
    "components": AdjacencyKind(symmetric=True, sorted_rows=True),
}


@dataclass(frozen=True)
class DataDelta:
    """One batch of mutations against the static input.

    * ``insert_edges`` — ``(u, v)`` for unweighted kinds, ``(u, v, w)``
      for weighted ones; both endpoints must already exist (or arrive
      via ``insert_nodes`` in the same delta).
    * ``delete_edges`` — ``(u, v)``; the edge must exist.
    * ``update_edges`` — ``(u, v, w)`` weight updates, weighted kinds
      only.
    * ``insert_nodes`` — point inserts: new keys with (initially) empty
      adjacency.  Point *deletes* are expressed by deleting every
      incident edge — the key stays in the universe, inert.
    """

    insert_edges: tuple = ()
    delete_edges: tuple = ()
    update_edges: tuple = ()
    insert_nodes: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "insert_edges", tuple(self.insert_edges))
        object.__setattr__(self, "delete_edges", tuple(self.delete_edges))
        object.__setattr__(self, "update_edges", tuple(self.update_edges))
        object.__setattr__(self, "insert_nodes", tuple(self.insert_nodes))

    @property
    def size(self) -> int:
        """Total mutation count (the bench's delta-size axis)."""
        return (
            len(self.insert_edges)
            + len(self.delete_edges)
            + len(self.update_edges)
            + len(self.insert_nodes)
        )

    def is_empty(self) -> bool:
        return self.size == 0

    def validate(self, kind: AdjacencyKind) -> None:
        want = 3 if kind.weighted else 2
        for name, edges, arity in (
            ("insert_edges", self.insert_edges, want),
            ("delete_edges", self.delete_edges, 2),
            ("update_edges", self.update_edges, 3),
        ):
            for edge in edges:
                if len(edge) != arity:
                    raise DeltaError(
                        f"{name} entries must have {arity} fields for this "
                        f"input, got {edge!r}"
                    )
        if self.update_edges and not kind.weighted:
            raise DeltaError("weight updates need a weighted input")
        seen: set = set()
        for u, v, *_w in (*self.insert_edges, *self.delete_edges,
                          *self.update_edges):
            key = (u, v)
            if key in seen:
                raise DeltaError(f"edge {key!r} is mutated twice in one delta")
            seen.add(key)
            if kind.symmetric:
                seen.add((v, u))
        if len(set(self.insert_nodes)) != len(self.insert_nodes):
            raise DeltaError("duplicate keys in insert_nodes")

    def to_tuple(self) -> tuple:
        """JSON-friendly form (campaign specs pin these)."""
        return (
            tuple(tuple(e) for e in self.insert_edges),
            tuple(tuple(e) for e in self.delete_edges),
            tuple(tuple(e) for e in self.update_edges),
            tuple(self.insert_nodes),
        )

    @staticmethod
    def from_tuple(spec) -> "DataDelta":
        ins, dels, upds, nodes = spec
        return DataDelta(
            insert_edges=tuple(tuple(e) for e in ins),
            delete_edges=tuple(tuple(e) for e in dels),
            update_edges=tuple(tuple(e) for e in upds),
            insert_nodes=tuple(nodes),
        )


# ------------------------------------------------------ static patching --
def _row_target(entry, weighted: bool):
    return entry[0] if weighted else entry


def _directed(edges, symmetric: bool):
    """Expand undirected edge ops to both stored directions."""
    for edge in edges:
        u, v, *rest = edge
        yield (u, v, *rest)
        if symmetric:
            yield (v, u, *rest)


def patch_static_table(
    table: dict, delta: DataDelta, kind: AdjacencyKind
) -> set:
    """Apply ``delta`` to a resident static partition table *in place*.

    Returns the set of source keys whose rows changed (plus inserted
    nodes).  Row order is preserved exactly as a direct rebuild from
    the mutated edge list would produce it — deletions keep survivors
    in position, insertions append, ``sorted_rows`` kinds re-sort —
    which is what makes rebuilt kernel ``prepare`` columns bit-equal to
    from-scratch ones.
    """
    delta.validate(kind)
    dirty: set = set()
    known = set(table) | set(delta.insert_nodes)
    for u in delta.insert_nodes:
        if u in table:
            raise DeltaError(f"insert_nodes key {u!r} already exists")
        table[u] = ()
        dirty.add(u)
    for u, v in _directed(delta.delete_edges, kind.symmetric):
        row = table.get(u)
        if row is None:
            raise DeltaError(f"delete_edges names unknown source {u!r}")
        kept = tuple(e for e in row if _row_target(e, kind.weighted) != v)
        if len(kept) == len(row):
            raise DeltaError(f"delete_edges edge ({u!r}, {v!r}) not present")
        table[u] = kept
        dirty.add(u)
    for u, v, w in _directed(delta.update_edges, kind.symmetric):
        row = table.get(u)
        if row is None:
            raise DeltaError(f"update_edges names unknown source {u!r}")
        updated = tuple(
            (t, w) if t == v else (t, ow) for t, ow in row
        )
        if updated == row and not any(t == v for t, _ow in row):
            raise DeltaError(f"update_edges edge ({u!r}, {v!r}) not present")
        table[u] = updated
        dirty.add(u)
    for u, v, *rest in _directed(delta.insert_edges, kind.symmetric):
        if u not in known:
            raise DeltaError(f"insert_edges names unknown source {u!r}")
        if v not in known:
            raise DeltaError(f"insert_edges names unknown target {v!r}")
        row = table.get(u, ())
        if any(_row_target(e, kind.weighted) == v for e in row):
            raise DeltaError(f"insert_edges edge ({u!r}, {v!r}) already present")
        entry = (v, rest[0]) if kind.weighted else v
        table[u] = row + (entry,)
        dirty.add(u)
    if kind.sorted_rows:
        for u in dirty:
            table[u] = tuple(sorted(table[u]))
    return dirty


# ---------------------------------------------------- change propagation --
@dataclass
class ChangePlan:
    """What a delta obliges the warm run to recompute.

    ``perturbation`` is the injected-delta record list for the
    accumulative engines; ``reset_keys`` are memo entries that must
    restart at the algebra identity (min algebras only); ``frontier``
    is the dirty-key set (perturbation targets ∪ resets) — the
    affected-key frontier i2MapReduce's change propagation computes;
    ``dirty_sources`` are the static keys whose rows were patched.
    """

    algorithm: str
    perturbation: list = field(default_factory=list)
    reset_keys: frozenset = frozenset()
    dirty_sources: frozenset = frozenset()
    delta_size: int = 0

    @property
    def frontier(self) -> frozenset:
        return frozenset(k for k, _d in self.perturbation) | self.reset_keys

    def summary(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "delta_size": self.delta_size,
            "frontier_keys": len(self.frontier),
            "reset_keys": len(self.reset_keys),
            "dirty_sources": len(self.dirty_sources),
            "perturbation_deltas": len(self.perturbation),
        }


def _plan_pagerank(
    table: dict, delta: DataDelta, state: dict, *, damping: float
) -> ChangePlan:
    """Residual injection for the linear sum algebra (see module doc)."""
    kind = ADJACENCY_KINDS["pagerank"]
    touched = {u for u, _v in delta.delete_edges}
    touched |= {u for u, _v in delta.insert_edges}
    old_rows = {u: table.get(u, ()) for u in touched}
    n_old = len(table)
    dirty = patch_static_table(table, delta, kind)
    n_new = len(table)

    pert: dict[Any, float] = {}

    def add(key, value):
        if value:
            pert[key] = pert.get(key, 0.0) + value

    for u in sorted(old_rows):
        x = state.get(u, 0.0)
        if x == 0.0:
            continue
        old_row, new_row = old_rows[u], table[u]
        if old_row == new_row:
            continue
        if old_row:
            share = damping * x / len(old_row)
            for v in old_row:
                add(v, -share)
        if new_row:
            share = damping * x / len(new_row)
            for v in new_row:
                add(v, share)
    if n_new != n_old:
        # The teleport vector b = (1−d)/n shifts for *every* node when
        # the universe grows — a full frontier, priced honestly.
        db = (1.0 - damping) * (1.0 / n_new - 1.0 / n_old)
        new_nodes = set(delta.insert_nodes)
        for u in sorted(table):
            if u in new_nodes:
                add(u, (1.0 - damping) / n_new)
            else:
                add(u, db)
    perturbation = [(k, d) for k, d in pert.items() if d != 0.0]
    return ChangePlan(
        algorithm="pagerank",
        perturbation=perturbation,
        dirty_sources=frozenset(dirty),
        delta_size=delta.size,
    )


def _reachable(adjacency: dict, roots: Iterable, weighted: bool) -> set:
    """Forward-reachable closure of ``roots`` (roots included)."""
    seen = set()
    queue = deque(r for r in roots if r in adjacency)
    seen.update(queue)
    while queue:
        u = queue.popleft()
        for entry in adjacency.get(u, ()):
            v = _row_target(entry, weighted)
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return seen


def _plan_min(
    table: dict,
    delta: DataDelta,
    state: dict,
    *,
    algorithm: str,
    initial_delta_fn,
) -> ChangePlan:
    """Invalidate-and-reseed for min algebras (see module doc)."""
    import math

    kind = ADJACENCY_KINDS[algorithm]
    inf = math.inf
    old_table = dict(table)
    old_weight: dict[tuple, Any] = {}
    worsened_heads: set = set()
    improvements: list[tuple] = []  # (u, v, offer-weight)
    for u, v in _directed(delta.delete_edges, kind.symmetric):
        worsened_heads.add(v)
    for u, v, w in _directed(delta.update_edges, kind.symmetric):
        row = old_table.get(u, ())
        for t, ow in row:
            if t == v:
                old_weight[(u, v)] = ow
    dirty = patch_static_table(table, delta, kind)
    for u, v, w in _directed(delta.update_edges, kind.symmetric):
        ow = old_weight.get((u, v))
        if ow is not None and w > ow:
            worsened_heads.add(v)
        elif ow is not None and w < ow:
            improvements.append((u, v, w))
    for u, v, *rest in _directed(delta.insert_edges, kind.symmetric):
        improvements.append((u, v, rest[0] if kind.weighted else 0))

    reset = (
        _reachable(old_table, worsened_heads, kind.weighted)
        if worsened_heads
        else set()
    )

    pert: dict[Any, Any] = {}

    def offer(key, value):
        old = pert.get(key)
        pert[key] = value if old is None else min(old, value)

    for k in sorted(reset, key=lambda k: (type(k).__name__, k)):
        seed = initial_delta_fn(k)
        if seed is not None:
            offer(k, seed)
    if reset:
        # Boundary offers: every surviving in-edge from a non-reset
        # source re-seeds its reset target from the standing memo.
        for a in sorted(table, key=lambda k: (type(k).__name__, k)):
            if a in reset:
                continue
            sa = state.get(a, inf)
            if sa == inf:
                continue
            for entry in table[a]:
                if kind.weighted:
                    b, w = entry
                else:
                    b, w = entry, 0
                if b in reset:
                    offer(b, sa + w)
    for u, v, w in improvements:
        if u in reset or v in reset:
            continue  # covered by the reset recomputation / boundary
        su = state.get(u, inf)
        if su == inf:
            continue
        candidate = su + w
        if candidate < state.get(v, inf):
            offer(v, candidate)
    perturbation = sorted(
        pert.items(), key=lambda kv: (type(kv[0]).__name__, kv[0])
    )
    return ChangePlan(
        algorithm=algorithm,
        perturbation=perturbation,
        reset_keys=frozenset(reset),
        dirty_sources=frozenset(dirty),
        delta_size=delta.size,
    )


def plan_changes(
    algorithm: str,
    table: dict,
    delta: DataDelta,
    memo_state: dict,
    *,
    damping: float | None = None,
    source: Any = None,
) -> ChangePlan:
    """Patch ``table`` in place and derive the change-propagation plan.

    ``memo_state`` is the prior run's converged state (a dict view);
    ``damping`` parameterizes pagerank, ``source`` sssp.  Components
    needs neither (every key re-offers its own id when reset).
    """
    if algorithm == "pagerank":
        if damping is None:
            raise DeltaError("pagerank change planning needs damping")
        return _plan_pagerank(table, delta, memo_state, damping=damping)
    if algorithm == "sssp":
        if source is None:
            raise DeltaError("sssp change planning needs the source node")
        return _plan_min(
            table,
            delta,
            memo_state,
            algorithm="sssp",
            initial_delta_fn=lambda k: 0.0 if k == source else None,
        )
    if algorithm == "components":
        return _plan_min(
            table,
            delta,
            memo_state,
            algorithm="components",
            initial_delta_fn=lambda k: k,
        )
    raise DeltaError(f"no incremental support for algorithm {algorithm!r}")


def cold_initial_deltas(
    algorithm: str,
    table: dict,
    *,
    damping: float | None = None,
    source: Any = None,
) -> list:
    """The full (cold-rerun) initial deltas for a static table — what a
    from-scratch accumulative run of the same algorithm would seed."""
    if algorithm == "pagerank":
        n = len(table)
        return [(u, (1.0 - damping) / n) for u in sorted(table)]
    if algorithm == "sssp":
        return [(source, 0.0)]
    if algorithm == "components":
        return [(u, u) for u in sorted(table)]
    raise DeltaError(f"no incremental support for algorithm {algorithm!r}")


def warm_sync_state(
    memo_state: Iterable[tuple[Any, Any]],
    plan: ChangePlan,
    identity: Any,
) -> list:
    """Warm-start records for the *synchronous* engines: the memo with
    every reset key knocked back to the algebra identity (a stale min
    value would otherwise pin the sync reduce below the true fixpoint
    forever — min never un-improves), and — for the min algebras — the
    plan's offers min-folded back in so the reset region re-seeds
    (source@0, boundary offers) instead of converging to all-∞.  Sum
    perturbations are *residuals* meaningful only to the accumulative
    engine; the sync map recomputes contributions from the state each
    iteration, so the memo passes through untouched there."""
    reset = plan.reset_keys
    state = [(k, identity if k in reset else v) for k, v in memo_state]
    if plan.algorithm in ("sssp", "components"):
        offers = dict(plan.perturbation)
        known = {k for k, _v in state}
        state = [
            (k, min(v, offers[k]) if k in offers else v) for k, v in state
        ]
        # Inserted nodes have no memo record yet — seed them fresh.
        state.extend(
            (k, offers[k]) for k in sorted(
                (k for k in offers if k not in known),
                key=lambda k: (type(k).__name__, k),
            )
        )
    return state


# ------------------------------------------------------------ memo store --
class MemoStore:
    """Converged-state memoization on the checkpoint spool plane.

    The i2MapReduce MRBG-Store analogue: after a run converges, its
    per-pair final state is spooled through
    :meth:`CheckpointStore.write` (the same length-prefixed protocol-5
    frames, blake2b-digested, fsync + atomic rename) and published
    under a committed manifest.  Each ``save`` bumps the manifest
    iteration — the memo *version* — and prunes old versions through
    the store's retention GC, so the directory never grows unboundedly.
    A trailing meta entry (worker id ``num_pairs``) records the job
    name, pair count, and caller metadata, validated on load.
    """

    def __init__(self, root: str, *, keep: int = 2):
        self.store = CheckpointStore(root)
        self.keep = keep

    @property
    def root(self) -> str:
        return self.store.root

    def versions(self) -> list[int]:
        """Committed memo versions, newest first."""
        return [m["iteration"] for m in self.store.manifests()]

    def save(
        self,
        state_records: Iterable[tuple[Any, Any]],
        *,
        job_name: str,
        num_pairs: int,
        partitioner,
        meta: dict | None = None,
    ) -> int:
        """Persist one converged state; returns the new memo version."""
        part = bind_partitioner(partitioner, num_pairs)
        parts: list[list] = [[] for _ in range(num_pairs)]
        for rec in state_records:
            parts[part(rec[0])].append(rec)
        manifests = self.store.manifests()
        version = manifests[0]["iteration"] + 1 if manifests else 0
        entries = [
            self.store.write(0, version, p, {"pair": p, "state": parts[p]})
            for p in range(num_pairs)
        ]
        entries.append(
            self.store.write(
                0,
                version,
                num_pairs,
                {
                    "memo_meta": {
                        "job": job_name,
                        "num_pairs": num_pairs,
                        "meta": dict(meta or {}),
                    }
                },
            )
        )
        self.store.commit(version, 0, entries)
        self.store.gc(keep=self.keep)
        return version

    def load(self, *, job_name: str | None = None) -> tuple[list, dict]:
        """Newest memoized state as ``(records, meta)``; records arrive
        globally key-sorted — the same order the engines emit final
        state in, so a memo round-trip is record-for-record stable."""
        manifests = self.store.manifests()
        if not manifests:
            raise DeltaError(f"no memoized state under {self.root!r}")
        manifest = manifests[0]
        payloads = {
            e["worker"]: self.store.read_payload(e)
            for e in manifest["entries"]
        }
        meta_entry = payloads.pop(max(payloads))
        inner = meta_entry["memo_meta"]
        # User meta keys surface at the top level beside the reserved
        # job/num_pairs/version bookkeeping.
        meta = dict(inner["meta"])
        meta.update(
            job=inner["job"],
            num_pairs=inner["num_pairs"],
            version=manifest["iteration"],
        )
        if job_name is not None and meta["job"] != job_name:
            raise DeltaError(
                f"memo under {self.root!r} belongs to job {meta['job']!r}, "
                f"not {job_name!r}"
            )
        records: list = []
        for p in sorted(payloads):
            records.extend(payloads[p]["state"])
        records.sort(key=lambda kv: (type(kv[0]).__name__, kv[0]))
        return records, meta

    def has(self) -> bool:
        return bool(self.store.manifests())

    def gc(self, keep: int | None = None) -> dict:
        return self.store.gc(keep=self.keep if keep is None else keep)


# ------------------------------------------------------- warm-run drivers --
def _static_table(job, static_records) -> dict:
    # AccumJob exposes static_path directly; IterativeJob keeps it on
    # the phase (sync jobs are single-phase here — plan_changes rejects
    # the multi-phase shapes anyway).
    path = getattr(job, "static_path", None)
    if path is None and getattr(job, "phases", None):
        path = job.phases[0].static_path
    table = dict((static_records or {}).get(path or "", {}))
    return table


def _attach(result, plan: ChangePlan, warm_keys: int) -> None:
    result.counters.update(
        {
            "incremental": plan.summary(),
            "warm_state_keys": warm_keys,
        }
    )


def run_incremental_accum(
    job: AccumJob,
    algorithm: str,
    delta: DataDelta,
    memo_state: Iterable[tuple[Any, Any]],
    static_records: dict[str, Iterable[tuple[Any, Any]]] | None = None,
    *,
    num_pairs: int = 4,
    mode: str = "async",
    backend: str = "local",
    keep_trace: bool = False,
    damping: float | None = None,
    source: Any = None,
    **backend_kwargs,
) -> AccumRunResult:
    """Warm-started accumulative refresh: patch, plan, perturb, drain.

    ``memo_state`` is the prior converged state (the MemoStore's
    records); ``static_records`` the *pre-delta* static input.  The
    delta is patched into the static table, the change plan computed,
    and the chosen backend (``"local"`` — record or kernel path — or
    ``"parallel"``) runs with the memo preloaded and only the
    perturbation deltas pending.  The plan summary lands in the
    result's ``counters["incremental"]``.
    """
    from .localrun import run_accum_local
    from .parallel import run_accum_parallel

    memo_state = list(memo_state)
    table = _static_table(job, static_records)
    plan = plan_changes(
        algorithm, table, delta, dict(memo_state),
        damping=damping, source=source,
    )
    if plan.reset_keys:
        reset = plan.reset_keys
        warm = [(k, v) for k, v in memo_state if k not in reset]
    else:
        warm = memo_state
    statics = {job.static_path or "": table}
    if backend == "local":
        result = run_accum_local(
            job,
            plan.perturbation,
            statics,
            num_pairs=num_pairs,
            mode=mode,
            keep_trace=keep_trace,
            initial_state=warm,
            **backend_kwargs,
        )
    elif backend == "parallel":
        result = run_accum_parallel(
            job,
            plan.perturbation,
            statics,
            num_pairs=num_pairs,
            mode=mode,
            keep_trace=keep_trace,
            initial_state=warm,
            **backend_kwargs,
        )
    else:
        raise DeltaError(f"unknown incremental backend {backend!r}")
    _attach(result, plan, len(warm))
    return result


def _run_incremental_sync(
    runner,
    job,
    algorithm: str,
    delta: DataDelta,
    memo_state,
    static_records,
    *,
    num_pairs: int,
    damping: float | None,
    source: Any,
    identity: Any,
    backend_kwargs: dict,
):
    memo_state = list(memo_state)
    table = _static_table(job, static_records)
    plan = plan_changes(
        algorithm, table, delta, dict(memo_state),
        damping=damping, source=source,
    )
    warm = warm_sync_state(memo_state, plan, identity)
    static_path = job.phases[0].static_path if getattr(job, "phases", None) else None
    statics = {static_path or "": table}
    result = runner(
        job, warm, statics, num_pairs=num_pairs, **backend_kwargs
    )
    return result, plan


def run_incremental_local(
    job,
    algorithm: str,
    delta: DataDelta,
    memo_state: Iterable[tuple[Any, Any]],
    static_records: dict[str, Iterable[tuple[Any, Any]]] | None = None,
    *,
    num_pairs: int = 4,
    damping: float | None = None,
    source: Any = None,
    identity: Any = None,
    **backend_kwargs,
):
    """Warm-started *synchronous* serial refresh: the memoized state
    (reset keys knocked back to ``identity``) becomes the initial state
    on the patched static table, so :func:`run_local` reconverges in a
    handful of delta-scoped iterations instead of from scratch.  The
    job must already describe the mutated input where it bakes in
    global facts (synchronous pagerank's ``1/N`` teleport)."""
    import math

    from .localrun import run_local

    if identity is None:
        identity = math.inf if algorithm in ("sssp", "components") else 0.0
    result, _plan = _run_incremental_sync(
        run_local, job, algorithm, delta, memo_state, static_records,
        num_pairs=num_pairs, damping=damping, source=source,
        identity=identity, backend_kwargs=backend_kwargs,
    )
    return result


def run_incremental_parallel(
    job,
    algorithm: str,
    delta: DataDelta,
    memo_state: Iterable[tuple[Any, Any]],
    static_records: dict[str, Iterable[tuple[Any, Any]]] | None = None,
    *,
    num_pairs: int = 4,
    damping: float | None = None,
    source: Any = None,
    identity: Any = None,
    **backend_kwargs,
):
    """Warm-started synchronous refresh on the multiprocess backend —
    :func:`run_incremental_local`'s twin over :func:`run_parallel`."""
    import math

    from .parallel import run_parallel

    if identity is None:
        identity = math.inf if algorithm in ("sssp", "components") else 0.0
    result, _plan = _run_incremental_sync(
        run_parallel, job, algorithm, delta, memo_state, static_records,
        num_pairs=num_pairs, damping=damping, source=source,
        identity=identity, backend_kwargs=backend_kwargs,
    )
    return result


# ------------------------------------------------------- delta synthesis --
def random_edge_churn(
    table: dict,
    algorithm: str,
    *,
    insert: int = 0,
    delete: int = 0,
    update: int = 0,
    seed: int = 0,
    monotone: bool = False,
) -> DataDelta:
    """Synthesize a seeded churn delta against a static table.

    Samples ``delete`` existing edges to remove, ``insert`` absent
    pairs to add (weighted kinds draw a weight), and ``update`` weight
    rewrites.  ``monotone=True`` turns deletions and weight increases
    into weight *decreases* — the improvement-only churn min-algebra
    serving workloads refresh fastest on (new/faster roads), used by
    the sssp benchmark.  Deterministic per seed.
    """
    kind = ADJACENCY_KINDS[algorithm]
    rng = random.Random(seed)
    nodes = sorted(table)
    if len(nodes) < 2:
        raise DeltaError("churn needs at least two nodes")
    existing: list[tuple] = []
    present: set = set()
    for u in nodes:
        for entry in table[u]:
            v = _row_target(entry, kind.weighted)
            if kind.symmetric and (v, u) in present:
                continue
            existing.append((u, entry))
            present.add((u, v))
    if kind.symmetric:
        present |= {(v, u) for u, v in list(present)}

    def weight() -> float:
        return round(rng.uniform(0.5, 4.0), 3)

    delete_edges: list[tuple] = []
    update_edges: list[tuple] = []
    doomed = rng.sample(existing, min(delete, len(existing))) if delete else []
    if monotone and kind.weighted:
        for u, entry in doomed:
            v, ow = entry
            update_edges.append((u, v, round(ow * rng.uniform(0.2, 0.8), 6)))
    else:
        delete_edges = [
            (u, _row_target(entry, kind.weighted)) for u, entry in doomed
        ]
    mutated = {(u, v) for u, v in delete_edges}
    mutated |= {(u, v) for u, v, _w in update_edges}
    if kind.symmetric:
        mutated |= {(v, u) for u, v in list(mutated)}
    if update and kind.weighted and not monotone:
        pool = [
            (u, entry)
            for u, entry in existing
            if (u, entry[0]) not in mutated
        ]
        for u, entry in rng.sample(pool, min(update, len(pool))):
            v, _ow = entry
            update_edges.append((u, v, weight()))
            mutated.add((u, v))
            if kind.symmetric:
                mutated.add((v, u))
    insert_edges: list[tuple] = []
    attempts = 0
    while len(insert_edges) < insert and attempts < insert * 50 + 100:
        attempts += 1
        u, v = rng.sample(nodes, 2)
        if (u, v) in present or (u, v) in mutated:
            continue
        insert_edges.append((u, v, weight()) if kind.weighted else (u, v))
        mutated.add((u, v))
        present.add((u, v))
        if kind.symmetric:
            mutated.add((v, u))
            present.add((v, u))
    return DataDelta(
        insert_edges=tuple(insert_edges),
        delete_edges=tuple(delete_edges),
        update_edges=tuple(update_edges),
    )
