"""The iMapReduce engine — the paper's contribution."""

from .accum import MIN, SUM, AccumJob, AccumPair, AccumRunResult, Accumulator
from .channels import IterationMailbox, ReliableConfig, StopIteration_
from .checkpoint import CheckpointError, CheckpointStore, ProcFault
from .columnar import (
    AccumKernel,
    Kernel,
    KernelContractError,
    accum_kernel_enabled,
    kernel_enabled,
)
from .failure_detector import FailureDetector, FailureDetectorConfig
from .incremental import (
    ChangePlan,
    DataDelta,
    DeltaError,
    MemoStore,
    patch_static_table,
    plan_changes,
    random_edge_churn,
    run_incremental_accum,
    run_incremental_local,
    run_incremental_parallel,
)
from .job import AuxPhase, IterativeJob, IterativeRunResult, Phase
from .localrun import LocalRunResult, run_accum_local, run_local
from .parallel import (
    ParallelExecutionError,
    ParallelRunResult,
    run_accum_parallel,
    run_parallel,
)
from .runtime import (
    AuxContext,
    ChaosKnobs,
    IMapReduceRuntime,
    LoadBalanceConfig,
    run_accum_simulated,
)

__all__ = [
    "IterationMailbox",
    "ReliableConfig",
    "StopIteration_",
    "CheckpointError",
    "CheckpointStore",
    "ProcFault",
    "Kernel",
    "AccumKernel",
    "KernelContractError",
    "kernel_enabled",
    "accum_kernel_enabled",
    "FailureDetector",
    "FailureDetectorConfig",
    "ChangePlan",
    "DataDelta",
    "DeltaError",
    "MemoStore",
    "patch_static_table",
    "plan_changes",
    "random_edge_churn",
    "run_incremental_accum",
    "run_incremental_local",
    "run_incremental_parallel",
    "AuxPhase",
    "IterativeJob",
    "IterativeRunResult",
    "Phase",
    "Accumulator",
    "AccumJob",
    "AccumPair",
    "AccumRunResult",
    "SUM",
    "MIN",
    "LocalRunResult",
    "run_local",
    "run_accum_local",
    "ParallelExecutionError",
    "ParallelRunResult",
    "run_parallel",
    "run_accum_parallel",
    "AuxContext",
    "ChaosKnobs",
    "IMapReduceRuntime",
    "LoadBalanceConfig",
    "run_accum_simulated",
]
