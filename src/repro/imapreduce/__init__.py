"""The iMapReduce engine — the paper's contribution."""

from .channels import IterationMailbox, ReliableConfig, StopIteration_
from .failure_detector import FailureDetector, FailureDetectorConfig
from .job import AuxPhase, IterativeJob, IterativeRunResult, Phase
from .localrun import LocalRunResult, run_local
from .parallel import ParallelExecutionError, ParallelRunResult, run_parallel
from .runtime import AuxContext, ChaosKnobs, IMapReduceRuntime, LoadBalanceConfig

__all__ = [
    "IterationMailbox",
    "ReliableConfig",
    "StopIteration_",
    "FailureDetector",
    "FailureDetectorConfig",
    "AuxPhase",
    "IterativeJob",
    "IterativeRunResult",
    "Phase",
    "LocalRunResult",
    "run_local",
    "ParallelExecutionError",
    "ParallelRunResult",
    "run_parallel",
    "AuxContext",
    "ChaosKnobs",
    "IMapReduceRuntime",
    "LoadBalanceConfig",
]
