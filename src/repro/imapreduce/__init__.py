"""The iMapReduce engine — the paper's contribution."""

from .channels import IterationMailbox, ReliableConfig, StopIteration_
from .checkpoint import CheckpointError, CheckpointStore, ProcFault
from .columnar import Kernel, KernelContractError, kernel_enabled
from .failure_detector import FailureDetector, FailureDetectorConfig
from .job import AuxPhase, IterativeJob, IterativeRunResult, Phase
from .localrun import LocalRunResult, run_local
from .parallel import ParallelExecutionError, ParallelRunResult, run_parallel
from .runtime import AuxContext, ChaosKnobs, IMapReduceRuntime, LoadBalanceConfig

__all__ = [
    "IterationMailbox",
    "ReliableConfig",
    "StopIteration_",
    "CheckpointError",
    "CheckpointStore",
    "ProcFault",
    "Kernel",
    "KernelContractError",
    "kernel_enabled",
    "FailureDetector",
    "FailureDetectorConfig",
    "AuxPhase",
    "IterativeJob",
    "IterativeRunResult",
    "Phase",
    "LocalRunResult",
    "run_local",
    "ParallelExecutionError",
    "ParallelRunResult",
    "run_parallel",
    "AuxContext",
    "ChaosKnobs",
    "IMapReduceRuntime",
    "LoadBalanceConfig",
]
