"""Persistent channels between iMapReduce tasks.

The paper builds long-lived socket connections from each reduce task to
its paired map task (§3.2.1) and lets map outputs flow to reduce tasks as
in MapReduce.  Because persistent tasks of *different* pairs progress at
different speeds in asynchronous mode, a message for iteration *k+1* can
arrive while a task is still gathering iteration *k*; the
:class:`IterationMailbox` therefore tags every message with its iteration
and buffers early arrivals.

Message vocabulary (tuples, first element is the kind):

* ``("state", k, sender, records, last)`` — reduce→map state chunk;
  ``last`` marks the sender's final chunk for iteration ``k``;
* ``("mapout", k, sender, records)`` — map→reduce shuffle data;
* ``("mapdone", k, sender)`` — map ``sender`` finished shuffling ``k``;
* ``("sync", k)`` — master: global barrier for iteration ``k`` passed;
* ``("proceed", k)`` — master: reports for ``k`` accepted, reduces may
  process ``k+1``;
* ``("stop",)`` — master: terminate the persistent task.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Hashable

from ..simulation import Engine, Store

__all__ = ["StopIteration_", "IterationMailbox", "ReliableConfig"]


@dataclass(frozen=True, slots=True)
class ReliableConfig:
    """Stop-and-wait retransmission policy for cross-pair messages.

    One message per flow is in flight at a time; an unacknowledged send
    is retried after ``rto_initial``, doubling (``rto_backoff``) up to
    ``rto_max`` per wait.  ``max_retries`` bounds a send whose receiver
    is permanently unreachable — by then the failure detector has long
    since confirmed the peer dead and recovery re-routes the flow.
    """

    rto_initial: float = 0.25
    rto_backoff: float = 2.0
    rto_max: float = 2.0
    max_retries: int = 64


class StopIteration_(Exception):
    """Raised inside a gather when the master's stop sentinel arrives.

    ``final_iteration`` names the last globally-agreed iteration: the
    final-phase reduces dump the state of exactly that iteration, even if
    they ran ahead of the master's decision (asynchronous mode lets tasks
    be up to one iteration ahead)."""

    def __init__(self, final_iteration: int | None = None):
        super().__init__(final_iteration)
        self.final_iteration = final_iteration


class IterationMailbox:
    """A tagged, iteration-aware FIFO mailbox for one persistent task."""

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._store = Store(engine)
        #: Early arrivals, keyed by (kind, iteration).
        self._early: dict[tuple[str, int], list[tuple]] = defaultdict(list)
        self._stopped = False
        self._final_iteration: int | None = None
        #: Dedup keys already delivered (see :meth:`deliver`).
        self._seen: set[Hashable] = set()

    # -- producer side ------------------------------------------------------------
    def put(self, message: tuple) -> None:
        self._store.put(message)

    def deliver(self, message: tuple, dedup_key: Hashable | None = None) -> bool:
        """Deliver ``message``, suppressing retransmission duplicates.

        The reliable channel layer retransmits until acknowledged, so a
        message whose *ack* was lost arrives more than once; the receiver
        keeps the set of seen keys and drops repeats.  Returns ``True``
        iff the message was enqueued (i.e. was not a duplicate).
        """
        if dedup_key is not None:
            if dedup_key in self._seen:
                return False
            self._seen.add(dedup_key)
        self._store.put(message)
        return True

    def stop(self, final_iteration: int | None = None) -> None:
        self._store.put(("stop", final_iteration))

    # -- consumer side --------------------------------------------------------------
    def next_message(self, wanted_kinds: tuple[str, ...], iteration: int):
        """Yield-from helper: the next matching message for ``iteration``.

        Non-matching messages are buffered for later gathers.  Raises
        :class:`StopIteration_` when the stop sentinel is seen (also on
        a sentinel seen during an *earlier* gather) — but an already
        buffered early arrival for this gather is consumed first, so a
        final-iteration chunk that landed just before the sentinel is
        never dropped.
        """
        for kind in wanted_kinds:
            bucket = self._early.get((kind, iteration))
            if bucket:
                return bucket.pop(0)
        if self._stopped:
            raise StopIteration_(self._final_iteration)
        while True:
            message = yield self._store.get()
            kind = message[0]
            if kind == "stop":
                self._stopped = True
                self._final_iteration = message[1]
                raise StopIteration_(self._final_iteration)
            if kind in wanted_kinds and message[1] == iteration:
                return message
            self._early[(kind, message[1])].append(message)

    # -- gather patterns -----------------------------------------------------------
    def gather_state_chunks(self, iteration: int, senders: int):
        """Reduce→map gather (generator).

        Yields chunk record-lists as they arrive; returns when ``senders``
        distinct senders have delivered their ``last`` chunk.  This
        streaming shape is what lets the map join/process eagerly (§3.3).
        Use ``yield from`` and iterate the returned list.
        """
        finished: set[Any] = set()
        chunks: list[list] = []
        while len(finished) < senders:
            message = yield from self.next_message(("state",), iteration)
            _, _, sender, records, last = message
            chunks.append(records)
            if last:
                finished.add(sender)
        return chunks

    def gather_map_outputs(self, iteration: int, num_maps: int):
        """Map→reduce gather (generator): all shuffle data for ``iteration``.

        Returns the concatenated records once every map task has sent its
        ``mapdone`` marker.
        """
        done: set[Any] = set()
        records: list = []
        while len(done) < num_maps:
            message = yield from self.next_message(("mapout", "mapdone"), iteration)
            if message[0] == "mapdone":
                done.add(message[2])
            else:
                records.extend(message[3])
        return records

    def wait_control(self, kind: str, iteration: int):
        """Wait for a master control token (``sync``/``proceed``)."""
        yield from self.next_message((kind,), iteration)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IterationMailbox {self.name} queued={len(self._store)}>"
