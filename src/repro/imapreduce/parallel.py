"""Real multiprocess execution backend: ``run_parallel``.

Everything else in this repository executes iterative jobs either in
virtual time (the simulated :class:`IMapReduceRuntime`) or serially
(:func:`run_local`).  This module is the backend that actually uses the
hardware: ``N`` persistent worker *processes* each host a fixed set of
map/reduce task pairs for the whole job, realizing the paper's three
core mechanisms for real:

* **persistent tasks** (§3.1) — workers are spawned once and loop over
  every iteration; no per-iteration process/task setup;
* **static/state separation** (§3.2) — each worker deserializes its
  static-data partitions once at start and keeps them resident; only
  protocol-5 state frames cross process boundaries afterwards;
* **asynchronous map start** (§3.3) — the data plane is a worker mesh
  with no global barrier: a pair's map for iteration k+1 starts as soon
  as its own reduce for k finished and its peer batches arrived.

The mesh and both control planes run on point-to-point OS pipes
(:func:`multiprocessing.Pipe`); the coordinator blocks in
:func:`multiprocessing.connection.wait` over the workers' report pipes
*and their process sentinels*, so a verdict round-trip costs
microseconds and a worker death — any exit code, with or without a
final report — is detected the instant the OS reaps it instead of on a
poll interval or timeout.  See :mod:`.workerproc` for the frame format,
the skip-empty manifest protocol, and the zero-copy buffer path.

Supported job surface: combiners, one2all broadcast (§5.1), multi-phase
iterations (§5.2), the auxiliary phase (§5.3), and distance/threshold
termination — distances are merged at the coordinator exactly as the
paper's master merges reduce-local distances.  The aux phase runs at
the coordinator (its input is the full, tiny, post-iteration state).

Correctness contract: byte-identical record processing order to
:func:`run_local` (shared :func:`map_pair` code and ascending
source-pair assembly), so the final state, ``terminated_by`` and
iteration count are equal record for record — enforced by the
differential tests and the chaos campaigns' ``parallel`` mode.

Fault tolerance (§3.4 / §5 runtime support)
-------------------------------------------

When armed (``checkpoint_every`` and/or ``faults``), the backend
survives real worker death:

* **Checkpoints** — every ``checkpoint_every`` iterations each worker
  spools its pair states durably (:mod:`.checkpoint`); the coordinator
  commits a manifest once *every* worker's spool file for that
  iteration has arrived and the iteration's reports are merged, making
  the manifest a consistent global barrier.
* **Liveness** — process sentinels catch hard deaths instantly; worker
  heartbeat frames multiplexed onto the report pipes catch the deaths
  sentinels cannot (a SIGSTOPped — frozen but reaped-by-nobody —
  worker) through a *suspicion timeout*.  The old single run ``timeout``
  survives only as a coarse no-progress backstop.
* **Recovery** — on a confirmed death the coordinator fences the whole
  mesh (every worker SIGKILLed: under fork a survivor never sees a
  peer's EOF and would block forever), restores the newest *valid*
  committed checkpoint — torn spool files fall back to the previous
  manifest — rolls its own merge state back to that iteration barrier,
  and respawns a fresh mesh (generation + 1) that resumes at
  ``checkpoint iteration + 1``.  Because the determinism contract is
  *pair*-granular (ascending pair ids everywhere), a replayed suffix
  recomputes bit-identical records, so a recovered run equals an
  unfaulted one record for record — the same differential oracle
  judges both.  Optionally (``reassign_on_failure``) the dead worker's
  pairs are instead spread over the survivors, least-loaded first,
  like the simulated runtime's localized recovery.

A worker that dies on a *deterministic exception* ships its traceback
in an error frame and is never recovered (replay would die the same
way); only process death and heartbeat suspicion trigger recovery.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import shutil
import signal
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Iterable

from ..common.errors import JobError
from ..common.partition import bind_partitioner
from ..common.records import group_by_key
from .accum import (
    AccumJob,
    AccumRunResult,
    check_mode,
    partition_accum_inputs,
    partition_state,
)
from .checkpoint import CheckpointError, CheckpointStore, ProcFault
from .columnar import kernel_enabled
from .job import IterativeJob
from .localrun import order_key
from .runtime import AuxContext
from .workerproc import (
    CKPT_REPORT,
    CONTINUE,
    ERROR_REPORT,
    FINAL_REPORT,
    HEARTBEAT,
    ITER_REPORT,
    PEER_LOST_EXIT,
    VERDICT,
    WorkerConfig,
    encode_frame,
    worker_main,
)

__all__ = [
    "ParallelRunResult",
    "ParallelExecutionError",
    "ProcFault",
    "run_parallel",
    "run_accum_parallel",
]


class ParallelExecutionError(JobError):
    """A worker process died or misbehaved; carries its traceback."""


class _WorkerDeath(Exception):
    """Internal: a worker died without a final or error report — the
    *recoverable* failure class, routed to the supervisor loop."""

    def __init__(self, wid: int, reason: str):
        super().__init__(reason)
        self.wid = wid
        self.reason = reason


def _describe_exit(code: int | None) -> str:
    if code is None:
        return "still running"
    if code == PEER_LOST_EXIT:
        return f"code {code} (peer pipe lost)"
    if code < 0:
        try:
            name = signal.Signals(-code).name
        except ValueError:  # pragma: no cover - exotic signal number
            name = f"signal {-code}"
        return f"code {code} ({name})"
    return f"code {code}"


@dataclass
class ParallelRunResult:
    """Outcome of a multiprocess run — field-compatible with
    :class:`~repro.imapreduce.localrun.LocalRunResult` plus backend
    observability (worker stats, wall time, recovery events)."""

    state: list[tuple[Any, Any]]
    iterations_run: int
    converged: bool
    terminated_by: str
    distances: list[float | None] = field(default_factory=list)
    history: list[list[tuple[Any, Any]]] = field(default_factory=list)
    num_workers: int = 0
    num_pairs: int = 0
    wall_seconds: float = 0.0
    #: Per-worker counters: pairs hosted, static_loads (always 1 per
    #: worker — asserted by the wall-clock benchmark), records/batches
    #: shipped over the mesh, bytes pickled, checkpoint writes/bytes,
    #: and the phase-level profiler's ``phase_seconds`` breakdown.
    worker_stats: list[dict] = field(default_factory=list)
    #: Iterations with a committed (restorable) checkpoint manifest.
    checkpoints: list[int] = field(default_factory=list)
    #: Number of mesh respawns after confirmed worker deaths.
    recoveries: int = 0
    #: One dict per recovery: generation, dead worker, reason, restored
    #: checkpoint iteration, resume point, and recovery mode.
    recovery_events: list[dict] = field(default_factory=list)
    #: Coordinator-side checkpoint cost: seconds spent committing
    #: manifests (snapshot pickling rides the merge and is counted
    #: there).  Together with the workers' ``checkpoint`` phase this is
    #: the run's whole directly-attributed checkpoint bill — the
    #: wall-clock overhead the benchmark gates on.
    commit_seconds: float = 0.0

    def state_dict(self) -> dict:
        return dict(self.state)

    @property
    def static_loads(self) -> int:
        """Total static-partition deserializations across the run."""
        return sum(s.get("static_loads", 0) for s in self.worker_stats)

    def counter(self, name: str) -> int:
        """Sum one mesh counter (``records_sent``, ``batches_sent``,
        ``manifest_frames``, ``bytes_pickled``, ``ckpt_writes``,
        ``ckpt_bytes``) across workers."""
        return sum(s.get(name, 0) for s in self.worker_stats)

    def phase_breakdown(self) -> dict[str, float]:
        """Aggregate the per-worker profiler into one wall-time dict."""
        totals: dict[str, float] = {}
        for stats in self.worker_stats:
            for phase, seconds in stats.get("phase_seconds", {}).items():
                totals[phase] = round(totals.get(phase, 0.0) + seconds, 6)
        return totals


def _pick_workers(num_workers: int | None, num_pairs: int) -> int:
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    return min(num_workers, num_pairs)


def run_parallel(
    job: IterativeJob,
    state_records: Iterable[tuple[Any, Any]],
    static_records: dict[str, Iterable[tuple[Any, Any]]] | None = None,
    *,
    num_pairs: int = 4,
    num_workers: int | None = None,
    keep_history: bool = False,
    start_method: str | None = None,
    timeout: float | None = 600.0,
    checkpoint_every: int | None = None,
    spool_dir: str | None = None,
    heartbeat_interval: float | None = 0.5,
    suspicion_timeout: float | None = 30.0,
    max_recoveries: int = 2,
    reassign_on_failure: bool = False,
    faults: Iterable[ProcFault] | None = None,
) -> ParallelRunResult:
    """Execute ``job`` on ``num_workers`` persistent worker processes.

    Same signature and semantics as :func:`run_local` (``num_pairs``
    governs partitioning and therefore the exact result; ``num_workers``
    only distributes pairs over processes, default one per CPU core).
    The job must be picklable — every ``build_imr_job`` result is, and
    the pickle guard tests keep it that way.

    ``timeout`` bounds every coordinator wait (a hung worker raises
    :class:`ParallelExecutionError` instead of deadlocking the caller).

    Fault tolerance: ``checkpoint_every`` arms durable per-pair
    checkpoints every that many iterations (``None`` falls back to the
    job's ``mapred.iterjob.parallelcheckpoint`` conf, default off) into
    ``spool_dir`` (a private temp dir, cleaned up, when unset).
    ``faults`` injects seeded :class:`ProcFault` kills/stops for the
    chaos harness.  When either is armed, a confirmed worker death is
    recovered — up to ``max_recoveries`` times — by restoring the
    newest committed checkpoint and respawning the mesh (or, with
    ``reassign_on_failure``, redistributing the dead worker's pairs to
    the survivors, least-loaded first).  ``suspicion_timeout`` declares
    a worker dead when its heartbeat (every ``heartbeat_interval``
    seconds) goes quiet — the only way to catch a SIGSTOPped worker.
    """
    run_started = time.perf_counter()
    num_workers = _pick_workers(num_workers, num_pairs)
    phases = job.phases
    part = bind_partitioner(job.partitioner, num_pairs)
    aux = job.aux
    # Workers stream per-iteration state only when someone consumes it.
    send_state = aux is not None or keep_history
    # Threshold/aux termination is a coordinator decision each
    # iteration; maxiter-only jobs free-run with no verdict round-trip.
    wait_verdict = aux is not None or job.threshold is not None

    if checkpoint_every is None:
        checkpoint_every = job.parallel_checkpoint_every
    faults = tuple(faults or ())
    recovery_armed = bool(faults) or checkpoint_every is not None
    columnar = kernel_enabled(job)

    # ---- partition state and static exactly like the serial executor --
    state_parts: list[list] = [[] for _ in range(num_pairs)]
    for rec in state_records:
        state_parts[part(rec[0])].append(rec)
    static_by_path = {k: dict(v) for k, v in (static_records or {}).items()}
    static_parts: list[list[dict]] = []
    for phase in phases:
        table = static_by_path.get(phase.static_path or "", {})
        per_pair: list[dict] = [{} for _ in range(num_pairs)]
        for key, value in table.items():
            per_pair[part(key)][key] = value
        static_parts.append(per_pair)

    try:
        ctx = multiprocessing.get_context(start_method or "fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context(start_method)

    own_spool = False
    store: CheckpointStore | None = None
    if checkpoint_every is not None:
        if spool_dir is None:
            spool_dir = tempfile.mkdtemp(prefix="imr-spool-")
            own_spool = True
        store = CheckpointStore(spool_dir)

    assignment = [
        [p for p in range(num_pairs) if p % num_workers == w]
        for w in range(num_workers)
    ]
    coord = _CoordinatorState(job, num_pairs, keep_history)
    generation = 0
    start_iteration = 0
    restored: dict[int, Any] | None = None
    mesh: _Mesh | None = None
    ok = False
    try:
        while True:
            mesh = _spawn_mesh(
                ctx,
                job,
                assignment,
                state_parts,
                static_parts,
                restored,
                num_pairs=num_pairs,
                generation=generation,
                start_iteration=start_iteration,
                send_state=send_state,
                wait_verdict=wait_verdict,
                checkpoint_every=checkpoint_every,
                spool_dir=spool_dir,
                heartbeat_interval=heartbeat_interval,
                faults=faults,
                columnar=columnar,
                timeout=timeout,
            )
            try:
                outcome = _coordinate(
                    job,
                    num_pairs,
                    mesh,
                    coord,
                    keep_history=keep_history,
                    timeout=timeout,
                    suspicion_timeout=(
                        suspicion_timeout if heartbeat_interval is not None else None
                    ),
                    store=store,
                    checkpoint_every=checkpoint_every,
                    start_iteration=start_iteration,
                )
                ok = True
                break
            except _WorkerDeath as death:
                death_at = time.perf_counter()
                _fence(mesh)
                mesh = None
                if not recovery_armed:
                    raise ParallelExecutionError(death.reason) from None
                if len(coord.recovery_events) >= max_recoveries:
                    raise ParallelExecutionError(
                        f"{death.reason}; recovery budget exhausted after "
                        f"{len(coord.recovery_events)} recoveries"
                    ) from None
                restore = _load_restore(store, num_pairs, columnar)
                if restore is None:
                    start_iteration, restored = 0, None
                else:
                    start_iteration, restored = restore[0] + 1, restore[1]
                mode = "respawn"
                if reassign_on_failure and len(assignment) > 1:
                    assignment = _reassign(assignment, death.wid)
                    mode = "reassign"
                coord.rollback(start_iteration)
                generation += 1
                coord.recovery_events.append(
                    {
                        "generation": generation,
                        "dead_worker": death.wid,
                        "reason": death.reason,
                        "restored_checkpoint": None if restore is None else restore[0],
                        "resume_from": start_iteration,
                        "mode": mode,
                        "fence_seconds": round(time.perf_counter() - death_at, 6),
                    }
                )
    finally:
        if mesh is not None:
            if ok:
                _shutdown(mesh)
            else:
                _fence(mesh)
        if own_spool and spool_dir is not None:
            shutil.rmtree(spool_dir, ignore_errors=True)

    outcome.num_workers = len(assignment)
    outcome.num_pairs = num_pairs
    outcome.worker_stats.sort(key=lambda s: s.get("worker", 0))
    outcome.checkpoints = sorted(set(coord.committed))
    outcome.commit_seconds = round(coord.commit_seconds, 6)
    outcome.recoveries = len(coord.recovery_events)
    outcome.recovery_events = list(coord.recovery_events)
    outcome.wall_seconds = time.perf_counter() - run_started
    return outcome


# ---------------------------------------------------------------- mesh --
@dataclass
class _Mesh:
    """One generation of worker processes and the coordinator's pipes."""

    generation: int
    procs: list
    report_conns: dict[int, Any]
    verdict_conns: list
    conns: list  # every coordinator-side connection, for cleanup


def _spawn_mesh(
    ctx,
    job: IterativeJob,
    assignment: list[list[int]],
    state_parts: list[list],
    static_parts: list[list[dict]],
    restored: dict[int, Any] | None,
    *,
    num_pairs: int,
    generation: int,
    start_iteration: int,
    send_state: bool,
    wait_verdict: bool,
    checkpoint_every: int | None,
    spool_dir: str | None,
    heartbeat_interval: float | None,
    faults: tuple,
    columnar: bool,
    timeout: float | None,
    accum_mode: str = "async",
    accum_state_parts: list[list] | None = None,
) -> _Mesh:
    num_workers = len(assignment)
    owner_of = [0] * num_pairs
    for w, pairs in enumerate(assignment):
        for p in pairs:
            owner_of[p] = w

    # ---- wire the pipe mesh: one pipe per ordered worker pair, plus a
    # verdict pipe to and a report pipe from every worker ----
    peer_recv: list[dict[int, Any]] = [{} for _ in range(num_workers)]
    peer_send: list[dict[int, Any]] = [{} for _ in range(num_workers)]
    for src in range(num_workers):
        for dst in range(num_workers):
            if src == dst:
                continue
            recv_end, send_end = ctx.Pipe(duplex=False)
            peer_recv[dst][src] = recv_end
            peer_send[src][dst] = send_end
    verdict_pipes = [ctx.Pipe(duplex=False) for _ in range(num_workers)]
    report_pipes = [ctx.Pipe(duplex=False) for _ in range(num_workers)]

    def pair_state(p: int):
        if restored is not None:
            return restored[p]
        return state_parts[p]

    # The blob is pickled explicitly (not via the spawn machinery) so the
    # job's pickle round-trip is exercised under every start method.
    blobs = [
        WorkerConfig(
            worker_id=w,
            num_workers=num_workers,
            num_pairs=num_pairs,
            job=job,
            state_parts={p: pair_state(p) for p in assignment[w]},
            static_parts=[
                {p: per_pair[p] for p in assignment[w]} for per_pair in static_parts
            ],
            send_state=send_state,
            wait_verdict=wait_verdict,
            generation=generation,
            start_iteration=start_iteration,
            owner_of=owner_of,
            checkpoint_every=checkpoint_every,
            spool_dir=spool_dir,
            faults=tuple(f for f in faults if f.worker == w),
            columnar_state=columnar and restored is not None,
            accum_mode=accum_mode,
            accum_initial_state=(
                None
                if accum_state_parts is None
                else {p: accum_state_parts[p] for p in assignment[w]}
            ),
        ).to_blob()
        for w in range(num_workers)
    ]

    suffix = "" if generation == 0 else f"-g{generation}"
    procs = [
        ctx.Process(
            target=worker_main,
            args=(
                w,
                blobs[w],
                peer_recv[w],
                peer_send[w],
                verdict_pipes[w][0],
                report_pipes[w][1],
                timeout,
                heartbeat_interval,
            ),
            name=f"imr-worker-{w}{suffix}",
            daemon=True,
        )
        for w in range(num_workers)
    ]
    for proc in procs:
        proc.start()

    # The coordinator only ever writes verdicts and reads reports; its
    # copies of the workers' pipe ends can go immediately (start() has
    # already shipped them, under fork and spawn alike).
    worker_ends = [
        *(conn for ends in peer_recv for conn in ends.values()),
        *(conn for ends in peer_send for conn in ends.values()),
        *(recv for recv, _ in verdict_pipes),
        *(send for _, send in report_pipes),
    ]
    for conn in worker_ends:
        conn.close()
    verdict_conns = [send for _, send in verdict_pipes]
    report_conns = {w: recv for w, (recv, _) in enumerate(report_pipes)}
    return _Mesh(
        generation=generation,
        procs=procs,
        report_conns=report_conns,
        verdict_conns=verdict_conns,
        conns=[*verdict_conns, *report_conns.values()],
    )


def _reassign(assignment: list[list[int]], dead: int) -> list[list[int]]:
    """Spread the dead worker's pairs over the survivors, least-loaded
    first (ties to the lowest worker id) — the simulated runtime's
    localized-recovery placement rule."""
    survivors = [list(pairs) for w, pairs in enumerate(assignment) if w != dead]
    for p in sorted(assignment[dead]):
        target = min(range(len(survivors)), key=lambda w: (len(survivors[w]), w))
        survivors[target].append(p)
    return [sorted(pairs) for pairs in survivors]


def _load_restore(
    store: CheckpointStore | None, num_pairs: int, columnar: bool
) -> tuple[int, dict[int, Any]] | None:
    """Newest *valid* committed checkpoint as ``(iteration, pair →
    state)``; torn or path-mismatched manifests fall back to older ones."""
    if store is None:
        return None
    expected = "kernel" if columnar else "record"
    for manifest in store.manifests():
        try:
            pairs: dict[int, Any] = {}
            for entry in manifest["entries"]:
                payload = store.read_payload(entry)
                if payload.get("path") != expected:
                    raise CheckpointError(
                        f"checkpoint path {payload.get('path')!r} does not "
                        f"match the job's {expected!r} executor"
                    )
                pairs.update(payload["pairs"])
            if set(pairs) != set(range(num_pairs)):
                raise CheckpointError(
                    f"manifest i{manifest['iteration']} covers pairs "
                    f"{sorted(pairs)} of {num_pairs}"
                )
            return manifest["iteration"], pairs
        except CheckpointError:
            continue
    return None


def _fence(mesh: _Mesh) -> None:
    """Hard-stop a generation: SIGKILL every worker (a SIGSTOPped one
    cannot run cleanup anyway), reap, and drop the pipes."""
    for proc in mesh.procs:
        if proc.is_alive():
            proc.kill()
    for proc in mesh.procs:
        proc.join(timeout=5.0)
    _close_all(mesh.conns)


def _shutdown(mesh: _Mesh) -> None:
    """Reap workers and release pipe resources without ever hanging."""
    for proc in mesh.procs:
        proc.join(timeout=5.0)
    for proc in mesh.procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    for proc in mesh.procs:
        if proc.is_alive():  # pragma: no cover - terminate ignored
            proc.kill()
            proc.join(timeout=5.0)
    _close_all(mesh.conns)


def _close_all(conns) -> None:
    for conn in conns:
        try:
            conn.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


# ---------------------------------------------------------- coordinator --
class _TornFrame(Exception):
    """A frame's writer died between its parts; the rest never comes."""


def _poll_frame(conn):
    """Read one frame from a *dead* worker's pipe without ever blocking.

    A SIGKILL can land between a frame's parts; under fork the write end
    stays open in sibling processes, so a blocking ``recv_bytes`` on the
    missing part would hang forever.  The writer being dead means no
    further part can arrive, so "part not immediately readable" is
    definitive: the frame is torn and discarded.
    """
    if not conn.poll(0):
        return None
    header = conn.recv_bytes()
    kind, iteration, phase, src, sizes = pickle.loads(header)
    if sizes is None:
        return kind, iteration, phase, src, None, len(header)
    if not conn.poll(0):
        return None
    data = conn.recv_bytes()
    nbytes = len(header) + len(data)
    buffers = []
    for size in sizes:
        if not conn.poll(0):
            return None
        buf = bytearray(size)
        conn.recv_bytes_into(buf)
        buffers.append(buf)
        nbytes += size
    payload = pickle.loads(data, buffers=buffers) if sizes else pickle.loads(data)
    return kind, iteration, phase, src, payload, nbytes


class _CoordinatorInbox:
    """Readiness-based coordinator receive with liveness supervision.

    One :func:`multiprocessing.connection.wait` call covers every live
    worker's report pipe *and* its process sentinel.  A frame wakes the
    coordinator immediately; a death wakes it just as fast, and any dead
    worker whose pipe holds no final report — a clean ``exit(0)``
    included — raises :class:`_WorkerDeath` on the spot instead of
    stalling until the run timeout.  Heartbeat frames refresh the
    per-worker ``last_seen`` clock and are swallowed; a worker quiet for
    longer than ``suspicion`` (possible only for a frozen process — a
    dead one trips its sentinel first) raises :class:`_WorkerDeath` too.
    """

    def __init__(
        self,
        report_conns: dict[int, Any],
        procs: list,
        *,
        suspicion: float | None = None,
    ):
        self._conns = dict(report_conns)
        self._wid_of = {conn: w for w, conn in report_conns.items()}
        self._procs = dict(enumerate(procs))
        self._dead: dict[int, Any] = {}  # died before their final arrived
        self._frames: deque = deque()
        self._suspicion = suspicion
        now = time.monotonic()
        self._last_seen = {w: now for w in report_conns}

    def _await_part(self, conn, wid: int) -> None:
        """Wait for the next part of a frame whose header already
        arrived.  A live writer delivers it promptly (parts are
        consecutive ``send_bytes`` on one pipe); a writer SIGKILLed
        mid-frame never will — and under fork the pipe shows no EOF
        either, so liveness, not the pipe, is the stop condition."""
        while not conn.poll(0.05):
            proc = self._procs.get(wid)
            if proc is None or not proc.is_alive():
                raise _TornFrame()

    def _read_frame_from(self, conn, wid: int):
        """Torn-frame-safe :func:`read_frame` for the report pipes."""
        header = conn.recv_bytes()  # readiness established by wait()
        kind, iteration, phase, src, sizes = pickle.loads(header)
        if sizes is None:
            return kind, iteration, phase, src, None, len(header)
        self._await_part(conn, wid)
        data = conn.recv_bytes()
        nbytes = len(header) + len(data)
        buffers = []
        for size in sizes:
            self._await_part(conn, wid)
            buf = bytearray(size)
            conn.recv_bytes_into(buf)
            buffers.append(buf)
            nbytes += size
        payload = pickle.loads(data, buffers=buffers) if sizes else pickle.loads(data)
        return kind, iteration, phase, src, payload, nbytes

    def mark_final(self, wid: int) -> None:
        """A worker's final report arrived: stop supervising it."""
        conn = self._conns.pop(wid, None)
        if conn is not None:
            self._wid_of.pop(conn, None)
        self._procs.pop(wid, None)
        self._dead.pop(wid, None)
        self._last_seen.pop(wid, None)

    def _drain(self, wid: int) -> None:
        """Pull every *complete* frame still buffered in a dead worker's
        pipe; a torn trailing frame (killed mid-write) is discarded."""
        conn = self._conns.pop(wid, None)
        if conn is None:
            return
        self._wid_of.pop(conn, None)
        while True:
            try:
                frame = _poll_frame(conn)
            except (EOFError, OSError):
                break
            if frame is None:
                break
            if frame[0] != HEARTBEAT:
                self._frames.append(frame)

    def recv(self, timeout: float | None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._frames:
                return self._frames.popleft()
            for wid, proc in list(self._procs.items()):
                if not proc.is_alive():
                    # Pull any frames still buffered in the pipe — the
                    # final report may simply not have been read yet.
                    self._drain(wid)
                    self._procs.pop(wid, None)
                    self._dead[wid] = proc
            if self._frames:
                return self._frames.popleft()
            if self._dead:
                wid, proc = next(iter(self._dead.items()))
                raise _WorkerDeath(
                    wid,
                    f"worker {proc.name} exited "
                    f"({_describe_exit(proc.exitcode)}) without a final report",
                )
            now = time.monotonic()
            wait_for = None if deadline is None else deadline - now
            if wait_for is not None and wait_for <= 0:
                raise ParallelExecutionError(
                    f"no worker message within {timeout:.0f}s"
                )
            if self._suspicion is not None and self._procs:
                for wid in self._procs:
                    quiet = now - self._last_seen.get(wid, now)
                    if quiet > self._suspicion:
                        raise _WorkerDeath(
                            wid,
                            f"worker {self._procs[wid].name} sent no heartbeat "
                            f"for {quiet:.1f}s (suspicion timeout "
                            f"{self._suspicion:.1f}s)",
                        )
                next_suspect = (
                    min(self._last_seen[w] for w in self._procs)
                    + self._suspicion
                    - now
                )
                next_suspect = max(next_suspect, 0.01)
                wait_for = (
                    next_suspect if wait_for is None else min(wait_for, next_suspect)
                )
            waitables = list(self._conns.values())
            waitables += [p.sentinel for p in self._procs.values()]
            if not waitables:
                raise ParallelExecutionError(
                    "all workers gone before the run completed"
                )
            ready = _conn_wait(waitables, wait_for)
            for obj in ready:
                wid = self._wid_of.get(obj)
                if wid is None:
                    continue  # a sentinel: handled at the top of the loop
                try:
                    frame = self._read_frame_from(obj, wid)
                except _TornFrame:
                    # Died mid-write: discard the pipe (its remaining
                    # bytes are unframed garbage); the sentinel check at
                    # the top of the loop reports the death itself.
                    self._conns.pop(wid, None)
                    self._wid_of.pop(obj, None)
                    continue
                except (EOFError, OSError):
                    self._drain(wid)
                    continue
                self._last_seen[wid] = time.monotonic()
                if frame[0] == HEARTBEAT:
                    continue
                self._frames.append(frame)


class _CoordinatorState:
    """Merge state that must survive mesh generations.

    The coordinator folds iteration reports *eagerly and in order*
    (``merged_through`` counts them), so "the merge state at the end of
    iteration k" is a well-defined point that :meth:`snapshot` captures
    whenever k is a checkpoint boundary.  :meth:`rollback` restores that
    point — in either direction: a second recovery may legally restore a
    *newer* manifest than the current merge frontier if the first crash
    predated an already-committed checkpoint.
    """

    def __init__(self, job: IterativeJob, num_pairs: int, keep_history: bool):
        self.job = job
        self.num_pairs = num_pairs
        self.keep_history = keep_history
        aux = job.aux
        self.aux = aux
        self.aux_part = (
            bind_partitioner(job.partitioner, aux.num_tasks) if aux else None
        )
        self.aux_map_state: list[dict] = [{} for _ in range(aux.num_tasks if aux else 0)]
        self.aux_reduce_state: list[dict] = [
            {} for _ in range(aux.num_tasks if aux else 0)
        ]
        self.distances: list[float | None] = []
        self.commit_seconds = 0.0
        self.history: list[list[tuple[Any, Any]]] = []
        self.merged_through = 0
        self.results: dict[int, tuple[float | None, bool]] = {}
        self.snapshots: dict[int, bytes] = {}  # iteration -> merge state
        self.committed: list[int] = []
        self.recovery_events: list[dict] = []

    def merge_iteration(self, reports: dict[int, dict]) -> None:
        """Merge the next iteration's reports: distance + history + aux."""
        iteration = self.merged_through
        aux, aux_part = self.aux, self.aux_part
        distance: float | None = None
        if self.job.distance_fn is not None:
            # Pair-ascending partial merge — the distributed master's
            # merge rule, bit-identical to run_local's accumulation.
            partials: dict[int, float] = {}
            for report in reports.values():
                partials.update(report.get("distance", {}))
            distance = 0.0
            for p in range(self.num_pairs):
                distance += partials.get(p, 0.0)
        self.distances.append(distance)

        aux_stop = False
        if aux is not None or self.keep_history:
            by_pair: dict[int, list] = {}
            for report in reports.values():
                by_pair.update(report.get("state", {}))
            flat = [
                rec for p in range(self.num_pairs) for rec in by_pair.get(p, ())
            ]
            if self.keep_history:
                self.history.append(sorted(flat, key=lambda kv: order_key(kv[0])))
            if aux is not None and aux_part is not None:
                aux_shuffled: list[list] = [[] for _ in range(aux.num_tasks)]
                parts: list[list] = [[] for _ in range(aux.num_tasks)]
                for rec in flat:
                    parts[aux_part(rec[0])].append(rec)
                for t in range(aux.num_tasks):
                    actx = AuxContext(self.aux_map_state[t])
                    for key, value in parts[t]:
                        aux.map_fn(key, value, actx)
                    for rec in actx.take():
                        aux_shuffled[aux_part(rec[0])].append(rec)
                for t in range(aux.num_tasks):
                    actx = AuxContext(self.aux_reduce_state[t])
                    for key, values in group_by_key(aux_shuffled[t]):
                        aux.reduce_fn(key, values, actx)
                    if actx.terminate_requested:
                        aux_stop = True
        self.results[iteration] = (distance, aux_stop)
        self.merged_through = iteration + 1

    def snapshot(self, iteration: int) -> None:
        """Capture the merge state right after ``iteration`` merged."""
        self.snapshots[iteration] = pickle.dumps(
            (
                list(self.distances),
                [list(h) for h in self.history],
                self.aux_map_state,
                self.aux_reduce_state,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def rollback(self, start_iteration: int) -> None:
        """Rewind to the barrier before ``start_iteration`` runs."""
        self.results = {
            i: r for i, r in self.results.items() if i < start_iteration
        }
        blob = None if start_iteration == 0 else self.snapshots.get(start_iteration - 1)
        if blob is None:
            # From-scratch restart — or a free-running job that streams
            # no per-iteration reports, so there is nothing to restore.
            self.distances = []
            self.history = []
            aux = self.aux
            self.aux_map_state = [{} for _ in range(aux.num_tasks if aux else 0)]
            self.aux_reduce_state = [{} for _ in range(aux.num_tasks if aux else 0)]
        else:
            (
                self.distances,
                self.history,
                self.aux_map_state,
                self.aux_reduce_state,
            ) = pickle.loads(blob)
        self.merged_through = start_iteration


def _coordinate(
    job: IterativeJob,
    num_pairs: int,
    mesh: _Mesh,
    coord: _CoordinatorState,
    *,
    keep_history: bool,
    timeout: float | None,
    suspicion_timeout: float | None,
    store: CheckpointStore | None,
    checkpoint_every: int | None,
    start_iteration: int,
) -> ParallelRunResult:
    aux = job.aux
    distance_fn = job.distance_fn
    wait_verdict = aux is not None or job.threshold is not None
    stream_reports = wait_verdict or distance_fn is not None or keep_history
    num_workers = len(mesh.procs)

    finals: dict[int, dict] = {}
    pending_iters: dict[int, dict[int, dict]] = {}
    ckpt_pending: dict[int, dict[int, dict]] = {}
    terminated_by = ""
    inbox = _CoordinatorInbox(
        mesh.report_conns, mesh.procs, suspicion=suspicion_timeout
    )

    def maybe_commit() -> None:
        """Publish manifests whose spool files all arrived *and* whose
        iteration the merge frontier has passed (the snapshot exists)."""
        if store is None:
            return
        for iteration in sorted(ckpt_pending):
            entries = ckpt_pending[iteration]
            if len(entries) < num_workers:
                continue
            if stream_reports and coord.merged_through <= iteration:
                continue
            commit_started = time.perf_counter()
            store.commit(
                iteration,
                mesh.generation,
                [entries[w] for w in sorted(entries)],
            )
            coord.commit_seconds += time.perf_counter() - commit_started
            if iteration not in coord.committed:
                coord.committed.append(iteration)
            del ckpt_pending[iteration]

    def handle(frame) -> bool:
        """Returns True when the frame was a final report."""
        kind, iteration, _phase, wid, payload, _nbytes = frame
        if kind == ERROR_REPORT:
            # A deterministic worker exception: recovery would replay
            # straight into the same crash, so this is terminal.
            raise ParallelExecutionError(f"worker {wid} failed:\n{payload}")
        if kind == FINAL_REPORT:
            finals[wid] = payload
            inbox.mark_final(wid)
            return True
        if kind == ITER_REPORT:
            pending_iters.setdefault(iteration, {})[wid] = payload
            # Eager in-order merging keeps ``merged_through`` the single
            # source of truth for both verdict gating and snapshots.
            while len(pending_iters.get(coord.merged_through, {})) == num_workers:
                reports = pending_iters.pop(coord.merged_through)
                merged = coord.merged_through
                coord.merge_iteration(reports)
                if store is not None and (merged + 1) % checkpoint_every == 0:
                    coord.snapshot(merged)
            maybe_commit()
            return False
        if kind == CKPT_REPORT:
            ckpt_pending.setdefault(iteration, {})[wid] = payload
            maybe_commit()
            return False
        raise ParallelExecutionError(f"unexpected message kind {kind!r}")

    if wait_verdict:
        # Lock-step termination protocol (threshold and/or aux).
        max_iterations = (
            job.max_iterations if job.max_iterations is not None else 10**9
        )
        for iteration in range(start_iteration, max_iterations):
            while coord.merged_through <= iteration:
                handle(inbox.recv(timeout))
            distance, aux_stop = coord.results[iteration]
            verdict = CONTINUE
            if aux_stop:
                verdict = "aux"
            elif (
                job.threshold is not None
                and distance is not None
                and distance <= job.threshold
            ):
                verdict = "threshold"
            elif iteration == max_iterations - 1:
                # Let workers fall out of their loop naturally.
                pass
            parts, _ = encode_frame(VERDICT, iteration, 0, -1, verdict)
            for conn in mesh.verdict_conns:
                try:
                    for part in parts:
                        conn.send_bytes(part)
                except OSError:  # a dead worker: the next recv reports it
                    pass
            if verdict != CONTINUE:
                terminated_by = verdict
                break
    # Collect finals (streamed reports and checkpoint receipts keep
    # merging/committing eagerly through the same handler).
    while len(finals) < num_workers:
        handle(inbox.recv(timeout))

    if not terminated_by:
        terminated_by = "maxiter"
    iterations_run = max(f["iterations_run"] for f in finals.values())
    distances = list(coord.distances)
    # Free-running jobs with no distance to measure send no per-iteration
    # reports; the serial executor still records one (None) entry per
    # iteration, so pad for field-compatible results.
    while len(distances) < iterations_run:
        distances.append(None)
    if any(f["iterations_run"] != iterations_run for f in finals.values()):
        raise ParallelExecutionError(
            "workers disagree on the iteration count: "
            f"{sorted((w, f['iterations_run']) for w, f in finals.items())}"
        )

    by_pair: dict[int, list] = {}
    worker_stats: list[dict] = []
    for final in finals.values():
        by_pair.update(final["state"])
        worker_stats.append(final["stats"])
    state = sorted(
        (rec for p in range(num_pairs) for rec in by_pair.get(p, ())),
        key=lambda kv: order_key(kv[0]),
    )
    return ParallelRunResult(
        state=state,
        iterations_run=iterations_run,
        converged=terminated_by == "threshold",
        terminated_by=terminated_by,
        distances=distances,
        history=list(coord.history),
        worker_stats=worker_stats,
    )


# ------------------------------------------------- accumulative (Maiter) --
def run_accum_parallel(
    job: AccumJob,
    delta_records: Iterable[tuple[Any, Any]],
    static_records: dict[str, Iterable[tuple[Any, Any]]] | None = None,
    *,
    num_pairs: int = 4,
    num_workers: int | None = None,
    mode: str = "async",
    keep_trace: bool = False,
    start_method: str | None = None,
    timeout: float | None = 600.0,
    heartbeat_interval: float | None = 0.5,
    suspicion_timeout: float | None = 30.0,
    initial_state: Iterable[tuple[Any, Any]] | None = None,
) -> AccumRunResult:
    """Execute an :class:`~repro.imapreduce.accum.AccumJob` on real
    worker processes.

    Same semantics as
    :func:`~repro.imapreduce.localrun.run_accum_local` — partitioning,
    scheduling, and the pre-round mass check follow the identical
    determinism contract, so for a given ``(job, deltas, num_pairs,
    mode)`` the parallel result is record-for-record identical to the
    serial one (floats included) at every worker count and start
    method.  Only nonzero delta batches cross the mesh; converged
    pairs cost one manifest frame per peer per round.

    Accumulative runs have no inter-round barrier state worth
    checkpointing (pending deltas are in flight by design), so a worker
    death is terminal here: it raises :class:`ParallelExecutionError`
    rather than recovering.  Chaos coverage for the async mode rides
    the simulated backend's seeded delivery deferral instead.
    """
    run_started = time.perf_counter()
    check_mode(mode)
    num_workers = _pick_workers(num_workers, num_pairs)
    part = bind_partitioner(job.partitioner, num_pairs)
    delta_parts, static_tables = partition_accum_inputs(
        job, delta_records, static_records, num_pairs, part
    )
    state_parts = (
        None
        if initial_state is None
        else partition_state(initial_state, num_pairs, part)
    )

    try:
        ctx = multiprocessing.get_context(start_method or "fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context(start_method)

    assignment = [
        [p for p in range(num_pairs) if p % num_workers == w]
        for w in range(num_workers)
    ]
    mesh = _spawn_mesh(
        ctx,
        job,
        assignment,
        delta_parts,
        [static_tables],
        None,
        num_pairs=num_pairs,
        generation=0,
        start_iteration=0,
        send_state=False,
        wait_verdict=True,
        checkpoint_every=None,
        spool_dir=None,
        heartbeat_interval=heartbeat_interval,
        faults=(),
        columnar=False,
        timeout=timeout,
        accum_mode=mode,
        accum_state_parts=state_parts,
    )
    ok = False
    try:
        outcome = _coordinate_accum(
            job,
            num_pairs,
            mesh,
            keep_trace=keep_trace,
            timeout=timeout,
            suspicion_timeout=(
                suspicion_timeout if heartbeat_interval is not None else None
            ),
        )
        ok = True
    except _WorkerDeath as death:
        raise ParallelExecutionError(death.reason) from None
    finally:
        if ok:
            _shutdown(mesh)
        else:
            _fence(mesh)

    outcome.mode = mode
    outcome.num_workers = num_workers
    outcome.worker_stats.sort(key=lambda s: s.get("worker", 0))
    outcome.wall_seconds = time.perf_counter() - run_started
    return outcome


def _coordinate_accum(
    job: AccumJob,
    num_pairs: int,
    mesh: _Mesh,
    *,
    keep_trace: bool,
    timeout: float | None,
    suspicion_timeout: float | None,
) -> AccumRunResult:
    """Drive the accumulative verdict protocol.

    Each round: gather every worker's pre-round report (per-pair
    pending-priority masses + cumulative work counters), fold the
    masses in ascending pair order (the serial loop's float fold), and
    broadcast ``"progress"`` / ``"maxrounds"`` / CONTINUE.
    """
    num_workers = len(mesh.procs)
    threshold = job.threshold if job.threshold is not None else 0.0
    max_rounds = job.max_rounds if job.max_rounds is not None else 10**9
    inbox = _CoordinatorInbox(
        mesh.report_conns, mesh.procs, suspicion=suspicion_timeout
    )

    finals: dict[int, dict] = {}
    pending_rounds: dict[int, dict[int, dict]] = {}
    trace: list[dict] = []
    terminated_by = ""
    mass = 0.0

    def handle(frame) -> None:
        kind, iteration, _phase, wid, payload, _nbytes = frame
        if kind == ERROR_REPORT:
            raise ParallelExecutionError(f"worker {wid} failed:\n{payload}")
        if kind == FINAL_REPORT:
            finals[wid] = payload
            inbox.mark_final(wid)
            return
        if kind == ITER_REPORT:
            pending_rounds.setdefault(iteration, {})[wid] = payload
            return
        raise ParallelExecutionError(f"unexpected message kind {kind!r}")

    rnd = 0
    while True:
        while len(pending_rounds.get(rnd, {})) < num_workers:
            handle(inbox.recv(timeout))
        reports = pending_rounds.pop(rnd)
        masses: dict[int, float] = {}
        updates = emitted = shipped = 0
        for wid in sorted(reports):
            report = reports[wid]
            masses.update(report["mass"])
            updates += report["updates"]
            emitted += report["emitted"]
            shipped += report["shipped"]
        # Ascending-pair fold — bit-identical to the serial loop's sum.
        mass = 0.0
        for p in range(num_pairs):
            mass += masses.get(p, 0.0)
        if keep_trace:
            trace.append(
                {
                    "round": rnd,
                    "pending_mass": mass,
                    "updates": updates,
                    "emitted": emitted,
                    "shipped": shipped,
                }
            )
        verdict = CONTINUE
        if mass <= threshold:
            verdict = "progress"
        elif rnd >= max_rounds:
            verdict = "maxrounds"
        parts, _ = encode_frame(VERDICT, rnd, 0, -1, verdict)
        for conn in mesh.verdict_conns:
            try:
                for part in parts:
                    conn.send_bytes(part)
            except OSError:  # a dead worker: the next recv reports it
                pass
        if verdict != CONTINUE:
            terminated_by = verdict
            break
        rnd += 1

    while len(finals) < num_workers:
        handle(inbox.recv(timeout))
    if any(f["iterations_run"] != rnd for f in finals.values()):
        raise ParallelExecutionError(
            "workers disagree on the round count: "
            f"{sorted((w, f['iterations_run']) for w, f in finals.items())}"
        )

    by_pair: dict[int, list] = {}
    worker_stats: list[dict] = []
    for final in finals.values():
        by_pair.update(final["state"])
        worker_stats.append(final["stats"])
    state = sorted(
        (rec for p in range(num_pairs) for rec in by_pair.get(p, ())),
        key=lambda kv: order_key(kv[0]),
    )
    return AccumRunResult(
        state=state,
        rounds=rnd,
        converged=terminated_by == "progress",
        terminated_by=terminated_by,
        pending_mass=mass,
        updates_processed=sum(s["updates_processed"] for s in worker_stats),
        deltas_emitted=sum(s["deltas_emitted"] for s in worker_stats),
        deltas_shipped=sum(s["deltas_shipped"] for s in worker_stats),
        mode="async",
        trace=trace,
        worker_stats=worker_stats,
    )
