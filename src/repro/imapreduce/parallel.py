"""Real multiprocess execution backend: ``run_parallel``.

Everything else in this repository executes iterative jobs either in
virtual time (the simulated :class:`IMapReduceRuntime`) or serially
(:func:`run_local`).  This module is the backend that actually uses the
hardware: ``N`` persistent worker *processes* each host a fixed set of
map/reduce task pairs for the whole job, realizing the paper's three
core mechanisms for real:

* **persistent tasks** (§3.1) — workers are spawned once and loop over
  every iteration; no per-iteration process/task setup;
* **static/state separation** (§3.2) — each worker deserializes its
  static-data partitions once at start and keeps them resident; only
  protocol-5 state frames cross process boundaries afterwards;
* **asynchronous map start** (§3.3) — the data plane is a worker mesh
  with no global barrier: a pair's map for iteration k+1 starts as soon
  as its own reduce for k finished and its peer batches arrived.

The mesh and both control planes run on point-to-point OS pipes
(:func:`multiprocessing.Pipe`); the coordinator blocks in
:func:`multiprocessing.connection.wait` over the workers' report pipes
*and their process sentinels*, so a verdict round-trip costs
microseconds and a worker death — any exit code, with or without a
final report — is detected the instant the OS reaps it instead of on a
poll interval or timeout.  See :mod:`.workerproc` for the frame format,
the skip-empty manifest protocol, and the zero-copy buffer path.

Supported job surface: combiners, one2all broadcast (§5.1), multi-phase
iterations (§5.2), the auxiliary phase (§5.3), and distance/threshold
termination — distances are merged at the coordinator exactly as the
paper's master merges reduce-local distances.  The aux phase runs at
the coordinator (its input is the full, tiny, post-iteration state).

Correctness contract: byte-identical record processing order to
:func:`run_local` (shared :func:`map_pair` code and ascending
source-pair assembly), so the final state, ``terminated_by`` and
iteration count are equal record for record — enforced by the
differential tests and the chaos campaigns' ``parallel`` mode.

Not in scope here: fault tolerance and migration (checkpointing and
recovery are the simulated engine's domain, §3.4); a worker crash
aborts the run with the worker's traceback.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Iterable

from ..common.errors import JobError
from ..common.partition import bind_partitioner
from ..common.records import group_by_key
from .job import IterativeJob
from .localrun import order_key
from .runtime import AuxContext
from .workerproc import (
    CONTINUE,
    ERROR_REPORT,
    FINAL_REPORT,
    ITER_REPORT,
    VERDICT,
    WorkerConfig,
    encode_frame,
    read_frame,
    worker_main,
)

__all__ = ["ParallelRunResult", "ParallelExecutionError", "run_parallel"]


class ParallelExecutionError(JobError):
    """A worker process died or misbehaved; carries its traceback."""


@dataclass
class ParallelRunResult:
    """Outcome of a multiprocess run — field-compatible with
    :class:`~repro.imapreduce.localrun.LocalRunResult` plus backend
    observability (worker stats, wall time)."""

    state: list[tuple[Any, Any]]
    iterations_run: int
    converged: bool
    terminated_by: str
    distances: list[float | None] = field(default_factory=list)
    history: list[list[tuple[Any, Any]]] = field(default_factory=list)
    num_workers: int = 0
    num_pairs: int = 0
    wall_seconds: float = 0.0
    #: Per-worker counters: pairs hosted, static_loads (always 1 per
    #: worker — asserted by the wall-clock benchmark), records/batches
    #: shipped over the mesh, bytes pickled, and the phase-level
    #: profiler's ``phase_seconds`` wall-time breakdown.
    worker_stats: list[dict] = field(default_factory=list)

    def state_dict(self) -> dict:
        return dict(self.state)

    @property
    def static_loads(self) -> int:
        """Total static-partition deserializations across the run."""
        return sum(s.get("static_loads", 0) for s in self.worker_stats)

    def counter(self, name: str) -> int:
        """Sum one mesh counter (``records_sent``, ``batches_sent``,
        ``manifest_frames``, ``bytes_pickled``) across workers."""
        return sum(s.get(name, 0) for s in self.worker_stats)

    def phase_breakdown(self) -> dict[str, float]:
        """Aggregate the per-worker profiler into one wall-time dict."""
        totals: dict[str, float] = {}
        for stats in self.worker_stats:
            for phase, seconds in stats.get("phase_seconds", {}).items():
                totals[phase] = round(totals.get(phase, 0.0) + seconds, 6)
        return totals


def _pick_workers(num_workers: int | None, num_pairs: int) -> int:
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    return min(num_workers, num_pairs)


def run_parallel(
    job: IterativeJob,
    state_records: Iterable[tuple[Any, Any]],
    static_records: dict[str, Iterable[tuple[Any, Any]]] | None = None,
    *,
    num_pairs: int = 4,
    num_workers: int | None = None,
    keep_history: bool = False,
    start_method: str | None = None,
    timeout: float | None = 600.0,
) -> ParallelRunResult:
    """Execute ``job`` on ``num_workers`` persistent worker processes.

    Same signature and semantics as :func:`run_local` (``num_pairs``
    governs partitioning and therefore the exact result; ``num_workers``
    only distributes pairs over processes, default one per CPU core).
    The job must be picklable — every ``build_imr_job`` result is, and
    the pickle guard tests keep it that way.

    ``timeout`` bounds every coordinator wait (a hung worker raises
    :class:`ParallelExecutionError` instead of deadlocking the caller).
    """
    import time as _time

    started = _time.perf_counter()
    num_workers = _pick_workers(num_workers, num_pairs)
    phases = job.phases
    part = bind_partitioner(job.partitioner, num_pairs)
    aux = job.aux
    # Workers stream per-iteration state only when someone consumes it.
    send_state = aux is not None or keep_history
    # Threshold/aux termination is a coordinator decision each
    # iteration; maxiter-only jobs free-run with no verdict round-trip.
    wait_verdict = aux is not None or job.threshold is not None

    # ---- partition state and static exactly like the serial executor --
    state_parts: list[list] = [[] for _ in range(num_pairs)]
    for rec in state_records:
        state_parts[part(rec[0])].append(rec)
    static_by_path = {k: dict(v) for k, v in (static_records or {}).items()}
    static_parts: list[list[dict]] = []
    for phase in phases:
        table = static_by_path.get(phase.static_path or "", {})
        per_pair: list[dict] = [{} for _ in range(num_pairs)]
        for key, value in table.items():
            per_pair[part(key)][key] = value
        static_parts.append(per_pair)

    pairs_of = [
        [p for p in range(num_pairs) if p % num_workers == w]
        for w in range(num_workers)
    ]

    try:
        ctx = multiprocessing.get_context(start_method or "fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context(start_method)

    # ---- wire the pipe mesh: one pipe per ordered worker pair, plus a
    # verdict pipe to and a report pipe from every worker ----
    peer_recv: list[dict[int, Any]] = [{} for _ in range(num_workers)]
    peer_send: list[dict[int, Any]] = [{} for _ in range(num_workers)]
    for src in range(num_workers):
        for dst in range(num_workers):
            if src == dst:
                continue
            recv_end, send_end = ctx.Pipe(duplex=False)
            peer_recv[dst][src] = recv_end
            peer_send[src][dst] = send_end
    verdict_pipes = [ctx.Pipe(duplex=False) for _ in range(num_workers)]
    report_pipes = [ctx.Pipe(duplex=False) for _ in range(num_workers)]

    # The blob is pickled explicitly (not via the spawn machinery) so the
    # job's pickle round-trip is exercised under every start method.
    blobs = [
        WorkerConfig(
            worker_id=w,
            num_workers=num_workers,
            num_pairs=num_pairs,
            job=job,
            state_parts={p: state_parts[p] for p in pairs_of[w]},
            static_parts=[
                {p: per_pair[p] for p in pairs_of[w]} for per_pair in static_parts
            ],
            send_state=send_state,
            wait_verdict=wait_verdict,
        ).to_blob()
        for w in range(num_workers)
    ]

    procs = [
        ctx.Process(
            target=worker_main,
            args=(
                w,
                blobs[w],
                peer_recv[w],
                peer_send[w],
                verdict_pipes[w][0],
                report_pipes[w][1],
                timeout,
            ),
            name=f"imr-worker-{w}",
            daemon=True,
        )
        for w in range(num_workers)
    ]
    for proc in procs:
        proc.start()

    # The coordinator only ever writes verdicts and reads reports; its
    # copies of the workers' pipe ends can go immediately (start() has
    # already shipped them, under fork and spawn alike).
    worker_ends = [
        *(conn for ends in peer_recv for conn in ends.values()),
        *(conn for ends in peer_send for conn in ends.values()),
        *(recv for recv, _ in verdict_pipes),
        *(send for _, send in report_pipes),
    ]
    for conn in worker_ends:
        conn.close()
    verdict_conns = [send for _, send in verdict_pipes]
    report_conns = {w: recv for w, (recv, _) in enumerate(report_pipes)}

    try:
        outcome = _coordinate(
            job,
            num_pairs,
            num_workers,
            report_conns,
            verdict_conns,
            procs,
            keep_history=keep_history,
            timeout=timeout,
        )
    finally:
        _shutdown(procs, [*verdict_conns, *report_conns.values()])

    outcome.num_workers = num_workers
    outcome.num_pairs = num_pairs
    outcome.worker_stats.sort(key=lambda s: s.get("worker", 0))
    outcome.wall_seconds = _time.perf_counter() - started
    return outcome


class _CoordinatorInbox:
    """Readiness-based coordinator receive with liveness supervision.

    One :func:`multiprocessing.connection.wait` call covers every live
    worker's report pipe *and* its process sentinel.  A frame wakes the
    coordinator immediately; a death wakes it just as fast, and any dead
    worker whose pipe holds no final report — a clean ``exit(0)``
    included — raises :class:`ParallelExecutionError` on the spot
    instead of stalling until the run timeout.
    """

    def __init__(self, report_conns: dict[int, Any], procs: list):
        self._conns = dict(report_conns)
        self._wid_of = {conn: w for w, conn in report_conns.items()}
        self._procs = dict(enumerate(procs))
        self._dead: dict[int, Any] = {}  # died before their final arrived
        self._frames: deque = deque()

    def mark_final(self, wid: int) -> None:
        """A worker's final report arrived: stop supervising it."""
        conn = self._conns.pop(wid, None)
        if conn is not None:
            self._wid_of.pop(conn, None)
        self._procs.pop(wid, None)
        self._dead.pop(wid, None)

    def _drain(self, wid: int) -> None:
        """Pull every frame still buffered in a dead worker's pipe."""
        conn = self._conns.pop(wid, None)
        if conn is None:
            return
        self._wid_of.pop(conn, None)
        while True:
            try:
                if not conn.poll(0):
                    break
                self._frames.append(read_frame(conn))
            except (EOFError, OSError):
                break

    def recv(self, timeout: float | None):
        while True:
            if self._frames:
                return self._frames.popleft()
            for wid, proc in list(self._procs.items()):
                if not proc.is_alive():
                    # Pull any frames still buffered in the pipe — the
                    # final report may simply not have been read yet.
                    self._drain(wid)
                    self._procs.pop(wid, None)
                    self._dead[wid] = proc
            if self._frames:
                return self._frames.popleft()
            if self._dead:
                wid, proc = next(iter(self._dead.items()))
                raise ParallelExecutionError(
                    f"worker {proc.name} exited (code {proc.exitcode}) "
                    "without a final report"
                )
            waitables = list(self._conns.values())
            waitables += [p.sentinel for p in self._procs.values()]
            if not waitables:
                raise ParallelExecutionError(
                    "all workers gone before the run completed"
                )
            ready = _conn_wait(waitables, timeout)
            if not ready:
                raise ParallelExecutionError(
                    f"no worker message within {timeout:.0f}s"
                )
            for obj in ready:
                wid = self._wid_of.get(obj)
                if wid is None:
                    continue  # a sentinel: handled at the top of the loop
                try:
                    self._frames.append(read_frame(obj))
                except (EOFError, OSError):
                    self._drain(wid)


def _coordinate(
    job: IterativeJob,
    num_pairs: int,
    num_workers: int,
    report_conns: dict[int, Any],
    verdict_conns: list,
    procs: list,
    *,
    keep_history: bool,
    timeout: float | None,
) -> ParallelRunResult:
    aux = job.aux
    distance_fn = job.distance_fn
    wait_verdict = aux is not None or job.threshold is not None
    stream_reports = wait_verdict or distance_fn is not None or keep_history

    aux_part = bind_partitioner(job.partitioner, aux.num_tasks) if aux else None
    aux_map_state: list[dict] = [{} for _ in range(aux.num_tasks if aux else 0)]
    aux_reduce_state: list[dict] = [{} for _ in range(aux.num_tasks if aux else 0)]

    distances: list[float | None] = []
    history: list[list[tuple[Any, Any]]] = []
    finals: dict[int, dict] = {}
    pending_iters: dict[int, dict[int, dict]] = {}
    terminated_by = ""
    inbox = _CoordinatorInbox(report_conns, procs)

    def handle(frame) -> bool:
        """Returns True when the frame was a final report."""
        kind, iteration, _phase, wid, payload, _nbytes = frame
        if kind == ERROR_REPORT:
            raise ParallelExecutionError(f"worker {wid} failed:\n{payload}")
        if kind == FINAL_REPORT:
            finals[wid] = payload
            inbox.mark_final(wid)
            return True
        if kind == ITER_REPORT:
            pending_iters.setdefault(iteration, {})[wid] = payload
            return False
        raise ParallelExecutionError(f"unexpected message kind {kind!r}")

    def merge_iteration(iteration: int) -> tuple[float | None, bool]:
        """Merge one completed iteration's reports: distance + aux."""
        reports = pending_iters.pop(iteration)
        distance: float | None = None
        if distance_fn is not None:
            # Pair-ascending partial merge — the distributed master's
            # merge rule, bit-identical to run_local's accumulation.
            partials: dict[int, float] = {}
            for report in reports.values():
                partials.update(report.get("distance", {}))
            distance = 0.0
            for p in range(num_pairs):
                distance += partials.get(p, 0.0)
        distances.append(distance)

        aux_stop = False
        if aux is not None or keep_history:
            by_pair: dict[int, list] = {}
            for report in reports.values():
                by_pair.update(report.get("state", {}))
            flat = [rec for p in range(num_pairs) for rec in by_pair.get(p, ())]
            if keep_history:
                history.append(sorted(flat, key=lambda kv: order_key(kv[0])))
            if aux is not None and aux_part is not None:
                aux_shuffled: list[list] = [[] for _ in range(aux.num_tasks)]
                parts: list[list] = [[] for _ in range(aux.num_tasks)]
                for rec in flat:
                    parts[aux_part(rec[0])].append(rec)
                for t in range(aux.num_tasks):
                    actx = AuxContext(aux_map_state[t])
                    for key, value in parts[t]:
                        aux.map_fn(key, value, actx)
                    for rec in actx.take():
                        aux_shuffled[aux_part(rec[0])].append(rec)
                for t in range(aux.num_tasks):
                    actx = AuxContext(aux_reduce_state[t])
                    for key, values in group_by_key(aux_shuffled[t]):
                        aux.reduce_fn(key, values, actx)
                    if actx.terminate_requested:
                        aux_stop = True
        return distance, aux_stop

    if wait_verdict:
        # Lock-step termination protocol (threshold and/or aux).
        max_iterations = (
            job.max_iterations if job.max_iterations is not None else 10**9
        )
        for iteration in range(max_iterations):
            while len(pending_iters.get(iteration, {})) < num_workers:
                handle(inbox.recv(timeout))
            distance, aux_stop = merge_iteration(iteration)
            verdict = CONTINUE
            if aux_stop:
                verdict = "aux"
            elif (
                job.threshold is not None
                and distance is not None
                and distance <= job.threshold
            ):
                verdict = "threshold"
            elif iteration == max_iterations - 1:
                # Let workers fall out of their loop naturally.
                pass
            parts, _ = encode_frame(VERDICT, iteration, 0, -1, verdict)
            for conn in verdict_conns:
                try:
                    for part in parts:
                        conn.send_bytes(part)
                except OSError:  # a dead worker: the next recv reports it
                    pass
            if verdict != CONTINUE:
                terminated_by = verdict
                break
    # Collect finals (and, in free-run mode, any streamed reports).
    while len(finals) < num_workers:
        handle(inbox.recv(timeout))
    if stream_reports and not wait_verdict:
        for iteration in sorted(pending_iters):
            merge_iteration(iteration)

    if not terminated_by:
        terminated_by = "maxiter"
    iterations_run = max(f["iterations_run"] for f in finals.values())
    # Free-running jobs with no distance to measure send no per-iteration
    # reports; the serial executor still records one (None) entry per
    # iteration, so pad for field-compatible results.
    while len(distances) < iterations_run:
        distances.append(None)
    if any(f["iterations_run"] != iterations_run for f in finals.values()):
        raise ParallelExecutionError(
            "workers disagree on the iteration count: "
            f"{sorted((w, f['iterations_run']) for w, f in finals.items())}"
        )

    by_pair: dict[int, list] = {}
    worker_stats: list[dict] = []
    for final in finals.values():
        by_pair.update(final["state"])
        worker_stats.append(final["stats"])
    state = sorted(
        (rec for p in range(num_pairs) for rec in by_pair.get(p, ())),
        key=lambda kv: order_key(kv[0]),
    )
    return ParallelRunResult(
        state=state,
        iterations_run=iterations_run,
        converged=terminated_by == "threshold",
        terminated_by=terminated_by,
        distances=distances,
        history=history,
        worker_stats=worker_stats,
    )


def _shutdown(procs, conns) -> None:
    """Reap workers and release pipe resources without ever hanging."""
    for proc in procs:
        proc.join(timeout=5.0)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    for conn in conns:
        try:
            conn.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
