"""Iterative job descriptions for the iMapReduce engine.

The user-facing surface follows §3.5 of the paper:

* ``map(key, state_value, static_value, ctx)`` — the framework joins the
  state and static records with the same key before calling (one2one
  mapping), or passes the full broadcast state list (one2all);
* ``reduce(key, values, ctx)`` — state-only input, like MapReduce;
* ``distance(key, prev_state, curr_state) -> float`` — per-key
  contribution to the inter-iteration distance, accumulated across keys
  and reduce tasks and compared to ``mapred.iterjob.disthresh``;

plus the ``mapred.iterjob.*`` JobConf parameters (statepath, staticpath,
maxiter, disthresh, mapping, sync, checkpoint interval, buffer size).

§5.2's multi-phase iterations are expressed as a list of
:class:`Phase` objects chained in order (``add_successor`` sugar builds
the list), and §5.3's auxiliary map-reduce phase as an
:class:`AuxPhase` that observes the main phase's output in parallel and
may signal termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..common.config import IterKeys, JobConf
from ..common.errors import ConfigError
from ..common.partition import HashPartitioner, Partitioner
from ..metrics import RunMetrics

# Re-exported for discoverability: the accumulative (Maiter-mode) job
# model extends this module's job surface but lives in accum.py.
from .accum import AccumJob, AccumRunResult, Accumulator  # noqa: E402

__all__ = [
    "Phase",
    "AuxPhase",
    "IterativeJob",
    "IterativeRunResult",
    "AccumJob",
    "AccumRunResult",
    "Accumulator",
]

#: map(key, state_value, static_value, ctx)
MapFn = Callable[[Any, Any, Any, Any], None]
#: reduce(key, values, ctx)
ReduceFn = Callable[[Any, list, Any], None]
#: distance(key, prev_state, curr_state) -> float
DistanceFn = Callable[[Any, Any, Any], float]


@dataclass
class Phase:
    """One map-reduce phase of the iteration body.

    ``static_path`` (optional) names the DFS file whose records are
    joined with the state before this phase's map; ``mapping`` declares
    how the *previous* phase's reduce output reaches this phase's map —
    ``"one2one"`` through the paired persistent socket, ``"one2all"``
    broadcast from every reduce task (§5.1).
    """

    map_fn: MapFn
    reduce_fn: ReduceFn
    static_path: str | None = None
    mapping: str = "one2one"
    combiner: ReduceFn | None = None
    name: str = ""

    def __post_init__(self):
        if self.mapping not in ("one2one", "one2all"):
            raise ConfigError(f"unknown mapping {self.mapping!r}")


@dataclass
class AuxPhase:
    """§5.3: an auxiliary map-reduce phase running beside the main phase.

    Each iteration it receives a copy of the last main phase's reduce
    output.  Its map function is ``map(key, value, ctx)``; its reduce is
    ``reduce(key, values, ctx)``.  Calling ``ctx.signal_terminate()``
    from the aux reduce terminates the whole iterative job (the paper's
    K-means convergence detection).  Aux tasks keep a persistent
    per-task dict at ``ctx.task_state`` so consecutive iterations can be
    compared.
    """

    map_fn: Callable[[Any, Any, Any], None]
    reduce_fn: ReduceFn
    num_tasks: int = 1
    name: str = "aux"


@dataclass
class IterativeJob:
    """A complete iterative computation for the iMapReduce engine."""

    name: str
    phases: list[Phase]
    output_path: str
    conf: JobConf = field(default_factory=JobConf)
    distance_fn: DistanceFn | None = None
    partitioner: Partitioner = field(default_factory=HashPartitioner)
    #: Number of persistent map/reduce task pairs (per phase).  ``None``
    #: lets the runtime pick one pair per worker.
    num_pairs: int | None = None
    aux: AuxPhase | None = None
    #: Optional vectorized compute kernel (see
    #: :mod:`repro.imapreduce.columnar`).  When set — and the job shape
    #: supports it (single phase, no aux, vectorizable partitioner) —
    #: both executors replace the per-record map/combine/reduce loops
    #: with one columnar ``map_kernel`` + merge per pair per iteration.
    #: The record-level ``phases`` stay authoritative as the
    #: differential reference.
    kernel: Any | None = None

    def __post_init__(self):
        if not self.phases:
            raise ConfigError(f"job {self.name!r}: needs at least one phase")
        if self.num_pairs is not None and self.num_pairs < 1:
            raise ConfigError(f"job {self.name!r}: num_pairs must be >= 1")
        if self.threshold is not None and self.distance_fn is None:
            raise ConfigError(
                f"job {self.name!r}: disthresh set but no distance function"
            )
        if self.max_iterations is None and self.threshold is None and self.aux is None:
            raise ConfigError(
                f"job {self.name!r}: set maxiter, disthresh or an aux phase "
                "so the iteration can terminate"
            )

    # -- paper-style conveniences -----------------------------------------------
    @classmethod
    def single_phase(
        cls,
        name: str,
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        *,
        conf: JobConf,
        output_path: str,
        distance_fn: DistanceFn | None = None,
        partitioner: Partitioner | None = None,
        combiner: ReduceFn | None = None,
        num_pairs: int | None = None,
        aux: AuxPhase | None = None,
        kernel: Any | None = None,
    ) -> "IterativeJob":
        """The common case: one map-reduce phase per iteration (§3)."""
        phase = Phase(
            map_fn=map_fn,
            reduce_fn=reduce_fn,
            static_path=conf.get(IterKeys.STATIC_PATH),
            mapping=conf.get(IterKeys.MAPPING, "one2one"),
            combiner=combiner,
            name=name,
        )
        return cls(
            name=name,
            phases=[phase],
            output_path=output_path,
            conf=conf,
            distance_fn=distance_fn,
            partitioner=partitioner or HashPartitioner(),
            num_pairs=num_pairs,
            aux=aux,
            kernel=kernel,
        )

    # -- paper §5.2/§5.3 chaining sugar ------------------------------------------
    def add_successor(self, phase: Phase) -> "IterativeJob":
        """Append another map-reduce phase to the iteration body — the
        paper's ``job1.addSuccessor(job2)``.  The final phase's reduce
        output loops back to phase 0 for the next iteration."""
        self.phases.append(phase)
        return self

    def add_auxiliary(self, aux: AuxPhase) -> "IterativeJob":
        """Attach an auxiliary phase — the paper's
        ``job1.addAuxiliray(job2)`` (sic)."""
        if self.aux is not None:
            raise ConfigError(f"job {self.name!r} already has an auxiliary phase")
        self.aux = aux
        return self

    # -- derived configuration ----------------------------------------------------
    @property
    def state_path(self) -> str:
        return self.conf.get_required(IterKeys.STATE_PATH)

    @property
    def max_iterations(self) -> int | None:
        return self.conf.get_int(IterKeys.MAX_ITER)

    @property
    def threshold(self) -> float | None:
        return self.conf.get_float(IterKeys.DIST_THRESH)

    @property
    def synchronous(self) -> bool:
        """Maps wait for the global iteration barrier (§5.1.2) — forced
        on when any phase uses one2all mapping."""
        if self.conf.get_boolean(IterKeys.SYNC, False):
            return True
        return any(p.mapping == "one2all" for p in self.phases)

    @property
    def checkpoint_interval(self) -> int:
        return self.conf.get_int(IterKeys.CHECKPOINT_INTERVAL, 3)

    @property
    def parallel_checkpoint_every(self) -> int | None:
        """Durable checkpoint cadence for the real multiprocess backend
        (``None`` = off).  A job can opt in through its conf; the
        ``checkpoint_every`` argument of :func:`run_parallel` overrides."""
        every = self.conf.get_int(IterKeys.PARALLEL_CHECKPOINT, 0)
        return every if every and every > 0 else None

    @property
    def buffer_records(self) -> int:
        """Reduce→map channel buffer threshold (§3.3)."""
        return self.conf.get_int(IterKeys.BUFFER_RECORDS, 2048)

    def part_path(self, pair: int) -> str:
        return f"{self.output_path}/part-{pair:05d}"


@dataclass
class IterativeRunResult:
    """Outcome of an iMapReduce run."""

    job: IterativeJob
    metrics: RunMetrics
    final_paths: list[str]
    iterations_run: int
    converged: bool
    terminated_by: str  # "maxiter" | "threshold" | "aux"
    final_distance: float | None = None
    migrations: list[dict] = field(default_factory=list)
    recoveries: int = 0
