"""Master-side heartbeat failure detection.

The paper's master simply *knows* when a worker dies; our runtime
originally inherited that omniscience by translating a task's
``WorkerFailure`` interrupt straight into a master message.  This module
replaces fiat with observation: every worker runs a tiny heartbeat
daemon, the master tracks arrival times, and a worker is *suspected*
after ``timeout`` seconds of silence and *confirmed* failed only after
``suspicion_checks`` consecutive silent monitor passes.  A merely slow
or briefly partitioned worker whose heartbeats resume in time is
unsuspected with no side effects — false suspicions are survivable.

Heartbeats and their bookkeeping are pure control-plane traffic: they
ride :meth:`~repro.cluster.topology.Cluster.control_send` (switch
latency only — no NIC pipe occupancy, no byte accounting), so arming the
detector does not perturb data-plane timing in a failure-free run; in a
discrete-event simulation extra pure-latency events never move other
processes' timestamps.

Lifecycle notes:

* Heartbeat senders are spawned through :meth:`Machine.spawn`, so a
  machine crash kills its sender exactly as it kills its tasks — silence
  is then genuine.  When a machine comes back (fault-schedule
  ``recover``), the monitor re-spawns its sender on the next pass — the
  node agent restarting its daemon — and the first heartbeat that
  arrives from a *confirmed-dead* machine is reported as a ``rejoin``.
* Every heartbeat carries the sending daemon's *boot id* (bumped each
  time the sender is respawned).  A machine that crashes and restarts
  faster than the suspicion window would otherwise be missed entirely —
  its heartbeats resume before confirmation, yet every task it hosted is
  gone.  A boot-id change on a not-yet-confirmed machine is therefore
  reported as a ``reboot`` and treated as a (now already healed)
  failure, so the master reschedules the tasks that died with the old
  incarnation.
* ``confirmed`` is the master's knowledge, not ground truth: a worker on
  the far side of a network partition is confirmed dead exactly like a
  crashed one (the master cannot tell the difference, which is the whole
  point), and recovery proceeds on that knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Cluster, Machine
from ..common.errors import WorkerFailure
from ..simulation import Store

__all__ = ["FailureDetectorConfig", "FailureDetector"]


@dataclass(frozen=True)
class FailureDetectorConfig:
    """Heartbeat policy knobs.

    With the defaults a dead worker is suspected ~1.6 s after its last
    heartbeat and confirmed ~1.5 s later (three more silent monitor
    passes) — long enough that a transient stall or a sub-second
    partition never triggers recovery, short enough that detection is a
    small fraction of any iteration.
    """

    enabled: bool = True
    #: Seconds between heartbeats (and between monitor passes).
    period: float = 0.5
    #: A worker silent for longer than this becomes *suspected*.  A
    #: heartbeat that arrives exactly at the boundary still counts as
    #: alive (strict ``>`` comparison).
    timeout: float = 1.6
    #: Consecutive silent monitor passes before a suspicion is confirmed.
    suspicion_checks: int = 3
    #: Master-side stall watchdog: if the master observes no progress at
    #: all for this long, the run is declared stalled and aborted — the
    #: backstop that turns a livelock (e.g. a detector that never
    #: confirms, or a channel that never retransmits) into a clean error.
    stall_timeout: float = 120.0


class FailureDetector:
    """Heartbeat senders plus the master's suspicion state machine."""

    def __init__(self, cluster: Cluster, config: FailureDetectorConfig, emit, chaos):
        self.cluster = cluster
        self.engine = cluster.engine
        self.config = config
        self._emit = emit  # (kind, **fields) -> None
        self._chaos = chaos
        alive = cluster.alive_workers()
        self.master: Machine = alive[0] if alive else cluster.workers()[0]
        self.last_hb: dict[str, float] = {}
        self.suspicion: dict[str, int] = {}
        #: Machines the master currently believes are dead.
        self.confirmed: set[str] = set()
        self._senders: dict[str, object] = {}
        #: Per-machine heartbeat-daemon boot counter (bumped on respawn)
        #: and the last boot id the master saw from each machine.
        self._boot: dict[str, int] = {}
        self._seen_boot: dict[str, int] = {}
        self._sink: Store | None = None
        self._pending: list[str] = []
        self._active = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._active:
            return
        self._active = True
        now = self.engine.now
        for name, machine in self.cluster.machines.items():
            self.last_hb[name] = now
            self.suspicion[name] = 0
            if not machine.failed:
                self._spawn_sender(machine)
        self.engine.process(self._monitor(), name="fd-monitor")

    def stop(self) -> None:
        """Senders and the monitor exit on their next wakeup."""
        self._active = False

    def attach(self, sink: Store) -> None:
        """Route confirmations into ``sink`` (a generation's master box),
        flushing any confirmation that happened between generations."""
        self._sink = sink
        while self._pending:
            sink.put(("failure", self._pending.pop(0)))

    def detach(self) -> None:
        self._sink = None

    # -- views --------------------------------------------------------------
    def alive_names(self) -> list[str]:
        """Workers the master may schedule onto: not confirmed dead (and
        not known-down to the resource manager)."""
        return [
            m.name
            for m in self.cluster.alive_workers()
            if m.name not in self.confirmed
        ]

    # -- internals ----------------------------------------------------------
    def _spawn_sender(self, machine: Machine) -> None:
        boot = self._boot.get(machine.name, 0) + 1
        self._boot[machine.name] = boot
        try:
            self._senders[machine.name] = machine.spawn(
                self._sender(machine, boot), name=f"hb:{machine.name}"
            )
        except WorkerFailure:
            pass  # died in the window; silence will tell

    def _sender(self, machine: Machine, boot: int):
        period = self.config.period
        while self._active:
            delivered = yield from self.cluster.control_send(machine, self.master)
            if delivered and self._active:
                self._note_heartbeat(machine.name, boot)
            yield self.engine.timeout(period)

    def _note_heartbeat(self, name: str, boot: int) -> None:
        self.last_hb[name] = self.engine.now
        prev_boot = self._seen_boot.get(name)
        self._seen_boot[name] = boot
        if name in self.confirmed:
            self.confirmed.discard(name)
            self.suspicion[name] = 0
            self._emit("rejoin", worker=name)
        elif prev_boot is not None and boot != prev_boot:
            # The daemon restarted between heartbeats: the machine
            # crashed and came back inside the suspicion window.  Its
            # old incarnation's tasks are gone even though it is alive
            # again now, so report the (already healed) failure.
            self.suspicion[name] = 0
            self._emit("reboot", worker=name, boot=boot)
            if self._sink is not None:
                self._sink.put(("failure", name))
            else:
                self._pending.append(name)
        elif self.suspicion.get(name):
            self.suspicion[name] = 0

    def _monitor(self):
        cfg = self.config
        while self._active:
            yield self.engine.timeout(cfg.period)
            if not self._active:
                return
            now = self.engine.now
            for name, machine in self.cluster.machines.items():
                if name == self.master.name:
                    continue
                sender = self._senders.get(name)
                if not machine.failed and (sender is None or not sender.is_alive):
                    # Node agent restart after a recovery: resume heartbeats.
                    self._spawn_sender(machine)
                if name in self.confirmed:
                    continue
                silent = now - self.last_hb[name]
                if silent > cfg.timeout:
                    self.suspicion[name] += 1
                    if self.suspicion[name] == 1:
                        self._emit("suspect", worker=name, silent_for=silent)
                    if (
                        self.suspicion[name] >= cfg.suspicion_checks
                        and not self._chaos.ignore_heartbeat_timeout
                    ):
                        self._confirm(name, silent)
                elif self.suspicion[name]:
                    self.suspicion[name] = 0

    def _confirm(self, name: str, silent: float) -> None:
        self.confirmed.add(name)
        self.suspicion[name] = 0
        self._emit("confirm-failure", worker=name, silent_for=silent)
        if self._sink is not None:
            self._sink.put(("failure", name))
        else:
            self._pending.append(name)
