"""Columnar execution path: vectorized per-pair kernels.

The record-level executors (:func:`~repro.imapreduce.localrun.run_local`
and the multiprocess backend) spend their time in per-record Python —
``map_pair`` → ``group_by_key`` → ``reduce`` — which the PR5 phase
profiler showed dominating wall clock by ~30× over serialization.  The
hot algorithms don't need per-record generality: their updates are
accumulative merges over a *fixed integer key space* (``sum`` for
pagerank/jacobi/k-means partials, ``min`` for sssp/components), so a
whole pair's iteration collapses into a handful of numpy array
operations — the same structure Maiter exploits, and the same code shape
as the ``reference_iterations`` oracles.

Layout
------

A pair's state is two contiguous arrays instead of a list of records:

* ``keys``   — int64, strictly ascending (the pair's *owned* key set,
  fixed for the whole job: the initial state keys this pair's partition
  received, mirroring §3.2's static task-pair assignment);
* ``values`` — float64/int64, shape ``(n,)`` for scalar state or
  ``(n, width)`` for vector state (k-means centroids), row-aligned with
  ``keys``.

A :class:`Kernel` carried by the job (``IterativeJob.kernel``) replaces
the per-record loops:

* ``prepare(pair, owned_keys, static_table)`` runs once at partition
  load, building CSR-style static columns that stay resident across
  iterations (§3.2.1 — the static data is never touched again);
* ``map_kernel(pair, keys, values, prepared, broadcast)`` returns the
  pair's whole emission set as ``(out_keys, out_values)`` arrays;
* emissions are routed with one vectorized partition call
  (``partitioner.bind_array``) and merged at the owning pair with
  ``np.add.at`` / ``np.minimum.at`` — the reduce;
* optional ``finalize`` post-processes the merged accumulator (k-means
  divides sums by counts), and ``distance_partial`` supplies the
  vectorized per-pair convergence contribution.

Dispatch rules (:func:`kernel_enabled`): the job must carry a kernel,
have exactly one phase, no aux phase, a partitioner with ``bind_array``,
and the phase mapping must match the kernel's ``needs_broadcast``.
Anything else falls back to the record path, on every backend, so both
backends always agree on which path runs.

Float-ordering caveat
---------------------

``min`` merges are order-independent, so sssp/components kernels are
*bit-exact* against the record path.  ``sum`` merges reorder the float
additions (``np.add.at`` accumulates in routed-concatenation order, the
record path in ``group_by_key`` emission order), so summation kernels
are compared with a tolerance oracle.  The worst-case error of summing
``n`` floats in any order is bounded by ``(n-1)·eps·Σ|xᵢ|`` (Higham,
*Accuracy and Stability of Numerical Algorithms*, §4.2); with
``eps = 2⁻⁵³`` and the bench-scale fan-ins (n ≲ 10⁵, values ≲ 1) that is
≲ 10⁻¹¹ absolute — six orders under the differential oracle's 1e-6
relative tolerance.  Kernel-serial vs kernel-parallel stays bit-exact:
both assemble merge inputs in ascending source-pair order and run the
identical numpy reduction.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from ..common.errors import JobError
from ..common.partition import bind_partitioner

__all__ = [
    "Kernel",
    "AccumKernel",
    "KernelContractError",
    "kernel_enabled",
    "accum_kernel_enabled",
    "encode_columnar",
    "decode_columnar",
    "route_columnar",
    "merge_columnar",
    "absorb_columnar",
    "pending_priority",
    "concat_broadcast",
    "run_local_kernel",
    "run_accum_local_kernel",
]


class KernelContractError(JobError):
    """A kernel violated the columnar contract (non-int keys, emission
    to a key outside the job's key universe, or an owned key that
    received no contribution)."""


class Kernel:
    """Base class for vectorized per-pair compute kernels.

    Subclasses set the class attributes and implement ``map_kernel``
    (and ``distance_partial`` when the job measures a distance).
    Kernels ship to worker processes inside the job pickle, so they
    must be picklable — plain classes with ``__slots__`` work.
    """

    #: ``"sum"`` (``np.add.at``) or ``"min"`` (``np.minimum.at``).
    merge = "sum"
    #: True for one2all jobs: ``map_kernel`` receives the full state as
    #: a globally key-sorted ``(keys, values)`` broadcast.
    needs_broadcast = False
    #: dtype of the state value array (``"float64"`` or ``"int64"``).
    state_dtype = "float64"
    #: 0 for scalar state; otherwise the number of value columns.
    state_width = 0

    def prepare(self, pair: int, owned_keys: np.ndarray, static_table: dict):
        """Build per-pair static columns once at partition load (§3.2)."""
        return None

    def map_kernel(
        self,
        pair: int,
        keys: np.ndarray,
        values: np.ndarray,
        prepared: Any,
        broadcast: tuple[np.ndarray, np.ndarray] | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def finalize(
        self,
        pair: int,
        keys: np.ndarray,
        merged: np.ndarray,
        prev_values: np.ndarray,
        prepared: Any,
    ) -> np.ndarray:
        """Post-process the merged accumulator into the new state values
        (default: the accumulator *is* the new state)."""
        return merged


class AccumKernel:
    """Vectorized twin of the accumulative (Maiter-mode) engine.

    A pair's engine state is three aligned dense arrays over the owned
    key set: ``state`` (starts at ``identity``), ``pending`` (the
    coalesced delta queue, also at ``identity``) and an ``active``
    boolean mask marking keys that currently hold a pending delta.
    Per round the executor scores pending deltas vectorized
    (:func:`pending_priority`), selects the top-priority fraction,
    applies them with one elementwise merge, and asks the kernel for
    the emissions of the *changed* subset.

    Like :class:`Kernel`, subclasses ship inside the job pickle — keep
    them plain and picklable.  The algebra laws are still validated at
    build time through the job's record-level :class:`Accumulator`; a
    kernel must implement the same merge ("sum"/"min") it declares.
    """

    #: ``"sum"`` (elementwise add) or ``"min"`` (elementwise minimum).
    merge = "sum"
    #: dtype of the state/pending arrays.
    state_dtype = "float64"
    #: The algebra identity in this dtype (``np.inf`` or the int64 max
    #: sentinel for ``min``; 0 for ``sum``).
    identity: Any = 0.0

    def prepare(self, pair: int, owned_keys: np.ndarray, static_table: dict):
        """Build per-pair CSR static columns once at partition load."""
        return None

    def emit_deltas(
        self,
        pair: int,
        owned_keys: np.ndarray,
        idx: np.ndarray,
        deltas: np.ndarray,
        states: np.ndarray,
        prepared: Any,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Emissions for the applied deltas whose merge changed state.

        ``idx`` indexes ``owned_keys`` in application (priority) order;
        ``deltas``/``states`` are the applied delta and the post-merge
        state, row-aligned with ``idx``.  Returns ``(out_keys,
        out_values)`` in the same per-source order the record-level
        update function would emit.
        """
        raise NotImplementedError


def kernel_enabled(job) -> bool:
    """Does this job run on the columnar path?  Both backends call this
    one predicate, so they always agree; anything unsupported falls
    back to the record path silently."""
    kernel = getattr(job, "kernel", None)
    if kernel is None:
        return False
    if len(job.phases) != 1 or job.aux is not None:
        return False
    if getattr(job.partitioner, "bind_array", None) is None:
        return False
    if (job.phases[0].mapping == "one2all") != bool(kernel.needs_broadcast):
        return False
    if job.distance_fn is not None and not hasattr(kernel, "distance_partial"):
        return False
    return True


def accum_kernel_enabled(job) -> bool:
    """Does this accumulative job run on the columnar delta path?

    The requirements are lighter than :func:`kernel_enabled` — an
    :class:`~repro.imapreduce.accum.AccumJob` has no phases or aux —
    but the key universe must be closed (every emission targets a
    static-table or initial-delta key; true for all bundled graph
    algorithms, whose emissions follow edges of the loaded graph).
    """
    kernel = getattr(job, "kernel", None)
    if kernel is None or not isinstance(kernel, AccumKernel):
        return False
    if getattr(job.partitioner, "bind_array", None) is None:
        return False
    return True


# ------------------------------------------------------------- layout --
def encode_columnar(
    records: Iterable[tuple[int, Any]],
    dtype: str = "float64",
    width: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Records → ``(keys, values)`` arrays sorted by key.

    ``width == 0`` encodes scalar values into shape ``(n,)``; otherwise
    each value must be a length-``width`` vector and the result is
    ``(n, width)``.  Keys must be Python ints (the columnar contract).
    """
    recs = list(records)
    n = len(recs)
    keys = np.empty(n, dtype=np.int64)
    for i, (k, _v) in enumerate(recs):
        if isinstance(k, bool) or not isinstance(k, int):
            raise KernelContractError(
                f"columnar keys must be ints, got {type(k).__name__}"
            )
        keys[i] = k
    if width == 0:
        values = np.empty(n, dtype=dtype)
        for i, (_k, v) in enumerate(recs):
            values[i] = v
    else:
        values = np.empty((n, width), dtype=dtype)
        for i, (_k, v) in enumerate(recs):
            values[i] = v
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    if n > 1 and (keys[1:] == keys[:-1]).any():
        raise KernelContractError("duplicate keys in columnar state")
    return keys, values[order]


def decode_columnar(
    keys: np.ndarray, values: np.ndarray
) -> list[tuple[int, Any]]:
    """``(keys, values)`` → records with the record path's value types:
    Python ints/floats for scalar state, per-row ndarray copies for
    vector state (what the record-path reducers emit)."""
    if values.ndim == 1:
        if values.dtype.kind == "i":
            return [(int(k), int(v)) for k, v in zip(keys.tolist(), values.tolist())]
        return [(int(k), float(v)) for k, v in zip(keys.tolist(), values.tolist())]
    return [(int(k), values[i].copy()) for i, k in enumerate(keys.tolist())]


# ------------------------------------------------------------- routing --
def route_columnar(
    out_keys: np.ndarray,
    out_values: np.ndarray,
    part_array: Callable[[np.ndarray], np.ndarray],
    num_pairs: int,
) -> list[tuple[int, np.ndarray, np.ndarray]]:
    """Split one pair's emissions by destination pair.

    One vectorized partition call plus a stable argsort: within each
    destination, emission order is preserved, so the serial and the
    multiprocess executor concatenate identical per-source batches.
    Empty destinations are skipped (the mesh's skip-empty contract).
    """
    if out_keys.size == 0:
        return []
    dest = part_array(out_keys)
    order = np.argsort(dest, kind="stable")
    ks = out_keys[order]
    vs = out_values[order]
    ds = dest[order]
    bounds = np.searchsorted(ds, np.arange(num_pairs + 1))
    return [
        (q, ks[lo:hi], vs[lo:hi])
        for q, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:]))
        if hi > lo
    ]


# --------------------------------------------------------------- merge --
def merge_columnar(
    kernel: Kernel,
    owned_keys: np.ndarray,
    batches: list[tuple[np.ndarray, np.ndarray]],
) -> np.ndarray:
    """The vectorized reduce: fold arriving ``(keys, values)`` batches
    (already in ascending source-pair order) into an accumulator aligned
    with ``owned_keys``.

    ``sum`` starts from zero and scatters with ``np.add.at``; ``min``
    starts from the dtype's +∞ and uses ``np.minimum.at``.  Every owned
    key must receive at least one contribution (all bundled kernels
    self-emit), and no emission may target a key outside the owned set —
    both violations raise :class:`KernelContractError`.
    """
    if not batches:
        raise KernelContractError("no contributions arrived for a non-empty pair")
    all_keys = np.concatenate([b[0] for b in batches])
    all_vals = np.concatenate([b[1] for b in batches])
    idx = np.searchsorted(owned_keys, all_keys)
    clipped = np.minimum(idx, owned_keys.size - 1)
    bad = (idx >= owned_keys.size) | (owned_keys[clipped] != all_keys)
    if bad.any():
        stray = all_keys[bad][:5].tolist()
        raise KernelContractError(
            f"kernel emitted to keys outside the owned set: {stray}"
        )
    shape = (owned_keys.size,) + all_vals.shape[1:]
    if kernel.merge == "sum":
        acc = np.zeros(shape, dtype=all_vals.dtype)
        np.add.at(acc, idx, all_vals)
    elif kernel.merge == "min":
        if all_vals.dtype.kind == "i":
            fill = np.iinfo(all_vals.dtype).max
        else:
            fill = np.inf
        acc = np.full(shape, fill, dtype=all_vals.dtype)
        np.minimum.at(acc, idx, all_vals)
    else:
        raise KernelContractError(f"unknown merge {kernel.merge!r}")
    present = np.zeros(owned_keys.size, dtype=bool)
    present[idx] = True
    if not present.all():
        missing = owned_keys[~present][:5].tolist()
        raise KernelContractError(
            f"owned keys received no contribution: {missing}"
        )
    return acc


def concat_broadcast(
    parts: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble the one2all broadcast: concatenate per-pair state in
    ascending pair order, then sort globally by key.  Keys are unique,
    so the stable argsort is fully deterministic — the serial executor
    and the parallel sorter worker produce identical arrays."""
    keys = np.concatenate([p[0] for p in parts])
    values = np.concatenate([p[1] for p in parts])
    order = np.argsort(keys, kind="stable")
    return keys[order], values[order]


# ------------------------------------------------------ serial executor --
def run_local_kernel(
    job,
    state_records: Iterable[tuple[Any, Any]],
    static_records: dict[str, Iterable[tuple[Any, Any]]] | None = None,
    *,
    num_pairs: int = 4,
    keep_history: bool = False,
):
    """Serial columnar executor — :func:`run_local`'s kernel dispatch
    target.  Same result surface (:class:`LocalRunResult`), one
    ``map_kernel`` + one vectorized merge per pair per iteration.
    """
    from .localrun import LocalRunResult, order_key  # avoid import cycle

    kernel: Kernel = job.kernel
    phase = job.phases[0]
    one2all = phase.mapping == "one2all"
    part = bind_partitioner(job.partitioner, num_pairs)
    part_array = job.partitioner.bind_array(num_pairs)

    g_keys, g_vals = encode_columnar(
        state_records, kernel.state_dtype, kernel.state_width
    )
    empty_keys = g_keys[:0]
    empty_vals = g_vals[:0]
    owned: list[np.ndarray] = [empty_keys] * num_pairs
    values: list[np.ndarray] = [empty_vals] * num_pairs
    for p, ks, vs in route_columnar(g_keys, g_vals, part_array, num_pairs):
        owned[p] = ks  # route preserves key order per destination: sorted
        values[p] = vs

    static_by_path = {k: dict(v) for k, v in (static_records or {}).items()}
    table = static_by_path.get(phase.static_path or "", {})
    static_tables: list[dict] = [{} for _ in range(num_pairs)]
    for key, value in table.items():
        static_tables[part(key)][key] = value
    prepared = [
        kernel.prepare(p, owned[p], static_tables[p]) for p in range(num_pairs)
    ]

    distance_fn = job.distance_fn
    prev: list[np.ndarray] | None = (
        [v.copy() for v in values] if distance_fn is not None else None
    )

    distances: list[float | None] = []
    history: list[list[tuple[Any, Any]]] = []
    iterations_run = 0
    terminated_by = ""
    max_iterations = job.max_iterations if job.max_iterations is not None else 10**9

    for iteration in range(max_iterations):
        broadcast = None
        if one2all:
            broadcast = concat_broadcast(
                [(owned[p], values[p]) for p in range(num_pairs)]
            )
        # ---- map + route: inbox[q] holds batches in ascending src order --
        inbox: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(num_pairs)
        ]
        for p in range(num_pairs):
            out_keys, out_vals = kernel.map_kernel(
                p, owned[p], values[p], prepared[p], broadcast
            )
            for q, ks, vs in route_columnar(out_keys, out_vals, part_array, num_pairs):
                inbox[q].append((ks, vs))
        # ---- vectorized merge + finalize ----
        for q in range(num_pairs):
            if owned[q].size == 0:
                continue
            acc = merge_columnar(kernel, owned[q], inbox[q])
            values[q] = kernel.finalize(q, owned[q], acc, values[q], prepared[q])
        iterations_run = iteration + 1

        if keep_history:
            history.append(
                sorted(
                    (
                        rec
                        for p in range(num_pairs)
                        for rec in decode_columnar(owned[p], values[p])
                    ),
                    key=lambda kv: order_key(kv[0]),
                )
            )

        distance: float | None = None
        if distance_fn is not None and prev is not None:
            distance = 0.0
            for p in range(num_pairs):
                if owned[p].size:
                    distance += kernel.distance_partial(
                        owned[p], prev[p], values[p]
                    )
                prev[p] = values[p].copy()
        distances.append(distance)

        if (
            job.threshold is not None
            and distance is not None
            and distance <= job.threshold
        ):
            terminated_by = "threshold"
            break
    else:
        terminated_by = "maxiter"
    if not terminated_by:
        terminated_by = "maxiter"

    final = sorted(
        (
            rec
            for p in range(num_pairs)
            for rec in decode_columnar(owned[p], values[p])
        ),
        key=lambda kv: order_key(kv[0]),
    )
    return LocalRunResult(
        state=final,
        iterations_run=iterations_run,
        converged=terminated_by == "threshold",
        terminated_by=terminated_by,
        distances=distances,
        history=history,
    )


# -------------------------------------------- accumulative delta path --
def absorb_columnar(
    merge: str,
    owned_keys: np.ndarray,
    pending: np.ndarray,
    active: np.ndarray,
    in_keys: np.ndarray,
    in_values: np.ndarray,
) -> None:
    """Coalesce an arriving delta batch into the dense pending queue
    (the vectorized twin of ``AccumPair.absorb``).  Emissions to keys
    outside the owned set violate the closed-universe contract."""
    if in_keys.size == 0:
        return
    idx = np.searchsorted(owned_keys, in_keys)
    clipped = np.minimum(idx, owned_keys.size - 1)
    bad = (idx >= owned_keys.size) | (owned_keys[clipped] != in_keys)
    if bad.any():
        stray = in_keys[bad][:5].tolist()
        raise KernelContractError(
            f"delta kernel emitted to keys outside the owned set: {stray}"
        )
    if merge == "sum":
        np.add.at(pending, idx, in_values)
    elif merge == "min":
        np.minimum.at(pending, idx, in_values)
    else:
        raise KernelContractError(f"unknown merge {merge!r}")
    active[idx] = True


def pending_priority(
    merge: str,
    state: np.ndarray,
    pending: np.ndarray,
    active: np.ndarray,
) -> np.ndarray:
    """Vectorized impact scores: ``|state − (state ⊕ pending)|`` as
    float64, 0 where no delta is pending (``Accumulator.priority``'s
    default, over the whole pair at once)."""
    if merge == "sum":
        pr = np.abs((state + pending) - state)
    else:
        merged = np.minimum(state, pending)
        improves = state > merged
        with np.errstate(invalid="ignore"):
            # np.where evaluates both branches: inf − inf is masked out.
            pr = np.where(improves, state - merged, 0)
    pr = pr.astype(np.float64, copy=False)
    return np.where(active, pr, 0.0)


def run_accum_local_kernel(
    job,
    delta_records: Iterable[tuple[Any, Any]],
    static_records: dict[str, Iterable[tuple[Any, Any]]] | None = None,
    *,
    num_pairs: int = 4,
    mode: str = "async",
    keep_trace: bool = False,
    initial_state: Iterable[tuple[Any, Any]] | None = None,
):
    """Serial columnar executor for accumulative jobs —
    :func:`~repro.imapreduce.localrun.run_accum_local`'s kernel
    dispatch target.  Same round protocol (mass check before the round,
    pair-ascending sums, ascending-source absorption) over dense
    state/pending arrays with an active-key mask.  ``initial_state``
    (incremental warm start) scatters memoized values into the dense
    state arrays without marking them pending — the record engine's
    preload semantics.
    """
    import math

    from .accum import (
        AccumRunResult,
        check_mode,
        partition_accum_inputs,
        partition_state,
    )
    from .localrun import order_key

    check_mode(mode)
    kernel: AccumKernel = job.kernel
    merge = kernel.merge
    dtype = np.dtype(kernel.state_dtype)
    identity = kernel.identity
    part = bind_partitioner(job.partitioner, num_pairs)
    part_array = job.partitioner.bind_array(num_pairs)
    delta_parts, static_tables = partition_accum_inputs(
        job, delta_records, static_records, num_pairs, part
    )
    state_parts = partition_state(initial_state, num_pairs, part)

    # Owned key universe per pair: static keys ∪ initial-delta keys
    # (∪ warm-start keys), ascending (searchsorted needs sorted sets).
    owned: list[np.ndarray] = []
    state: list[np.ndarray] = []
    pending: list[np.ndarray] = []
    active: list[np.ndarray] = []
    for p in range(num_pairs):
        key_set = set(static_tables[p])
        key_set.update(k for k, _d in delta_parts[p])
        key_set.update(k for k, _v in state_parts[p])
        for k in key_set:
            if isinstance(k, bool) or not isinstance(k, int):
                raise KernelContractError(
                    f"columnar keys must be ints, got {type(k).__name__}"
                )
        ks = np.array(sorted(key_set), dtype=np.int64)
        owned.append(ks)
        state.append(np.full(ks.size, identity, dtype=dtype))
        pending.append(np.full(ks.size, identity, dtype=dtype))
        active.append(np.zeros(ks.size, dtype=bool))
        if state_parts[p]:
            wk = np.array([k for k, _v in state_parts[p]], dtype=np.int64)
            wv = np.array([v for _k, v in state_parts[p]], dtype=dtype)
            state[p][np.searchsorted(ks, wk)] = wv
        if delta_parts[p]:
            dk = np.array([k for k, _d in delta_parts[p]], dtype=np.int64)
            dv = np.array([d for _k, d in delta_parts[p]], dtype=dtype)
            absorb_columnar(merge, ks, pending[p], active[p], dk, dv)
    prepared = [
        kernel.prepare(p, owned[p], static_tables[p]) for p in range(num_pairs)
    ]

    threshold = job.threshold if job.threshold is not None else 0.0
    max_rounds = job.max_rounds if job.max_rounds is not None else 10**9
    frac = job.top_fraction
    trace: list[dict] = []
    rounds = 0
    updates = 0
    emitted = 0
    shipped = 0
    mass = 0.0
    terminated_by = ""

    while True:
        # ---- global accumulated-progress check ----
        priorities = [
            pending_priority(merge, state[p], pending[p], active[p])
            for p in range(num_pairs)
        ]
        mass = 0.0
        for p in range(num_pairs):
            mass += float(priorities[p].sum())
        if keep_trace:
            trace.append(
                {
                    "round": rounds,
                    "pending_mass": mass,
                    "updates": updates,
                    "emitted": emitted,
                    "shipped": shipped,
                }
            )
        if mass <= threshold:
            terminated_by = "progress"
            break
        if rounds >= max_rounds:
            terminated_by = "maxrounds"
            break
        # ---- select + apply + emit (pairs ascending) ----
        inbox: list[list[tuple[int, np.ndarray, np.ndarray]]] = [
            [] for _ in range(num_pairs)
        ]
        for p in range(num_pairs):
            if mode == "sync":
                idx = np.flatnonzero(active[p])
            else:
                pr = priorities[p]
                act = np.flatnonzero(pr > 0)
                if act.size == 0:
                    continue
                count = max(1, math.ceil(frac * act.size))
                # Stable argsort over −priority: ties keep ascending
                # key order — the record scheduler's exact tie-break.
                order = np.argsort(-pr[act], kind="stable")[:count]
                idx = act[order]
            if idx.size == 0:
                continue
            d = pending[p][idx].copy()
            old = state[p][idx]
            merged = old + d if merge == "sum" else np.minimum(old, d)
            state[p][idx] = merged
            pending[p][idx] = identity
            active[p][idx] = False
            updates += int(idx.size)
            changed = merged != old
            if not changed.any():
                continue
            out_keys, out_vals = kernel.emit_deltas(
                p,
                owned[p],
                idx[changed],
                d[changed],
                merged[changed],
                prepared[p],
            )
            emitted += int(out_keys.size)
            for q, ks, vs in route_columnar(
                out_keys, out_vals, part_array, num_pairs
            ):
                inbox[q].append((p, ks, vs))
                if q != p:
                    shipped += int(ks.size)
        # ---- absorb (dest ascending; batches arrive src-ascending) ----
        for q in range(num_pairs):
            for _src, ks, vs in inbox[q]:
                absorb_columnar(merge, owned[q], pending[q], active[q], ks, vs)
        rounds += 1

    final = sorted(
        (
            rec
            for p in range(num_pairs)
            for rec in decode_columnar(owned[p], state[p])
        ),
        key=lambda kv: order_key(kv[0]),
    )
    return AccumRunResult(
        state=final,
        rounds=rounds,
        converged=terminated_by == "progress",
        terminated_by=terminated_by,
        pending_mass=mass,
        updates_processed=updates,
        deltas_emitted=emitted,
        deltas_shipped=shipped,
        mode=mode,
        trace=trace,
    )
