"""Serial reference executor for :class:`IterativeJob`.

Runs the exact same job semantics as the distributed engine — same
partitioning, same join, same phase chaining, same termination rules —
but in plain Python with no cluster, no virtual time and no persistence.
Its uses:

* a correctness oracle: the distributed engine's final state must equal
  this executor's, record for record (tests assert it);
* a zero-setup way for library users to run an iterative job on small
  data (the quickstart example);
* the single-core baseline the wall-clock benchmarks compare
  :func:`~repro.imapreduce.parallel.run_parallel` against.

The per-pair map/combine step lives in :func:`map_pair` so the
multiprocess backend executes byte-for-byte the same user-code path and
its differential oracle can demand record-for-record equality.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..common.partition import bind_partitioner
from ..common.records import group_by_key
from ..mapreduce.api import Context
from .job import IterativeJob, Phase
from .runtime import AuxContext

__all__ = [
    "LocalRunResult",
    "run_local",
    "run_accum_local",
    "map_pair",
    "order_key",
]


@dataclass
class LocalRunResult:
    """Outcome of a serial run."""

    state: list[tuple[Any, Any]]
    iterations_run: int
    converged: bool
    terminated_by: str
    distances: list[float | None] = field(default_factory=list)
    #: State snapshots per iteration (only if ``keep_history=True``).
    history: list[list[tuple[Any, Any]]] = field(default_factory=list)

    def state_dict(self) -> dict:
        return dict(self.state)


def order_key(key: Any):
    """Total order over heterogeneous record keys (type name first)."""
    return (type(key).__name__, key)


_order_key = order_key  # backwards-compatible private alias


def map_pair(
    phase: Phase,
    records: list[tuple[Any, Any]],
    static: dict,
    static_sorted: list[tuple[Any, Any]] | None,
    broadcast: list | None,
    part: Callable[[Any], int],
    timings: dict[str, float] | None = None,
) -> list[tuple[Any, Any]]:
    """Run one pair's map task for one phase; returns its emissions.

    ``part`` is the pre-bound partitioner (combiner grouping only);
    ``static_sorted``/``broadcast`` are set for one2all phases.  Both the
    serial and the multiprocess executor call exactly this function, so
    emission content *and order* are identical across backends.

    ``timings`` is the multiprocess backend's phase profiler: when given,
    wall-time accumulates into its ``map`` and ``combine`` counters.
    """
    started = time.perf_counter() if timings is not None else 0.0
    ctx = Context()
    if broadcast is not None:
        for key, static_value in static_sorted or ():
            phase.map_fn(key, broadcast, static_value, ctx)
    else:
        static_get = static.get
        for key, state_value in records:
            phase.map_fn(key, state_value, static_get(key), ctx)
    emitted = ctx.take()
    if timings is not None:
        timings["map"] += time.perf_counter() - started
    if phase.combiner is not None:
        started = time.perf_counter() if timings is not None else 0.0
        parts: dict[int, list] = defaultdict(list)
        for rec in emitted:
            parts[part(rec[0])].append(rec)
        # One Context reused across all destination groups: ``take()``
        # drains the buffer between groups, and no combiner reads the
        # context counters, so the emission stream is unchanged while the
        # per-group allocation disappears from the hot path.
        cctx = Context()
        emitted = []
        for part_recs in parts.values():
            for key, values in group_by_key(part_recs):
                phase.combiner(key, values, cctx)
            emitted.extend(cctx.take())
        if timings is not None:
            timings["combine"] += time.perf_counter() - started
    return emitted


def sorted_static(static: dict) -> list[tuple[Any, Any]]:
    """The one2all map's iteration order over a static partition."""
    return sorted(static.items(), key=lambda kv: order_key(kv[0]))


def run_local(
    job: IterativeJob,
    state_records: Iterable[tuple[Any, Any]],
    static_records: dict[str, Iterable[tuple[Any, Any]]] | None = None,
    *,
    num_pairs: int = 4,
    keep_history: bool = False,
) -> LocalRunResult:
    """Execute ``job`` serially.

    ``state_records`` is the initial state; ``static_records`` maps each
    phase's ``static_path`` to its records (the DFS is not involved).

    Jobs carrying a vectorized kernel (``job.kernel``) dispatch to the
    columnar executor when the job shape supports it — same result
    surface, one ``map_kernel`` + merge per pair per iteration instead
    of the per-record loops below.
    """
    from .columnar import kernel_enabled, run_local_kernel

    if kernel_enabled(job):
        return run_local_kernel(
            job,
            state_records,
            static_records,
            num_pairs=num_pairs,
            keep_history=keep_history,
        )

    static_by_path = {k: dict(v) for k, v in (static_records or {}).items()}
    phases = job.phases
    part = bind_partitioner(job.partitioner, num_pairs)

    def partition(records):
        parts: list[list] = [[] for _ in range(num_pairs)]
        for rec in records:
            parts[part(rec[0])].append(rec)
        return parts

    state_parts = partition(state_records)
    static_parts: list[list[dict]] = []  # [phase][pair] -> key->static
    static_sorted: list[list[list] | None] = []  # one2all iteration order
    for phase in phases:
        table = static_by_path.get(phase.static_path or "", {})
        per_pair: list[dict] = [{} for _ in range(num_pairs)]
        for key, value in table.items():
            per_pair[part(key)][key] = value
        static_parts.append(per_pair)
        # The one2all map iterates its static partition in sorted order;
        # sorting once here (not per iteration) is the broadcast hot-path
        # fix — the K-means user set was re-sorted every iteration.
        static_sorted.append(
            [sorted_static(d) for d in per_pair] if phase.mapping == "one2all" else None
        )

    distance_fn = job.distance_fn
    # Previous-iteration lookup tables exist only when a distance is
    # measured; a maxiter-only run no longer rebuilds a dict per
    # iteration.  One dict per pair: a key's partition never changes, so
    # the per-pair tables partition the old global one.
    prev_parts: list[dict] | None = (
        [dict(p) for p in state_parts] if distance_fn is not None else None
    )
    aux_part = (
        bind_partitioner(job.partitioner, job.aux.num_tasks) if job.aux else None
    )
    aux_map_state: list[dict] = [{} for _ in range((job.aux.num_tasks if job.aux else 0))]
    aux_reduce_state: list[dict] = [
        {} for _ in range((job.aux.num_tasks if job.aux else 0))
    ]

    distances: list[float | None] = []
    history: list[list[tuple[Any, Any]]] = []
    iterations_run = 0
    terminated_by = ""
    aux_stop = False
    max_iterations = job.max_iterations if job.max_iterations is not None else 10**9

    for iteration in range(max_iterations):
        current = state_parts
        for phase_index, phase in enumerate(phases):
            one2all = phase.mapping == "one2all"
            broadcast = (
                sorted(
                    (rec for part_recs in current for rec in part_recs),
                    key=lambda kv: order_key(kv[0]),
                )
                if one2all
                else None
            )
            # ---- map ----
            shuffled: list[list] = [[] for _ in range(num_pairs)]
            phase_sorted = static_sorted[phase_index]
            for p in range(num_pairs):
                emitted = map_pair(
                    phase,
                    current[p],
                    static_parts[phase_index][p],
                    phase_sorted[p] if phase_sorted is not None else None,
                    broadcast,
                    part,
                )
                for rec in emitted:
                    shuffled[part(rec[0])].append(rec)
            # ---- reduce ----
            new_parts: list[list] = [[] for _ in range(num_pairs)]
            for q in range(num_pairs):
                ctx = Context()
                for key, values in group_by_key(shuffled[q]):
                    phase.reduce_fn(key, values, ctx)
                out = ctx.take()
                if phase_index == len(phases) - 1:
                    new_parts[q] = out
                else:
                    for rec in out:
                        new_parts[part(rec[0])].append(rec)
            current = new_parts
        state_parts = current
        iterations_run = iteration + 1

        if keep_history:
            history.append(
                sorted(
                    (rec for part_recs in state_parts for rec in part_recs),
                    key=lambda kv: order_key(kv[0]),
                )
            )

        # ---- distance / termination (§3.1.2) ----
        # Summed as per-pair partials merged in pair order — the same
        # merge the distributed master performs, and bit-identical to the
        # multiprocess coordinator's merge of worker partials.
        distance: float | None = None
        if distance_fn is not None and prev_parts is not None:
            distance = 0.0
            for p in range(num_pairs):
                prev_get = prev_parts[p].get
                partial = 0.0
                new_prev = {}  # built during the distance pass — no
                for key, value in state_parts[p]:  # second full rebuild
                    partial += distance_fn(key, prev_get(key), value)
                    new_prev[key] = value
                distance += partial
                prev_parts[p] = new_prev
        distances.append(distance)

        # ---- auxiliary phase (§5.3) ----
        if job.aux is not None and aux_part is not None:
            aux = job.aux
            flat = [rec for part_recs in state_parts for rec in part_recs]
            aux_shuffled: list[list] = [[] for _ in range(aux.num_tasks)]
            parts: list[list] = [[] for _ in range(aux.num_tasks)]
            for rec in flat:
                parts[aux_part(rec[0])].append(rec)
            for t in range(aux.num_tasks):
                actx = AuxContext(aux_map_state[t])
                for key, value in parts[t]:
                    aux.map_fn(key, value, actx)
                for rec in actx.take():
                    aux_shuffled[aux_part(rec[0])].append(rec)
            for t in range(aux.num_tasks):
                actx = AuxContext(aux_reduce_state[t])
                for key, values in group_by_key(aux_shuffled[t]):
                    aux.reduce_fn(key, values, actx)
                if actx.terminate_requested:
                    aux_stop = True

        if aux_stop:
            terminated_by = "aux"
            break
        if job.threshold is not None and distance is not None and distance <= job.threshold:
            terminated_by = "threshold"
            break
    else:
        terminated_by = "maxiter"
    if not terminated_by:
        terminated_by = "maxiter"

    final = sorted(
        (rec for part_recs in state_parts for rec in part_recs),
        key=lambda kv: order_key(kv[0]),
    )
    return LocalRunResult(
        state=final,
        iterations_run=iterations_run,
        converged=terminated_by == "threshold",
        terminated_by=terminated_by,
        distances=distances,
        history=history,
    )


def run_accum_local(
    job,
    delta_records: Iterable[tuple[Any, Any]],
    static_records: dict[str, Iterable[tuple[Any, Any]]] | None = None,
    *,
    num_pairs: int = 4,
    mode: str = "async",
    keep_trace: bool = False,
    initial_state: Iterable[tuple[Any, Any]] | None = None,
):
    """Execute an :class:`~repro.imapreduce.accum.AccumJob` serially.

    ``delta_records`` are the initial deltas (state starts at the
    algebra's identity); ``static_records`` maps the job's static path
    to its records, as in :func:`run_local`.  ``mode="sync"`` drains
    every pending delta each round — the synchronous reference the
    fixpoint-equivalence oracle compares async runs against;
    ``mode="async"`` drains only the top-priority fraction.

    ``initial_state`` (incremental mode) preloads memoized converged
    values into the pairs' state *without* propagation; the
    ``delta_records`` then carry only the change-scoped perturbation —
    see :mod:`~repro.imapreduce.incremental`.

    Rounds are mass-checked *before* executing: the pending-priority
    mass is summed pair-ascending at the top of each round (round 0
    sees the initial deltas) and the run stops when it reaches the
    job's threshold — exactly the verdict protocol the multiprocess
    coordinator runs, so serial and parallel runs of the same mode are
    record-for-record identical.

    Jobs carrying a delta kernel (``job.kernel``) dispatch to the
    columnar twin — dense pending arrays with an active-key mask.
    """
    from .accum import (
        AccumPair,
        AccumRunResult,
        check_mode,
        partition_accum_inputs,
        partition_state,
    )
    from .columnar import accum_kernel_enabled, run_accum_local_kernel

    check_mode(mode)
    if accum_kernel_enabled(job):
        return run_accum_local_kernel(
            job,
            delta_records,
            static_records,
            num_pairs=num_pairs,
            mode=mode,
            keep_trace=keep_trace,
            initial_state=initial_state,
        )

    part = bind_partitioner(job.partitioner, num_pairs)
    delta_parts, static_tables = partition_accum_inputs(
        job, delta_records, static_records, num_pairs, part
    )
    state_parts = partition_state(initial_state, num_pairs, part)
    pairs = [
        AccumPair(
            p,
            job.accumulator,
            static_tables[p],
            keys=static_tables[p],
            initial_state=state_parts[p],
        )
        for p in range(num_pairs)
    ]
    for p in range(num_pairs):
        pairs[p].absorb(delta_parts[p])

    threshold = job.threshold if job.threshold is not None else 0.0
    max_rounds = job.max_rounds if job.max_rounds is not None else 10**9
    frac = job.top_fraction
    trace: list[dict] = []
    rounds = 0
    shipped = 0
    mass = 0.0
    terminated_by = ""

    while True:
        # ---- global accumulated-progress check (pair-ascending sum,
        # the same fold order the parallel coordinator uses) ----
        mass = 0.0
        for ps in pairs:
            mass += ps.mass()
        if keep_trace:
            trace.append(
                {
                    "round": rounds,
                    "pending_mass": mass,
                    "updates": sum(ps.updates_processed for ps in pairs),
                    "emitted": sum(ps.deltas_emitted for ps in pairs),
                    "shipped": shipped,
                }
            )
        if mass <= threshold:
            terminated_by = "progress"
            break
        if rounds >= max_rounds:
            terminated_by = "maxrounds"
            break
        # ---- select + apply (pairs ascending) ----
        outboxes = [
            [[] for _ in range(num_pairs)] for _ in range(num_pairs)
        ]  # [src][dst]
        for ps in pairs:
            selected = ps.select(mode, frac)
            ps.apply(job, selected, part, outboxes[ps.pair])
        # ---- absorb (dest ascending, then source ascending — the
        # mesh's gather order) ----
        for dst in range(num_pairs):
            target = pairs[dst]
            for src in range(num_pairs):
                batch = outboxes[src][dst]
                if batch:
                    target.absorb(batch)
                    if src != dst:
                        shipped += len(batch)
        rounds += 1

    final = sorted(
        (rec for ps in pairs for rec in ps.state.items()),
        key=lambda kv: order_key(kv[0]),
    )
    return AccumRunResult(
        state=final,
        rounds=rounds,
        converged=terminated_by == "progress",
        terminated_by=terminated_by,
        pending_mass=mass,
        updates_processed=sum(ps.updates_processed for ps in pairs),
        deltas_emitted=sum(ps.deltas_emitted for ps in pairs),
        deltas_shipped=shipped,
        mode=mode,
        trace=trace,
    )
