"""Serial reference executor for :class:`IterativeJob`.

Runs the exact same job semantics as the distributed engine — same
partitioning, same join, same phase chaining, same termination rules —
but in plain Python with no cluster, no virtual time and no persistence.
Its uses:

* a correctness oracle: the distributed engine's final state must equal
  this executor's, record for record (tests assert it);
* a zero-setup way for library users to run an iterative job on small
  data (the quickstart example).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..common.records import group_by_key
from ..mapreduce.api import Context
from .job import IterativeJob
from .runtime import AuxContext

__all__ = ["LocalRunResult", "run_local"]


@dataclass
class LocalRunResult:
    """Outcome of a serial run."""

    state: list[tuple[Any, Any]]
    iterations_run: int
    converged: bool
    terminated_by: str
    distances: list[float | None] = field(default_factory=list)
    #: State snapshots per iteration (only if ``keep_history=True``).
    history: list[list[tuple[Any, Any]]] = field(default_factory=list)

    def state_dict(self) -> dict:
        return dict(self.state)


def _order_key(key: Any):
    return (type(key).__name__, key)


def run_local(
    job: IterativeJob,
    state_records: Iterable[tuple[Any, Any]],
    static_records: dict[str, Iterable[tuple[Any, Any]]] | None = None,
    *,
    num_pairs: int = 4,
    keep_history: bool = False,
) -> LocalRunResult:
    """Execute ``job`` serially.

    ``state_records`` is the initial state; ``static_records`` maps each
    phase's ``static_path`` to its records (the DFS is not involved).
    """
    static_by_path = {k: dict(v) for k, v in (static_records or {}).items()}
    phases = job.phases
    partitioner = job.partitioner

    def partition(records):
        parts: list[list] = [[] for _ in range(num_pairs)]
        for rec in records:
            parts[partitioner(rec[0], num_pairs)].append(rec)
        return parts

    state_parts = partition(state_records)
    static_parts: list[list[dict]] = []  # [phase][pair] -> key->static
    for phase in phases:
        table = static_by_path.get(phase.static_path or "", {})
        per_pair: list[dict] = [{} for _ in range(num_pairs)]
        for key, value in table.items():
            per_pair[partitioner(key, num_pairs)][key] = value
        static_parts.append(per_pair)

    prev_state = {k: v for part in state_parts for k, v in part}
    aux_map_state: list[dict] = [{} for _ in range((job.aux.num_tasks if job.aux else 0))]
    aux_reduce_state: list[dict] = [
        {} for _ in range((job.aux.num_tasks if job.aux else 0))
    ]

    distances: list[float | None] = []
    history: list[list[tuple[Any, Any]]] = []
    iterations_run = 0
    terminated_by = ""
    aux_stop = False
    max_iterations = job.max_iterations if job.max_iterations is not None else 10**9

    for iteration in range(max_iterations):
        current = state_parts
        for phase_index, phase in enumerate(phases):
            one2all = phase.mapping == "one2all"
            broadcast = (
                sorted(
                    (rec for part in current for rec in part),
                    key=lambda kv: _order_key(kv[0]),
                )
                if one2all
                else None
            )
            # ---- map ----
            shuffled: list[list] = [[] for _ in range(num_pairs)]
            for p in range(num_pairs):
                ctx = Context()
                static = static_parts[phase_index][p]
                if one2all:
                    for key, static_value in sorted(
                        static.items(), key=lambda kv: _order_key(kv[0])
                    ):
                        phase.map_fn(key, broadcast, static_value, ctx)
                else:
                    for key, state_value in current[p]:
                        phase.map_fn(key, state_value, static.get(key), ctx)
                emitted = ctx.take()
                if phase.combiner is not None:
                    parts: dict[int, list] = defaultdict(list)
                    for rec in emitted:
                        parts[partitioner(rec[0], num_pairs)].append(rec)
                    emitted = []
                    for part_recs in parts.values():
                        cctx = Context()
                        for key, values in group_by_key(part_recs):
                            phase.combiner(key, values, cctx)
                        emitted.extend(cctx.take())
                for rec in emitted:
                    shuffled[partitioner(rec[0], num_pairs)].append(rec)
            # ---- reduce ----
            new_parts: list[list] = [[] for _ in range(num_pairs)]
            for q in range(num_pairs):
                ctx = Context()
                for key, values in group_by_key(shuffled[q]):
                    phase.reduce_fn(key, values, ctx)
                out = ctx.take()
                if phase_index == len(phases) - 1:
                    new_parts[q] = out
                else:
                    for rec in out:
                        new_parts[partitioner(rec[0], num_pairs)].append(rec)
            current = new_parts
        state_parts = current
        iterations_run = iteration + 1

        flat = [rec for part in state_parts for rec in part]
        if keep_history:
            history.append(sorted(flat, key=lambda kv: _order_key(kv[0])))

        # ---- distance / termination (§3.1.2) ----
        distance: float | None = None
        if job.distance_fn is not None:
            distance = sum(
                job.distance_fn(key, prev_state.get(key), value) for key, value in flat
            )
        distances.append(distance)
        prev_state = dict(flat)

        # ---- auxiliary phase (§5.3) ----
        if job.aux is not None:
            aux = job.aux
            aux_shuffled: list[list] = [[] for _ in range(aux.num_tasks)]
            parts: list[list] = [[] for _ in range(aux.num_tasks)]
            for rec in flat:
                parts[partitioner(rec[0], aux.num_tasks)].append(rec)
            for t in range(aux.num_tasks):
                actx = AuxContext(aux_map_state[t])
                for key, value in parts[t]:
                    aux.map_fn(key, value, actx)
                for rec in actx.take():
                    aux_shuffled[partitioner(rec[0], aux.num_tasks)].append(rec)
            for t in range(aux.num_tasks):
                actx = AuxContext(aux_reduce_state[t])
                for key, values in group_by_key(aux_shuffled[t]):
                    aux.reduce_fn(key, values, actx)
                if actx.terminate_requested:
                    aux_stop = True

        if aux_stop:
            terminated_by = "aux"
            break
        if job.threshold is not None and distance is not None and distance <= job.threshold:
            terminated_by = "threshold"
            break
    else:
        terminated_by = "maxiter"
    if not terminated_by:
        terminated_by = "maxiter"

    final = sorted(
        (rec for part in state_parts for rec in part), key=lambda kv: _order_key(kv[0])
    )
    return LocalRunResult(
        state=final,
        iterations_run=iterations_run,
        converged=terminated_by == "threshold",
        terminated_by=terminated_by,
        distances=distances,
        history=history,
    )
