"""Metrics collected by both engines and consumed by the figure harness."""

from .collector import IterationMetrics, RunMetrics
from .report import compare_runs, format_run
from .trace import TraceEvent, Tracer

__all__ = [
    "IterationMetrics",
    "RunMetrics",
    "compare_runs",
    "format_run",
    "TraceEvent",
    "Tracer",
]
