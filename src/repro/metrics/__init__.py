"""Metrics collected by both engines and consumed by the figure harness."""

from .collector import IterationMetrics, RunMetrics
from .report import compare_runs, format_run
from .trace import TraceEvent, Tracer, check_well_formed

__all__ = [
    "check_well_formed",
    "IterationMetrics",
    "RunMetrics",
    "compare_runs",
    "format_run",
    "TraceEvent",
    "Tracer",
]
