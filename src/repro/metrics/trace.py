"""Structured execution tracing.

Pass a :class:`Tracer` to either runtime to capture a timeline of what
the engines did — task lifecycles, iteration boundaries, checkpoints,
migrations, recoveries.  Tracing is pure observation: it never advances
virtual time, so traced and untraced runs are time-identical.

::

    tracer = Tracer()
    runtime = IMapReduceRuntime(cluster, dfs, trace=tracer)
    runtime.submit(job)
    print(tracer.timeline())          # per-worker ASCII timeline
    starts = tracer.select("map-iteration-start", pair=3)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceEvent", "Tracer", "check_well_formed"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observed occurrence."""

    time: float
    kind: str
    fields: dict

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


@dataclass
class Tracer:
    """Collects :class:`TraceEvent`, with simple query helpers."""

    events: list[TraceEvent] = field(default_factory=list)

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        self.events.append(TraceEvent(time, kind, fields))

    # -- queries ----------------------------------------------------------
    def select(self, kind: str | None = None, **field_filters: Any) -> list[TraceEvent]:
        """Events of ``kind`` whose fields match every filter."""
        out = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if all(event.fields.get(k) == v for k, v in field_filters.items()):
                out.append(event)
        return out

    def kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def clear(self) -> None:
        self.events.clear()

    def check(self, checkpoint_interval: int | None = None) -> list[str]:
        """Well-formedness problems in the recorded timeline (see
        :func:`check_well_formed`)."""
        return check_well_formed(self.events, checkpoint_interval)

    # -- rendering ---------------------------------------------------------
    def timeline(self, width: int = 72) -> str:
        """An ASCII per-worker timeline of task activity.

        Spans come from paired ``*-start``/``*-end`` events carrying a
        ``worker`` field; each worker gets one row, with ``m``/``r``
        marks for map/reduce activity and ``C``/``!`` overlays for
        checkpoints and failures.
        """
        spans: list[tuple[str, float, float, str]] = []  # worker, t0, t1, glyph
        open_spans: dict[tuple, float] = {}
        marks: list[tuple[str, float, str]] = []
        for event in self.events:
            worker = event.fields.get("worker")
            if worker is None:
                continue
            if event.kind.endswith("-start"):
                open_spans[(event.kind[:-6], worker, event.fields.get("task"))] = event.time
            elif event.kind.endswith("-end"):
                key = (event.kind[:-4], worker, event.fields.get("task"))
                start = open_spans.pop(key, None)
                if start is not None:
                    glyph = "r" if "reduce" in event.kind else "m"
                    spans.append((worker, start, event.time, glyph))
            elif event.kind == "checkpoint":
                marks.append((worker, event.time, "C"))
            elif event.kind in ("worker-failure", "recovery", "confirm-failure", "reboot"):
                marks.append((worker, event.time, "!"))
            elif event.kind == "pair-recovery":
                # ``worker`` on this event is the pair's new host.
                marks.append((worker, event.time, "R"))
        if not spans and not marks:
            return "(no spans recorded)"
        t0 = min([s[1] for s in spans] + [m[1] for m in marks])
        t1 = max([s[2] for s in spans] + [m[1] for m in marks])
        horizon = max(t1 - t0, 1e-9)

        def col(t: float) -> int:
            return min(width - 1, int((t - t0) / horizon * width))

        workers = sorted({s[0] for s in spans} | {m[0] for m in marks})
        rows = []
        for worker in workers:
            cells = [" "] * width
            for w, a, b, glyph in spans:
                if w != worker:
                    continue
                for c in range(col(a), col(b) + 1):
                    cells[c] = glyph
            for w, t, glyph in marks:
                if w == worker:
                    cells[col(t)] = glyph
            rows.append(f"{worker:>10} |{''.join(cells)}|")
        header = f"{'':>10}  t={t0:.1f}s{'':>{max(width - 18, 1)}}t={t1:.1f}s"
        return "\n".join([header] + rows)


def check_well_formed(
    events: list[TraceEvent], checkpoint_interval: int | None = None
) -> list[str]:
    """Structural invariants every execution trace must satisfy.

    Returns a list of human-readable problems (empty == well-formed):

    * event times never decrease (the engine's clock is monotone);
    * within one task generation, ``iteration-complete`` indices strictly
      increase, and no task starts the same iteration twice — except that
      a ``pair-recovery`` resets the affected pair's tasks, which then
      legitimately re-run iterations from the checkpoint;
    * an ``*-end`` span event always follows a matching ``*-start``;
    * checkpoints carry positive state indices, aligned to the
      checkpoint interval when one is given;
    * a ``confirm-failure`` is always preceded by a ``suspect`` of the
      same worker, and a ``pair-recovery`` never resumes from a state
      newer than the last durable checkpoint;
    * at most one ``terminate`` decision is ever taken.

    The chaos harness runs this as its trace oracle; it is also usable
    directly in tests via :meth:`Tracer.check`.
    """
    problems: list[str] = []
    last_time = float("-inf")
    # Per-generation state, reset at each generation-start (recoveries
    # and migrations legitimately replay iterations).
    started: set[tuple] = set()
    open_spans: set[tuple] = set()
    last_complete: int | None = None
    terminations = 0
    suspected: set = set()
    durable_state = 0

    for i, event in enumerate(events):
        if event.time < last_time:
            problems.append(
                f"event {i} ({event.kind}) at t={event.time} before t={last_time}"
            )
        last_time = event.time

        if event.kind == "generation-start":
            started.clear()
            open_spans.clear()
            last_complete = None
            continue

        if event.kind.endswith("-start"):
            key = (event.kind[:-6], event.fields.get("task"), event.fields.get("iteration"))
            if key in started:
                problems.append(
                    f"task {key[1]!r} started iteration {key[2]} twice in one generation"
                )
            started.add(key)
            open_spans.add(key)
        elif event.kind.endswith("-end"):
            key = (event.kind[:-4], event.fields.get("task"), event.fields.get("iteration"))
            if key not in open_spans:
                problems.append(
                    f"{event.kind} for task {key[1]!r} iteration {key[2]} "
                    "without a matching start"
                )
            open_spans.discard(key)
        elif event.kind == "iteration-complete":
            index = event.fields.get("iteration")
            if last_complete is not None and index <= last_complete:
                problems.append(
                    f"iteration-complete {index} after {last_complete} "
                    "within one generation"
                )
            last_complete = index
        elif event.kind in ("checkpoint", "checkpoint-durable"):
            state_index = event.fields.get("state_index", 0)
            if state_index < 1:
                problems.append(f"{event.kind} with state_index={state_index}")
            elif checkpoint_interval and state_index % checkpoint_interval != 0:
                problems.append(
                    f"{event.kind} at state {state_index} not aligned to "
                    f"interval {checkpoint_interval}"
                )
            if event.kind == "checkpoint-durable":
                durable_state = max(durable_state, state_index)
        elif event.kind == "suspect":
            suspected.add(event.fields.get("worker"))
        elif event.kind == "confirm-failure":
            if event.fields.get("worker") not in suspected:
                problems.append(
                    f"confirm-failure for {event.fields.get('worker')!r} "
                    "without a prior suspect"
                )
        elif event.kind == "pair-recovery":
            resume = event.fields.get("resume_state", 0)
            if resume > durable_state:
                problems.append(
                    f"pair-recovery resumes from state {resume} past the "
                    f"durable checkpoint {durable_state}"
                )
            # The replacement incarnation legitimately re-runs this
            # pair's iterations: forget the old incarnation's footprint.
            pair = event.fields.get("pair")
            suffix = f".{pair}"
            started = {k for k in started if not str(k[1]).endswith(suffix)}
            open_spans = {
                k for k in open_spans if not str(k[1]).endswith(suffix)
            }
        elif event.kind == "terminate":
            terminations += 1
            if terminations > 1:
                problems.append("more than one terminate decision")
    return problems
