"""Structured execution tracing.

Pass a :class:`Tracer` to either runtime to capture a timeline of what
the engines did — task lifecycles, iteration boundaries, checkpoints,
migrations, recoveries.  Tracing is pure observation: it never advances
virtual time, so traced and untraced runs are time-identical.

::

    tracer = Tracer()
    runtime = IMapReduceRuntime(cluster, dfs, trace=tracer)
    runtime.submit(job)
    print(tracer.timeline())          # per-worker ASCII timeline
    starts = tracer.select("map-iteration-start", pair=3)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observed occurrence."""

    time: float
    kind: str
    fields: dict

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


@dataclass
class Tracer:
    """Collects :class:`TraceEvent`, with simple query helpers."""

    events: list[TraceEvent] = field(default_factory=list)

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        self.events.append(TraceEvent(time, kind, fields))

    # -- queries ----------------------------------------------------------
    def select(self, kind: str | None = None, **field_filters: Any) -> list[TraceEvent]:
        """Events of ``kind`` whose fields match every filter."""
        out = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if all(event.fields.get(k) == v for k, v in field_filters.items()):
                out.append(event)
        return out

    def kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def clear(self) -> None:
        self.events.clear()

    # -- rendering ---------------------------------------------------------
    def timeline(self, width: int = 72) -> str:
        """An ASCII per-worker timeline of task activity.

        Spans come from paired ``*-start``/``*-end`` events carrying a
        ``worker`` field; each worker gets one row, with ``m``/``r``
        marks for map/reduce activity and ``C``/``!`` overlays for
        checkpoints and failures.
        """
        spans: list[tuple[str, float, float, str]] = []  # worker, t0, t1, glyph
        open_spans: dict[tuple, float] = {}
        marks: list[tuple[str, float, str]] = []
        for event in self.events:
            worker = event.fields.get("worker")
            if worker is None:
                continue
            if event.kind.endswith("-start"):
                open_spans[(event.kind[:-6], worker, event.fields.get("task"))] = event.time
            elif event.kind.endswith("-end"):
                key = (event.kind[:-4], worker, event.fields.get("task"))
                start = open_spans.pop(key, None)
                if start is not None:
                    glyph = "r" if "reduce" in event.kind else "m"
                    spans.append((worker, start, event.time, glyph))
            elif event.kind == "checkpoint":
                marks.append((worker, event.time, "C"))
            elif event.kind in ("worker-failure", "recovery"):
                marks.append((worker, event.time, "!"))
        if not spans and not marks:
            return "(no spans recorded)"
        t0 = min([s[1] for s in spans] + [m[1] for m in marks])
        t1 = max([s[2] for s in spans] + [m[1] for m in marks])
        horizon = max(t1 - t0, 1e-9)

        def col(t: float) -> int:
            return min(width - 1, int((t - t0) / horizon * width))

        workers = sorted({s[0] for s in spans} | {m[0] for m in marks})
        rows = []
        for worker in workers:
            cells = [" "] * width
            for w, a, b, glyph in spans:
                if w != worker:
                    continue
                for c in range(col(a), col(b) + 1):
                    cells[c] = glyph
            for w, t, glyph in marks:
                if w == worker:
                    cells[col(t)] = glyph
            rows.append(f"{worker:>10} |{''.join(cells)}|")
        header = f"{'':>10}  t={t0:.1f}s{'':>{max(width - 18, 1)}}t={t1:.1f}s"
        return "\n".join([header] + rows)
