"""Run metrics: everything the paper's figures plot.

Both engines fill one :class:`RunMetrics` per job run, with one
:class:`IterationMetrics` per iteration.  The figure harness then derives
the paper's curves:

* time vs. iteration (Figs. 4–7) — :meth:`RunMetrics.cumulative_times`;
* the "(ex. init.)" variant — the same curve minus accumulated
  initialization time;
* communication cost (Fig. 11) — network byte counters;
* factor decomposition (Fig. 10) — init share measured directly, the
  async/static shares measured by differencing runs (as the paper does,
  §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IterationMetrics", "RunMetrics"]


@dataclass
class IterationMetrics:
    """Costs attributed to one iteration of an iterative run."""

    index: int
    start: float
    end: float
    #: Job/task initialization time within the iteration (per-iteration
    #: job setup + task launches; zero in iMapReduce's steady state).
    init_time: float = 0.0
    #: Logical bytes shuffled map→reduce (includes local-destination data).
    shuffle_bytes: int = 0
    #: Logical bytes passed reduce→map (iMapReduce state channels).
    state_bytes: int = 0
    #: Bytes that crossed NIC uplinks during the iteration.
    network_bytes: int = 0
    #: Records processed, for sanity checks.
    map_records: int = 0
    reduce_records: int = 0
    #: Result of the user distance() merge (None if not measured).
    distance: float | None = None

    @property
    def elapsed(self) -> float:
        return self.end - self.start


@dataclass
class RunMetrics:
    """Aggregate metrics for one run (a whole iterative computation)."""

    label: str
    start: float = 0.0
    end: float = 0.0
    iterations: list[IterationMetrics] = field(default_factory=list)
    #: One-time costs outside any iteration (iMapReduce's initial data
    #: loading, the final DFS dump).
    setup_time: float = 0.0
    teardown_time: float = 0.0
    #: Total NIC bytes for the whole run.
    network_bytes: int = 0
    #: Free-form engine-specific detail (e.g. migrations performed).
    extras: dict = field(default_factory=dict)

    # -- derived ---------------------------------------------------------
    @property
    def total_time(self) -> float:
        return self.end - self.start

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_init_time(self) -> float:
        return self.setup_time + sum(it.init_time for it in self.iterations)

    @property
    def total_shuffle_bytes(self) -> int:
        return sum(it.shuffle_bytes for it in self.iterations)

    @property
    def total_state_bytes(self) -> int:
        return sum(it.state_bytes for it in self.iterations)

    def cumulative_times(self) -> list[tuple[int, float]]:
        """``(iteration_number, elapsed_since_run_start)`` pairs — the
        x/y series of the paper's time-vs-iterations plots."""
        return [(it.index + 1, it.end - self.start) for it in self.iterations]

    def cumulative_times_excluding_init(self) -> list[tuple[int, float]]:
        """The paper's "(ex. init.)" curve: elapsed time with all job/task
        initialization (including run setup) subtracted as it accrues."""
        series = []
        saved = self.setup_time
        for it in self.iterations:
            saved += it.init_time
            series.append((it.index + 1, (it.end - self.start) - saved))
        return series

    def time_for_iterations(self, k: int) -> float:
        """Elapsed time from run start through the end of iteration ``k``
        (1-based); the run's total if ``k`` exceeds the iteration count."""
        if not self.iterations:
            return self.total_time
        if k >= len(self.iterations):
            return self.total_time
        return self.iterations[k - 1].end - self.start
