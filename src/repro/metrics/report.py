"""Human-readable rendering of run metrics.

``format_run`` produces the per-iteration breakdown table used by the
examples and by ad-hoc analysis; ``compare_runs`` lines up several runs
(e.g. the four variants of Figs. 4–7) side by side.
"""

from __future__ import annotations

from .collector import RunMetrics

__all__ = ["format_run", "compare_runs"]


def _mb(nbytes: int) -> str:
    return f"{nbytes / 1e6:8.2f} MB"


def format_run(metrics: RunMetrics) -> str:
    """A per-iteration breakdown table for one run."""
    lines = [
        f"run {metrics.label}: {metrics.total_time:.1f}s total "
        f"({metrics.num_iterations} iterations, setup {metrics.setup_time:.1f}s, "
        f"network {_mb(metrics.network_bytes).strip()})"
    ]
    header = f"  {'iter':>4} {'elapsed':>9} {'init':>7} {'shuffle':>12} {'state':>12} {'distance':>12}"
    lines.append(header)
    for it in metrics.iterations:
        distance = f"{it.distance:.4g}" if it.distance is not None else "-"
        lines.append(
            f"  {it.index + 1:>4} {it.elapsed:>8.2f}s {it.init_time:>6.2f}s "
            f"{_mb(it.shuffle_bytes):>12} {_mb(it.state_bytes):>12} {distance:>12}"
        )
    if metrics.extras.get("migrations"):
        for move in metrics.extras["migrations"]:
            lines.append(
                f"  migration: pair {move['pair']} {move['from']} -> {move['to']}"
            )
    if metrics.extras.get("recoveries"):
        lines.append(f"  recoveries: {metrics.extras['recoveries']}")
    return "\n".join(lines)


def compare_runs(runs: dict[str, RunMetrics]) -> str:
    """Side-by-side totals for several runs; first entry is the baseline."""
    if not runs:
        return "(no runs)"
    names = list(runs)
    base = runs[names[0]].total_time
    lines = [f"  {'variant':<28} {'total':>10} {'vs baseline':>12} {'network':>12}"]
    for name in names:
        m = runs[name]
        rel = base / m.total_time if m.total_time else float("inf")
        lines.append(
            f"  {name:<28} {m.total_time:>9.1f}s {rel:>11.2f}x {_mb(m.network_bytes):>12}"
        )
    return "\n".join(lines)
