"""One function per paper table/figure.

Each function runs the workloads it needs (through the cached
:func:`~repro.experiments.workloads.execute`) and returns a
:class:`FigureResult` holding the same rows/series the paper plots, plus
derived statistics (speedups, factor shares) and a ``format_text()``
rendering for the benchmark logs and EXPERIMENTS.md.

Scale notes: iteration counts default to roughly half the paper's plotted
range (the curves are linear in the iteration count, so the shape is not
affected); set ``REPRO_FULL_FIGURES=1`` to use the paper's exact counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..data import dataset_table
from .workloads import RunSpec, execute

__all__ = [
    "FigureResult",
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig16",
    "fig18",
    "fig20",
    "ALL_FIGURES",
]


def _full() -> bool:
    return os.environ.get("REPRO_FULL_FIGURES", "") == "1"


@dataclass
class FigureResult:
    """The data behind one reproduced table or figure."""

    figure_id: str
    title: str
    #: Curve name -> list of (x, y) points, or table rows.
    series: dict = field(default_factory=dict)
    rows: list = field(default_factory=list)
    #: Derived headline statistics (speedups, shares, ratios).
    stats: dict = field(default_factory=dict)

    def format_text(self) -> str:
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        lines = [f"== {self.figure_id}: {self.title} =="]
        for name, points in self.series.items():
            if points and isinstance(points[0], tuple) and len(points[0]) == 2:
                body = "  ".join(f"({fmt(x)}, {fmt(y)})" for x, y in points)
            else:
                body = ", ".join(str(p) for p in points)
            lines.append(f"  {name}: {body}")
        for row in self.rows:
            lines.append(f"  {row}")
        for key, value in self.stats.items():
            if isinstance(value, float):
                lines.append(f"  {key} = {value:.3f}")
            else:
                lines.append(f"  {key} = {value}")
        return "\n".join(lines)


# ------------------------------------------------------------- tables --
def table1() -> FigureResult:
    """Table 1: SSSP data sets statistics (stand-ins vs paper)."""
    result = FigureResult("Table 1", "SSSP data sets statistics")
    result.rows = dataset_table("sssp")
    return result


def table2() -> FigureResult:
    """Table 2: PageRank data sets statistics (stand-ins vs paper)."""
    result = FigureResult("Table 2", "PageRank data sets statistics")
    result.rows = dataset_table("pagerank")
    return result


# ----------------------------------------------- figs 4-7: local cluster --
def _time_vs_iterations(figure_id, title, algorithm, dataset, iterations) -> FigureResult:
    """The four curves of Figs. 4–7: MapReduce, MapReduce (ex. init.),
    iMapReduce (sync.), iMapReduce — with per-iteration convergence
    checking, as in the paper's Fig. 3-style jobs."""
    mr = execute(
        RunSpec(algorithm, dataset, "mapreduce", "local", iterations, measure_distance=True)
    )
    imr = execute(
        RunSpec(algorithm, dataset, "imapreduce", "local", iterations, measure_distance=True)
    )
    sync = execute(
        RunSpec(
            algorithm, dataset, "imapreduce", "local", iterations,
            sync=True, measure_distance=True,
        )
    )
    result = FigureResult(figure_id, title)
    result.series = {
        "MapReduce": mr.cumulative_times(),
        "MapReduce (ex. init.)": mr.cumulative_times_excluding_init(),
        "iMapReduce (sync.)": sync.cumulative_times(),
        "iMapReduce": imr.cumulative_times(),
    }
    total = mr.total_time
    init_saving = (mr.total_init_time - imr.setup_time) / total
    async_saving = (sync.total_time - imr.total_time) / total
    result.stats = {
        "speedup": total / imr.total_time,
        "init_share": init_saving,
        "async_share": async_saving,
        "static_shuffle_share": (total - imr.total_time) / total
        - init_saving
        - async_saving,
        "mapreduce_total_s": total,
        "imapreduce_total_s": imr.total_time,
    }
    return result


def fig4() -> FigureResult:
    iters = 16 if _full() else 8
    return _time_vs_iterations(
        "Fig 4", "SSSP running time on DBLP author cooperation graph",
        "sssp", "dblp", iters,
    )


def fig5() -> FigureResult:
    iters = 16 if _full() else 8
    return _time_vs_iterations(
        "Fig 5", "SSSP running time on Facebook user interaction graph",
        "sssp", "facebook", iters,
    )


def fig6() -> FigureResult:
    iters = 20 if _full() else 8
    return _time_vs_iterations(
        "Fig 6", "PageRank running time on Google webgraph",
        "pagerank", "google", iters,
    )


def fig7() -> FigureResult:
    iters = 20 if _full() else 8
    return _time_vs_iterations(
        "Fig 7", "PageRank running time on Berkeley-Stanford webgraph",
        "pagerank", "berk-stan", iters,
    )


# ----------------------------------------------- figs 8-9: EC2, synthetic --
def _synthetic_bars(figure_id, title, algorithm, tiers) -> FigureResult:
    result = FigureResult(figure_id, title)
    ratios = {}
    for tier in tiers:
        mr = execute(RunSpec(algorithm, tier, "mapreduce", "ec2-20", 10))
        imr = execute(RunSpec(algorithm, tier, "imapreduce", "ec2-20", 10))
        result.series.setdefault("MapReduce", []).append((tier, mr.total_time))
        result.series.setdefault("iMapReduce", []).append((tier, imr.total_time))
        ratios[tier] = imr.total_time / mr.total_time
    result.stats = {f"time_ratio[{t}]": r for t, r in ratios.items()}
    return result


def fig8() -> FigureResult:
    """Paper: iMapReduce reduces SSSP running time to 23.2%/37.0%/38.6%
    of Hadoop's on the s/m/l synthetic graphs (EC2, 20 instances)."""
    return _synthetic_bars(
        "Fig 8", "SSSP running time on synthetic graphs (EC2-20, 10 iters)",
        "sssp", ["sssp-s", "sssp-m", "sssp-l"],
    )


def fig9() -> FigureResult:
    """Paper: PageRank reduced to 44%(s) and ~60%(m, l)."""
    return _synthetic_bars(
        "Fig 9", "PageRank running time on synthetic graphs (EC2-20, 10 iters)",
        "pagerank", ["pagerank-s", "pagerank-m", "pagerank-l"],
    )


# ------------------------------------------------ fig 10: factor shares --
def fig10() -> FigureResult:
    """Per-factor running-time reduction on SSSP-m and PageRank-m."""
    result = FigureResult(
        "Fig 10", "Factors' effects on running time reduction (EC2-20)"
    )
    for algorithm, tier in (("sssp", "sssp-m"), ("pagerank", "pagerank-m")):
        mr = execute(RunSpec(algorithm, tier, "mapreduce", "ec2-20", 10))
        imr = execute(RunSpec(algorithm, tier, "imapreduce", "ec2-20", 10))
        sync = execute(RunSpec(algorithm, tier, "imapreduce", "ec2-20", 10, sync=True))
        total = mr.total_time
        init = (mr.total_init_time - imr.setup_time) / total
        async_ = (sync.total_time - imr.total_time) / total
        static = (total - imr.total_time) / total - init - async_
        result.series[tier] = [
            ("one-time initialization", init),
            ("avoid static data shuffling", static),
            ("asynchronous map execution", async_),
        ]
        result.stats[f"total_reduction[{tier}]"] = (total - imr.total_time) / total
    return result


# --------------------------------------------- fig 11: communication cost --
def fig11() -> FigureResult:
    """Total bytes exchanged over the network, MR vs iMR (l-tier)."""
    result = FigureResult("Fig 11", "Total communication cost (EC2-20, 10 iters)")
    for algorithm, tier in (("sssp", "sssp-l"), ("pagerank", "pagerank-l")):
        mr = execute(RunSpec(algorithm, tier, "mapreduce", "ec2-20", 10))
        imr = execute(RunSpec(algorithm, tier, "imapreduce", "ec2-20", 10))
        result.series[tier] = [
            ("MapReduce", mr.network_bytes),
            ("iMapReduce", imr.network_bytes),
        ]
        result.stats[f"comm_ratio[{tier}]"] = imr.network_bytes / mr.network_bytes
    return result


# ------------------------------------------------- figs 12-13: scaling --
def _scaling(figure_id, title, algorithm, tier) -> FigureResult:
    result = FigureResult(figure_id, title)
    sizes = (20, 50, 80)
    ratios = {}
    for n in sizes:
        mr = execute(RunSpec(algorithm, tier, "mapreduce", f"ec2-{n}", 10))
        imr = execute(RunSpec(algorithm, tier, "imapreduce", f"ec2-{n}", 10))
        result.series.setdefault("MapReduce", []).append((n, mr.total_time))
        result.series.setdefault("iMapReduce", []).append((n, imr.total_time))
        ratios[n] = imr.total_time / mr.total_time
    result.stats = {f"time_ratio[{n}]": r for n, r in ratios.items()}
    result.stats["ratio_drop_20_to_80"] = ratios[20] - ratios[80]
    return result


def fig12() -> FigureResult:
    """Paper: the iMR/MR ratio falls by ~8 points from 20 to 80 nodes."""
    return _scaling(
        "Fig 12", "SSSP speedup when scaling cluster size (SSSP-l)",
        "sssp", "sssp-l",
    )


def fig13() -> FigureResult:
    """Paper: the ratio falls by ~7 points for PageRank."""
    return _scaling(
        "Fig 13", "PageRank speedup when scaling cluster size (PageRank-l)",
        "pagerank", "pagerank-l",
    )


# --------------------------------------------- fig 14: parallel efficiency --
def fig14() -> FigureResult:
    """Parallel efficiency T*/(n·Tn) (Eq. 2) for both engines/algorithms."""
    result = FigureResult("Fig 14", "Parallel efficiencies (Eq. 2)")
    for algorithm, tier in (("sssp", "sssp-l"), ("pagerank", "pagerank-l")):
        for engine in ("mapreduce", "imapreduce"):
            t_star = execute(
                RunSpec(algorithm, tier, engine, "single", 10, partitions=1)
            ).total_time
            points = []
            for n in (20, 50, 80):
                tn = execute(
                    RunSpec(algorithm, tier, engine, f"ec2-{n}", 10)
                ).total_time
                points.append((n, t_star / (tn * n)))
            label = f"{algorithm}/{'iMapReduce' if engine == 'imapreduce' else 'MapReduce'}"
            result.series[label] = points
            result.stats[f"efficiency80[{label}]"] = points[-1][1]
    return result


# ------------------------------------------------------- fig 16: K-means --
def fig16() -> FigureResult:
    """K-means on the Last.fm stand-in, with and without Combiner.

    Paper: iMR ≈1.2× over Hadoop; the Combiner cuts ~23% (Hadoop) and
    ~26% (iMapReduce)."""
    iters = 10 if _full() else 6
    result = FigureResult("Fig 16", f"K-means running time ({iters} iters, local)")
    runs = {
        "MapReduce": RunSpec("kmeans", "lastfm", "mapreduce", "local", iters),
        "iMapReduce": RunSpec("kmeans", "lastfm", "imapreduce", "local", iters),
        "MapReduce + Combiner": RunSpec(
            "kmeans", "lastfm", "mapreduce", "local", iters, combiner=True
        ),
        "iMapReduce + Combiner": RunSpec(
            "kmeans", "lastfm", "imapreduce", "local", iters, combiner=True
        ),
    }
    metrics = {name: execute(spec) for name, spec in runs.items()}
    for name, m in metrics.items():
        result.series[name] = m.cumulative_times()
    result.stats = {
        "speedup": metrics["MapReduce"].total_time / metrics["iMapReduce"].total_time,
        "combiner_saving_mapreduce": 1
        - metrics["MapReduce + Combiner"].total_time / metrics["MapReduce"].total_time,
        "combiner_saving_imapreduce": 1
        - metrics["iMapReduce + Combiner"].total_time
        / metrics["iMapReduce"].total_time,
    }
    return result


# ------------------------------------------------- fig 18: matrix power --
def fig18() -> FigureResult:
    """Matrix power (two map-reduce phases per iteration).

    Paper: ~10% speedup (the unavoidable phase-2 shuffle dominates)."""
    iters = 5 if _full() else 4
    result = FigureResult("Fig 18", f"Matrix power running time ({iters} iters)")
    mr = execute(RunSpec("matrixpower", "matrix100", "mapreduce", "local", iters))
    imr = execute(RunSpec("matrixpower", "matrix100", "imapreduce", "local", iters))
    result.series = {
        "MapReduce": mr.cumulative_times(),
        "iMapReduce": imr.cumulative_times(),
    }
    result.stats = {"speedup": mr.total_time / imr.total_time}
    return result


# ----------------------------------- fig 20: K-means convergence detection --
def fig20() -> FigureResult:
    """K-means with §5.3 convergence detection: the baseline pays an extra
    synchronous check job per iteration; iMapReduce runs the auxiliary
    phase in parallel.  Paper: ~25% running time saved."""
    result = FigureResult(
        "Fig 20", "K-means with convergence detection (auxiliary phase)"
    )
    mr = execute(
        RunSpec("kmeans", "lastfm", "mapreduce", "local", 30, convergence_detection=True)
    )
    imr = execute(
        RunSpec("kmeans", "lastfm", "imapreduce", "local", 30, convergence_detection=True)
    )
    result.series = {
        "MapReduce": mr.cumulative_times(),
        "iMapReduce": imr.cumulative_times(),
    }
    result.stats = {
        "time_saving": 1 - imr.total_time / mr.total_time,
        "mapreduce_iterations": mr.num_iterations,
        "imapreduce_iterations": imr.num_iterations,
    }
    return result


#: Registry used by the EXPERIMENTS.md generator and the bench suite.
ALL_FIGURES = {
    "table1": table1,
    "table2": table2,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig16": fig16,
    "fig18": fig18,
    "fig20": fig20,
}
