"""Wall-clock benchmark: serial ``run_local`` vs multiprocess ``run_parallel``.

Unlike the figure benchmarks (which measure *simulated* time on the
virtual cluster), this suite measures real elapsed seconds on real OS
processes — the backend the paper's speedup claims ultimately rest on.
Each workload runs once on the serial reference executor and once per
requested worker count on the multiprocess backend; the suite records
speedups next to ``cpu_count`` so a 1-core container's honest ~1×
numbers are never mistaken for a parallelism regression, and it verifies
on every run that the parallel result is record-for-record identical to
the serial one and that each worker deserialized its static partitions
exactly once (§3.2's static-data residency).

Beyond wall time, every parallel point records the mesh's data-plane
counters — ``records_sent``, ``batches_sent``, ``manifest_frames``,
``bytes_pickled`` — next to ``dense_batches``, the message count the
pre-manifest dense protocol (every peer, every phase, every iteration)
would have shipped for the same run; and the phase-level profiler's
``phase_seconds`` wall-time split (map, combine, serialize, deserialize,
send, wait, reduce, report), aggregated into the JSON's top-level
``phase_breakdown`` section.  The counters are deterministic for a given
workload (seeded builders, pinned pickle protocol), which is what lets
CI gate on them: :func:`compare_counters` fails the bench leg if any
counter regresses against the committed ``BENCH_PR5.json`` baseline,
while wall-clock numbers stay informational.

``run_suite`` writes the JSON trajectory consumed by CI (uploaded as the
``BENCH_PR5.json`` artifact) and by ``repro bench``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..algorithms import kmeans, pagerank, sssp
from ..common.serialization import sizeof_value
from ..data.lastfm import load_lastfm
from ..graph.generators import pagerank_graph, sssp_graph
from ..imapreduce import run_local, run_parallel

__all__ = [
    "WallclockCase",
    "build_cases",
    "build_backend_workload",
    "time_case",
    "dense_batches",
    "sizeof_microbench",
    "run_suite",
    "compare_counters",
    "format_phase_breakdown",
    "DEFAULT_WORKERS",
    "COUNTERS",
]

#: Data-plane counters recorded per parallel point and gated by CI.
COUNTERS = ("records_sent", "batches_sent", "manifest_frames", "bytes_pickled")

STATE = "/bench/state"
STATIC = "/bench/static"
OUT = "/bench/out"

#: Worker counts the acceptance trajectory tracks: serial-equivalent,
#: one per core on a 2-core runner, one per core on a 4-core runner.
DEFAULT_WORKERS = (1, 2, 4)


@dataclass
class WallclockCase:
    """One benchmarked workload: a fresh (job, state, static) per call."""

    name: str
    num_pairs: int
    build: Callable[[], tuple[Any, list, dict]]


def build_cases(quick: bool = False) -> list[WallclockCase]:
    """The three headline workloads at honest (or CI-smoke) sizes."""
    if quick:
        pr_nodes, sssp_nodes, users, iters = 60, 60, 40, 3
        artists, k = 10, 4
    else:
        # Sized so the serial run takes seconds, not milliseconds: the
        # per-iteration compute must dominate process-mesh overhead, or
        # speedups would measure pickling, not the backend.
        pr_nodes, sssp_nodes, users, iters = 30_000, 30_000, 8_000, 8
        artists, k = 60, 8

    def _pagerank():
        graph = pagerank_graph(pr_nodes, seed=42)
        job = pagerank.build_imr_job(
            pr_nodes, state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iters, num_pairs=8, combiner=True,
        )
        return job, pagerank.initial_state(graph), {
            STATIC: pagerank.static_records(graph)
        }

    def _sssp():
        graph = sssp_graph(sssp_nodes, seed=42)
        job = sssp.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iters, num_pairs=8, combiner=True,
        )
        return job, sssp.initial_state(graph, source=0), {
            STATIC: sssp.static_records(graph)
        }

    def _kmeans():
        data = load_lastfm(num_users=users, num_artists=artists,
                           num_tastes=min(4, k), seed=42)
        job = kmeans.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=max(3, iters - 2), num_pairs=4,
        )
        return job, kmeans.initial_centroids(data, k, seed=42), {
            STATIC: data.user_records()
        }

    return [
        WallclockCase("pagerank", 8, _pagerank),
        WallclockCase("sssp", 8, _sssp),
        WallclockCase("kmeans", 4, _kmeans),
    ]


def build_backend_workload(
    algorithm: str,
    dataset: str,
    *,
    iterations: int = 10,
    num_pairs: int = 8,
    combiner: bool = False,
    seed: int = 0,
) -> tuple[Any, list, dict, int]:
    """(job, state, static_map, num_pairs) for ``repro run`` on the real
    backends — same datasets the simulated engine uses."""
    from ..common import stable_seed
    from ..data import load_graph

    if algorithm == "sssp":
        graph = load_graph(dataset)
        job = sssp.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iterations, num_pairs=num_pairs, combiner=combiner,
        )
        return (job, sssp.initial_state(graph, source=0),
                {STATIC: sssp.static_records(graph)}, num_pairs)
    if algorithm == "pagerank":
        graph = load_graph(dataset)
        job = pagerank.build_imr_job(
            graph.num_nodes, state_path=STATE, static_path=STATIC,
            output_path=OUT, max_iterations=iterations, num_pairs=num_pairs,
            combiner=combiner,
        )
        return (job, pagerank.initial_state(graph),
                {STATIC: pagerank.static_records(graph)}, num_pairs)
    if algorithm == "kmeans":
        data = load_lastfm(num_users=800, num_artists=40, num_tastes=4,
                           seed=stable_seed(seed, "lastfm") % (2**31)
                           if seed else 1)
        centroids = kmeans.initial_centroids(
            data, 4,
            seed=stable_seed(seed, "centroids") % (2**31) if seed else 1,
        )
        job = kmeans.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iterations, num_pairs=min(4, num_pairs),
            combiner=combiner,
        )
        return job, centroids, {STATIC: data.user_records()}, min(4, num_pairs)
    if algorithm == "matrixpower":
        from . import workloads

        matrix = workloads._matrix_for(dataset, seed)
        job = matrixpower.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iterations, num_pairs=num_pairs,
        )
        return (job, matrixpower.matrix_to_state_records(matrix),
                {STATIC: matrixpower.matrix_to_column_records(matrix)},
                num_pairs)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def dense_batches(job, iterations: int, num_workers: int) -> int:
    """Batches the PR4 dense protocol shipped for the same run: every
    worker messaged every peer on every phase of every iteration (shuffle
    + per-phase repartition + all-gather broadcast), empty or not."""
    if num_workers <= 1:
        return 0
    edges = num_workers * (num_workers - 1)
    per_iter = 0
    last = len(job.phases) - 1
    for index, phase in enumerate(job.phases):
        per_iter += edges  # shuffle
        if index != last:
            per_iter += edges  # repartition
        if phase.mapping == "one2all":
            per_iter += edges  # all-gather broadcast
    return per_iter * iterations


def time_case(
    case: WallclockCase,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    repeats: int = 2,
) -> dict:
    """Serial vs parallel timings for one workload (best of ``repeats``)."""
    job, state, static_map = case.build()

    serial = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        ref = run_local(job, state, static_map, num_pairs=case.num_pairs)
        serial = min(serial, time.perf_counter() - started)

    row: dict[str, Any] = {
        "name": case.name,
        "num_pairs": case.num_pairs,
        "iterations": ref.iterations_run,
        "serial_seconds": round(serial, 4),
        "parallel": [],
        "record_identical": True,
    }
    for w in workers:
        best = float("inf")
        par = None
        for _ in range(repeats):
            started = time.perf_counter()
            par = run_parallel(job, state, static_map,
                               num_pairs=case.num_pairs, num_workers=w)
            best = min(best, time.perf_counter() - started)
        assert par is not None
        from ..testing.oracles import records_identical

        if (not records_identical(par.state, ref.state)
                or par.iterations_run != ref.iterations_run):
            row["record_identical"] = False
        if par.static_loads != par.num_workers:
            raise AssertionError(
                f"{case.name}: static loaded {par.static_loads} times for "
                f"{par.num_workers} workers — static residency broken"
            )
        row["parallel"].append({
            "workers": par.num_workers,
            "seconds": round(best, 4),
            "speedup": round(serial / best, 3) if best > 0 else None,
            "static_loads": par.static_loads,
            # Data-plane counters are deterministic per (workload,
            # workers): seeded builders + pinned frame protocol.  CI
            # gates on these, not on wall time.
            "counters": {name: par.counter(name) for name in COUNTERS},
            "dense_batches": dense_batches(
                job, par.iterations_run, par.num_workers
            ),
            "phase_seconds": par.phase_breakdown(),
        })
    return row


def sizeof_microbench(calls: int = 200_000) -> dict:
    """The satellite win: memoized ``sizeof_value`` vs the uncached path.

    The probe set mirrors shuffle traffic — small ints, floats and
    short key/value tuples repeat endlessly, which is exactly what the
    memo table captures.
    """
    from ..common import serialization

    probes = [
        (i % 64, float(i % 64) * 0.5) for i in range(256)
    ] + [("node", i % 32, 1.5) for i in range(128)]
    n = max(1, calls // len(probes))

    started = time.perf_counter()
    for _ in range(n):
        for p in probes:
            serialization._sizeof_uncached(p)
    uncached = time.perf_counter() - started

    sizeof_value(probes[0])  # warm the memo
    started = time.perf_counter()
    for _ in range(n):
        for p in probes:
            sizeof_value(p)
    memoized = time.perf_counter() - started

    return {
        "calls": n * len(probes),
        "uncached_seconds": round(uncached, 4),
        "memoized_seconds": round(memoized, 4),
        "speedup": round(uncached / memoized, 2) if memoized > 0 else None,
    }


def run_suite(
    out_path: str | None = "BENCH_PR5.json",
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    quick: bool = False,
    log: Callable[[str], None] | None = None,
) -> dict:
    """Run every case, plus the sizeof micro-benchmark; write JSON."""
    results = {
        "suite": "wallclock",
        "meta": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "quick": quick,
            "workers": list(workers),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "workloads": [],
        "phase_breakdown": {},
        "sizeof_microbench": sizeof_microbench(
            calls=20_000 if quick else 200_000
        ),
    }
    for case in build_cases(quick=quick):
        row = time_case(case, workers=workers, repeats=1 if quick else 2)
        results["workloads"].append(row)
        results["phase_breakdown"][row["name"]] = {
            str(point["workers"]): point["phase_seconds"]
            for point in row["parallel"]
        }
        if log:
            speedups = ", ".join(
                f"{p['workers']}w={p['speedup']}x" for p in row["parallel"]
            )
            log(
                f"{row['name']}: serial {row['serial_seconds']}s; {speedups}"
                f" (identical={row['record_identical']})"
            )
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
    return results


#: Headroom multiplier for the byte counter when gating: pickle output
#: for the same records can drift a little across numpy point releases.
_BYTES_TOLERANCE = 1.02


def compare_counters(results: dict, baseline: dict) -> list[str]:
    """Gate the data plane against a committed baseline.

    Returns one message per regression: a (workload, workers) point
    whose ``records_sent``/``batches_sent``/``bytes_pickled`` exceeds
    the baseline's (bytes get 2% headroom for pickle drift).  Wall-clock
    numbers are never compared — they belong to the host, the counters
    belong to the protocol.  Points absent from the baseline (new
    workloads, new worker counts) pass silently.
    """
    baseline_points: dict[tuple[str, int], dict] = {}
    for row in baseline.get("workloads", ()):
        for point in row.get("parallel", ()):
            if "counters" in point:
                baseline_points[(row["name"], point["workers"])] = point["counters"]

    problems: list[str] = []
    for row in results.get("workloads", ()):
        for point in row.get("parallel", ()):
            base = baseline_points.get((row["name"], point["workers"]))
            if base is None:
                continue
            now = point["counters"]
            for name in ("records_sent", "batches_sent"):
                if name in base and now[name] > base[name]:
                    problems.append(
                        f"{row['name']}@{point['workers']}w: {name} "
                        f"{now[name]} > baseline {base[name]}"
                    )
            if "bytes_pickled" in base and (
                now["bytes_pickled"] > base["bytes_pickled"] * _BYTES_TOLERANCE
            ):
                problems.append(
                    f"{row['name']}@{point['workers']}w: bytes_pickled "
                    f"{now['bytes_pickled']} > baseline "
                    f"{base['bytes_pickled']} (+2% headroom)"
                )
    return problems


def format_phase_breakdown(results: dict) -> str:
    """Render the profiler section as an aligned text table."""
    from ..imapreduce.workerproc import PHASE_COUNTERS

    lines = [
        "phase breakdown (seconds, summed over workers):",
        "  {:<10} {:>3}  ".format("workload", "w")
        + "".join(f"{name:>12}" for name in PHASE_COUNTERS),
    ]
    for name, per_workers in results.get("phase_breakdown", {}).items():
        for w, phases in per_workers.items():
            lines.append(
                f"  {name:<10} {w:>3}  "
                + "".join(
                    f"{phases.get(counter, 0.0):>12.4f}"
                    for counter in PHASE_COUNTERS
                )
            )
    return "\n".join(lines)
