"""Wall-clock benchmark: serial ``run_local`` vs multiprocess ``run_parallel``.

Unlike the figure benchmarks (which measure *simulated* time on the
virtual cluster), this suite measures real elapsed seconds on real OS
processes — the backend the paper's speedup claims ultimately rest on.
Each workload runs once on the serial reference executor and once per
requested worker count on the multiprocess backend; the suite records
speedups next to ``cpu_count`` so a 1-core container's honest ~1×
numbers are never mistaken for a parallelism regression, and it verifies
on every run that the parallel result is record-for-record identical to
the serial one and that each worker deserialized its static partitions
exactly once (§3.2's static-data residency).

``run_suite`` writes the JSON trajectory consumed by CI (uploaded as the
``BENCH_PR4.json`` artifact) and by ``repro bench``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..algorithms import kmeans, pagerank, sssp
from ..common.serialization import sizeof_value
from ..data.lastfm import load_lastfm
from ..graph.generators import pagerank_graph, sssp_graph
from ..imapreduce import run_local, run_parallel

__all__ = [
    "WallclockCase",
    "build_cases",
    "build_backend_workload",
    "time_case",
    "sizeof_microbench",
    "run_suite",
    "DEFAULT_WORKERS",
]

STATE = "/bench/state"
STATIC = "/bench/static"
OUT = "/bench/out"

#: Worker counts the acceptance trajectory tracks: serial-equivalent,
#: one per core on a 2-core runner, one per core on a 4-core runner.
DEFAULT_WORKERS = (1, 2, 4)


@dataclass
class WallclockCase:
    """One benchmarked workload: a fresh (job, state, static) per call."""

    name: str
    num_pairs: int
    build: Callable[[], tuple[Any, list, dict]]


def build_cases(quick: bool = False) -> list[WallclockCase]:
    """The three headline workloads at honest (or CI-smoke) sizes."""
    if quick:
        pr_nodes, sssp_nodes, users, iters = 60, 60, 40, 3
        artists, k = 10, 4
    else:
        # Sized so the serial run takes seconds, not milliseconds: the
        # per-iteration compute must dominate process-mesh overhead, or
        # speedups would measure pickling, not the backend.
        pr_nodes, sssp_nodes, users, iters = 30_000, 30_000, 8_000, 8
        artists, k = 60, 8

    def _pagerank():
        graph = pagerank_graph(pr_nodes, seed=42)
        job = pagerank.build_imr_job(
            pr_nodes, state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iters, num_pairs=8, combiner=True,
        )
        return job, pagerank.initial_state(graph), {
            STATIC: pagerank.static_records(graph)
        }

    def _sssp():
        graph = sssp_graph(sssp_nodes, seed=42)
        job = sssp.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iters, num_pairs=8, combiner=True,
        )
        return job, sssp.initial_state(graph, source=0), {
            STATIC: sssp.static_records(graph)
        }

    def _kmeans():
        data = load_lastfm(num_users=users, num_artists=artists,
                           num_tastes=min(4, k), seed=42)
        job = kmeans.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=max(3, iters - 2), num_pairs=4,
        )
        return job, kmeans.initial_centroids(data, k, seed=42), {
            STATIC: data.user_records()
        }

    return [
        WallclockCase("pagerank", 8, _pagerank),
        WallclockCase("sssp", 8, _sssp),
        WallclockCase("kmeans", 4, _kmeans),
    ]


def build_backend_workload(
    algorithm: str,
    dataset: str,
    *,
    iterations: int = 10,
    num_pairs: int = 8,
    combiner: bool = False,
    seed: int = 0,
) -> tuple[Any, list, dict, int]:
    """(job, state, static_map, num_pairs) for ``repro run`` on the real
    backends — same datasets the simulated engine uses."""
    from ..common import stable_seed
    from ..data import load_graph

    if algorithm == "sssp":
        graph = load_graph(dataset)
        job = sssp.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iterations, num_pairs=num_pairs, combiner=combiner,
        )
        return (job, sssp.initial_state(graph, source=0),
                {STATIC: sssp.static_records(graph)}, num_pairs)
    if algorithm == "pagerank":
        graph = load_graph(dataset)
        job = pagerank.build_imr_job(
            graph.num_nodes, state_path=STATE, static_path=STATIC,
            output_path=OUT, max_iterations=iterations, num_pairs=num_pairs,
            combiner=combiner,
        )
        return (job, pagerank.initial_state(graph),
                {STATIC: pagerank.static_records(graph)}, num_pairs)
    if algorithm == "kmeans":
        data = load_lastfm(num_users=800, num_artists=40, num_tastes=4,
                           seed=stable_seed(seed, "lastfm") % (2**31)
                           if seed else 1)
        centroids = kmeans.initial_centroids(
            data, 4,
            seed=stable_seed(seed, "centroids") % (2**31) if seed else 1,
        )
        job = kmeans.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iterations, num_pairs=min(4, num_pairs),
            combiner=combiner,
        )
        return job, centroids, {STATIC: data.user_records()}, min(4, num_pairs)
    if algorithm == "matrixpower":
        from . import workloads

        matrix = workloads._matrix_for(dataset, seed)
        job = matrixpower.build_imr_job(
            state_path=STATE, static_path=STATIC, output_path=OUT,
            max_iterations=iterations, num_pairs=num_pairs,
        )
        return (job, matrixpower.matrix_to_state_records(matrix),
                {STATIC: matrixpower.matrix_to_column_records(matrix)},
                num_pairs)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def time_case(
    case: WallclockCase,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    repeats: int = 2,
) -> dict:
    """Serial vs parallel timings for one workload (best of ``repeats``)."""
    job, state, static_map = case.build()

    serial = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        ref = run_local(job, state, static_map, num_pairs=case.num_pairs)
        serial = min(serial, time.perf_counter() - started)

    row: dict[str, Any] = {
        "name": case.name,
        "num_pairs": case.num_pairs,
        "iterations": ref.iterations_run,
        "serial_seconds": round(serial, 4),
        "parallel": [],
        "record_identical": True,
    }
    for w in workers:
        best = float("inf")
        par = None
        for _ in range(repeats):
            started = time.perf_counter()
            par = run_parallel(job, state, static_map,
                               num_pairs=case.num_pairs, num_workers=w)
            best = min(best, time.perf_counter() - started)
        assert par is not None
        from ..testing.oracles import records_identical

        if (not records_identical(par.state, ref.state)
                or par.iterations_run != ref.iterations_run):
            row["record_identical"] = False
        if par.static_loads != par.num_workers:
            raise AssertionError(
                f"{case.name}: static loaded {par.static_loads} times for "
                f"{par.num_workers} workers — static residency broken"
            )
        row["parallel"].append({
            "workers": par.num_workers,
            "seconds": round(best, 4),
            "speedup": round(serial / best, 3) if best > 0 else None,
            "static_loads": par.static_loads,
        })
    return row


def sizeof_microbench(calls: int = 200_000) -> dict:
    """The satellite win: memoized ``sizeof_value`` vs the uncached path.

    The probe set mirrors shuffle traffic — small ints, floats and
    short key/value tuples repeat endlessly, which is exactly what the
    memo table captures.
    """
    from ..common import serialization

    probes = [
        (i % 64, float(i % 64) * 0.5) for i in range(256)
    ] + [("node", i % 32, 1.5) for i in range(128)]
    n = max(1, calls // len(probes))

    started = time.perf_counter()
    for _ in range(n):
        for p in probes:
            serialization._sizeof_uncached(p)
    uncached = time.perf_counter() - started

    sizeof_value(probes[0])  # warm the memo
    started = time.perf_counter()
    for _ in range(n):
        for p in probes:
            sizeof_value(p)
    memoized = time.perf_counter() - started

    return {
        "calls": n * len(probes),
        "uncached_seconds": round(uncached, 4),
        "memoized_seconds": round(memoized, 4),
        "speedup": round(uncached / memoized, 2) if memoized > 0 else None,
    }


def run_suite(
    out_path: str | None = "BENCH_PR4.json",
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    quick: bool = False,
    log: Callable[[str], None] | None = None,
) -> dict:
    """Run every case, plus the sizeof micro-benchmark; write JSON."""
    results = {
        "suite": "wallclock",
        "meta": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "quick": quick,
            "workers": list(workers),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "workloads": [],
        "sizeof_microbench": sizeof_microbench(
            calls=20_000 if quick else 200_000
        ),
    }
    for case in build_cases(quick=quick):
        row = time_case(case, workers=workers, repeats=1 if quick else 2)
        results["workloads"].append(row)
        if log:
            speedups = ", ".join(
                f"{p['workers']}w={p['speedup']}x" for p in row["parallel"]
            )
            log(
                f"{row['name']}: serial {row['serial_seconds']}s; {speedups}"
                f" (identical={row['record_identical']})"
            )
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
    return results
